"""Scaling-analysis helpers (Figure 7/8 arithmetic as reusable functions)."""

from __future__ import annotations

import numpy as np


def scaling_ratio(latency_1: float, latency_n: float) -> float:
    """``tau_1 / tau_N`` — the paper's Figure 7 metric (perfect = N)."""
    if latency_1 <= 0 or latency_n <= 0:
        raise ValueError("latencies must be positive")
    return latency_1 / latency_n


def parallelization_efficiency(latency_1: float, latency_n: float, n: int) -> float:
    """Scaling ratio over perfect scaling: 1.0 = linear speedup.

    The paper reports 93% for the 1M/128-GPU prefill (Appendix A, against
    the standalone single-GPU FA3 rate).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return scaling_ratio(latency_1, latency_n) / n


def speedup_curve(latencies: dict[int, float]) -> dict[int, float]:
    """Per-N scaling ratios from a ``{n: latency}`` sweep (needs n=1)."""
    if 1 not in latencies:
        raise ValueError("sweep must include n=1 as the baseline")
    base = latencies[1]
    return {n: scaling_ratio(base, t) for n, t in sorted(latencies.items())}


def amdahl_serial_fraction(latencies: dict[int, float]) -> float:
    """Least-squares serial fraction ``s`` fitting ``t_N = t_1 (s + (1-s)/N)``.

    A diagnostic for *why* scaling bends: the fixed per-layer ring setup and
    exposed communication act as the serial term.
    """
    if 1 not in latencies or len(latencies) < 2:
        raise ValueError("need n=1 plus at least one more point")
    t1 = latencies[1]
    ns = np.array(sorted(latencies))
    ts = np.array([latencies[n] for n in ns], dtype=float)
    # t_N / t1 = s + (1-s)/N  ->  y = s * (1 - 1/N) + 1/N
    y = ts / t1
    x = 1.0 - 1.0 / ns
    denom = float(np.dot(x, x))
    if denom == 0:
        return 0.0
    s = float(np.dot(x, y - 1.0 / ns)) / denom
    return float(np.clip(s, 0.0, 1.0))
