"""Paged block allocator (PagedAttention-style).

Long-context serving cannot reserve max-context-length contiguous buffers
per sequence; the standard fix (Kwon et al. 2023, cited in §2.2) is to
allocate KV memory in fixed-size token blocks on demand. This allocator
tracks block ownership per (layer, sequence) stream and is the capacity
authority behind :class:`repro.kvcache.cache.RankKVCache`: when the free
list empties, the cache raises the OOM the paper's load-balancing work is
designed to postpone (§3.6: without round-robin decode sharding, one rank
OOMs before aggregate capacity is reached).
"""

from __future__ import annotations

from dataclasses import dataclass, field


class OutOfBlocksError(RuntimeError):
    """No free blocks remain in the pool."""


@dataclass
class PagedAllocator:
    """Fixed-pool block allocator.

    Attributes:
        num_blocks: total blocks in the pool.
        block_size: tokens per block.
    """

    num_blocks: int
    block_size: int
    _free: list[int] = field(default_factory=list, repr=False)
    _owners: dict[tuple, list[int]] = field(default_factory=dict, repr=False)
    _fill: dict[tuple, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.num_blocks < 0:
            raise ValueError(f"num_blocks must be >= 0, got {self.num_blocks}")
        if self.block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {self.block_size}")
        self._free = list(range(self.num_blocks - 1, -1, -1))

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    @property
    def used_blocks(self) -> int:
        return self.num_blocks - len(self._free)

    @property
    def capacity_tokens(self) -> int:
        return self.num_blocks * self.block_size

    def free_tokens(self) -> int:
        """Tokens that can still be appended across all streams.

        Counts whole free blocks plus the slack in each stream's last
        partially-filled block.
        """
        slack = sum(
            (len(blocks) * self.block_size) - self._fill[key]
            for key, blocks in self._owners.items()
        )
        return len(self._free) * self.block_size + slack

    def stream_tokens(self, key: tuple) -> int:
        """Tokens currently stored under ``key``."""
        return self._fill.get(key, 0)

    def utilization(self) -> float:
        """Fraction of the pool's token capacity in use (block-granular).

        Counts whole claimed blocks, not just their filled tokens, so this
        reflects allocatable pressure — the quantity the serving runtime's
        peak-KV-occupancy metric samples after every round.
        """
        if self.num_blocks == 0:
            return 0.0
        return self.used_blocks / self.num_blocks

    def append(self, key: tuple, n_tokens: int) -> None:
        """Account for appending ``n_tokens`` to stream ``key``.

        Allocates new blocks as needed.

        Raises:
            OutOfBlocksError: if the pool cannot hold the new tokens; the
                allocation is rolled back so the pool state is unchanged.
        """
        if n_tokens < 0:
            raise ValueError(f"n_tokens must be >= 0, got {n_tokens}")
        if n_tokens == 0 and key not in self._owners:
            # registering a fresh key with zero tokens would leave a
            # phantom zero-block stream in streams() forever
            return
        blocks = self._owners.setdefault(key, [])
        fill = self._fill.setdefault(key, 0)
        capacity = len(blocks) * self.block_size
        need = fill + n_tokens - capacity
        newly: list[int] = []
        while need > 0:
            if not self._free:
                # roll back
                for b in newly:
                    self._free.append(b)
                    blocks.pop()
                if not blocks:
                    del self._owners[key]
                    del self._fill[key]
                raise OutOfBlocksError(
                    f"stream {key}: need {n_tokens} tokens but pool is exhausted "
                    f"({self.used_blocks}/{self.num_blocks} blocks used)"
                )
            b = self._free.pop()
            blocks.append(b)
            newly.append(b)
            need -= self.block_size
        self._fill[key] = fill + n_tokens

    def fits(self, demands: dict[tuple, int]) -> bool:
        """Dry-run an :meth:`append` of ``demands[key]`` tokens per stream.

        Computes how many *new* blocks the batch of appends would claim —
        each stream first consumes the slack of its own last block — and
        checks it against the free list, without mutating any state.
        """
        need = 0
        for key, n_tokens in demands.items():
            if n_tokens < 0:
                raise ValueError(f"stream {key}: n_tokens must be >= 0, got {n_tokens}")
            fill = self._fill.get(key, 0)
            held = len(self._owners.get(key, ()))
            need += max(0, -(-(fill + n_tokens) // self.block_size) - held)
        return need <= len(self._free)

    def release(self, key: tuple) -> int:
        """Free all blocks of stream ``key``; returns the block count freed.

        Releasing an unknown (or already-released) key is a clean no-op
        returning 0 — callers evicting speculatively need not pre-check.
        """
        blocks = self._owners.pop(key, [])
        self._fill.pop(key, None)
        self._free.extend(blocks)
        return len(blocks)

    def release_tail(self, key: tuple, n_tokens: int) -> int:
        """Drop the *newest* ``n_tokens`` of stream ``key``; returns blocks freed.

        Only whole blocks that become empty are returned to the pool (the
        stream's new last block may stay partially filled — that slack is
        reusable by the stream itself, as :meth:`free_tokens` counts).
        Dropping every token degenerates to :meth:`release`, so the key is
        deregistered and never lingers as a zero-block stream.

        Raises:
            ValueError: negative ``n_tokens``, or more tokens than the
                stream holds (which would indicate caller corruption).
        """
        if n_tokens < 0:
            raise ValueError(f"n_tokens must be >= 0, got {n_tokens}")
        fill = self._fill.get(key, 0)
        if n_tokens > fill:
            raise ValueError(
                f"stream {key}: cannot drop {n_tokens} of {fill} stored tokens"
            )
        if n_tokens == 0:
            return 0
        new_fill = fill - n_tokens
        if new_fill == 0:
            return self.release(key)
        blocks = self._owners[key]
        keep_blocks = -(-new_fill // self.block_size)
        freed = blocks[keep_blocks:]
        del blocks[keep_blocks:]
        self._free.extend(freed)
        self._fill[key] = new_fill
        return len(freed)

    def streams(self) -> list[tuple]:
        return list(self._owners)
