"""Figure 6: pass-KV full-prefill latency vs context length, CP1-CP8.

Figure 6a runs on GTT (RDMA); Figure 6b on GTI (TCP). The claim being
reproduced: latency halves as CP ranks double for sufficiently long
contexts — on *both* fabrics, because pass-KV SendRecv hides under
attention even at ~3 GB/s/rank (Equation 2).
"""

from __future__ import annotations

from repro.core.heuristics import RingAlgo
from repro.experiments.base import ExperimentResult
from repro.model.config import llama3_405b_config
from repro.perf.hardware import HostSpec, gti_host, gtt_host
from repro.perf.latency import LatencySimulator
from repro.workloads.traces import FIG6_CONTEXT_LENGTHS, FIG6_GTI_RANKS, FIG6_GTT_RANKS


def run(host: HostSpec | None = None, *, ranks: list[int] | None = None) -> ExperimentResult:
    """Regenerate one Figure 6 panel for the given platform."""
    host = host if host is not None else gtt_host()
    if ranks is None:
        ranks = FIG6_GTT_RANKS if host.name == "GTT" else FIG6_GTI_RANKS
    sim = LatencySimulator(llama3_405b_config(), host)

    panel = "6a" if host.name == "GTT" else "6b"
    res = ExperimentResult(
        experiment_id=f"Figure {panel}",
        title=f"pass-KV full prefill latency on {host.name} (s)",
        headers=["context"] + [f"CP{n}" for n in ranks],
    )
    for ctx in FIG6_CONTEXT_LENGTHS:
        row = [ctx]
        for n in ranks:
            row.append(sim.cp_prefill(ctx, n_ranks=n, algo=RingAlgo.PASS_KV).total)
        res.add_row(*row)

    # headline anchor: CP8 on GTT processes 128K in ~5.85 s
    if host.name == "GTT" and 8 in ranks:
        res.paper_values["cp8_128k_seconds"] = 5.85
        res.notes.append("Paper: 5.85 s for 128K on CP8/GTT (Section 4.2.1).")
    if host.name == "GTI":
        res.notes.append(
            "Paper: GTI scales like GTT up to 4 nodes despite ~3 GB/s/rank "
            "achieved TCP bandwidth (pass-KV comm still hides, Eq. 2)."
        )
    return res


def run_both() -> list[ExperimentResult]:
    """Both panels (GTT and GTI)."""
    return [run(gtt_host()), run(gti_host())]
