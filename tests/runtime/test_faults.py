"""Unit tests for the deterministic fault-injection layer.

Covers the :class:`repro.runtime.faults.FaultPlan` spec surface
(validation, CLI parsing, capped exponential backoff), the
:class:`repro.runtime.faults.FaultInjector` oracle (counter-based
determinism, per-request fault budgets, the pre-drawn pool-reset
schedule), the runtime's degradation ladder (retry -> backoff ->
re-prefill fallback, deadline shedding with conversation cascade,
queue-depth backpressure), and the fault-counter metrics plumbing.
"""

import numpy as np
import pytest

from repro.core.engine import ContextParallelEngine
from repro.model.config import tiny_config
from repro.model.llama import LlamaModel
from repro.runtime import ContinuousBatchingRuntime, FaultInjector, FaultPlan
from repro.runtime.faults import _MAX_SWAP_LOSSES
from repro.runtime.state import RequestState, TERMINAL_STATES
from repro.serving.metrics import ServingMetrics
from repro.serving.scheduler import ChunkedPrefillPolicy
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.replay import submit_scripts_to_runtime

MODEL = LlamaModel(tiny_config(), seed=0)
VOCAB = MODEL.config.vocab_size


def make_runtime(*, disaggregate=False, capacity=None, preemption="recompute",
                 faults=None, swap_capacity=None):
    engine = ContextParallelEngine(MODEL, world_size=2, capacity_tokens=capacity)
    kwargs = dict(
        policy=ChunkedPrefillPolicy(
            chunk_tokens=16, max_tokens_per_round=32, max_seqs_per_round=4
        ),
        preemption=preemption,
        swap_capacity_tokens=swap_capacity,
        faults=faults,
    )
    if disaggregate:
        decode_engine = ContextParallelEngine(
            MODEL, world_size=2, capacity_tokens=capacity
        )
        return ContinuousBatchingRuntime(engine, decode_engine=decode_engine, **kwargs)
    return ContinuousBatchingRuntime(engine, **kwargs)


def make_scripts(n=3, turns=2, first_prompt=40, seed=3):
    gen = WorkloadGenerator(VOCAB, seed=seed)
    return [
        gen.conversation(sid, turns=turns, first_prompt=first_prompt)
        for sid in range(n)
    ]


class TestFaultPlan:
    def test_defaults_inactive(self):
        plan = FaultPlan()
        assert not plan.active
        assert plan.describe() == "inactive"

    @pytest.mark.parametrize("field, value", [
        ("transfer_fail_rate", 0.01),
        ("swap_loss_rate", 1.0),
        ("pool_resets", 1),
        ("deadline_s", 30.0),
        ("max_queue_depth", 4),
    ])
    def test_any_fault_knob_activates(self, field, value):
        assert FaultPlan(**{field: value}).active

    def test_retry_knobs_alone_do_not_activate(self):
        assert not FaultPlan(max_transfer_retries=5, backoff_base_s=2.0).active

    @pytest.mark.parametrize("kwargs", [
        dict(transfer_fail_rate=-0.1),
        dict(transfer_fail_rate=1.5),
        dict(swap_loss_rate=2.0),
        dict(pool_resets=-1),
        dict(pool_reset_window=0),
        dict(max_transfer_retries=-1),
        dict(backoff_base_s=-0.5),
        dict(backoff_cap_s=-1.0),
        dict(deadline_s=0.0),
        dict(deadline_s=-5.0),
        dict(max_queue_depth=0),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_backoff_doubles_then_caps(self):
        plan = FaultPlan(backoff_base_s=0.5, backoff_cap_s=8.0)
        assert [plan.backoff(a) for a in range(1, 7)] == [
            0.5, 1.0, 2.0, 4.0, 8.0, 8.0
        ]
        with pytest.raises(ValueError):
            plan.backoff(0)

    def test_parse_full_spec(self):
        plan = FaultPlan.parse(
            "transfer=0.2, swap=0.3, pool_reset=2, window=10, retries=1, "
            "backoff=0.25, backoff_cap=4, deadline=30, queue=16",
            seed=7,
        )
        assert plan == FaultPlan(
            seed=7, transfer_fail_rate=0.2, swap_loss_rate=0.3, pool_resets=2,
            pool_reset_window=10, max_transfer_retries=1, backoff_base_s=0.25,
            backoff_cap_s=4.0, deadline_s=30.0, max_queue_depth=16,
        )

    def test_parse_empty_and_partial(self):
        assert FaultPlan.parse("") == FaultPlan()
        assert FaultPlan.parse("transfer=0.5").transfer_fail_rate == 0.5

    @pytest.mark.parametrize("spec", ["bogus=1", "transfer", "transfer=lots"])
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)

    def test_describe_lists_non_defaults_only(self):
        desc = FaultPlan(seed=9, transfer_fail_rate=0.2, deadline_s=30.0).describe()
        assert "transfer_fail_rate=0.2" in desc
        assert "deadline_s=30.0" in desc
        assert "swap_loss_rate" not in desc and "seed" not in desc


class TestFaultInjector:
    def test_requires_pools(self):
        with pytest.raises(ValueError):
            FaultInjector(FaultPlan(), pools=())

    def test_verdicts_are_counter_determined(self):
        """Re-examining the same (request, attempt) re-derives the same
        verdict — the schedule is independent of event interleaving."""
        plan = FaultPlan(seed=3, transfer_fail_rate=0.5, swap_loss_rate=0.5)
        a, b = FaultInjector(plan), FaultInjector(plan)
        for _ in range(6):
            assert a.transfer_fails(0, 10) == b.transfer_fails(0, 10)
            assert a.swap_lost(0, 10) == b.swap_lost(0, 10)

    def test_different_seeds_differ_somewhere(self):
        def verdicts(seed):
            inj = FaultInjector(FaultPlan(seed=seed, transfer_fail_rate=0.5))
            return [inj.transfer_fails(s, r) for s in range(4) for r in range(8)]

        assert any(verdicts(1) != verdicts(s) for s in range(2, 12))

    def test_transfer_fault_budget(self):
        """rate=1.0 injects exactly retries+1 faults, then goes exempt."""
        plan = FaultPlan(seed=0, transfer_fail_rate=1.0, max_transfer_retries=2)
        inj = FaultInjector(plan)
        fired = [inj.transfer_fails(0, 5) for _ in range(10)]
        assert fired == [True] * 3 + [False] * 7
        assert inj.transfer_faults_injected(5) == 3
        # budgets are per request
        assert inj.transfer_fails(0, 6)

    def test_swap_loss_budget(self):
        plan = FaultPlan(seed=0, swap_loss_rate=1.0)
        inj = FaultInjector(plan)
        fired = [inj.swap_lost(1, 7) for _ in range(5)]
        assert fired == [True] * _MAX_SWAP_LOSSES + [False] * (5 - _MAX_SWAP_LOSSES)

    def test_zero_rates_never_fire(self):
        inj = FaultInjector(FaultPlan(seed=0))
        assert not any(inj.transfer_fails(s, s) or inj.swap_lost(s, s)
                       for s in range(20))

    def test_reset_schedule_pre_drawn_and_fires_once(self):
        plan = FaultPlan(seed=5, pool_resets=3, pool_reset_window=10)
        pools = ("prefill", "decode")
        inj = FaultInjector(plan, pools=pools)
        schedule = inj.reset_schedule()
        assert len(schedule) == 3
        assert schedule == sorted(schedule)
        assert all(1 <= rnd <= 10 and pool in pools for rnd, pool in schedule)
        # identical plan -> identical schedule
        assert FaultInjector(plan, pools=pools).reset_schedule() == schedule
        # walking the rounds fires each reset exactly once, in order
        fired = []
        for rounds in range(12):
            fired.extend(inj.pool_resets_due(rounds))
        assert fired == [pool for _, pool in schedule]
        assert inj.pool_resets_due(100) == []


class TestDegradationLadder:
    def test_retries_backoff_then_fallback(self):
        """rate=1.0 transfers: each request burns its retries (metered
        with capped-exponential backoff), then one degraded re-prefill —
        and every request still finishes."""
        plan = FaultPlan(seed=1, transfer_fail_rate=1.0, max_transfer_retries=2,
                         backoff_base_s=0.5, backoff_cap_s=8.0)
        runtime = make_runtime(disaggregate=True, faults=plan)
        scripts = make_scripts(n=2, turns=1)
        submit_scripts_to_runtime(runtime, scripts)
        report = runtime.run(max_steps=200_000)
        assert report.statuses() == {"finished": 2}
        m = report.metrics
        # per turn: 2 retried faults + 1 fault that degrades
        assert m.transfer_faults == 3 * m.degraded_fallbacks
        assert m.fault_retries == 2 * m.degraded_fallbacks
        assert m.degraded_fallbacks >= 1
        # backoff seconds follow the capped-exponential schedule
        assert m.fault_backoff_s == pytest.approx(
            m.degraded_fallbacks * (plan.backoff(1) + plan.backoff(2))
        )
        for rec in report.records.values():
            assert rec.transfer_faults == 3

    def test_deadline_sheds_and_cascades(self):
        """A request past its deadline dies as ``timed_out`` and every
        later turn of its conversation cascades to ``shed``."""
        plan = FaultPlan(seed=1, deadline_s=0.5)
        runtime = make_runtime(faults=plan)
        scripts = make_scripts(n=2, turns=3)
        rids = submit_scripts_to_runtime(runtime, scripts, think_time_s=0.0)
        report = runtime.run(max_steps=200_000)
        statuses = report.statuses()
        assert statuses.get("timed_out", 0) >= 1
        for turn_rids in rids.values():
            states = [report.records[rid].state for rid in turn_rids]
            if RequestState.TIMED_OUT in states:
                first = states.index(RequestState.TIMED_OUT)
                assert all(s is RequestState.SHED for s in states[first + 1:])
        assert report.metrics.timeouts == statuses.get("timed_out", 0)
        assert not runtime.engine.kv_leak_report()

    def test_queue_backpressure_sheds_at_admission(self):
        """With the prefill queue at its cap, new arrivals are rejected
        before touching any engine state."""
        plan = FaultPlan(seed=1, max_queue_depth=1)
        runtime = make_runtime(faults=plan)
        scripts = make_scripts(n=6, turns=1, first_prompt=60)
        rids = submit_scripts_to_runtime(runtime, scripts, start_offset_s=0.0)
        report = runtime.run(max_steps=200_000)
        statuses = report.statuses()
        assert statuses.get("shed", 0) >= 1
        assert statuses.get("finished", 0) >= 1
        assert report.metrics.sheds == statuses["shed"]
        for turn_rids in rids.values():
            rec = report.records[turn_rids[0]]
            if rec.state is RequestState.SHED:
                assert rec.generated == []
                assert rec.admitted_at is None
        assert not runtime.engine.kv_leak_report()

    def test_pool_reset_requeues_and_finishes(self):
        plan = FaultPlan(seed=2, pool_resets=2, pool_reset_window=8)
        runtime = make_runtime(faults=plan, capacity=144)
        scripts = make_scripts(n=3, turns=2)
        submit_scripts_to_runtime(runtime, scripts)
        report = runtime.run(max_steps=200_000)
        assert report.statuses() == {"finished": 6}
        assert report.metrics.pool_resets == 2
        assert not runtime.engine.kv_leak_report()

    def test_decode_reset_with_retained_prefill_donor_still_drains(self):
        """Regression: a decode-pool reset preempting a request whose
        prefill-pool copy was retained *in full* as a prefix-cache donor
        used to wedge the run — the resident prefix covered the entire
        re-prefill input, so the zero-token FIFO entry never got a chunk
        and the runtime misreported "prefill-pool KV capacity exhausted"
        on an unbounded pool. The resume path must trim the donor copy to
        leave one finishing token and complete exactly."""
        from repro.workloads.generator import ConversationScript
        from repro.workloads.replay import replay_scripts_sequential

        scripts = [
            ConversationScript(
                seq_id=0,
                prompts=[
                    np.array([70, 55, 58, 42, 7, 65, 29, 12, 97, 21, 23, 68,
                              16, 3, 67, 70, 70, 11, 85, 69, 46, 81, 56, 37]),
                    np.array([96, 9, 6, 83]),
                ],
                response_budgets=[5, 2],
            ),
            ConversationScript(
                seq_id=1,
                prompts=[
                    np.array([78, 60, 52, 42, 100, 88, 23, 65, 65, 3, 7, 33,
                              42, 100, 95, 0, 84, 3, 92, 62, 70, 90, 18, 15,
                              88, 54, 98, 54, 81, 56, 85, 59, 52, 50, 6, 68,
                              38, 68, 71, 90, 100, 68, 61, 82]),
                    np.array([92, 21, 49, 85]),
                ],
                response_budgets=[3, 4],
            ),
        ]
        plan = FaultPlan(seed=5614, pool_resets=1, pool_reset_window=24,
                         backoff_base_s=0.5)
        runtime = ContinuousBatchingRuntime(
            ContextParallelEngine(MODEL, world_size=2),
            decode_engine=ContextParallelEngine(MODEL, world_size=2),
            policy=ChunkedPrefillPolicy(
                chunk_tokens=16, max_tokens_per_round=32, max_seqs_per_round=4
            ),
            preemption="recompute",
            prefix_cache=True,
            faults=plan,
        )
        rids = submit_scripts_to_runtime(runtime, scripts, think_time_s=0.0)
        report = runtime.run(max_steps=200_000)
        assert report.statuses() == {"finished": 4}
        assert report.metrics.pool_resets == 1
        reference = replay_scripts_sequential(
            lambda: ContextParallelEngine(LlamaModel(tiny_config(), seed=0), world_size=2),
            scripts,
        )
        for seq_id, turn_rids in rids.items():
            for i, rid in enumerate(turn_rids):
                assert list(report.generated(rid)) == list(reference[seq_id][i])
        assert not runtime.kv_leak_report()

    def test_inactive_plan_changes_nothing(self):
        """faults=FaultPlan() (all knobs off) is byte-for-byte the
        unfaulted runtime: same tokens, same timings, same metrics."""
        scripts = make_scripts()

        def run(faults):
            runtime = make_runtime(faults=faults)
            rids = submit_scripts_to_runtime(runtime, scripts)
            report = runtime.run(max_steps=200_000)
            return (
                {rid: report.generated(rid) for rr in rids.values() for rid in rr},
                report.makespan,
                report.metrics.summary(),
            )

        assert run(None) == run(FaultPlan())


class TestReportAndStatus:
    def test_record_status_values(self):
        for state in TERMINAL_STATES:
            req_state = RequestState(state.value)
            assert req_state.value in ("finished", "timed_out", "shed")
        rec_states = {s: s.value for s in TERMINAL_STATES}
        assert rec_states[RequestState.FINISHED] == "finished"

    def test_report_completed_statuses_goodput(self):
        plan = FaultPlan(seed=1, deadline_s=0.5)
        runtime = make_runtime(faults=plan)
        scripts = make_scripts(n=2, turns=2)
        submit_scripts_to_runtime(runtime, scripts, think_time_s=0.0)
        report = runtime.run(max_steps=200_000)
        statuses = report.statuses()
        assert sum(statuses.values()) == len(report.records)
        assert len(report.completed) == statuses.get("finished", 0)
        assert all(
            rec.state is RequestState.FINISHED for rec in report.completed.values()
        )
        want = (
            len(report.completed) / report.makespan if report.makespan > 0 else 0.0
        )
        assert report.goodput() == pytest.approx(want)
        assert report.metrics.goodput(report.makespan) == pytest.approx(want)

    def test_status_none_while_in_flight(self):
        runtime = make_runtime()
        scripts = make_scripts(n=1, turns=1)
        submit_scripts_to_runtime(runtime, scripts)
        runtime.step()
        (rec,) = runtime.report().records.values()
        assert rec.status is None
        runtime.run(max_steps=200_000)
        assert rec.status == "finished"


class TestFaultMetrics:
    def test_record_methods(self):
        m = ServingMetrics()
        m.record_transfer_fault(retried=True, backoff_s=0.5)
        m.record_transfer_fault(retried=False)
        m.record_swap_loss(32)
        m.record_pool_reset(100)
        m.record_degraded_fallback()
        m.record_timeout()
        m.record_shed()
        assert m.transfer_faults == 2
        assert m.fault_retries == 1
        assert m.fault_backoff_s == 0.5
        assert (m.swap_losses, m.swap_lost_tokens) == (1, 32)
        assert (m.pool_resets, m.pool_reset_evicted_tokens) == (1, 100)
        assert m.degraded_fallbacks == 1
        assert (m.timeouts, m.sheds) == (1, 1)

    def test_negative_backoff_rejected(self):
        with pytest.raises(ValueError):
            ServingMetrics().record_transfer_fault(retried=True, backoff_s=-1.0)

    def test_goodput_empty_safe(self):
        m = ServingMetrics()
        assert m.goodput(0.0) == 0.0
        assert m.goodput(-1.0) == 0.0
        from repro.serving.request import TurnRecord

        for _ in range(4):
            m.record_turn(
                TurnRecord(
                    seq_id=0, prompt_tokens=1, cached_tokens=0,
                    response_tokens=1, algo="pass-kv",
                )
            )
        assert m.goodput(2.0) == 2.0

    def test_summary_lines_only_when_faults_happened(self):
        clean = ServingMetrics().summary()
        assert "injected faults" not in clean
        assert "shed:" not in clean
        m = ServingMetrics()
        m.record_transfer_fault(retried=True, backoff_s=1.0)
        m.record_timeout()
        text = m.summary()
        assert "injected faults: 1 transfer" in text
        assert "shed: 1 timed out" in text
