"""Ablation: load-balanced 2N-chunk sharding vs naive contiguous sharding.

The design choice of §3.5.1: a ring step's wall time is set by the busiest
rank, so compute imbalance translates directly into lost scaling. This
ablation quantifies the per-rank causal-attention work spread for both
schemes and the implied slowdown (max-rank work over mean work).
"""

from __future__ import annotations

import numpy as np

from repro.core.sharding import causal_flops_per_rank, naive_flops_per_rank
from repro.core.sharding_striped import striped_flops_per_rank
from repro.experiments.base import ExperimentResult


def run(*, length: int = 131072, rank_counts: list[int] | None = None) -> ExperimentResult:
    rank_counts = rank_counts or [2, 4, 8, 16]
    res = ExperimentResult(
        experiment_id="Ablation: sharding",
        title=f"Causal-attention load imbalance at T={length}",
        headers=[
            "ranks",
            "balanced max/mean", "striped max/mean", "naive max/mean",
            "balanced slowdown %", "naive slowdown %",
        ],
    )
    for n in rank_counts:
        lb = causal_flops_per_rank(length, n)
        sp = striped_flops_per_rank(length, n)
        nv = naive_flops_per_rank(length, n)
        lb_ratio = float(lb.max() / lb.mean())
        sp_ratio = float(sp.max() / sp.mean())
        nv_ratio = float(nv.max() / nv.mean())
        res.add_row(
            n,
            lb_ratio,
            sp_ratio,
            nv_ratio,
            100 * (lb_ratio - 1),
            100 * (nv_ratio - 1),
        )
    res.notes.append(
        "Naive contiguous sharding overloads the last rank by up to "
        "~2x - N/(N+0.5)x mean work; 2N-chunk mirrored sharding is balanced "
        "to within a token. KV memory is balanced identically (same token "
        "counts), so max-context capacity scales with N only under the "
        "balanced scheme."
    )
    res.notes.append(
        "Striped (round-robin) sharding, the cited Striped Attention "
        "alternative, balances equally well; the paper's chunked layout is "
        "preferred for contiguous-block kernels and paged caches, not for "
        "balance."
    )
    return res


def imbalance(work: np.ndarray) -> float:
    """Max-over-mean work ratio: the ring-step slowdown factor."""
    return float(np.max(work) / np.mean(work))
