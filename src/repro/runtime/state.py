"""Per-request state machine records for the serving runtime.

Each conversation turn moves through::

    QUEUED --admit--> PREFILL --last chunk--> [KV_TRANSFER] --> DECODE --budget spent--> FINISHED
                         ^                         |              |
                         |________ PREEMPTED <-----+--------------/  (capacity pressure)

- **QUEUED**: submitted, waiting for arrival time and (for follow-up
  turns) the previous turn of the same conversation to finish.
- **PREFILL**: the turn's pending input is being committed chunk by chunk
  (each chunk a budget-bounded partial prefill). In a disaggregated
  runtime this always runs on the *prefill pool*.
- **KV_TRANSFER** (disaggregated runtimes only): prefill is complete and
  the turn's first token has streamed, but its committed KV is still in
  flight from the prefill pool to the decode pool over the
  :class:`repro.runtime.transfer.KVTransferStream`. Colocated runtimes
  skip this state entirely.
- **DECODE**: one token per decode round until ``max_new_tokens`` are
  generated *and committed* — like :class:`repro.serving.session
  .ChatSession`, the final token's KV is decoded into the cache so
  follow-up turns see an identical persistent state. Runs on the
  *decode pool* when disaggregated.
- **PREEMPTED**: evicted under KV capacity pressure (from either pool —
  a transfer in flight is cancelled); the request rejoins the prefill
  FIFO. Under the default *recompute* remedy all of the conversation's
  cache is dropped and the full committed history re-prefills exactly;
  under the *tail-trim* remedy only the newest KV is dropped, the
  resident prefix survives, and only the trimmed suffix re-prefills.
- **SWAPPED** (``--preemption swap`` runtimes only): the victim's KV was
  exported whole to a host-side store (priced at PCIe bandwidth by
  ``StepClock.price_swap``) instead of being dropped. The request waits
  off-engine; once the pool readmits it the KV is imported back and the
  request resumes exactly where it was — a decode victim re-enters
  DECODE with its pending sampled token, a prefill victim rejoins the
  prefill FIFO mid-chunk. No recompute happens in either direction.
- **FINISHED**: terminal — the turn completed its full decode budget.
- **TIMED_OUT** (fault-injection runtimes only): terminal — the request
  blew past its per-request deadline (``FaultPlan.deadline_s``) and was
  shed, along with every later turn of its conversation.
- **SHED** (fault-injection runtimes only): terminal — rejected by
  queue-depth backpressure at admission, or cascaded from an earlier
  turn of the same conversation being shed/timed out. Shed requests
  release all of the conversation's KV; their partial token streams are
  not part of the serving-exactness contract (only ``FINISHED``
  requests are compared against sequential replay).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np


class RequestState(enum.Enum):
    """Lifecycle states of a turn inside the runtime."""

    QUEUED = "queued"
    PREFILL = "prefill"
    KV_TRANSFER = "kv_transfer"
    DECODE = "decode"
    PREEMPTED = "preempted"
    SWAPPED = "swapped"
    FINISHED = "finished"
    TIMED_OUT = "timed_out"
    SHED = "shed"


#: Terminal states a request can end in. Only FINISHED counts as
#: *completed* — the population the serving-exactness property compares
#: against sequential replay and the goodput metric counts.
TERMINAL_STATES = (RequestState.FINISHED, RequestState.TIMED_OUT, RequestState.SHED)


@dataclass(eq=False)
class TurnRequest:
    """One conversation turn submitted to the runtime.

    Attributes:
        request_id: unique id across the runtime (assigned at submit when
            negative).
        seq_id: conversation id; turns with the same seq_id run in submit
            order over one persistent KV stream.
        prompt: the turn's new prompt tokens.
        max_new_tokens: decode budget for the response.
        arrival: earliest start time in simulated seconds (follow-up turns
            additionally wait for their predecessor to finish).
        last_turn: release the conversation's KV when this turn finishes.
    """

    request_id: int
    seq_id: int
    prompt: np.ndarray
    max_new_tokens: int
    arrival: float = 0.0
    last_turn: bool = True

    def __post_init__(self) -> None:
        self.prompt = np.asarray(self.prompt, dtype=np.int64)
        if self.prompt.ndim != 1 or self.prompt.size == 0:
            raise ValueError(f"request {self.request_id}: prompt must be non-empty 1-D")
        if self.max_new_tokens < 0:
            raise ValueError("max_new_tokens must be >= 0")
        if self.arrival < 0:
            raise ValueError("arrival must be >= 0")


@dataclass(eq=False)
class RequestRecord:
    """Runtime bookkeeping and streaming metrics for one turn.

    Attributes:
        request: the submitted turn.
        state: current lifecycle state.
        pending_input: tokens still to be prefilled before decode can
            (re)start. Initially the turn's prompt; after a preemption it
            is rebuilt as the conversation's full committed history.
        prefill_done: how many tokens of ``pending_input`` are committed.
        generated: decoded token ids (the last one may not yet have its KV
            committed — it is the next decode round's input).
        resample_on_prefill: whether finishing the prefill should sample a
            fresh first token (normal path) or resume with the already
            sampled ``generated[-1]`` (post-preemption path).
        cached_at_start: persistent KV length when the turn started
            (the ``P`` of its first prefill chunk; in a disaggregated
            runtime, the decode pool's resident KV the transfer machinery
            preserved), for miss-rate records.
        ready_at: earliest simulated time the request may occupy a
            prefill round — its arrival, or the (decode-pool) time of the
            eviction that sent it back to the prefill FIFO. Keeps the two
            pool clocks causally consistent.
        swapped_from: while ``state`` is SWAPPED, the state to resume
            into once the KV swaps back in (DECODE resumes decoding with
            the pending token; anything else rejoins the prefill FIFO).
        prefix_eligible: this admission consulted the radix prefix cache
            (a fresh stream on a prefix-cache-enabled runtime), so its
            TTFT files into the warm or cold bucket.
        prefix_hit: the admission adopted a cached shared prefix.
        prefix_shared: tokens of the adopted shared prefix still counted
            resident — the floor the tail-trim remedy must respect (a
            pinned shared prefix is never trimmed; full eviction resets
            this to 0 along with the residency it describes).
        prefix_donor: the donor sequence pinned in the index for this
            request's lifetime (unpinned at finish).
        preemptions: times this turn was evicted (any remedy: recompute,
            tail-trim, or swap).
        transfer_faults: injected mid-stream KV-transfer failures this
            turn absorbed (retries plus a possible re-prefill fallback).
        chunk_algos: planner decision per executed prefill chunk.
        admitted_at / first_token_at / finished_at: simulated timestamps.
        token_times: simulated emission time of every generated token
            (``token_times[0]`` is the TTFT sample point).
    """

    request: TurnRequest
    state: RequestState = RequestState.QUEUED
    pending_input: np.ndarray | None = None
    prefill_done: int = 0
    generated: list[int] = field(default_factory=list)
    resample_on_prefill: bool = True
    cached_at_start: int = 0
    ready_at: float = 0.0
    swapped_from: "RequestState | None" = None
    prefix_eligible: bool = False
    prefix_hit: bool = False
    prefix_shared: int = 0
    prefix_donor: int | None = None
    preemptions: int = 0
    transfer_faults: int = 0
    chunk_algos: list[str] = field(default_factory=list)
    admitted_at: float | None = None
    first_token_at: float | None = None
    finished_at: float | None = None
    token_times: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.pending_input is None:
            self.pending_input = np.asarray(self.request.prompt, dtype=np.int64)

    # ------------------------------- views ------------------------------ #

    @property
    def request_id(self) -> int:
        return self.request.request_id

    @property
    def seq_id(self) -> int:
        return self.request.seq_id

    @property
    def prefill_remaining(self) -> int:
        return int(self.pending_input.size) - self.prefill_done

    @property
    def status(self) -> str | None:
        """Terminal outcome: ``"finished"`` / ``"timed_out"`` /
        ``"shed"``, or ``None`` while the request is still in flight.
        Callers should branch on this, not on token counts — a shed
        request may have streamed a partial response before dying."""
        if self.state in TERMINAL_STATES:
            return self.state.value
        return None

    @property
    def ttft(self) -> float:
        """Arrival to first decoded token (nan until it happens)."""
        if self.first_token_at is None:
            return float("nan")
        return self.first_token_at - self.request.arrival

    def ttit_samples(self) -> list[float]:
        """Inter-token gaps of the streamed response."""
        return [b - a for a, b in zip(self.token_times, self.token_times[1:])]
