"""Table 6: TTFT / TTIT for TP8 vs CP2+TP8 across context lengths.

The reproduced trade-off: CP2 roughly halves prefill TTFT at every length
while decode TTIT regresses (~45 ms -> ~65 ms), because decode is weight-
streaming bound (not parallelized by CP) plus ring/All2All latency.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.model.config import llama3_405b_config
from repro.perf.hardware import HostSpec, gtt_host
from repro.perf.latency import LatencySimulator
from repro.workloads.traces import TABLE6_CONTEXT_LENGTHS

#: Paper Table 6 (ms): context -> (tp8_ttft, tp8_ttit, cp2_ttft, cp2_ttit)
PAPER_TABLE6 = {
    8192: (1740, 44.51, 999, 65.61),
    32768: (7658, 44.64, 4015, 65.66),
    131072: (42010, 46.26, 21042, 66.63),
}


def run(host: HostSpec | None = None) -> ExperimentResult:
    host = host if host is not None else gtt_host()
    sim = LatencySimulator(llama3_405b_config(), host)

    res = ExperimentResult(
        experiment_id="Table 6",
        title="TTFT / TTIT (ms): TP8 vs CP2+TP8, batch 1",
        headers=[
            "context",
            "TP8 TTFT", "TP8 TTIT", "CP2 TTFT", "CP2 TTIT",
            "paper TP8 TTFT", "paper CP2 TTFT",
        ],
    )
    for ctx in TABLE6_CONTEXT_LENGTHS:
        tp_ttft = sim.tp_prefill(ctx, n_nodes=1).total * 1e3
        tp_ttit = sim.tp_decode(ctx, n_nodes=1).total * 1e3
        cp_ttft = sim.cp_prefill(ctx, n_ranks=2).total * 1e3
        cp_ttit = sim.cp_decode(ctx, n_ranks=2).total * 1e3
        paper = PAPER_TABLE6[ctx]
        res.add_row(ctx, tp_ttft, tp_ttit, cp_ttft, cp_ttit, paper[0], paper[2])
    res.notes.append(
        "TTIT is nearly flat in context for both configurations (weight "
        "streaming dominates); CP halves TTFT at the cost of ~20 ms TTIT."
    )
    return res
