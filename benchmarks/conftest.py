"""Benchmark harness configuration.

Run with::

    pytest benchmarks/ --benchmark-only

Each ``bench_*`` file either regenerates one paper table/figure via
:mod:`repro.experiments` or times the numeric substrate itself
(``bench_numeric_kernels.py``), using pytest-benchmark. The regenerated
rows are printed (use ``-s`` to see them inline; they are also echoed into
the benchmark's ``extra_info``).

``--smoke`` caps every benchmark at a single round so CI can import- and
run-check the benchmark files without paying for statistics
(``python -m pytest benchmarks --benchmark-only -q --smoke``).
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="run each benchmark for a single round (import/run check only)",
    )


@pytest.hookimpl(tryfirst=True)
def pytest_configure(config):
    # Must run before pytest-benchmark's own pytest_configure builds its
    # session from these options (conftest hooks are called first).
    if config.getoption("--smoke"):
        config.option.benchmark_min_rounds = 1
        config.option.benchmark_max_time = "0.000001"
        # Post-argparse override: must be the parsed value (bool), not the
        # CLI string "off", which pytest-benchmark would treat as truthy.
        config.option.benchmark_warmup = False


def emit(benchmark, result) -> None:
    """Attach a rendered experiment table to the benchmark record and print it."""
    text = result.render()
    print("\n" + text + "\n")
    benchmark.extra_info["experiment"] = result.experiment_id
    benchmark.extra_info["rows"] = len(result.rows)


@pytest.fixture
def paper_table():
    """Helper printing + annotating experiment results."""
    return emit
