"""Property tests: the fused grouped-head flash kernel matches the reference.

"Bit-compatible" here is the library's established contract (see
``tests/attention/test_flash.py``): agreement to ``atol=1e-12, rtol=0`` in
float64 — the only remaining slack being last-ulp BLAS kernel-selection
differences and the online-softmax fold — plus *exact* structural equality
of the masked/empty pattern (which tokens have ``LSE = -inf`` and zero
output). The properties sweep GQA ratios, block sizes, ``num_kv_splits``,
permuted positions, padded fused batches, windowed ``mask_fn`` and
empty/all-masked shards, and pin the fused kernel against the
fully-materialized reference oracle under the Flash-Decoding split-KV
recurrence and the ``skip_masked_blocks`` A/B knob. (The legacy
``fused=False`` expand path these properties originally cross-checked has
been retired; the reference kernel is the remaining independent oracle.)
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attention.flash import flash_attention
from repro.attention.masks import PAD_SEQ
from repro.attention.reference import reference_attention_with_lse
from repro.attention.windowed import windowed_attention_mask_fn

SETTINGS = dict(max_examples=25, deadline=None)


@st.composite
def gqa_case(draw):
    """Random GQA attention problem spanning the layouts the rings produce."""
    seed = draw(st.integers(0, 2**31 - 1))
    n_kv = draw(st.sampled_from([1, 2]))
    ratio = draw(st.sampled_from([1, 4, 16]))
    nh = n_kv * ratio
    dh = draw(st.sampled_from([4, 8]))
    tq = draw(st.integers(1, 30))
    tk = draw(st.integers(1, 48))
    layout = draw(st.sampled_from(["dense", "permuted", "padded"]))
    masking = draw(st.sampled_from(["causal", "windowed"]))
    rng = np.random.default_rng(seed)
    q = rng.standard_normal((tq, nh, dh))
    k = rng.standard_normal((tk, n_kv, dh))
    v = rng.standard_normal((tk, n_kv, dh))
    if layout == "dense":
        q_pos, k_pos = np.arange(tq), np.arange(tk)
        q_seq = k_seq = None
    elif layout == "permuted":
        q_pos = rng.integers(0, 40, tq)
        k_pos = rng.integers(0, 40, tk)
        q_seq = rng.integers(0, 3, tq)
        k_seq = rng.integers(0, 3, tk)
    else:  # padded fused batch: PAD_SEQ rows must never attend / be attended
        q_pos = rng.integers(0, 40, tq)
        k_pos = rng.integers(0, 40, tk)
        q_seq = rng.integers(PAD_SEQ, 2, tq)
        k_seq = rng.integers(PAD_SEQ, 2, tk)
    mask_fn = (
        windowed_attention_mask_fn(
            int(rng.integers(1, 16)), sink_tokens=int(rng.integers(0, 3))
        )
        if masking == "windowed"
        else None
    )
    coords = dict(q_pos=q_pos, k_pos=k_pos, q_seq=q_seq, k_seq=k_seq, mask_fn=mask_fn)
    block_size = draw(st.integers(1, tk + 3))
    splits = draw(st.integers(1, 5))
    return q, k, v, coords, block_size, splits


def _assert_matches(res, ref_out, ref_lse):
    np.testing.assert_allclose(res.out, ref_out, atol=1e-12, rtol=0)
    np.testing.assert_allclose(res.lse, ref_lse, atol=1e-12, rtol=0)
    # The masked/empty structure must agree exactly, not just within tol.
    empty = np.isneginf(ref_lse)
    assert np.array_equal(np.isneginf(res.lse), empty)
    assert np.all(res.out[empty] == 0.0)


class TestFusedMatchesReference:
    @given(gqa_case())
    @settings(**SETTINGS)
    def test_blocked_fused_matches_reference(self, case):
        q, k, v, coords, block_size, splits = case
        ref_out, ref_lse = reference_attention_with_lse(q, k, v, **coords)
        res = flash_attention(q, k, v, block_size=block_size, num_kv_splits=splits, **coords)
        _assert_matches(res, ref_out, ref_lse)

    @given(gqa_case())
    @settings(**SETTINGS)
    def test_single_block_fused_matches_reference(self, case):
        """One block, one split: the fused kernel is the reference kernel
        modulo the grouped-head layout (no online-softmax fold involved)."""
        q, k, v, coords, _, _ = case
        ref_out, ref_lse = reference_attention_with_lse(q, k, v, **coords)
        res = flash_attention(q, k, v, block_size=k.shape[0] + 1, **coords)
        _assert_matches(res, ref_out, ref_lse)

    @given(gqa_case())
    @settings(**SETTINGS)
    def test_split_invariance(self, case):
        """Any split-KV count folds to the same result (the recurrence the
        retired expand path used to cross-check)."""
        q, k, v, coords, block_size, splits = case
        a = flash_attention(q, k, v, block_size=block_size, num_kv_splits=1, **coords)
        b = flash_attention(q, k, v, block_size=block_size, num_kv_splits=splits, **coords)
        _assert_matches(a, b.out, b.lse)

    @given(gqa_case())
    @settings(**SETTINGS)
    def test_block_skip_is_pure_execution_strategy(self, case):
        """skip_masked_blocks changes which BLAS calls run, not the result."""
        q, k, v, coords, block_size, splits = case
        a = flash_attention(q, k, v, block_size=block_size, num_kv_splits=splits, **coords)
        b = flash_attention(
            q, k, v, block_size=block_size, num_kv_splits=splits,
            skip_masked_blocks=False, **coords,
        )
        _assert_matches(a, b.out, b.lse)

    @given(gqa_case())
    @settings(**SETTINGS)
    def test_fp32_compute_fp64_merge(self, case):
        """float32 kernel compute with float64 merge accumulation stays
        within float32 resolution of the exact fp64 result."""
        q, k, v, coords, block_size, splits = case
        ref_out, ref_lse = reference_attention_with_lse(q, k, v, **coords)
        res = flash_attention(
            q, k, v, block_size=block_size, num_kv_splits=splits,
            compute_dtype=np.float32, **coords,
        )
        np.testing.assert_allclose(res.out, ref_out, atol=1e-4, rtol=1e-4)
        np.testing.assert_allclose(res.lse, ref_lse, atol=1e-4, rtol=1e-4)
        assert np.array_equal(np.isneginf(res.lse), np.isneginf(ref_lse))
        # merge accumulators stay float64 regardless of compute dtype
        assert res.out.dtype == np.float64


class TestDegenerateShards:
    @pytest.mark.parametrize("ratio", [1, 4, 16])
    def test_gqa_ratio_explicit(self, ratio):
        rng = np.random.default_rng(ratio)
        nh, nkv = ratio, 1
        q = rng.standard_normal((12, nh, 8))
        k = rng.standard_normal((20, nkv, 8))
        v = rng.standard_normal((20, nkv, 8))
        ref_out, ref_lse = reference_attention_with_lse(q, k, v, q_pos=np.arange(8, 20))
        res = flash_attention(q, k, v, q_pos=np.arange(8, 20), block_size=7)
        _assert_matches(res, ref_out, ref_lse)

    def test_all_pad_kv_shard(self):
        rng = np.random.default_rng(0)
        q = rng.standard_normal((5, 4, 8))
        k = rng.standard_normal((9, 2, 8))
        v = rng.standard_normal((9, 2, 8))
        k_seq = np.full(9, PAD_SEQ)
        res = flash_attention(q, k, v, k_seq=k_seq, block_size=4)
        assert np.all(res.out == 0)
        assert np.all(np.isneginf(res.lse))

    def test_fully_masked_disjoint_sequences(self):
        rng = np.random.default_rng(1)
        q = rng.standard_normal((6, 4, 8))
        k = rng.standard_normal((6, 2, 8))
        v = rng.standard_normal((6, 2, 8))
        res = flash_attention(
            q, k, v,
            q_seq=np.zeros(6, dtype=np.int64), k_seq=np.ones(6, dtype=np.int64),
            block_size=2,
        )
        assert np.all(res.out == 0)
        assert np.all(np.isneginf(res.lse))

    def test_empty_kv_and_empty_queries(self):
        rng = np.random.default_rng(2)
        q = rng.standard_normal((3, 4, 8))
        res = flash_attention(q, np.zeros((0, 2, 8)), np.zeros((0, 2, 8)))
        assert res.out.shape == (3, 4, 8) and np.all(np.isneginf(res.lse))
        res = flash_attention(np.zeros((0, 4, 8)), np.zeros((5, 2, 8)), np.zeros((5, 2, 8)))
        assert res.out.shape == (0, 4, 8)
