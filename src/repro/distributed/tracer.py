"""Communication/compute event tracing for the simulated runtime.

The tracer is the bridge between the *numeric* simulation (real tensors
moving between ranks) and the *performance* simulation (the roofline model
of :mod:`repro.perf`): every collective reports its logical wire bytes here,
and ring drivers report per-step compute so overlap can be reasoned about
after the fact — the same way the paper inspects GPU traces (§4.2.1, Table 5).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True)
class CommEvent:
    """One traced event.

    Attributes:
        kind: event class, e.g. ``"sendrecv"``, ``"all2all"``, ``"allgather"``,
            ``"allreduce"``, ``"attn"`` (compute events use bytes=0).
        step: ring iteration or logical step index, -1 when not applicable.
        bytes: logical wire bytes moved by the busiest rank.
        duration: simulated seconds for the event (alpha-beta model).
        tag: free-form label (e.g. layer index or algorithm name).
    """

    kind: str
    step: int
    bytes: int
    duration: float
    tag: str = ""


@dataclass
class CommTracer:
    """Accumulates :class:`CommEvent` records and aggregate statistics."""

    events: list[CommEvent] = field(default_factory=list)

    def record(self, kind: str, *, step: int = -1, nbytes: int = 0, duration: float = 0.0, tag: str = "") -> CommEvent:
        event = CommEvent(kind=kind, step=step, bytes=int(nbytes), duration=float(duration), tag=tag)
        self.events.append(event)
        return event

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[CommEvent]:
        return iter(self.events)

    def total_bytes(self, kind: str | None = None) -> int:
        """Sum of logical bytes over events, optionally filtered by kind."""
        return sum(e.bytes for e in self.events if kind is None or e.kind == kind)

    def total_duration(self, kind: str | None = None) -> float:
        """Sum of simulated durations, optionally filtered by kind."""
        return sum(e.duration for e in self.events if kind is None or e.kind == kind)

    def count(self, kind: str | None = None) -> int:
        return sum(1 for e in self.events if kind is None or e.kind == kind)

    def bytes_by_kind(self) -> dict[str, int]:
        agg: dict[str, int] = defaultdict(int)
        for e in self.events:
            agg[e.kind] += e.bytes
        return dict(agg)

    def summary(self) -> str:
        """Human-readable per-kind aggregate table."""
        agg_bytes = self.bytes_by_kind()
        lines = [f"{'kind':<12} {'count':>6} {'bytes':>14} {'seconds':>10}"]
        for kind in sorted(agg_bytes):
            lines.append(
                f"{kind:<12} {self.count(kind):>6} {agg_bytes[kind]:>14} "
                f"{self.total_duration(kind):>10.6f}"
            )
        return "\n".join(lines)
