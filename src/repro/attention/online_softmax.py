"""Streaming (online) softmax accumulation.

This is the numerical core shared by the blocked flash-style kernel and by
merge attention (paper Appendix B). Given partial attention results computed
against disjoint key/value chunks, each carrying a log-sum-exp (LSE), the
exact attention over the union of the chunks is recovered by LSE-weighted
averaging — Equation (4) of the paper:

    O = sum_s O_s * exp(LSE_s - LSE_max) / sum_s exp(LSE_s - LSE_max)

The accumulator below implements the same recurrence incrementally so a ring
loop can fold in one partial result per iteration with O(1) extra memory,
exactly as the production system merges per-ring-step partials. All running
buffers (and the scratch used to stage each fold) are allocated once in the
constructor; ``update`` works strictly in place, so a ring loop folding N
partials performs zero per-fold array allocation on the accumulator side.

Empty partials are represented by ``LSE = -inf`` and ``O = 0`` and are
absorbed as identity elements, which is what a causal shard with no visible
keys produces. ``update`` detects this case up front and returns without
touching the accumulators — the fast path that makes shard-level masked-step
skipping in the ring algorithms nearly free.
"""

from __future__ import annotations

import numpy as np


class OnlineSoftmaxState:
    """Incremental merge state for partial attention outputs.

    The state tracks, per (token, head): the running max LSE ``m``, the
    running denominator ``denom = sum_s exp(LSE_s - m)`` and the running
    numerator ``acc = sum_s O_s * exp(LSE_s - m)``. ``finalize`` returns
    ``acc / denom`` and the combined LSE ``m + log(denom)``.

    All arithmetic is done in float64 regardless of input dtype so that the
    "lossless exact" property of the ring algorithms is limited only by the
    final cast. Partials computed in a lower precision (e.g. ``float32``
    kernel compute) are promoted element-wise during the fold, giving the
    fp32-compute / fp64-merge-accumulate split without extra copies.
    """

    def __init__(self, out_shape: tuple[int, ...], lse_shape: tuple[int, ...]):
        if out_shape[: len(lse_shape)] != lse_shape:
            raise ValueError(f"lse shape {lse_shape} must prefix output shape {out_shape}")
        self._acc = np.zeros(out_shape, dtype=np.float64)
        self._m = np.full(lse_shape, -np.inf, dtype=np.float64)
        self._denom = np.zeros(lse_shape, dtype=np.float64)
        # Scratch reused by every update(): one out-shaped staging buffer for
        # the scaled incoming partial plus three lse-shaped work arrays.
        self._scaled_out = np.empty(out_shape, dtype=np.float64)
        self._new_m = np.empty(lse_shape, dtype=np.float64)
        self._old_scale = np.empty(lse_shape, dtype=np.float64)
        self._new_scale = np.empty(lse_shape, dtype=np.float64)

    @property
    def max_lse(self) -> np.ndarray:
        """Running maximum LSE (read-only view)."""
        return self._m

    def update(self, partial_out: np.ndarray, partial_lse: np.ndarray) -> None:
        """Fold one partial attention result into the state, in place.

        Args:
            partial_out: ``[..., DH]`` partial output ``O_s``.
            partial_lse: ``[...]`` log-sum-exp of the partial scores.
        """
        partial_out = np.asarray(partial_out)
        partial_lse = np.asarray(partial_lse)
        if partial_out.shape != self._acc.shape:
            raise ValueError(f"partial out shape {partial_out.shape} != {self._acc.shape}")
        if partial_lse.shape != self._m.shape:
            raise ValueError(f"partial lse shape {partial_lse.shape} != {self._m.shape}")

        # Fast path: an empty partial (all LSE = -inf, e.g. a fully-masked
        # causal shard) is the identity element of the recurrence.
        if np.all(np.isneginf(partial_lse)):
            return

        new_m = np.maximum(self._m, partial_lse, out=self._new_m)
        # Identity when both sides are empty (-inf): keep zeros. ``safe_m``
        # is always finite, so ``x - safe_m`` is -inf exactly when x is.
        safe_m = np.where(np.isinf(new_m), 0.0, new_m)
        np.subtract(self._m, safe_m, out=self._old_scale)
        np.exp(self._old_scale, out=self._old_scale)
        np.subtract(partial_lse, safe_m, out=self._new_scale)
        np.exp(self._new_scale, out=self._new_scale)
        self._acc *= self._old_scale[..., None]
        np.multiply(partial_out, self._new_scale[..., None], out=self._scaled_out)
        self._acc += self._scaled_out
        self._denom *= self._old_scale
        self._denom += self._new_scale
        # new_m lives in the _new_m scratch; swap it in rather than copying.
        self._m, self._new_m = self._new_m, self._m

    def finalize(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(O, LSE)`` for the union of all folded partials.

        Tokens that never saw a valid key come back as zero output with
        ``LSE = -inf`` (matching the empty-partial convention).
        """
        with np.errstate(invalid="ignore", divide="ignore"):
            out = np.where(self._denom[..., None] > 0, self._acc / np.where(self._denom == 0.0, 1.0, self._denom)[..., None], 0.0)
            lse = np.where(self._denom > 0, self._m + np.log(np.where(self._denom == 0.0, 1.0, self._denom)), -np.inf)
        return out, lse
