"""Tests for the prefill planner."""

import pytest

from repro.core.heuristics import RingAlgo
from repro.core.planner import PrefillPlanner, SelectorKind
from repro.core.sharding import SequenceSpec

from test_heuristics import llama405b_cp4_config


class TestPlannerWithHeuristic:
    def test_full_prefill_plan(self):
        planner = PrefillPlanner(llama405b_cp4_config())
        plan = planner.plan([SequenceSpec(0, 128000)])
        assert plan.algo is RingAlgo.PASS_KV
        assert plan.miss_rate == 1.0
        assert not plan.forced

    def test_high_hit_rate_plan(self):
        planner = PrefillPlanner(llama405b_cp4_config())
        plan = planner.plan([SequenceSpec(0, 1280, 126720)])
        assert plan.algo is RingAlgo.PASS_Q

    def test_batch_aggregation(self):
        """T and P aggregate across the fused batch."""
        planner = PrefillPlanner(llama405b_cp4_config())
        specs = [SequenceSpec(0, 640, 63360), SequenceSpec(1, 640, 63360)]
        plan = planner.plan(specs)
        assert plan.new_tokens == 1280
        assert plan.cached_tokens == 126720
        assert plan.miss_rate == pytest.approx(0.01)

    def test_selector_kinds_differ_at_boundary(self):
        t, p = 4160, 123840  # the 3.25% row where Alg 1 and Alg 5 disagree
        simple = PrefillPlanner(llama405b_cp4_config(), selector=SelectorKind.SIMPLE)
        refined = PrefillPlanner(llama405b_cp4_config(), selector=SelectorKind.ALL2ALL_AWARE)
        assert simple.plan([SequenceSpec(0, t, p)]).algo is RingAlgo.PASS_Q
        assert refined.plan([SequenceSpec(0, t, p)]).algo is RingAlgo.PASS_KV

    def test_force_override(self):
        planner = PrefillPlanner(llama405b_cp4_config())
        plan = planner.plan([SequenceSpec(0, 128000)], force_algo=RingAlgo.PASS_Q)
        assert plan.algo is RingAlgo.PASS_Q
        assert plan.forced


class TestPlannerFallback:
    def test_no_heuristic_full_prefill(self):
        planner = PrefillPlanner(None)
        plan = planner.plan([SequenceSpec(0, 64)])
        assert plan.algo is RingAlgo.PASS_KV

    def test_no_heuristic_high_hit_rate(self):
        planner = PrefillPlanner(None)
        plan = planner.plan([SequenceSpec(0, 4, 396)])  # 1% miss
        assert plan.algo is RingAlgo.PASS_Q

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            PrefillPlanner(None).plan([])

    def test_zero_new_tokens_rejected(self):
        with pytest.raises(ValueError):
            PrefillPlanner(None).plan([SequenceSpec(0, 0, 10)])
