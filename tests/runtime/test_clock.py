"""Tests for the runtime step clocks."""

import pytest

from repro.model.config import llama3_405b_config
from repro.perf.hardware import gtt_host
from repro.perf.latency import LatencySimulator
from repro.runtime.clock import SimulatedStepClock, UnitStepClock


class TestUnitStepClock:
    def test_fixed_costs(self):
        c = UnitStepClock(prefill_cost=2.0, decode_cost=0.5)
        assert c.price_prefill([(16, 0), (16, 32)]) == 2.0
        assert c.price_decode([100, 200]) == 0.5

    def test_rejects_empty_rounds(self):
        c = UnitStepClock()
        with pytest.raises(ValueError):
            c.price_prefill([])
        with pytest.raises(ValueError):
            c.price_decode([])

    def test_validation(self):
        with pytest.raises(ValueError):
            UnitStepClock(prefill_cost=0.0)


class TestSimulatedStepClock:
    def setup_method(self):
        self.sim = LatencySimulator(llama3_405b_config(), gtt_host())
        self.clock = SimulatedStepClock(self.sim, n_ranks=4)

    def test_prefill_matches_latency_model(self):
        got = self.clock.price_prefill([(4096, 0)])
        want = self.sim.cp_prefill(4096, 0, n_ranks=4).total
        assert got == pytest.approx(want)

    def test_fused_round_priced_at_deepest_cache(self):
        got = self.clock.price_prefill([(1024, 0), (1024, 65536)])
        want = self.sim.cp_prefill(2048, 65536, n_ranks=4).total
        assert got == pytest.approx(want)

    def test_decode_paced_by_longest_context(self):
        got = self.clock.price_decode([8192, 131072])
        want = self.sim.cp_decode(131072, batch=2, n_ranks=4).total
        assert got == pytest.approx(want)

    def test_more_new_tokens_cost_more(self):
        assert self.clock.price_prefill([(8192, 0)]) > self.clock.price_prefill([(1024, 0)])

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulatedStepClock(self.sim, n_ranks=0)
