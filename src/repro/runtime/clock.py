"""Simulated step-time pricing for the serving runtime.

The runtime's engine rounds are numerically real but wall-clock meaningless
(tiny NumPy models), so request latencies are accounted in *simulated*
seconds: every executed round advances a clock by a priced duration. Two
pricers:

- :class:`UnitStepClock` — every round costs a fixed amount. Deterministic
  and model-free; the default for tests.
- :class:`SimulatedStepClock` — rounds are priced by the calibrated
  :class:`repro.perf.latency.LatencySimulator` for a *modeled* deployment
  (e.g. Llama3 405B on GTT hosts), independent of the tiny model actually
  producing the tokens. This is the same numerics-at-test-scale /
  latency-at-paper-scale split the rest of the repository uses: the
  runtime exercises real scheduling and exact attention, while TTFT/TTIT
  land in the regime the paper reports (§4.3).

Pricing conventions (documented approximations):

- A fused prefill round with per-sequence ``(T_i, P_i)`` chunks is priced
  as one varseq round of ``sum(T_i)`` new tokens against the *deepest*
  cached context ``max(P_i)`` — the same max-pacing convention the
  discrete-event simulator uses for decode rounds.
- A decode round is priced at the batched CP decode TTIT of the longest
  context in the batch (or single-host TP TTIT when the clock prices a
  dedicated decode pool, §4.3).
- A pool-to-pool KV transfer of ``n`` tokens is priced at full-stream
  bandwidth cost (``n * kv_bytes_per_token / ring_bandwidth`` for the
  calibrated clock); the disaggregated runtime overlaps it with compute
  explicitly instead of the analytic model's ``1/n_layers`` exposure
  approximation.
- A CPU-side KV swap of ``n`` tokens (the runtime's ``--preemption swap``
  remedy: DMA the victim's KV to host DRAM instead of recomputing it) is
  priced at PCIe-bandwidth cost (``n * kv_bytes_per_token /
  pcie_bandwidth`` for the calibrated clock), charged once per direction.
  The swapping pool stalls for the DMA — the honest price DistServe /
  Mooncake-class systems pay for trading HBM against host memory.
- Fault-retry backoff delays (:meth:`repro.runtime.faults.FaultPlan
  .backoff`) are raw simulated seconds added to a rescheduled
  transfer's requested time — they are wall-style waiting, not priced
  work, so neither clock is consulted for them.
"""

from __future__ import annotations

from repro.perf.latency import LatencySimulator


class UnitStepClock:
    """Fixed-cost pricing: deterministic, model-free.

    Args:
        prefill_cost: simulated seconds per prefill round.
        decode_cost: simulated seconds per decode round.
        transfer_cost: simulated seconds per (non-empty) pool-to-pool KV
            transfer; zero-token transfers are free.
        swap_cost: simulated seconds per (non-empty) device<->host KV
            swap direction; zero-token swaps are free.
    """

    def __init__(
        self,
        *,
        prefill_cost: float = 1.0,
        decode_cost: float = 1.0,
        transfer_cost: float = 1.0,
        swap_cost: float = 1.0,
    ):
        if prefill_cost <= 0 or decode_cost <= 0:
            raise ValueError("round costs must be > 0")
        if transfer_cost < 0:
            raise ValueError("transfer_cost must be >= 0")
        if swap_cost < 0:
            raise ValueError("swap_cost must be >= 0")
        self.prefill_cost = prefill_cost
        self.decode_cost = decode_cost
        self.transfer_cost = transfer_cost
        self.swap_cost = swap_cost

    def price_prefill(self, chunks: list[tuple[int, int]]) -> float:
        """Cost of one fused prefill round of ``[(T_i, P_i), ...]`` chunks."""
        if not chunks:
            raise ValueError("cannot price an empty prefill round")
        return self.prefill_cost

    def price_decode(self, contexts: list[int]) -> float:
        """Cost of one decode round over the given per-sequence contexts."""
        if not contexts:
            raise ValueError("cannot price an empty decode round")
        return self.decode_cost

    def price_transfer(self, tokens: int) -> float:
        """Cost of streaming ``tokens`` of KV between pools."""
        if tokens < 0:
            raise ValueError(f"tokens must be >= 0, got {tokens}")
        return self.transfer_cost if tokens else 0.0

    def price_swap(self, tokens: int) -> float:
        """Cost of moving ``tokens`` of KV one way across the host bus."""
        if tokens < 0:
            raise ValueError(f"tokens must be >= 0, got {tokens}")
        return self.swap_cost if tokens else 0.0


class SimulatedStepClock:
    """Calibrated pricing through the analytic latency model.

    Args:
        sim: latency model for the deployment being simulated.
        n_ranks: CP pool size the prices assume (need not equal the
            numeric engine's world size — numerics run at test scale, the
            clock prices the modeled production deployment).
        tp_decode: price decode rounds at single-host TP TTIT instead of
            CP — what a dedicated decode host delivers in the
            disaggregated architecture (§4.3 / DistServe / Mooncake).
    """

    def __init__(self, sim: LatencySimulator, *, n_ranks: int, tp_decode: bool = False):
        if n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
        self.sim = sim
        self.n_ranks = n_ranks
        self.tp_decode = tp_decode

    def price_prefill(self, chunks: list[tuple[int, int]]) -> float:
        if not chunks:
            raise ValueError("cannot price an empty prefill round")
        new_tokens = sum(t for t, _ in chunks)
        cached = max(p for _, p in chunks)
        return self.sim.cp_prefill(new_tokens, cached, n_ranks=self.n_ranks).total

    def price_decode(self, contexts: list[int]) -> float:
        if not contexts:
            raise ValueError("cannot price an empty decode round")
        if self.tp_decode:
            return self.sim.tp_decode(max(contexts), batch=len(contexts), n_nodes=1).total
        return self.sim.cp_decode(
            max(contexts), batch=len(contexts), n_ranks=self.n_ranks
        ).total

    def price_transfer(self, tokens: int) -> float:
        """Full-stream KV transfer cost at calibrated ring bandwidth."""
        if tokens < 0:
            raise ValueError(f"tokens must be >= 0, got {tokens}")
        bytes_ = tokens * self.sim.config.kv_bytes_per_token(self.sim.element_bytes)
        return bytes_ / self.sim.host.ring_bandwidth

    def price_swap(self, tokens: int) -> float:
        """One-way device<->host KV swap cost at PCIe bandwidth.

        Charged per direction (swap-out and swap-in each pay it), which
        is what makes swap a priced alternative to recompute: cheaper
        than re-prefilling long histories, never free.
        """
        if tokens < 0:
            raise ValueError(f"tokens must be >= 0, got {tokens}")
        bytes_ = tokens * self.sim.config.kv_bytes_per_token(self.sim.element_bytes)
        return bytes_ / self.sim.host.pcie_bandwidth
