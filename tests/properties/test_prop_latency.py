"""Property-based tests: latency-model sanity (monotonicity, consistency)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.heuristics import RingAlgo
from repro.model.config import llama3_405b_config
from repro.perf.hardware import gti_host, gtt_host
from repro.perf.latency import LatencySimulator

SIM = LatencySimulator(llama3_405b_config(), gtt_host())
SIM_GTI = LatencySimulator(llama3_405b_config(), gti_host())
SETTINGS = dict(max_examples=60, deadline=None)

tokens_st = st.integers(64, 300_000)
ranks_st = st.sampled_from([1, 2, 4, 8, 16])


class TestPrefillProperties:
    @given(tokens_st, ranks_st)
    @settings(**SETTINGS)
    def test_more_tokens_more_time(self, t, n):
        a = SIM.cp_prefill(t, n_ranks=n).total
        b = SIM.cp_prefill(t + 5000, n_ranks=n).total
        assert b > a

    @given(tokens_st, ranks_st)
    @settings(**SETTINGS)
    def test_breakdown_sums_to_total(self, t, n):
        for algo in (RingAlgo.PASS_KV, RingAlgo.PASS_Q):
            r = SIM.cp_prefill(t, n_ranks=n, algo=algo)
            parts = r.gemm + r.attn + r.exposed_comm + r.all2all + r.overhead
            assert abs(r.total - parts) < 1e-9 * max(r.total, 1.0)

    @given(tokens_st, st.integers(0, 200_000), ranks_st)
    @settings(**SETTINGS)
    def test_auto_never_worse_than_either(self, t, p, n):
        auto = SIM.cp_prefill(t, p, n_ranks=n).total
        kv = SIM.cp_prefill(t, p, n_ranks=n, algo=RingAlgo.PASS_KV).total
        qq = SIM.cp_prefill(t, p, n_ranks=n, algo=RingAlgo.PASS_Q).total
        assert auto <= min(kv, qq) + 1e-12

    @given(tokens_st)
    @settings(**SETTINGS)
    def test_gti_never_faster_than_gtt(self, t):
        """Slower network can only hurt (compute is identical)."""
        for n in (2, 4):
            gtt = SIM.cp_prefill(t, n_ranks=n).total
            gti = SIM_GTI.cp_prefill(t, n_ranks=n).total
            assert gti >= gtt - 1e-12

    @given(tokens_st, st.integers(0, 200_000))
    @settings(**SETTINGS)
    def test_cached_tokens_increase_attention_only(self, t, p):
        base = SIM.cp_prefill(t, 0, n_ranks=4, algo=RingAlgo.PASS_KV)
        cached = SIM.cp_prefill(t, p, n_ranks=4, algo=RingAlgo.PASS_KV)
        assert cached.attn >= base.attn
        assert cached.gemm == base.gemm  # linear layers see only new tokens


class TestDecodeProperties:
    @given(st.integers(1024, 1_000_000), st.integers(1, 16), ranks_st)
    @settings(**SETTINGS)
    def test_whole_attn_composition(self, ctx, batch, n):
        d = SIM.cp_decode(ctx, batch=batch, n_ranks=n)
        assert abs(d.whole_attn - (d.attn_ring + d.sendrecv + d.all2all)) < 1e-12

    @given(st.integers(1024, 500_000), st.integers(1, 8))
    @settings(**SETTINGS)
    def test_ttit_monotone_in_context(self, ctx, batch):
        a = SIM.cp_decode(ctx, batch=batch, n_ranks=2).total
        b = SIM.cp_decode(ctx + 100_000, batch=batch, n_ranks=2).total
        assert b >= a

    @given(st.integers(1024, 500_000), ranks_st)
    @settings(**SETTINGS)
    def test_tp_weights_scale_inverse(self, ctx, n):
        d = SIM.tp_decode(ctx, n_nodes=n)
        d1 = SIM.tp_decode(ctx, n_nodes=1)
        assert abs(d.weights - d1.weights / n) < 1e-12
