"""Structural tests for the extension experiments."""

import pytest

from repro.experiments import (
    capacity_scaling,
    disaggregation,
    fault_tolerance,
    gqa_sensitivity,
    pp_vs_cp,
    preemption_modes,
    prefix_reuse,
    serving_load,
)


class TestCapacityScaling:
    def test_linear_in_ranks(self):
        res = capacity_scaling.run()
        bf16 = res.column("max context (bf16 KV)")
        ranks = res.column("ranks")
        for n, cap in zip(ranks, bf16):
            assert cap == n * bf16[0]

    def test_oom_comparison(self):
        pinned, rr = capacity_scaling.decode_oom_comparison(capacity_per_rank=16, world=4)
        assert pinned == 16
        assert rr >= 4 * 16

    def test_max_context_positive(self):
        from repro.perf.hardware import gtt_host

        assert capacity_scaling.max_context_tokens(1, gtt_host()) > 100_000


class TestGqaSensitivity:
    def test_four_models(self):
        res = gqa_sensitivity.run()
        assert len(res.rows) == 4
        assert res.rows[-1][0] == "llama3-405b-mha"

    def test_mha_counterfactual(self):
        cfg = gqa_sensitivity.mha_405b_config()
        assert cfg.n_kv_heads == cfg.n_heads == 128
        assert cfg.kv_message_ratio == 2.0


class TestDisaggregation:
    def test_long_outputs_favor_disaggregation(self):
        res = disaggregation.run()
        assert res.column("winner")[-1] == "disaggregated"

    def test_ttit_constant_per_mode(self):
        res = disaggregation.run()
        colo = set(res.column("colocated TTIT (ms)"))
        disagg = set(res.column("disaggregated TTIT (ms)"))
        assert len(colo) == 1 and len(disagg) == 1
        assert min(colo) > max(disagg)


class TestPpVsCp:
    def test_cp_latency_falls_pp_flat(self):
        res = pp_vs_cp.run()
        cp = res.column("CP TTFT (s)")
        pp = res.column("PP TTFT (s)")
        assert cp[-1] < cp[0] / 4
        assert pp[-1] > 0.95 * pp[0]


class TestServingLoad:
    @pytest.fixture(scope="class")
    def result(self):
        return serving_load.run(n_requests=10)

    def test_modes_alternate(self, result):
        modes = result.column("mode")
        assert modes[0::2] == ["colocated"] * (len(modes) // 2)
        assert modes[1::2] == ["disaggregated"] * (len(modes) // 2)

    def test_disaggregated_tokens_flow_faster(self, result):
        per_token = result.column("mean ms/token")
        for colo, disagg in zip(per_token[0::2], per_token[1::2]):
            assert disagg < colo


class TestPreemptionModes:
    @pytest.fixture(scope="class")
    def result(self):
        return preemption_modes.run()

    def test_three_modes_per_capacity(self, result):
        modes = result.column("preemption")
        n_caps = len(modes) // len(preemption_modes.MODES)
        assert modes == list(preemption_modes.MODES) * n_caps

    def test_trim_and_swap_beat_recompute_on_p95_ttft(self, result):
        """The acceptance headline: both cheaper remedies improve tail
        TTFT over vLLM-style recomputation at every swept capacity."""
        p95 = result.column("p95 TTFT (s)")
        for i in range(0, len(p95), 3):
            recompute, trim, swap = p95[i : i + 3]
            assert trim < recompute
            assert swap < recompute

    def test_swap_skips_recompute_rounds(self, result):
        """Swap resumes without re-prefilling, so it runs strictly fewer
        prefill rounds than recompute on the same pressured trace."""
        rounds = result.column("prefill rounds")
        for i in range(0, len(rounds), 3):
            assert rounds[i + 2] < rounds[i]

    def test_remedies_fired(self, result):
        assert sum(result.column("trims")) > 0
        assert any("/" in s and s != "0/0" for s in result.column("swaps out/in"))


class TestPrefixReuse:
    @pytest.fixture(scope="class")
    def result(self):
        # one template count per deployment keeps the fixture fast; the
        # full sweep runs in `python -m repro experiments` (and asserts
        # warm < cold in-experiment at every hit rate >= 50%)
        return prefix_reuse.run(template_sweep=(1, 2))

    def test_deployments_sweep(self, result):
        deployments = result.column("deployment")
        n = len(deployments) // len(prefix_reuse.DEPLOYMENTS)
        assert deployments == [d for d in prefix_reuse.DEPLOYMENTS for _ in range(n)]

    def test_hit_rate_rises_as_templates_shrink(self, result):
        rates = result.column("hit rate")
        for i in range(0, len(rates), 2):
            assert rates[i] > rates[i + 1] > 0

    def test_warm_ttft_strictly_beats_cold(self, result):
        """The acceptance headline: at every swept hit rate >= 50%, a
        prefix-cache hit lands its first token strictly earlier than a
        cold request on the same trace."""
        for rate, warm, cold in zip(
            result.column("hit rate"),
            result.column("p50 TTFT warm (s)"),
            result.column("p50 TTFT cold (s)"),
        ):
            if rate >= 0.5:
                assert warm < cold

    def test_reuse_fired_everywhere(self, result):
        assert all(tokens > 0 for tokens in result.column("reused tokens"))


class TestFaultTolerance:
    @pytest.fixture(scope="class")
    def result(self):
        # two rates and two small sessions keep the fixture fast; the
        # full sweep runs in `python -m repro experiments` (exactness,
        # drain and leak-freedom are asserted inside run() per cell)
        return fault_tolerance.run(
            n_sessions=2, turns=2, first_prompt=40, rates=(0.0, 0.6)
        )

    def test_modes_per_rate(self, result):
        modes = result.column("recovery")
        n_rates = len(modes) // len(fault_tolerance.MODES)
        assert modes == list(fault_tolerance.MODES) * n_rates

    def test_fault_free_baseline_is_clean(self, result):
        """rate 0.0 rows: nothing injected, everything completes."""
        for i in range(len(fault_tolerance.MODES)):
            assert result.rows[i][result.headers.index("transfer faults")] == 0
            assert result.rows[i][result.headers.index("swap losses")] == 0
            assert result.rows[i][result.headers.index("resets")] == 0
            assert result.rows[i][result.headers.index("completion rate")] == 1.0

    def test_faults_fired_at_high_rate(self, result):
        """rate 0.6 rows: the chaos layer actually injected faults
        somewhere in the sweep (per-cell counts depend on the seeded
        schedule, so assert the aggregate)."""
        injected = sum(
            row[result.headers.index("transfer faults")]
            + row[result.headers.index("swap losses")]
            + row[result.headers.index("resets")]
            for row in result.rows[-len(fault_tolerance.MODES):]
        )
        assert injected > 0
        # the scheduled whole-pool reset fired in every high-rate cell
        for row in result.rows[-len(fault_tolerance.MODES):]:
            assert row[result.headers.index("resets")] == 1

    def test_faults_cost_latency(self, result):
        """Degradation is visible: the faulted cells never beat the
        fault-free baseline on makespan for the same recovery policy."""
        makespans = result.column("makespan (s)")
        n = len(fault_tolerance.MODES)
        for base, faulted in zip(makespans[:n], makespans[-n:]):
            assert faulted >= base


class TestClusterRouting:
    @pytest.fixture(scope="class")
    def result(self):
        # two replica counts keep the fixture fast; the full sweep runs
        # in `python -m repro experiments` (exactness, leak-freedom, and
        # prefix-beats-round-robin are asserted inside run() per cell)
        from repro.experiments import cluster_routing

        return cluster_routing.run(replica_sweep=(1, 2))

    def test_sweep_structure(self, result):
        from repro.experiments import cluster_routing

        assert result.column("replicas") == [1, 1, 2, 2]
        assert result.column("routing") == list(cluster_routing.POLICIES) * 2

    def test_single_replica_policies_identical(self, result):
        """With one replica every router has one choice: the prefix and
        round-robin rows must be byte-identical."""
        assert result.rows[0][2:] == result.rows[1][2:]

    def test_prefix_beats_round_robin_at_two_replicas(self, result):
        rates = result.column("hit rate")
        warm = result.column("p50 TTFT warm (s)")
        assert rates[2] > rates[3]
        assert warm[2] < warm[3]

    def test_reuse_fired_everywhere(self, result):
        assert all(tokens > 0 for tokens in result.column("reused tokens"))

    def test_every_replica_served_traffic(self, result):
        assert result.column("replicas used") == ["1/1", "1/1", "2/2", "2/2"]
