"""Engine-level prefix cache: match/adopt exactness and index lockstep."""

import numpy as np
import pytest

from repro.core.engine import ContextParallelEngine
from repro.model.config import tiny_config
from repro.model.llama import LlamaModel

MODEL = LlamaModel(tiny_config(), seed=0)
VOCAB = MODEL.config.vocab_size
RNG = np.random.default_rng(3)


def prompt(n):
    return RNG.integers(0, VOCAB, size=n, dtype=np.int64)


def engine(world=2, **kw):
    return ContextParallelEngine(MODEL, world_size=world, **kw)


class TestMatchAdopt:
    def test_disabled_engine_matches_nothing(self):
        eng = engine()
        eng.prefill({0: prompt(8)})
        assert eng.match_prefix(prompt(8)) == (0, None)
        with pytest.raises(RuntimeError):
            eng.adopt_prefix(1, 0, 4)

    def test_match_tracks_chunked_commits_and_decode(self):
        eng = engine()
        eng.enable_prefix_cache()
        p = prompt(20)
        eng.prefill({0: p[:12]})
        assert eng.match_prefix(p) == (12, 0)
        eng.prefill({0: p[12:]})
        assert eng.match_prefix(p) == (20, 0)
        # decode tokens commit into the index too
        eng.decode({0: 7})
        full = np.concatenate([p, [7]])
        assert eng.match_prefix(np.concatenate([full, [1, 2]])) == (21, 0)

    @pytest.mark.parametrize("world", [1, 2, 3])
    def test_adopted_suffix_prefill_is_exact(self, world):
        shared, tail_a, tail_b = prompt(30), prompt(7), prompt(9)
        eng = ContextParallelEngine(MODEL, world_size=world)
        eng.enable_prefix_cache()
        eng.prefill({0: np.concatenate([shared, tail_a])})
        matched, donor = eng.match_prefix(np.concatenate([shared, tail_b]))
        assert (matched, donor) == (30, 0)
        eng.adopt_prefix(1, 0, 30)
        out = eng.prefill({1: tail_b})

        ref = ContextParallelEngine(MODEL, world_size=world)
        ref_out = ref.prefill({1: np.concatenate([shared, tail_b])})
        np.testing.assert_allclose(
            out.last_logits(1), ref_out.last_logits(1), atol=1e-9, rtol=0
        )

    def test_adopted_generation_matches_reference(self):
        shared, tail = prompt(24), prompt(5)
        ext = prompt(3)
        eng = engine()
        eng.enable_prefix_cache()
        eng.prefill({0: np.concatenate([shared, prompt(6)])})
        eng.adopt_prefix(1, 0, 24)
        eng.prefill({1: tail})
        got = eng.generate({1: ext}, max_new_tokens=5)[1]

        ref = engine()
        ref.prefill({1: np.concatenate([shared, tail])})
        want = ref.generate({1: ext}, max_new_tokens=5)[1]
        assert got == want

    def test_adopter_becomes_donor(self):
        eng = engine()
        eng.enable_prefix_cache()
        p = prompt(16)
        eng.prefill({0: np.concatenate([p, prompt(4)])})
        eng.adopt_prefix(1, 0, 16)
        eng.evict(0)
        # donor gone; the adopter's copy still matches
        matched, donor = eng.match_prefix(np.concatenate([p, prompt(2)]))
        assert (matched, donor) == (16, 1)
        eng.adopt_prefix(2, 1, 16)
        assert eng.context_length(2) == 16

    def test_adopt_validation(self):
        eng = engine()
        eng.enable_prefix_cache()
        eng.prefill({0: prompt(8)})
        with pytest.raises(ValueError):
            eng.adopt_prefix(1, 0, 9)  # longer than donor
        with pytest.raises(ValueError):
            eng.adopt_prefix(0, 0, 4)  # already resident
        with pytest.raises(ValueError):
            eng.adopt_prefix(1, 5, 1)  # unknown donor

    def test_capacity_shared_once(self):
        eng = engine(capacity_tokens=64)
        eng.enable_prefix_cache()
        eng.prefill({0: prompt(32)})
        free_before = [c.free_tokens() for c in eng.caches]
        eng.adopt_prefix(1, 0, 32)
        assert [c.free_tokens() for c in eng.caches] == free_before


class TestIndexLockstep:
    def test_evict_removes_anchor(self):
        eng = engine()
        eng.enable_prefix_cache()
        p = prompt(10)
        eng.prefill({0: p})
        eng.evict(0)
        assert eng.match_prefix(p) == (0, None)

    def test_evict_tail_trims_anchor(self):
        eng = engine()
        eng.enable_prefix_cache()
        p = prompt(12)
        eng.prefill({0: p})
        eng.evict_tail(0, 5)
        matched, donor = eng.match_prefix(p)
        assert (matched, donor) == (5, 0)
        # re-prefilling the suffix restores full coverage
        eng.prefill({0: p[5:]})
        assert eng.match_prefix(p) == (12, 0)

    def test_import_kv_marks_sequence_opaque(self):
        src = engine()
        p = prompt(10)
        src.prefill({0: p})
        export = src.export_kv(0)

        dst = engine()
        dst.enable_prefix_cache()
        dst.import_kv(export)
        # resident but not donatable: the payload had no token identity
        assert dst.context_length(0) == 10
        assert dst.match_prefix(p) == (0, None)
        # later commits on top of opaque KV stay untracked
        dst.prefill({0: prompt(4)})
        assert dst.match_prefix(p) == (0, None)

    def test_swap_roundtrip_loses_donation_but_not_tokens(self):
        eng = engine()
        eng.enable_prefix_cache()
        p, ext = prompt(12), prompt(3)
        eng.prefill({0: p})
        export = eng.export_kv(0)
        eng.release(0)
        eng.import_kv(export)
        got = eng.generate({0: ext}, max_new_tokens=4)[0]
        ref = engine()
        ref.prefill({0: p})
        want = ref.generate({0: ext}, max_new_tokens=4)[0]
        assert got == want
        assert eng.match_prefix(p) == (0, None)
