"""Paged block allocator (PagedAttention-style) with prefix sharing.

Long-context serving cannot reserve max-context-length contiguous buffers
per sequence; the standard fix (Kwon et al. 2023, cited in §2.2) is to
allocate KV memory in fixed-size token blocks on demand. This allocator
tracks block ownership per (layer, sequence) stream and is the capacity
authority behind :class:`repro.kvcache.cache.RankKVCache`: when the free
list empties, the cache raises the OOM the paper's load-balancing work is
designed to postpone (§3.6: without round-robin decode sharding, one rank
OOMs before aggregate capacity is reached).

Blocks are *refcounted* so streams can share a committed prefix
(SGLang-RadixAttention / vLLM-prefix-caching style): :meth:`share` makes a
new stream reference the first blocks of an existing one, charging the
pool nothing — a shared prefix occupies capacity exactly once. Sharing is
copy-on-write: a stream appending into the slack of a block another
stream also references first claims a fresh block for its own tail (the
shared block is never mutated), and :meth:`fits` prices that extra block
so admission control stays exact. Releasing (whole-stream or tail) only
returns a block to the free list when its last reference drops.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class OutOfBlocksError(RuntimeError):
    """No free blocks remain in the pool."""


@dataclass
class PagedAllocator:
    """Fixed-pool block allocator.

    Attributes:
        num_blocks: total blocks in the pool.
        block_size: tokens per block.
    """

    num_blocks: int
    block_size: int
    _free: list[int] = field(default_factory=list, repr=False)
    _owners: dict[tuple, list[int]] = field(default_factory=dict, repr=False)
    _fill: dict[tuple, int] = field(default_factory=dict, repr=False)
    _ref: dict[int, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.num_blocks < 0:
            raise ValueError(f"num_blocks must be >= 0, got {self.num_blocks}")
        if self.block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {self.block_size}")
        self._free = list(range(self.num_blocks - 1, -1, -1))

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    @property
    def used_blocks(self) -> int:
        """Distinct blocks claimed by at least one stream (shared blocks
        count once — this is what prefix sharing saves)."""
        return self.num_blocks - len(self._free)

    @property
    def capacity_tokens(self) -> int:
        return self.num_blocks * self.block_size

    def free_tokens(self) -> int:
        """Tokens that can still be appended across all streams.

        Counts whole free blocks plus the slack in each stream's last
        partially-filled block — except when that last block is shared
        with another stream, whose slack is unusable without a
        copy-on-write split (appending there claims a whole new block).
        """
        slack = sum(
            (len(blocks) * self.block_size) - self._fill[key]
            for key, blocks in self._owners.items()
            if blocks and self._ref[blocks[-1]] == 1
        )
        return len(self._free) * self.block_size + slack

    def stream_tokens(self, key: tuple) -> int:
        """Tokens currently stored under ``key``."""
        return self._fill.get(key, 0)

    def stream_blocks(self, key: tuple) -> tuple[int, ...]:
        """Block ids owned (possibly shared) by ``key``, oldest first."""
        return tuple(self._owners.get(key, ()))

    def block_refcount(self, block: int) -> int:
        """How many streams reference ``block`` (0 = free/unknown)."""
        return self._ref.get(block, 0)

    def utilization(self) -> float:
        """Fraction of the pool's token capacity in use (block-granular).

        Counts whole claimed blocks, not just their filled tokens, so this
        reflects allocatable pressure — the quantity the serving runtime's
        peak-KV-occupancy metric samples after every round. Shared blocks
        count once, which is exactly the capacity prefix reuse reclaims.
        """
        if self.num_blocks == 0:
            return 0.0
        return self.used_blocks / self.num_blocks

    def _needs_cow(self, key: tuple) -> bool:
        """Whether appending to ``key`` must copy-on-write its last block
        (the block is shared and has slack this stream would write into)."""
        blocks = self._owners.get(key)
        if not blocks:
            return False
        fill_in_last = self._fill[key] - (len(blocks) - 1) * self.block_size
        return fill_in_last < self.block_size and self._ref[blocks[-1]] > 1

    def append(self, key: tuple, n_tokens: int) -> None:
        """Account for appending ``n_tokens`` to stream ``key``.

        Allocates new blocks as needed. When the stream's last block is
        shared with another stream and still has slack, the append first
        performs a copy-on-write split: the stream swaps the shared block
        for a fresh one it owns exclusively (the shared block keeps its
        other references untouched), then fills from there.

        Raises:
            OutOfBlocksError: if the pool cannot hold the new tokens; the
                allocation (including any copy-on-write split) is rolled
                back so the pool state is unchanged.
        """
        if n_tokens < 0:
            raise ValueError(f"n_tokens must be >= 0, got {n_tokens}")
        if n_tokens == 0 and key not in self._owners:
            # registering a fresh key with zero tokens would leave a
            # phantom zero-block stream in streams() forever
            return
        blocks = self._owners.setdefault(key, [])
        fill = self._fill.setdefault(key, 0)
        cow_old: int | None = None
        if n_tokens > 0 and self._needs_cow(key):
            if not self._free:
                raise OutOfBlocksError(
                    f"stream {key}: copy-on-write split needs a free block "
                    f"but the pool is exhausted "
                    f"({self.used_blocks}/{self.num_blocks} blocks used)"
                )
            b = self._free.pop()
            self._ref[b] = 1
            cow_old = blocks[-1]
            self._ref[cow_old] -= 1
            blocks[-1] = b
        capacity = len(blocks) * self.block_size
        need = fill + n_tokens - capacity
        newly: list[int] = []
        while need > 0:
            if not self._free:
                # roll back (newly claimed blocks, then the COW split)
                for b in newly:
                    del self._ref[b]
                    self._free.append(b)
                    blocks.pop()
                if cow_old is not None:
                    del self._ref[blocks[-1]]
                    self._free.append(blocks[-1])
                    self._ref[cow_old] += 1
                    blocks[-1] = cow_old
                if not blocks:
                    del self._owners[key]
                    del self._fill[key]
                raise OutOfBlocksError(
                    f"stream {key}: need {n_tokens} tokens but pool is exhausted "
                    f"({self.used_blocks}/{self.num_blocks} blocks used)"
                )
            b = self._free.pop()
            self._ref[b] = 1
            blocks.append(b)
            newly.append(b)
            need -= self.block_size
        self._fill[key] = fill + n_tokens

    def share(self, src_key: tuple, dst_key: tuple, n_tokens: int) -> int:
        """Make ``dst_key`` reference the first ``n_tokens`` of ``src_key``.

        The shared prefix occupies pool capacity once: ``dst_key``'s block
        list becomes the first ``ceil(n_tokens / block_size)`` blocks of
        ``src_key``'s, each with its refcount bumped, and *zero* free
        blocks are claimed. Later appends by either stream into the last
        shared block copy-on-write split it first (see :meth:`append`).

        Returns:
            The number of blocks now shared.

        Raises:
            ValueError: unknown source, existing destination, or
                ``n_tokens`` outside ``[1, stream_tokens(src_key)]``.
        """
        if src_key not in self._owners:
            raise ValueError(f"cannot share from unknown stream {src_key}")
        if dst_key in self._owners:
            raise ValueError(f"cannot share into existing stream {dst_key}")
        if src_key == dst_key:
            raise ValueError(f"cannot share stream {src_key} with itself")
        if not 1 <= n_tokens <= self._fill[src_key]:
            raise ValueError(
                f"share of {n_tokens} tokens outside [1, {self._fill[src_key]}] "
                f"stored by {src_key}"
            )
        shared = self._owners[src_key][: -(-n_tokens // self.block_size)]
        self._owners[dst_key] = list(shared)
        self._fill[dst_key] = n_tokens
        for b in shared:
            self._ref[b] += 1
        return len(shared)

    def fits(self, demands: dict[tuple, int]) -> bool:
        """Dry-run an :meth:`append` of ``demands[key]`` tokens per stream.

        Computes how many *new* blocks the batch of appends would claim —
        each stream first consumes the slack of its own last block, unless
        that block is shared, in which case the copy-on-write split costs
        one extra block and the shared slack is unusable — and checks it
        against the free list, without mutating any state.
        """
        need = 0
        for key, n_tokens in demands.items():
            if n_tokens < 0:
                raise ValueError(f"stream {key}: n_tokens must be >= 0, got {n_tokens}")
            fill = self._fill.get(key, 0)
            held = len(self._owners.get(key, ()))
            stream_need = -(-(fill + n_tokens) // self.block_size) - held
            if n_tokens > 0 and self._needs_cow(key):
                stream_need += 1
            need += max(0, stream_need)
        return need <= len(self._free)

    def release(self, key: tuple) -> int:
        """Drop all of ``key``'s block references; returns blocks *freed*.

        A block returns to the free list only when its last reference
        drops — blocks shared with other streams stay claimed, so the
        return value under sharing can be less than the stream's block
        count. Releasing an unknown (or already-released) key is a clean
        no-op returning 0 — callers evicting speculatively need not
        pre-check.
        """
        blocks = self._owners.pop(key, [])
        self._fill.pop(key, None)
        return self._unref(blocks)

    def release_tail(self, key: tuple, n_tokens: int) -> int:
        """Drop the *newest* ``n_tokens`` of stream ``key``; returns blocks freed.

        Only whole blocks that become empty (and are not referenced by any
        other stream) are returned to the pool; the stream's new last
        block may stay partially filled — that slack is reusable by the
        stream itself when exclusively owned, as :meth:`free_tokens`
        counts. Shared blocks are never mutated: dropping this stream's
        reference leaves other holders' contents untouched, and a later
        append into a still-shared last block copy-on-write splits it.
        Dropping every token degenerates to :meth:`release`, so the key is
        deregistered and never lingers as a zero-block stream.

        Raises:
            ValueError: negative ``n_tokens``, or more tokens than the
                stream holds (which would indicate caller corruption).
        """
        if n_tokens < 0:
            raise ValueError(f"n_tokens must be >= 0, got {n_tokens}")
        fill = self._fill.get(key, 0)
        if n_tokens > fill:
            raise ValueError(
                f"stream {key}: cannot drop {n_tokens} of {fill} stored tokens"
            )
        if n_tokens == 0:
            return 0
        new_fill = fill - n_tokens
        if new_fill == 0:
            return self.release(key)
        blocks = self._owners[key]
        keep_blocks = -(-new_fill // self.block_size)
        dropped = blocks[keep_blocks:]
        del blocks[keep_blocks:]
        self._fill[key] = new_fill
        return self._unref(dropped)

    def _unref(self, blocks: list[int]) -> int:
        """Drop one reference per block; free and count those reaching 0."""
        freed = 0
        for b in blocks:
            self._ref[b] -= 1
            if self._ref[b] == 0:
                del self._ref[b]
                self._free.append(b)
                freed += 1
        return freed

    def streams(self) -> list[tuple]:
        return list(self._owners)

    def audit(self) -> list[str]:
        """Refcount-consistency check; returns violations (empty = clean).

        The fault-injection leak audit runs this after a drained run:
        whole-pool resets and mid-stream sheds exercise release paths
        under sharing, and any miscounted reference would either leak a
        block forever or hand one block to two streams. Verifies the
        pool partitions exactly into free and referenced blocks, and
        that every block's refcount equals the number of streams whose
        block lists contain it.
        """
        problems: list[str] = []
        refs: dict[int, int] = {}
        for blocks in self._owners.values():
            for b in blocks:
                refs[b] = refs.get(b, 0) + 1
        free = set(self._free)
        for b, n in sorted(refs.items()):
            if self._ref.get(b, 0) != n:
                problems.append(
                    f"block {b}: refcount {self._ref.get(b, 0)} but "
                    f"{n} stream references"
                )
            if b in free:
                problems.append(f"block {b}: simultaneously free and referenced")
        for b in sorted(self._ref):
            if b not in refs:
                problems.append(f"block {b}: refcount {self._ref[b]} with no owning stream")
        if len(free) + len(refs) != self.num_blocks:
            problems.append(
                f"pool does not partition: {len(free)} free + {len(refs)} "
                f"referenced != {self.num_blocks} blocks"
            )
        return problems
