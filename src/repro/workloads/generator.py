"""Deterministic synthetic prompt and conversation generation.

The paper's production traffic (user prompts, documents, follow-ups) is
proprietary; these generators produce the closest synthetic equivalent that
exercises the same code paths: variable-length prompts, multi-turn
follow-ups with realistic prompt/response size ratios, and fused batches of
mixed lengths. Everything is seeded, so tests and benchmarks replay
identical workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class ConversationScript:
    """A scripted multi-turn conversation.

    Attributes:
        seq_id: conversation id.
        prompts: per-turn prompt token arrays.
        response_budgets: per-turn decode budgets.
    """

    seq_id: int
    prompts: list[np.ndarray] = field(default_factory=list)
    response_budgets: list[int] = field(default_factory=list)

    @property
    def turns(self) -> int:
        return len(self.prompts)

    @property
    def total_prompt_tokens(self) -> int:
        return int(sum(p.size for p in self.prompts))


class WorkloadGenerator:
    """Seeded generator of prompts, batches and conversations.

    Args:
        vocab_size: token id range (match the model's vocabulary).
        seed: RNG seed.
    """

    def __init__(self, vocab_size: int, *, seed: int = 0):
        if vocab_size < 2:
            raise ValueError(f"vocab_size must be >= 2, got {vocab_size}")
        self.vocab_size = vocab_size
        self.seed = seed
        self._spawn_path: tuple[int, ...] = ()
        self.rng = np.random.default_rng(seed)

    def substream(self, key: int) -> "WorkloadGenerator":
        """A child generator on an independent, key-derived seed stream.

        ``gen.substream(k)`` depends only on ``(gen.seed, k)`` — never on
        how much traffic the parent (or any sibling) has already drawn —
        so per-replica traffic stays bit-reproducible regardless of
        replica count or generation order: replica ``k`` of a 3-replica
        fleet and replica ``k`` of a 5-replica fleet see identical
        streams. Nested substreams extend the key path
        (``gen.substream(a).substream(b)`` derives from ``(seed, a, b)``).

        Derivation uses :class:`numpy.random.SeedSequence` spawn keys,
        which guarantees children are independent of the parent stream
        and of every differently-keyed sibling (a naive ``[seed, key]``
        entropy list is *not* enough: SeedSequence zero-pads entropy, so
        ``[seed, 0]`` would collide with the parent's own stream).
        """
        if key < 0:
            raise ValueError(f"substream key must be >= 0, got {key}")
        child = WorkloadGenerator(self.vocab_size, seed=self.seed)
        child._spawn_path = self._spawn_path + (int(key),)
        child.rng = np.random.default_rng(
            np.random.SeedSequence(self.seed, spawn_key=child._spawn_path)
        )
        return child

    def prompt(self, length: int) -> np.ndarray:
        """Uniform random token ids of the given length."""
        if length < 1:
            raise ValueError(f"length must be >= 1, got {length}")
        return self.rng.integers(0, self.vocab_size, size=length, dtype=np.int64)

    def varseq_batch(self, lengths: list[int], *, first_seq_id: int = 0) -> dict[int, np.ndarray]:
        """A fused batch: ``{seq_id: prompt}`` with the requested lengths."""
        return {
            first_seq_id + i: self.prompt(length) for i, length in enumerate(lengths)
        }

    def conversation(
        self,
        seq_id: int,
        *,
        turns: int,
        first_prompt: int,
        followup_range: tuple[int, int] = (8, 64),
        response_range: tuple[int, int] = (4, 16),
    ) -> ConversationScript:
        """A multi-turn script: long first prompt, short follow-ups.

        Mirrors the paper's motivating workload: the initial document/long
        prompt is full-prefilled once, then follow-ups hit the persistent
        KV cache at high hit rates (where pass-Q wins).
        """
        if turns < 1:
            raise ValueError(f"turns must be >= 1, got {turns}")
        lo_f, hi_f = followup_range
        lo_r, hi_r = response_range
        if not (1 <= lo_f <= hi_f and 0 <= lo_r <= hi_r):
            raise ValueError("invalid follow-up/response ranges")
        script = ConversationScript(seq_id=seq_id)
        script.prompts.append(self.prompt(first_prompt))
        script.response_budgets.append(int(self.rng.integers(lo_r, hi_r + 1)))
        for _ in range(turns - 1):
            script.prompts.append(self.prompt(int(self.rng.integers(lo_f, hi_f + 1))))
            script.response_budgets.append(int(self.rng.integers(lo_r, hi_r + 1)))
        return script

    def decode_batch_sizes(self, n: int, *, low: int = 1, high: int = 8) -> list[int]:
        """Batch-size samples for decode sweeps."""
        return [int(b) for b in self.rng.integers(low, high + 1, size=n)]

    def shared_prefix_traffic(
        self,
        *,
        n_system_prompts: int,
        n_fewshot_variants: int,
        conversations: int,
        system_tokens: int = 48,
        fewshot_tokens: int = 16,
        unique_range: tuple[int, int] = (8, 24),
        turns: int = 1,
        followup_range: tuple[int, int] = (6, 12),
        response_range: tuple[int, int] = (4, 8),
        first_seq_id: int = 0,
    ) -> list[ConversationScript]:
        """Templated shared-prefix traffic: N system prompts x M few-shot
        variants x live arrivals.

        The prefix-cache workload (SGLang/Mooncake-style): every
        conversation's first prompt is ``system ++ fewshot ++ unique``
        where the system prompt is drawn from ``n_system_prompts``
        templates and the few-shot block from ``n_fewshot_variants``
        variants of that template. Templates are assigned round-robin
        (conversation ``i`` gets system ``i % N`` and few-shot
        ``(i // N) % M``), so the cold/warm split is deterministic: the
        first occurrence of each system prompt is cold, every later one
        shares at least ``system_tokens`` with a resident donor — an
        expected index hit rate of ``1 - N / conversations``. Follow-up
        turns (when ``turns > 1``) behave like :meth:`conversation`'s.

        Returns:
            ``conversations`` scripts with sequential seq ids from
            ``first_seq_id``.
        """
        if n_system_prompts < 1 or n_fewshot_variants < 1:
            raise ValueError("template counts must be >= 1")
        if conversations < 1:
            raise ValueError(f"conversations must be >= 1, got {conversations}")
        if system_tokens < 1 or fewshot_tokens < 1:
            raise ValueError("template token counts must be >= 1")
        if turns < 1:
            raise ValueError(f"turns must be >= 1, got {turns}")
        lo_u, hi_u = unique_range
        lo_f, hi_f = followup_range
        lo_r, hi_r = response_range
        if not (1 <= lo_u <= hi_u and 1 <= lo_f <= hi_f and 0 <= lo_r <= hi_r):
            raise ValueError("invalid unique/follow-up/response ranges")
        systems = [self.prompt(system_tokens) for _ in range(n_system_prompts)]
        fewshots = [
            [self.prompt(fewshot_tokens) for _ in range(n_fewshot_variants)]
            for _ in range(n_system_prompts)
        ]
        scripts = []
        for i in range(conversations):
            s = i % n_system_prompts
            m = (i // n_system_prompts) % n_fewshot_variants
            unique = self.prompt(int(self.rng.integers(lo_u, hi_u + 1)))
            script = ConversationScript(seq_id=first_seq_id + i)
            script.prompts.append(
                np.concatenate([systems[s], fewshots[s][m], unique])
            )
            script.response_budgets.append(int(self.rng.integers(lo_r, hi_r + 1)))
            for _ in range(turns - 1):
                script.prompts.append(self.prompt(int(self.rng.integers(lo_f, hi_f + 1))))
                script.response_budgets.append(int(self.rng.integers(lo_r, hi_r + 1)))
            scripts.append(script)
        return scripts
