"""Arm the KV shadow-state sanitizer for every property suite.

Every :class:`PagedAllocator` built while these suites run gets an
:class:`AllocatorSanitizer` attached at construction, and every
:class:`ContinuousBatchingRuntime` defaults to ``sanitize=True`` — so the
hypothesis machines exercise the sanitizer's shadow model against the
full randomized schedule space for free: any operation the shadow cannot
explain fails the property at that operation with an op trace, not at the
end-of-run audit.

Session-scoped (with an explicit ``pytest.MonkeyPatch``) rather than a
function-scoped autouse fixture: hypothesis's
``function_scoped_fixture`` health check forbids per-example fixture
state, and the patch is stateless anyway.
"""

from __future__ import annotations

import pytest

from repro.analysis.sanitizer import AllocatorSanitizer
from repro.kvcache.paged import PagedAllocator
from repro.runtime.runtime import ContinuousBatchingRuntime


@pytest.fixture(scope="session", autouse=True)
def _sanitize_everything():
    mp = pytest.MonkeyPatch()

    orig_post_init = PagedAllocator.__post_init__

    def sanitized_post_init(self):
        orig_post_init(self)
        AllocatorSanitizer(self)

    mp.setattr(PagedAllocator, "__post_init__", sanitized_post_init)

    orig_init = ContinuousBatchingRuntime.__init__

    def sanitized_init(self, *args, **kwargs):
        kwargs.setdefault("sanitize", True)
        orig_init(self, *args, **kwargs)

    mp.setattr(ContinuousBatchingRuntime, "__init__", sanitized_init)
    yield
    mp.undo()
