"""Simulated multi-rank distributed runtime.

The paper runs on 1-16 Grand Teton hosts (8x H100 each) where each CP rank
is one host-wide TP8 group and CP communication is an 8-way SendRecv between
peer GPUs holding the same KV head (paper Figure 5). This package replaces
that hardware with an in-process, lockstep simulation that preserves the two
properties the reproduction depends on:

1. **Exact dataflow** — collectives move real NumPy tensors between ranks,
   so the ring algorithms compute real attention and can be checked
   bit-for-bit against single-device execution.
2. **Exact traffic accounting** — every SendRecv / All2All / AllGather /
   AllReduce records the logical wire bytes (at the model's element size,
   not NumPy's float64), feeding the same roofline the paper uses to decide
   when communication hides under compute.

Modules:

- :mod:`repro.distributed.topology` — cluster wiring (node counts, NIC
  bandwidths, message latencies) with GTT (RDMA) and GTI (TCP) presets.
- :mod:`repro.distributed.process_group` — :class:`SimProcessGroup`, the
  lockstep collective engine.
- :mod:`repro.distributed.ring` — ring-schedule index arithmetic shared by
  all three ring algorithms.
- :mod:`repro.distributed.tracer` — communication/compute event recording.
"""

from repro.distributed.process_group import SimProcessGroup, payload_elements
from repro.distributed.ring import ring_neighbors, source_rank_at_step
from repro.distributed.topology import (
    ClusterTopology,
    gti_topology,
    gtt_topology,
    single_node_topology,
)
from repro.distributed.tracer import CommEvent, CommTracer

__all__ = [
    "ClusterTopology",
    "CommEvent",
    "CommTracer",
    "SimProcessGroup",
    "gti_topology",
    "gtt_topology",
    "payload_elements",
    "ring_neighbors",
    "single_node_topology",
    "source_rank_at_step",
]
