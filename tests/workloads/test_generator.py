"""Tests for workload generation."""

import numpy as np
import pytest

from repro.workloads.generator import WorkloadGenerator


class TestWorkloadGenerator:
    def test_prompt_determinism(self):
        a = WorkloadGenerator(100, seed=1).prompt(20)
        b = WorkloadGenerator(100, seed=1).prompt(20)
        np.testing.assert_array_equal(a, b)

    def test_prompt_vocab_range(self):
        gen = WorkloadGenerator(50, seed=0)
        p = gen.prompt(1000)
        assert p.min() >= 0 and p.max() < 50

    def test_varseq_batch(self):
        gen = WorkloadGenerator(100, seed=2)
        batch = gen.varseq_batch([5, 9, 3], first_seq_id=10)
        assert sorted(batch) == [10, 11, 12]
        assert batch[11].shape == (9,)

    def test_conversation_script(self):
        gen = WorkloadGenerator(100, seed=3)
        script = gen.conversation(0, turns=4, first_prompt=200, followup_range=(8, 16))
        assert script.turns == 4
        assert script.prompts[0].size == 200
        for p in script.prompts[1:]:
            assert 8 <= p.size <= 16
        assert len(script.response_budgets) == 4
        assert script.total_prompt_tokens == sum(p.size for p in script.prompts)

    def test_conversation_multi_turn_hit_rates_rise(self):
        """The generated workload has the paper's shape: later turns run at
        high cache-hit rates."""
        gen = WorkloadGenerator(100, seed=4)
        script = gen.conversation(0, turns=5, first_prompt=500)
        cached = 0
        rates = []
        for p in script.prompts:
            rates.append(p.size / (p.size + cached))
            cached += p.size + 8  # + response
        assert rates[0] == 1.0
        assert all(r < 0.15 for r in rates[1:])

    def test_decode_batch_sizes(self):
        gen = WorkloadGenerator(100, seed=5)
        sizes = gen.decode_batch_sizes(20, low=2, high=6)
        assert len(sizes) == 20
        assert all(2 <= s <= 6 for s in sizes)

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadGenerator(1)
        gen = WorkloadGenerator(10)
        with pytest.raises(ValueError):
            gen.prompt(0)
        with pytest.raises(ValueError):
            gen.conversation(0, turns=0, first_prompt=10)


class TestSubstreams:
    """Per-replica sub-streams: key-derived, order-independent seeds.

    The cluster tier shards one logical workload across replicas;
    ``substream`` guarantees replica ``k``'s traffic depends only on
    ``(seed, k)`` — never on replica count, sibling draws, or the
    parent's draw position."""

    def test_same_key_same_stream(self):
        a = WorkloadGenerator(100, seed=7).substream(2).prompt(32)
        b = WorkloadGenerator(100, seed=7).substream(2).prompt(32)
        np.testing.assert_array_equal(a, b)

    def test_distinct_keys_distinct_streams(self):
        gen = WorkloadGenerator(100, seed=7)
        a = gen.substream(0).prompt(64)
        b = gen.substream(1).prompt(64)
        assert not np.array_equal(a, b)

    def test_independent_of_parent_draw_position(self):
        fresh = WorkloadGenerator(100, seed=7)
        drained = WorkloadGenerator(100, seed=7)
        drained.prompt(500)  # parent consumption must not shift children
        np.testing.assert_array_equal(
            fresh.substream(3).prompt(16), drained.substream(3).prompt(16)
        )

    def test_independent_of_sibling_consumption(self):
        gen1 = WorkloadGenerator(100, seed=7)
        gen1.substream(0).prompt(500)
        gen2 = WorkloadGenerator(100, seed=7)
        np.testing.assert_array_equal(
            gen1.substream(1).prompt(16), gen2.substream(1).prompt(16)
        )

    def test_nesting_extends_the_key_path(self):
        gen = WorkloadGenerator(100, seed=7)
        nested = gen.substream(1).substream(2).prompt(16)
        np.testing.assert_array_equal(
            nested,
            WorkloadGenerator(100, seed=7).substream(1).substream(2).prompt(16),
        )
        # (seed, 1, 2) differs from (seed, 2, 1) and from (seed, 1)
        assert not np.array_equal(
            nested, gen.substream(2).substream(1).prompt(16)
        )
        assert not np.array_equal(nested, gen.substream(1).prompt(16))

    def test_child_differs_from_parent_stream(self):
        gen = WorkloadGenerator(100, seed=7)
        assert not np.array_equal(
            gen.substream(0).prompt(64), WorkloadGenerator(100, seed=7).prompt(64)
        )

    def test_negative_key_rejected(self):
        with pytest.raises(ValueError, match="substream key"):
            WorkloadGenerator(100, seed=7).substream(-1)

    def test_vocab_carries_over(self):
        assert WorkloadGenerator(37, seed=0).substream(5).vocab_size == 37


class TestSharedPrefixTraffic:
    def make(self, **kw):
        from repro.workloads.generator import WorkloadGenerator

        gen = WorkloadGenerator(128, seed=4)
        defaults = dict(
            n_system_prompts=2, n_fewshot_variants=2, conversations=8,
            system_tokens=24, fewshot_tokens=8, unique_range=(4, 6),
        )
        defaults.update(kw)
        return gen.shared_prefix_traffic(**defaults)

    def test_round_robin_template_assignment(self):
        scripts = self.make()
        assert len(scripts) == 8
        assert [s.seq_id for s in scripts] == list(range(8))
        # conversations i and i+2 share the same 24-token system prompt
        import numpy as np

        for i in range(6):
            a, b = scripts[i].prompts[0], scripts[i + 2].prompts[0]
            assert np.array_equal(a[:24], b[:24])
        # adjacent conversations use different system prompts
        assert not np.array_equal(scripts[0].prompts[0][:24], scripts[1].prompts[0][:24])

    def test_fewshot_variants_rotate_within_template(self):
        import numpy as np

        scripts = self.make(conversations=8)
        # i and i+4 share system AND few-shot (2 templates x 2 variants)
        a, b = scripts[0].prompts[0], scripts[4].prompts[0]
        assert np.array_equal(a[:32], b[:32])
        # i and i+2 share only the system prompt (different variant)
        a, b = scripts[0].prompts[0], scripts[2].prompts[0]
        assert not np.array_equal(a[24:32], b[24:32])

    def test_multi_turn_scripts(self):
        scripts = self.make(turns=3)
        assert all(s.turns == 3 for s in scripts)
        assert all(len(s.response_budgets) == 3 for s in scripts)

    def test_deterministic_for_seed(self):
        import numpy as np

        a = self.make()
        b = self.make()
        for s1, s2 in zip(a, b):
            for p1, p2 in zip(s1.prompts, s2.prompts):
                assert np.array_equal(p1, p2)

    def test_validation(self):
        import pytest

        with pytest.raises(ValueError):
            self.make(n_system_prompts=0)
        with pytest.raises(ValueError):
            self.make(conversations=0)
        with pytest.raises(ValueError):
            self.make(unique_range=(0, 4))
        with pytest.raises(ValueError):
            self.make(turns=0)
