"""Public validation utilities: checkable losslessness.

The paper's "lossless exact" claim is this library's core invariant; these
helpers make it a one-liner for users embedding the engine in their own
experiments (and are used by the examples and integration tests).
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import ContextParallelEngine
from repro.model.llama import LlamaModel


def max_logit_error(
    engine_logits: np.ndarray, reference_logits: np.ndarray
) -> float:
    """Max absolute elementwise difference between two logit blocks."""
    engine_logits = np.asarray(engine_logits)
    reference_logits = np.asarray(reference_logits)
    if engine_logits.shape != reference_logits.shape:
        raise ValueError(
            f"logit shapes differ: {engine_logits.shape} vs {reference_logits.shape}"
        )
    if engine_logits.size == 0:
        return 0.0
    return float(np.abs(engine_logits - reference_logits).max())


def assert_lossless_prefill(
    model: LlamaModel,
    world_size: int,
    token_ids: np.ndarray,
    *,
    atol: float = 1e-8,
    **engine_kwargs,
) -> float:
    """Run a CP prefill and assert logits match the single-device forward.

    Returns:
        The measured max error (always ``<= atol`` on return).

    Raises:
        AssertionError: if the engine diverges from the reference.
    """
    token_ids = np.asarray(token_ids, dtype=np.int64)
    engine = ContextParallelEngine(model, world_size, **engine_kwargs)
    out = engine.prefill({0: token_ids})
    err = max_logit_error(out.logits[0], model.forward(token_ids))
    assert err <= atol, f"CP prefill diverged: max error {err:.3e} > {atol:.1e}"
    return err


def assert_lossless_conversation(
    model: LlamaModel,
    world_size: int,
    turns: list[np.ndarray],
    *,
    decode_per_turn: int = 2,
    atol: float = 1e-8,
    **engine_kwargs,
) -> float:
    """Replay a multi-turn conversation and audit every phase.

    Each turn's prompt is prefetched (full then partial prefill) and
    ``decode_per_turn`` greedy tokens are generated; after every step the
    engine output is compared against a monolithic forward over the full
    history.

    Returns:
        The worst error observed across the whole conversation.
    """
    engine = ContextParallelEngine(model, world_size, **engine_kwargs)
    history: list[int] = []
    worst = 0.0
    for turn in turns:
        turn = np.asarray(turn, dtype=np.int64)
        out = engine.prefill({0: turn})
        history.extend(int(t) for t in turn)
        ref = model.forward(np.array(history))
        worst = max(worst, max_logit_error(out.logits[0], ref[-turn.size:]))
        next_logits = out.last_logits(0)
        for _ in range(decode_per_turn):
            tok = int(np.argmax(next_logits))
            step = engine.decode({0: tok})
            history.append(tok)
            ref = model.forward(np.array(history))
            worst = max(worst, max_logit_error(step.logits[0], ref[-1]))
            next_logits = step.logits[0]
    assert worst <= atol, f"conversation diverged: max error {worst:.3e} > {atol:.1e}"
    return worst
