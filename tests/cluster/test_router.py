"""Unit tests for the fleet routing policies.

Routers are exercised against stub replicas (the scheduler-facing view
is five methods and an id), which pins the exact decision rules — score
arithmetic, tie-breaks, cursor behaviour, shadow-index bookkeeping —
without spinning up engines.
"""

import numpy as np
import pytest

from repro.cluster.router import (
    ROUTING_POLICIES,
    LeastLoadedRouter,
    PrefixAffinityRouter,
    Router,
    RoundRobinRouter,
    make_router,
)


class StubReplica:
    """A replica as a router sees it: static load views plus a fake
    live-index match table."""

    def __init__(self, replica_id, *, queued=0, busy=0.0, depth=0, live_match=None):
        self.id = replica_id
        self.draining = False
        self._queued = queued
        self._busy = busy
        self._depth = depth
        self._live_match = live_match or {}

    def queued_tokens(self):
        return self._queued

    def busy_time(self):
        return self._busy

    def queue_depth(self):
        return self._depth

    def match_len(self, tokens):
        return self._live_match.get(tuple(int(t) for t in tokens), 0)


def toks(*values):
    return np.asarray(values, dtype=np.int64)


class TestMakeRouter:
    def test_builds_every_documented_policy(self):
        names = {make_router(p).name for p in ROUTING_POLICIES}
        assert names == set(ROUTING_POLICIES)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown routing policy"):
            make_router("random")

    def test_base_router_place_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Router().place(toks(1), [StubReplica(0)])


class TestRoundRobin:
    def test_cycles_in_id_order(self):
        router = RoundRobinRouter()
        replicas = [StubReplica(i) for i in range(3)]
        picks = [router.place(toks(1), replicas).id for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_cursor_survives_eligibility_changes(self):
        """The cursor indexes the *eligible list it is handed*, so a
        drained replica shrinks the cycle without resetting it."""
        router = RoundRobinRouter()
        replicas = [StubReplica(i) for i in range(3)]
        assert router.place(toks(1), replicas).id == 0
        assert router.place(toks(1), replicas[1:]).id == 2  # cursor 1 of [1, 2]
        assert router.place(toks(1), replicas).id == 2

    def test_ignores_all_replica_state(self):
        router = RoundRobinRouter()
        loaded = StubReplica(0, queued=10_000, depth=50)
        idle = StubReplica(1)
        assert router.place(toks(1), [loaded, idle]).id == 0


class TestLeastLoaded:
    def test_fewest_queued_tokens_wins(self):
        router = LeastLoadedRouter()
        replicas = [
            StubReplica(0, queued=100),
            StubReplica(1, queued=10),
            StubReplica(2, queued=50),
        ]
        assert router.place(toks(1), replicas).id == 1

    def test_tie_breaks_busy_time_then_lowest_id(self):
        router = LeastLoadedRouter()
        assert (
            router.place(
                toks(1),
                [StubReplica(0, queued=10, busy=5.0), StubReplica(1, queued=10, busy=1.0)],
            ).id
            == 1
        )
        assert (
            router.place(
                toks(1), [StubReplica(1, queued=10), StubReplica(0, queued=10)]
            ).id
            == 0
        )


class TestPrefixAffinity:
    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError, match="weights must be >= 0"):
            PrefixAffinityRouter(load_weight=-0.1)
        with pytest.raises(ValueError, match="weights must be >= 0"):
            PrefixAffinityRouter(queue_weight=-1.0)

    def test_idle_tie_breaks_to_lowest_id(self):
        router = PrefixAffinityRouter()
        replicas = [StubReplica(2), StubReplica(0), StubReplica(1)]
        assert router.place(toks(1, 2, 3), replicas).id == 0

    def test_placements_attract_matching_prefixes(self):
        """After a placement, the shadow index pulls same-prefix traffic
        to the same replica even though no replica has run a round."""
        router = PrefixAffinityRouter()
        replicas = [StubReplica(0), StubReplica(1)]
        prefix = list(range(32))
        first = router.place(toks(*prefix), replicas)
        router.placed(first, toks(*prefix))
        again = router.place(toks(*(prefix + [99, 98])), replicas)
        assert again.id == first.id

    def test_live_index_match_counts_without_shadow(self):
        router = PrefixAffinityRouter()
        warm = StubReplica(1, live_match={(5, 6, 7): 3})
        cold = StubReplica(0)
        assert router.place(toks(5, 6, 7), [cold, warm]).id == 1

    def test_match_len_takes_max_of_live_and_shadow(self):
        router = PrefixAffinityRouter()
        replica = StubReplica(0, live_match={(1, 2, 3, 4): 2})
        router.placed(replica, toks(1, 2, 3, 4))
        assert router.match_len(replica, toks(1, 2, 3, 4)) == 4

    def test_load_discount_beats_affinity(self):
        """score = match - load_weight*(queued+busy) - queue_weight*depth:
        enough queued work on the warm replica routes past the cache."""
        router = PrefixAffinityRouter(load_weight=0.25, queue_weight=4.0)
        prefix = list(range(16))
        warm = StubReplica(0, queued=200)  # 16 - 0.25*200 = -34
        cold = StubReplica(1)              # 0
        router.placed(warm, toks(*prefix))
        assert router.place(toks(*prefix), [warm, cold]).id == 1
        assert router.score(warm, toks(*prefix)) == pytest.approx(16 - 50.0)
        assert router.score(cold, toks(*prefix)) == pytest.approx(0.0)

    def test_queue_depth_weighted_harder_than_tokens(self):
        router = PrefixAffinityRouter(load_weight=0.25, queue_weight=4.0)
        deep = StubReplica(0, depth=3)
        assert router.score(deep, toks(1)) == pytest.approx(-12.0)

    def test_forget_drops_shadow_state(self):
        router = PrefixAffinityRouter()
        replica = StubReplica(0)
        router.placed(replica, toks(1, 2, 3))
        assert router.match_len(replica, toks(1, 2, 3)) == 3
        router.forget(replica)
        assert router.match_len(replica, toks(1, 2, 3)) == 0


class TestPlacementDeterminism:
    @pytest.mark.parametrize("policy", ROUTING_POLICIES)
    def test_same_trace_same_placements(self, policy):
        """Re-running any policy over the same prompt trace and replica
        states reproduces the identical placement sequence."""
        rng = np.random.default_rng(7)
        trace = [rng.integers(0, 50, size=rng.integers(4, 24)) for _ in range(20)]

        def placements():
            router = make_router(policy)
            replicas = [
                StubReplica(0, queued=12, busy=1.0),
                StubReplica(1),
                StubReplica(2, depth=1),
            ]
            picks = []
            for prompt in trace:
                choice = router.place(prompt, replicas)
                router.placed(choice, prompt)
                picks.append(choice.id)
            return picks

        assert placements() == placements()
