"""Tests for the paged block allocator."""

import pytest

from repro.kvcache.paged import OutOfBlocksError, PagedAllocator


class TestPagedAllocator:
    def test_basic_accounting(self):
        alloc = PagedAllocator(num_blocks=4, block_size=16)
        assert alloc.capacity_tokens == 64
        alloc.append(("s0",), 10)
        assert alloc.used_blocks == 1
        assert alloc.stream_tokens(("s0",)) == 10
        assert alloc.free_tokens() == 3 * 16 + 6

    def test_utilization(self):
        alloc = PagedAllocator(num_blocks=4, block_size=16)
        assert alloc.utilization() == 0.0
        alloc.append(("s0",), 10)
        alloc.append(("s1",), 20)
        # block-granular: 1 + 2 claimed blocks out of 4
        assert alloc.utilization() == pytest.approx(0.75)
        alloc.release(("s1",))
        assert alloc.utilization() == pytest.approx(0.25)

    def test_empty_pool_utilization(self):
        assert PagedAllocator(num_blocks=0, block_size=16).utilization() == 0.0

    def test_fill_partial_block_first(self):
        alloc = PagedAllocator(num_blocks=2, block_size=16)
        alloc.append(("s0",), 10)
        alloc.append(("s0",), 6)  # fits in the first block's slack
        assert alloc.used_blocks == 1
        alloc.append(("s0",), 1)
        assert alloc.used_blocks == 2

    def test_oom_raises_and_rolls_back(self):
        alloc = PagedAllocator(num_blocks=2, block_size=4)
        alloc.append(("a",), 4)
        with pytest.raises(OutOfBlocksError):
            alloc.append(("b",), 9)  # needs 3 blocks, only 1 free
        # rollback: the free block is still available
        assert alloc.free_blocks == 1
        alloc.append(("b",), 4)
        assert alloc.free_blocks == 0

    def test_rollback_preserves_existing_stream(self):
        alloc = PagedAllocator(num_blocks=2, block_size=4)
        alloc.append(("a",), 3)
        with pytest.raises(OutOfBlocksError):
            alloc.append(("a",), 20)
        assert alloc.stream_tokens(("a",)) == 3

    def test_release(self):
        alloc = PagedAllocator(num_blocks=3, block_size=8)
        alloc.append(("a",), 20)
        assert alloc.release(("a",)) == 3
        assert alloc.free_blocks == 3
        assert alloc.stream_tokens(("a",)) == 0
        assert alloc.release(("missing",)) == 0

    def test_multiple_streams(self):
        alloc = PagedAllocator(num_blocks=4, block_size=4)
        alloc.append(("a",), 5)
        alloc.append(("b",), 3)
        assert set(alloc.streams()) == {("a",), ("b",)}
        assert alloc.used_blocks == 3

    def test_zero_append_is_noop(self):
        alloc = PagedAllocator(num_blocks=1, block_size=4)
        alloc.append(("a",), 0)
        assert alloc.used_blocks == 0

    def test_zero_append_registers_no_phantom_stream(self):
        """Regression: ``append(key, 0)`` on a fresh key used to leave a
        zero-block entry in ``streams()`` forever, polluting every
        victim-selection walk over it."""
        alloc = PagedAllocator(num_blocks=2, block_size=4)
        alloc.append(("ghost",), 0)
        assert alloc.streams() == []
        assert alloc.stream_tokens(("ghost",)) == 0
        assert alloc.free_tokens() == 8
        # releasing the never-registered key is a clean no-op
        assert alloc.release(("ghost",)) == 0
        # zero-append to an EXISTING stream stays a plain no-op
        alloc.append(("a",), 3)
        alloc.append(("a",), 0)
        assert alloc.streams() == [("a",)]
        assert alloc.stream_tokens(("a",)) == 3

    def test_streams_never_lists_zero_block_entries(self):
        """Every listed stream owns at least one block."""
        alloc = PagedAllocator(num_blocks=4, block_size=4)
        alloc.append(("a",), 0)
        alloc.append(("b",), 5)
        alloc.release_tail(("b",), 5)
        alloc.append(("c",), 2)
        assert alloc.streams() == [("c",)]

    def test_release_unknown_is_noop(self):
        alloc = PagedAllocator(num_blocks=1, block_size=4)
        assert alloc.release(("nope",)) == 0
        assert alloc.free_blocks == 1

    def test_release_tail_frees_whole_blocks_only(self):
        alloc = PagedAllocator(num_blocks=4, block_size=4)
        alloc.append(("a",), 13)  # 4 blocks: 4+4+4+1
        assert alloc.release_tail(("a",), 1) == 1  # 12 left: exactly 3 blocks
        assert alloc.stream_tokens(("a",)) == 12
        assert alloc.release_tail(("a",), 2) == 0  # 10 left: still 3 blocks
        assert alloc.stream_tokens(("a",)) == 10
        assert alloc.release_tail(("a",), 7) == 2  # 3 left: 1 block
        assert alloc.free_blocks == 3
        # slack in the kept partial block is appendable again
        assert alloc.free_tokens() == 3 * 4 + 1

    def test_release_tail_to_zero_deregisters(self):
        alloc = PagedAllocator(num_blocks=2, block_size=4)
        alloc.append(("a",), 6)
        assert alloc.release_tail(("a",), 6) == 2
        assert alloc.streams() == []
        assert alloc.free_blocks == 2

    def test_release_tail_validation(self):
        alloc = PagedAllocator(num_blocks=2, block_size=4)
        alloc.append(("a",), 3)
        with pytest.raises(ValueError):
            alloc.release_tail(("a",), -1)
        with pytest.raises(ValueError):
            alloc.release_tail(("a",), 4)  # more than stored
        with pytest.raises(ValueError):
            alloc.release_tail(("missing",), 1)
        assert alloc.release_tail(("a",), 0) == 0
        assert alloc.release_tail(("missing",), 0) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            PagedAllocator(num_blocks=-1, block_size=4)
        with pytest.raises(ValueError):
            PagedAllocator(num_blocks=1, block_size=0)
        alloc = PagedAllocator(num_blocks=1, block_size=4)
        with pytest.raises(ValueError):
            alloc.append(("a",), -1)
