"""Extension experiment: preemption remedies under KV capacity pressure.

The runtime's original answer to KV pressure is vLLM-style
*recomputation*: evict a whole conversation and re-prefill its full
history on resume. DistServe/Mooncake-class systems trade HBM for
cheaper remedies instead — dropping only the newest KV blocks
(*tail-trim*: resume re-prefills just the trimmed suffix) or swapping
the victim's KV to host memory over PCIe (*swap*: import it back before
resume, no recompute at all). This experiment replays one multi-session
capacity-pressure trace through the continuous-batching runtime under
all three ``--preemption`` remedies at a sweep of per-rank KV
capacities, with rounds priced for Llama3 405B by the calibrated clock
(prefill at CP-pool TTFT rates, swaps at PCIe bandwidth).

The headline: recompute pays for every eviction twice — once in the
evicted request's re-prefill and again in the queueing delay it inflicts
on everyone behind it — which lands squarely on tail TTFT. Trim halves
that bill (only suffixes re-prefill); swap removes it (a PCIe round
trip costs microseconds per token where re-prefill costs ~0.1 ms/token
at 405B scale). Every mode decodes bit-identical tokens — the remedies
change *timing only*, pinned by ``tests/properties/test_prop_runtime``.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.model.config import llama3_405b_config, tiny_config
from repro.perf.hardware import HostSpec, gtt_host
from repro.perf.latency import LatencySimulator

#: The remedies compared, in sweep order.
MODES = ("recompute", "trim", "swap")


def run(
    host: HostSpec | None = None,
    *,
    n_sessions: int = 5,
    turns: int = 3,
    first_prompt: int = 80,
    world_size: int = 2,
    capacities: tuple[int, ...] = (160, 128, 96),
    priced_ranks: int = 4,
    seed: int = 11,
) -> ExperimentResult:
    """Recompute vs tail-trim vs CPU-swap on the same pressured trace.

    Numerics run the tiny model at ``world_size``; the step clock prices
    rounds (and PCIe swaps) for Llama3 405B on ``priced_ranks`` CP
    hosts. Every (capacity, mode) cell replays the *same* trace and the
    decoded tokens are asserted identical across modes — only the
    remedy's timing differs.
    """
    from repro.core.engine import ContextParallelEngine
    from repro.model.llama import LlamaModel
    from repro.runtime import ContinuousBatchingRuntime, SimulatedStepClock
    from repro.serving.scheduler import ChunkedPrefillPolicy
    from repro.workloads.generator import WorkloadGenerator
    from repro.workloads.replay import submit_scripts_to_runtime

    host = host if host is not None else gtt_host()
    model = LlamaModel(tiny_config(), seed=0)
    gen = WorkloadGenerator(model.config.vocab_size, seed=seed)
    scripts = [
        gen.conversation(
            sid, turns=turns, first_prompt=first_prompt,
            followup_range=(8, 16), response_range=(4, 6),
        )
        for sid in range(n_sessions)
    ]
    clock = SimulatedStepClock(
        LatencySimulator(llama3_405b_config(), host), n_ranks=priced_ranks
    )

    res = ExperimentResult(
        experiment_id="Preemption modes",
        title=(
            f"{n_sessions} sessions x {turns} turns under KV pressure: "
            f"recompute vs tail-trim vs CPU swap "
            f"(CP{world_size} numerics, CP{priced_ranks} 405B pricing)"
        ),
        headers=[
            "KV capacity/rank", "preemption",
            "full evicts", "trims", "swaps out/in",
            "prefill rounds",
            "p50 TTFT (s)", "p95 TTFT (s)", "p95 TTIT (ms)",
            "makespan (s)", "goodput (tok/s)",
        ],
    )

    for capacity in capacities:
        tokens_by_mode = {}
        for mode in MODES:
            engine = ContextParallelEngine(
                model, world_size=world_size, capacity_tokens=capacity
            )
            runtime = ContinuousBatchingRuntime(
                engine,
                policy=ChunkedPrefillPolicy(
                    chunk_tokens=16, max_tokens_per_round=32, max_seqs_per_round=4
                ),
                clock=clock,
                preemption=mode,
            )
            rids = submit_scripts_to_runtime(runtime, scripts)
            report = runtime.run(max_steps=400_000)
            tokens_by_mode[mode] = {
                script.seq_id: [report.generated(rid) for rid in rids[script.seq_id]]
                for script in scripts
            }
            m = report.metrics
            res.add_row(
                capacity,
                mode,
                m.preemptions,
                m.trims,
                f"{m.swaps_out}/{m.swaps_in}",
                report.prefill_rounds,
                m.percentile_ttft(50),
                m.percentile_ttft(95),
                m.percentile_ttit(95) * 1e3,
                report.makespan,
                report.tokens_per_second(),
            )
        if any(tokens_by_mode[m] != tokens_by_mode["recompute"] for m in MODES):
            raise AssertionError(
                "serving-level exactness violated: preemption remedies "
                f"changed decoded tokens at capacity {capacity}"
            )

    res.notes.append(
        "Same trace, bit-identical tokens in every cell (asserted): the "
        "remedy changes what an eviction costs, never what it computes."
    )
    p95 = res.column("p95 TTFT (s)")
    by_mode = {mode: p95[i :: len(MODES)] for i, mode in enumerate(MODES)}
    cheaper_always_win = all(
        t < r and s < r
        for r, t, s in zip(by_mode["recompute"], by_mode["trim"], by_mode["swap"])
    )
    verdict = (
        "trim and swap beat recompute at every capacity: recompute's "
        "full re-prefills queue ahead of waiting first tokens, trim "
        "re-prefills only trimmed suffixes, and swap replaces recompute "
        "with a PCIe round trip priced in microseconds per token."
        if cheaper_always_win
        else "the cheaper remedies did NOT separate from recompute at "
        "every swept capacity — this parameterization leaves too little "
        "KV pressure for the remedy choice to matter."
    )
    res.notes.append(
        "p95 TTFT by mode (across the capacity sweep): "
        + "; ".join(
            f"{mode}: " + "/".join(f"{v:.2f}s" for v in by_mode[mode])
            for mode in MODES
        )
        + " — " + verdict
    )
    return res
