"""Tests for block-table KV storage."""

import numpy as np
import pytest

from repro.attention.flash import flash_attention
from repro.kvcache.block_store import BlockStore
from repro.kvcache.paged import OutOfBlocksError

from helpers import make_qkv


def store(num_blocks=16, block_size=4):
    return BlockStore(num_blocks, block_size, n_kv_heads=2, head_dim=8)


class TestBlockStore:
    def test_roundtrip_in_position_order(self, rng):
        s = store()
        _, k, v = make_qkv(rng, 1, 10, head_dim=8)
        s.append(0, k, v, np.arange(10))
        got = s.gather([0])
        np.testing.assert_array_equal(got.k, k)
        np.testing.assert_array_equal(got.v, v)
        np.testing.assert_array_equal(got.positions, np.arange(10))

    def test_chunked_appends_cross_block_boundaries(self, rng):
        s = store(block_size=4)
        _, k, v = make_qkv(rng, 1, 11, head_dim=8)
        s.append(0, k[:3], v[:3], np.arange(3))
        s.append(0, k[3:7], v[3:7], np.arange(3, 7))
        s.append(0, k[7:], v[7:], np.arange(7, 11))
        got = s.gather([0])
        np.testing.assert_array_equal(got.k, k)
        assert s.tokens(0) == 11
        assert len(s.block_tables[0]) == 3  # ceil(11 / 4)

    def test_interleaved_sequences_isolated(self, rng):
        s = store(block_size=4)
        _, ka, va = make_qkv(rng, 1, 6, head_dim=8)
        _, kb, vb = make_qkv(rng, 1, 5, head_dim=8)
        s.append(0, ka[:3], va[:3], np.arange(3))
        s.append(1, kb[:2], vb[:2], np.arange(2))
        s.append(0, ka[3:], va[3:], np.arange(3, 6))
        s.append(1, kb[2:], vb[2:], np.arange(2, 5))
        np.testing.assert_array_equal(s.gather([0]).k, ka)
        np.testing.assert_array_equal(s.gather([1]).k, kb)

    def test_attention_over_gathered_blocks_exact(self, rng):
        """Paged access yields identical attention to contiguous storage."""
        s = store(block_size=3)
        q, k, v = make_qkv(rng, 4, 13, head_dim=8)
        s.append(0, k, v, np.arange(13))
        got = s.gather([0])
        paged = flash_attention(
            q, got.k, got.v,
            q_pos=np.arange(9, 13), k_pos=got.positions,
        )
        contiguous = flash_attention(q, k, v, q_pos=np.arange(9, 13), k_pos=np.arange(13))
        np.testing.assert_allclose(paged.out, contiguous.out, atol=1e-12)

    def test_oom_is_transactional(self, rng):
        s = store(num_blocks=2, block_size=4)
        _, k, v = make_qkv(rng, 1, 8, head_dim=8)
        s.append(0, k, v, np.arange(8))
        _, k2, v2 = make_qkv(rng, 1, 4, head_dim=8)
        with pytest.raises(OutOfBlocksError):
            s.append(1, k2, v2, np.arange(4))
        # pool unchanged; sequence 0 intact
        np.testing.assert_array_equal(s.gather([0]).k, k)
        assert s.tokens(1) == 0

    def test_release_recycles_blocks(self, rng):
        s = store(num_blocks=2, block_size=4)
        _, k, v = make_qkv(rng, 1, 8, head_dim=8)
        s.append(0, k, v, np.arange(8))
        s.release(0)
        s.append(1, k, v, np.arange(8))  # reuses the freed blocks
        np.testing.assert_array_equal(s.gather([1]).k, k)

    def test_fragmentation_accounting(self, rng):
        s = store(block_size=4)
        _, k, v = make_qkv(rng, 1, 5, head_dim=8)
        s.append(0, k, v, np.arange(5))
        # 2 blocks allocated (8 slots), 5 used -> 3/8 wasted
        assert s.fragmentation() == pytest.approx(3 / 8)

    def test_empty_gather(self):
        got = store().gather()
        assert len(got) == 0

    def test_validation(self, rng):
        s = store()
        with pytest.raises(ValueError):
            s.append(0, np.zeros((2, 3, 8)), np.zeros((2, 3, 8)), np.arange(2))
        with pytest.raises(ValueError):
            _, k, v = make_qkv(rng, 1, 2, head_dim=8)
            s.append(0, k, v, np.arange(3))
