"""Trace serialization: deterministic JSONL and Chrome/Perfetto JSON.

JSONL is the canonical format — one ``TraceEvent.to_dict()`` per line,
keys sorted, so a deterministic event stream serializes to a
byte-identical file (the trace-determinism property diffs these bytes).

The Chrome format targets ``chrome://tracing`` / https://ui.perfetto.dev:

- each **replica** is a process (``pid``; bare runtimes land on pid 0),
- each **pool** is a low-numbered thread track (``prefill``/``decode``
  rounds render as span rails showing pool occupancy),
- each **request** is its own thread track (``tid = 100 + request_id``)
  where that request's prefill chunks, wire transfers, swaps, and stall
  spans nest, with instants (admit, first token, preemptions, finish)
  pinned on the same rail.

Span nesting on a track follows Chrome's stacking rule — any two spans
on one ``(pid, tid)`` must be disjoint or properly contained.
:func:`validate_chrome` checks exactly that (plus parseability), and CI
runs it over a smoke trace.
"""

from __future__ import annotations

import json

from repro.obs.trace import TraceEvent

#: Fixed thread-track ids for pool rails; request rails start above these.
_POOL_TIDS = {"prefill": 1, "decode": 2, "wire": 3, "host": 4}
_REQUEST_TID_BASE = 100
#: Simulated seconds -> trace microseconds.
_US = 1_000_000.0


def dumps_jsonl(events: list[TraceEvent]) -> str:
    """Serialize to JSONL text (sorted keys ⇒ byte-deterministic)."""
    return "".join(json.dumps(e.to_dict(), sort_keys=True) + "\n" for e in events)


def write_jsonl(events: list[TraceEvent], path: str) -> None:
    with open(path, "w") as fh:
        fh.write(dumps_jsonl(events))


def load_jsonl(path: str) -> list[TraceEvent]:
    events: list[TraceEvent] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(TraceEvent.from_dict(json.loads(line)))
    return events


def _track(event: TraceEvent) -> tuple[int, int, str]:
    """``(pid, tid, thread_name)`` for an event.

    Pool-level round spans go on pool rails; anything tied to a request
    goes on that request's rail; remaining pool-labeled events (e.g.
    stream scheduling instants with no request) fall back to their
    pool's rail; the rest land on tid 0 ("scheduler").
    """
    pid = event.replica if event.replica is not None else 0
    if event.name in ("prefill_round", "decode_round"):
        return pid, _POOL_TIDS[event.pool or "prefill"], f"pool {event.pool}"
    if event.request_id is not None:
        return pid, _REQUEST_TID_BASE + event.request_id, f"req {event.request_id}"
    if event.pool in _POOL_TIDS:
        return pid, _POOL_TIDS[event.pool], f"pool {event.pool}"
    return pid, 0, "scheduler"


def to_chrome(events: list[TraceEvent]) -> dict:
    """Chrome/Perfetto ``trace.json`` object (``traceEvents`` array)."""
    trace_events: list[dict] = []
    seen_pids: dict[int, None] = {}
    seen_tracks: dict[tuple[int, int], str] = {}
    body: list[dict] = []
    for event in events:
        pid, tid, thread_name = _track(event)
        seen_pids.setdefault(pid, None)
        seen_tracks.setdefault((pid, tid), thread_name)
        args = dict(event.attrs)
        if event.seq_id is not None:
            args["seq_id"] = event.seq_id
        entry: dict = {
            "name": event.name,
            "pid": pid,
            "tid": tid,
            "ts": event.t * _US,
        }
        if args:
            entry["args"] = args
        if event.phase == "span":
            entry["ph"] = "X"
            # dur is derived so ts + dur reproduces (t + dur) * _US
            # exactly (same-magnitude subtraction is exact): back-to-back
            # spans whose simulated seconds abut exactly then abut
            # exactly in microseconds too, keeping the stacking check
            # honest instead of tripping on conversion dust
            entry["dur"] = (event.t + event.dur) * _US - entry["ts"]
            entry["cat"] = event.pool or "runtime"
        else:
            entry["ph"] = "i"
            entry["s"] = "t"
            entry["cat"] = event.pool or "runtime"
        body.append(entry)
    for pid in seen_pids:
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"replica {pid}"},
            }
        )
    for (pid, tid), thread_name in seen_tracks.items():
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": thread_name},
            }
        )
        # sort_index keeps pool rails above request rails in the UI
        trace_events.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"sort_index": tid},
            }
        )
    trace_events.extend(body)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome(events: list[TraceEvent], path: str) -> None:
    with open(path, "w") as fh:
        json.dump(to_chrome(events), fh, sort_keys=True)
        fh.write("\n")


def validate_chrome(obj: dict) -> list[str]:
    """Structural checks on a Chrome trace object; returns problems.

    Verifies the container shape, required per-event keys, and the span
    stacking rule: complete ("X") events sharing a ``(pid, tid)`` track
    must be disjoint or properly contained (a tolerance of 1e-9 us
    absorbs float dust at span borders).
    """
    problems: list[str] = []
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    spans: dict[tuple[int, int], list[tuple[float, float, str]]] = {}
    for i, e in enumerate(events):
        if not isinstance(e, dict) or "ph" not in e or "pid" not in e or "tid" not in e:
            problems.append(f"event {i} malformed: {e!r}")
            continue
        if e["ph"] == "X":
            if "ts" not in e or "dur" not in e:
                problems.append(f"event {i} ({e.get('name')}) X without ts/dur")
                continue
            if e["dur"] < 0:
                problems.append(f"event {i} ({e.get('name')}) negative dur {e['dur']}")
                continue
            spans.setdefault((e["pid"], e["tid"]), []).append(
                (float(e["ts"]), float(e["ts"]) + float(e["dur"]), str(e.get("name")))
            )
    eps = 1e-9
    for track in sorted(spans):
        stack: list[tuple[float, float, str]] = []
        for start, end, name in sorted(spans[track], key=lambda s: (s[0], -(s[1] - s[0]))):
            while stack and start >= stack[-1][1] - eps:
                stack.pop()
            if stack and end > stack[-1][1] + eps:
                problems.append(
                    f"track pid={track[0]} tid={track[1]}: span {name!r} "
                    f"[{start}, {end}] overlaps {stack[-1][2]!r} "
                    f"[{stack[-1][0]}, {stack[-1][1]}] without nesting"
                )
                continue
            stack.append((start, end, name))
    return problems
