"""Shared test helpers (importable as `helpers` via pytest pythonpath)."""

from __future__ import annotations

import numpy as np

from repro.core.sharding import SequenceSpec, ShardedKV, ShardedQueries, shard_sequences
from repro.runtime.state import RequestState


def assert_exact_vs_sequential(
    report,
    rids: dict[int, list[int]],
    reference: dict[int, list[list[int]]],
    *,
    completed_only: bool = False,
    context: str = "",
) -> None:
    """The serving-exactness bit-equality harness.

    Compares a runtime/fleet report's decoded streams against a
    sequential per-conversation replay (the shapes
    :func:`repro.workloads.replay.submit_scripts_to_runtime` and
    :func:`repro.workloads.replay.replay_scripts_sequential` produce).

    Args:
        report: a ``RuntimeReport`` or ``FleetReport`` (both expose
            ``records`` and ``generated``).
        rids: ``{seq_id: [request_id per turn]}``.
        reference: ``{seq_id: [expected tokens per turn]}``.
        completed_only: ``False`` (default) asserts every request
            reached ``FINISHED`` and every stream matches — the
            fault-free contract. ``True`` rescopes to fault schedules:
            only ``FINISHED`` turns are compared, and a non-finished
            turn's conversation must not finish any *later* turn (a
            shed chain sheds its whole tail).
        context: appended to failure messages (fault plans, policies,
            counters — whatever identifies the schedule that diverged).
    """
    suffix = f" ({context})" if context else ""
    for seq_id, turn_rids in rids.items():
        for i, rid in enumerate(turn_rids):
            rec = report.records[rid]
            if rec.state is RequestState.FINISHED:
                got = list(report.generated(rid))
                want = list(reference[seq_id][i])
                assert got == want, (
                    f"seq {seq_id} turn {i} diverged from sequential "
                    f"replay: {got} != {want}{suffix}"
                )
            elif completed_only:
                later = [report.records[r] for r in turn_rids[i + 1 :]]
                assert all(
                    rec2.state is not RequestState.FINISHED for rec2 in later
                ), (
                    f"seq {seq_id} finished a turn after turn {i} "
                    f"ended {rec.state}{suffix}"
                )
            else:
                raise AssertionError(
                    f"seq {seq_id} turn {i} did not finish: "
                    f"{rec.state}{suffix}"
                )


def assert_leak_free(target, *, context: str = "") -> None:
    """Post-drain KV audit for a runtime or a whole fleet.

    Asserts the engines' KV bookkeeping audits clean (no orphaned KV,
    leaked paged blocks/refcounts, dangling radix anchors or stale
    pins) and that no host-side swap payload outlived the drain —
    per replica when ``target`` is a :class:`repro.cluster.ReplicaFleet`.
    """
    suffix = f" ({context})" if context else ""
    if hasattr(target, "kv_leak_reports"):  # a fleet: audit every replica
        for replica_id, leaks in target.kv_leak_reports().items():
            assert not leaks, (
                f"replica {replica_id} leaked KV state after drain"
                f"{suffix}: {leaks}"
            )
    else:
        leaks = target.kv_leak_report()
        assert not leaks, f"KV state leaked after drain{suffix}: {leaks}"


def make_qkv(
    rng: np.random.Generator,
    tq: int,
    tk: int,
    n_heads: int = 8,
    n_kv_heads: int = 2,
    head_dim: int = 16,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Random GQA tensors with the library's token-major layout."""
    q = rng.standard_normal((tq, n_heads, head_dim))
    k = rng.standard_normal((tk, n_kv_heads, head_dim))
    v = rng.standard_normal((tk, n_kv_heads, head_dim))
    return q, k, v


def shard_qkv_full_prefill(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    world_size: int,
    *,
    seq_id: int = 0,
) -> tuple[list[ShardedQueries], list[ShardedKV]]:
    """Load-balance shard one full-prefill sequence across ranks."""
    t = q.shape[0]
    shards = shard_sequences([SequenceSpec(seq_id, t)], world_size)
    queries, kvs = [], []
    for pos, sid in shards:
        queries.append(ShardedQueries(q=q[pos], positions=pos, seq_ids=sid))
        kvs.append(ShardedKV(k=k[pos], v=v[pos], positions=pos, seq_ids=sid))
    return queries, kvs


def shard_varseq_full_prefill(
    per_seq_qkv: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]],
    world_size: int,
) -> tuple[list[ShardedQueries], list[ShardedKV]]:
    """Load-balance shard a fused batch of full-prefill sequences."""
    specs = [SequenceSpec(sid, qkv[0].shape[0]) for sid, qkv in sorted(per_seq_qkv.items())]
    shards = shard_sequences(specs, world_size)
    queries, kvs = [], []
    for pos, sids in shards:
        qs, ks, vs = [], [], []
        for p, sid in zip(pos, sids):
            q, k, v = per_seq_qkv[int(sid)]
            qs.append(q[int(p)])
            ks.append(k[int(p)])
            vs.append(v[int(p)])
        if qs:
            queries.append(
                ShardedQueries(q=np.stack(qs), positions=pos, seq_ids=sids)
            )
            kvs.append(
                ShardedKV(k=np.stack(ks), v=np.stack(vs), positions=pos, seq_ids=sids)
            )
        else:
            nh, dh = next(iter(per_seq_qkv.values()))[0].shape[1:]
            nkv = next(iter(per_seq_qkv.values()))[1].shape[1]
            queries.append(
                ShardedQueries(
                    q=np.zeros((0, nh, dh)),
                    positions=np.zeros(0, dtype=np.int64),
                    seq_ids=np.zeros(0, dtype=np.int64),
                )
            )
            kvs.append(ShardedKV.empty(nkv, dh))
    return queries, kvs
