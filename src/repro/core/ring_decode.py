"""Batched ring pass-Q decode — paper Algorithm 4 (§3.6).

Decode emits exactly one token per sequence per iteration. Two problems if
those tokens were always assigned to the same rank:

1. That rank's KV cache grows every step while the others stay flat — it
   OOMs long before the aggregate CP cache capacity is reached.
2. Its attention/comms load is higher every single step.

The paper's fix is **round-robin assignment offset by one each iteration**:
at decode step ``t``, the token of batch slot ``b`` is owned by rank
``(b + t) mod N``, so generated KV spreads evenly across all CP ranks. With
``T = 1`` per sequence, circulating Q (plus the batch ids, Algorithm 4) is
essentially always cheaper than circulating KV (Equation 1), so decode uses
the pass-Q ring followed by the same permute + All2All + merge as prefill.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attention.flash import AttentionResult, flash_attention
from repro.attention.masks import PAD_SEQ
from repro.core.merge import merge_partials
from repro.core.ring_skip import kv_reach, partial_fully_masked, query_reach
from repro.core.sharding import ShardedKV, ShardedQueries
from repro.distributed.process_group import SimProcessGroup
from repro.distributed.ring import source_rank_at_step


@dataclass(frozen=True)
class DecodeBatch:
    """One decode iteration's inputs: one query token per active sequence.

    Attributes:
        q: ``[B, NH, DH]`` query projections of the freshly sampled tokens.
        positions: ``[B]`` absolute position of each new token (== current
            sequence length before this step).
        seq_ids: ``[B]`` sequence ids (must be unique within the batch).
    """

    q: np.ndarray
    positions: np.ndarray
    seq_ids: np.ndarray

    def __post_init__(self) -> None:
        if self.q.ndim != 3:
            raise ValueError(f"q must be [B, NH, DH], got {self.q.shape}")
        b = self.q.shape[0]
        if self.positions.shape != (b,) or self.seq_ids.shape != (b,):
            raise ValueError("positions and seq_ids must be [B]")
        if len(np.unique(self.seq_ids)) != b:
            raise ValueError("decode batch must contain each sequence at most once")

    @property
    def batch_size(self) -> int:
        return self.q.shape[0]


def round_robin_assignment(batch_size: int, world_size: int, step: int) -> np.ndarray:
    """Rank owning each batch slot at decode iteration ``step``.

    ``rank(b) = (b + step) mod N`` — the offset-by-one rotation that levels
    KV-cache growth across ranks (§3.6).
    """
    if batch_size < 0:
        raise ValueError(f"batch_size must be >= 0, got {batch_size}")
    if world_size < 1:
        raise ValueError(f"world_size must be >= 1, got {world_size}")
    if step < 0:
        raise ValueError(f"step must be >= 0, got {step}")
    return (np.arange(batch_size, dtype=np.int64) + step) % world_size


def ring_passq_decode(
    group: SimProcessGroup,
    kv_shards: list[ShardedKV],
    batch: DecodeBatch,
    *,
    step: int = 0,
    scale: float | None = None,
    block_size: int = 128,
    num_kv_splits: int = 1,
    mask_fn=None,
    compute_dtype=None,
    skip_masked_shards: bool = True,
) -> tuple[AttentionResult, np.ndarray]:
    """Batched ring pass-Q decode (Algorithm 4).

    Args:
        group: lockstep process group.
        kv_shards: per-rank resident KV shards covering all sequences
            (cached prompt + previously decoded tokens). The new tokens'
            own KV must be *included* already (a decode token attends to
            itself); the caller appends it to the owning rank's cache
            before calling, mirroring the production engine.
        batch: this iteration's single-token-per-sequence queries.
        step: decode iteration index, drives the round-robin offset.
        scale: attention score scale (default ``1/sqrt(DH)``).
        block_size: KV block size of the local kernel.
        num_kv_splits: Flash-Decoding style split-KV factor for the local
            kernel (the paper uses 256 splits on H100).
        mask_fn: optional absolute-coordinate mask override — e.g. a
            windowed/sink mask for StreamingLLM-style decode; composes with
            the ring because masks never depend on storage order.
        compute_dtype: kernel arithmetic dtype forwarded to the local flash
            kernel (merge accumulation stays float64; default exact fp64).
        skip_masked_shards: replace provably all-masked ring-step partials
            with the exact identity element instead of calling the kernel —
            in decode this mostly fires for all-pad query payloads (when
            ``B`` is not a multiple of ``N``) and for empty or unrelated
            KV shards. Disabled under ``mask_fn``.

    Returns:
        ``(result, assignment)``: ``result`` holds the exact attention
        output/LSE in *original batch order* (``[B, NH, DH]`` / ``[B, NH]``),
        and ``assignment[b]`` is the rank that owned slot ``b`` this step
        (where its KV was appended).
    """
    n = group.world_size
    if len(kv_shards) != n:
        raise ValueError(f"need one KV shard per rank, got {len(kv_shards)} for world {n}")
    b = batch.batch_size
    assignment = round_robin_assignment(b, n, step)

    # Pad the per-rank query count to ceil(B / N): the paper notes this
    # padding inflates decode work when B is not divisible by N (Table 8).
    per_rank = -(-b // n) if b else 0
    nh, dh = batch.q.shape[1], batch.q.shape[2]

    local: list[dict] = []
    for rank in range(n):
        slots = np.nonzero(assignment == rank)[0]
        pad = per_rank - slots.shape[0]
        payload = {
            "q": np.concatenate([batch.q[slots], np.zeros((pad, nh, dh))], axis=0),
            "pos": np.concatenate([batch.positions[slots], np.zeros(pad, dtype=np.int64)]),
            "seq": np.concatenate([batch.seq_ids[slots], np.full(pad, PAD_SEQ, dtype=np.int64)]),
            "slots": np.concatenate([slots, np.full(pad, -1, dtype=np.int64)]),
        }
        local.append(payload)

    traveling = list(local)
    computed: list[dict[int, AttentionResult]] = [dict() for _ in range(n)]

    # Causal-reach summaries, one scan per shard (local[s] is the payload
    # originating at rank s; the ring schedule recovers the origin later).
    skip = skip_masked_shards and mask_fn is None
    if skip:
        q_summary = [query_reach(p["pos"], p["seq"]) for p in local]
        k_summary = [kv_reach(kv.positions, kv.seq_ids) for kv in kv_shards]

    for j in range(n):
        for rank in range(n):
            src = source_rank_at_step(rank, j, n)
            q = traveling[rank]
            if skip and partial_fully_masked(q_summary[src], k_summary[rank]):
                computed[rank][src] = AttentionResult.empty(per_rank, nh, dh)
                continue
            kv = kv_shards[rank]
            computed[rank][src] = flash_attention(
                q["q"],
                kv.k,
                kv.v,
                q_pos=q["pos"],
                k_pos=kv.positions,
                q_seq=q["seq"],
                k_seq=kv.seq_ids,
                causal=True,
                scale=scale,
                block_size=block_size,
                num_kv_splits=num_kv_splits,
                mask_fn=mask_fn,
                compute_dtype=compute_dtype,
            )
        if j < n - 1:
            traveling = group.ring_shift(traveling, step=j, tag="decode-passq")

    # Permute + All2All partial outputs back to the source ranks.
    matrix = [
        [(computed[holder][origin].out, computed[holder][origin].lse) for origin in range(n)]
        for holder in range(n)
    ]
    restored = group.all_to_all(matrix, tag="decode-merge")

    out = np.zeros((b, nh, dh), dtype=np.float64)
    lse = np.full((b, nh), -np.inf, dtype=np.float64)
    for rank in range(n):
        merged = merge_partials([AttentionResult(out=o, lse=l) for o, l in restored[rank]])
        slots = local[rank]["slots"]
        valid = slots >= 0
        out[slots[valid]] = merged.out[valid]
        lse[slots[valid]] = merged.lse[valid]
    return AttentionResult(out=out, lse=lse), assignment
