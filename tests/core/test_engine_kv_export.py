"""Tests for engine KV export/import (the disaggregated transfer payload).

The contract: exporting a sequence's cached KV from one engine and
importing it into another — of *any* world size — reproduces the source
engine's numerics exactly, because the ring algorithms are exact for any
sharding. Delta exports (``start_pos > 0``) cover the runtime's
follow-up-turn path where the decode pool already holds a prefix.
"""

import numpy as np
import pytest

from repro.core.engine import ContextParallelEngine
from repro.kvcache.cache import CacheCapacityError
from repro.model.config import tiny_config
from repro.model.llama import LlamaModel

MODEL = LlamaModel(tiny_config(), seed=0)
VOCAB = MODEL.config.vocab_size


def prompt(n, seed=0):
    return (np.arange(n) * 7 + seed) % VOCAB


class TestExport:
    def test_export_covers_full_context(self):
        engine = ContextParallelEngine(MODEL, world_size=3)
        engine.prefill({0: prompt(20)})
        export = engine.export_kv(0)
        assert export.start_pos == 0
        assert export.tokens == 20
        assert export.end_pos == 20
        assert np.array_equal(export.positions, np.arange(20))
        assert len(export.layers) == MODEL.config.n_layers
        for k, v in export.layers:
            assert k.shape == (20, MODEL.config.n_kv_heads, MODEL.config.head_dim)
            assert v.shape == k.shape

    def test_delta_export(self):
        engine = ContextParallelEngine(MODEL, world_size=2)
        engine.prefill({0: prompt(16)})
        engine.prefill({0: prompt(8, seed=3)})  # partial prefill extends to 24
        export = engine.export_kv(0, start_pos=16)
        assert export.tokens == 8
        assert np.array_equal(export.positions, np.arange(16, 24))

    def test_zero_token_export(self):
        engine = ContextParallelEngine(MODEL, world_size=2)
        engine.prefill({0: prompt(12)})
        export = engine.export_kv(0, start_pos=12)
        assert export.tokens == 0
        assert export.positions.size == 0

    def test_export_position_order_is_sharding_independent(self):
        """Exports from different world sizes hold identical tensors."""
        a = ContextParallelEngine(MODEL, world_size=1)
        b = ContextParallelEngine(MODEL, world_size=3)
        a.prefill({0: prompt(18)})
        b.prefill({0: prompt(18)})
        ea, eb = a.export_kv(0), b.export_kv(0)
        for (ka, va), (kb, vb) in zip(ea.layers, eb.layers):
            np.testing.assert_allclose(ka, kb, atol=1e-12, rtol=0)
            np.testing.assert_allclose(va, vb, atol=1e-12, rtol=0)

    def test_unknown_sequence_raises(self):
        engine = ContextParallelEngine(MODEL, world_size=2)
        with pytest.raises(KeyError):
            engine.export_kv(5)

    def test_start_pos_out_of_range_raises(self):
        engine = ContextParallelEngine(MODEL, world_size=2)
        engine.prefill({0: prompt(8)})
        with pytest.raises(ValueError):
            engine.export_kv(0, start_pos=9)


class TestImport:
    @pytest.mark.parametrize("world_src,world_dst", [(1, 2), (2, 1), (2, 3), (3, 2)])
    def test_import_reproduces_decode_logits(self, world_src, world_dst):
        """Decoding on the importing engine matches decoding on an engine
        that prefilled the prompt itself — across world sizes."""
        toks = prompt(24)
        src = ContextParallelEngine(MODEL, world_size=world_src)
        out = src.prefill({0: toks})
        next_tok = int(np.argmax(out.last_logits(0)))

        dst = ContextParallelEngine(MODEL, world_size=world_dst)
        dst.import_kv(src.export_kv(0))
        assert dst.context_length(0) == 24

        ref = ContextParallelEngine(MODEL, world_size=world_dst)
        ref.prefill({0: toks})
        got = dst.decode({0: next_tok}).logits[0]
        want = ref.decode({0: next_tok}).logits[0]
        np.testing.assert_allclose(got, want, atol=1e-9, rtol=0)

    def test_delta_import_extends_prefix(self):
        """Importing only the positions the destination lacks produces the
        same cache state as prefilling everything locally."""
        first, second = prompt(16), prompt(8, seed=5)
        src = ContextParallelEngine(MODEL, world_size=2)
        src.prefill({0: first})
        src.prefill({0: second})

        dst = ContextParallelEngine(MODEL, world_size=3)
        dst.prefill({0: first})  # destination already resident to 16
        dst.import_kv(src.export_kv(0, start_pos=16))
        assert dst.context_length(0) == 24

        ref = ContextParallelEngine(MODEL, world_size=3)
        ref.prefill({0: first})
        ref.prefill({0: second})
        probe = np.array([1, 2, 3], dtype=np.int64)
        np.testing.assert_allclose(
            dst.prefill({0: probe}).last_logits(0),
            ref.prefill({0: probe}).last_logits(0),
            atol=1e-9, rtol=0,
        )

    def test_import_position_mismatch_raises(self):
        src = ContextParallelEngine(MODEL, world_size=2)
        src.prefill({0: prompt(16)})
        dst = ContextParallelEngine(MODEL, world_size=2)
        with pytest.raises(ValueError, match="starts at"):
            dst.import_kv(src.export_kv(0, start_pos=4))

    def test_zero_token_import_is_noop(self):
        src = ContextParallelEngine(MODEL, world_size=2)
        src.prefill({0: prompt(8)})
        dst = ContextParallelEngine(MODEL, world_size=2)
        dst.prefill({0: prompt(8)})
        dst.import_kv(src.export_kv(0, start_pos=8))
        assert dst.context_length(0) == 8

    def test_import_demand_matches_prefill_placement(self):
        src = ContextParallelEngine(MODEL, world_size=2)
        src.prefill({0: prompt(40)})
        dst = ContextParallelEngine(MODEL, world_size=2, capacity_tokens=16)
        demand = dst.import_token_demand(0, 40)
        assert sum(sum(d.values()) for d in demand) == 40
        # 20 tokens/rank exceed the one 16-token block each rank pool holds
        assert not dst.fits(demand)

    def test_import_respects_capacity_and_is_atomic(self):
        src = ContextParallelEngine(MODEL, world_size=2)
        src.prefill({0: prompt(40)})
        dst = ContextParallelEngine(MODEL, world_size=2, capacity_tokens=8)
        with pytest.raises(CacheCapacityError):
            dst.import_kv(src.export_kv(0))
        # the failed import touched nothing: no cache rows, no length
        assert dst.context_length(0) == 0
        assert all(cache.tokens(0) == 0 for cache in dst.caches)
        # freeing is not even needed for a smaller payload to land cleanly
        src2 = ContextParallelEngine(MODEL, world_size=2)
        src2.prefill({0: prompt(12)})
        dst.import_kv(src2.export_kv(0))
        assert dst.context_length(0) == 12

    def test_import_demand_zero_tokens(self):
        dst = ContextParallelEngine(MODEL, world_size=2)
        assert dst.import_token_demand(0, 0) == [{}, {}]
