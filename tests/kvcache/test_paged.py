"""Tests for the paged block allocator."""

import pytest

from repro.kvcache.paged import OutOfBlocksError, PagedAllocator


class TestPagedAllocator:
    def test_basic_accounting(self):
        alloc = PagedAllocator(num_blocks=4, block_size=16)
        assert alloc.capacity_tokens == 64
        alloc.append(("s0",), 10)
        assert alloc.used_blocks == 1
        assert alloc.stream_tokens(("s0",)) == 10
        assert alloc.free_tokens() == 3 * 16 + 6

    def test_utilization(self):
        alloc = PagedAllocator(num_blocks=4, block_size=16)
        assert alloc.utilization() == 0.0
        alloc.append(("s0",), 10)
        alloc.append(("s1",), 20)
        # block-granular: 1 + 2 claimed blocks out of 4
        assert alloc.utilization() == pytest.approx(0.75)
        alloc.release(("s1",))
        assert alloc.utilization() == pytest.approx(0.25)

    def test_empty_pool_utilization(self):
        assert PagedAllocator(num_blocks=0, block_size=16).utilization() == 0.0

    def test_fill_partial_block_first(self):
        alloc = PagedAllocator(num_blocks=2, block_size=16)
        alloc.append(("s0",), 10)
        alloc.append(("s0",), 6)  # fits in the first block's slack
        assert alloc.used_blocks == 1
        alloc.append(("s0",), 1)
        assert alloc.used_blocks == 2

    def test_oom_raises_and_rolls_back(self):
        alloc = PagedAllocator(num_blocks=2, block_size=4)
        alloc.append(("a",), 4)
        with pytest.raises(OutOfBlocksError):
            alloc.append(("b",), 9)  # needs 3 blocks, only 1 free
        # rollback: the free block is still available
        assert alloc.free_blocks == 1
        alloc.append(("b",), 4)
        assert alloc.free_blocks == 0

    def test_rollback_preserves_existing_stream(self):
        alloc = PagedAllocator(num_blocks=2, block_size=4)
        alloc.append(("a",), 3)
        with pytest.raises(OutOfBlocksError):
            alloc.append(("a",), 20)
        assert alloc.stream_tokens(("a",)) == 3

    def test_release(self):
        alloc = PagedAllocator(num_blocks=3, block_size=8)
        alloc.append(("a",), 20)
        assert alloc.release(("a",)) == 3
        assert alloc.free_blocks == 3
        assert alloc.stream_tokens(("a",)) == 0
        assert alloc.release(("missing",)) == 0

    def test_multiple_streams(self):
        alloc = PagedAllocator(num_blocks=4, block_size=4)
        alloc.append(("a",), 5)
        alloc.append(("b",), 3)
        assert set(alloc.streams()) == {("a",), ("b",)}
        assert alloc.used_blocks == 3

    def test_zero_append_is_noop(self):
        alloc = PagedAllocator(num_blocks=1, block_size=4)
        alloc.append(("a",), 0)
        assert alloc.used_blocks == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            PagedAllocator(num_blocks=-1, block_size=4)
        with pytest.raises(ValueError):
            PagedAllocator(num_blocks=1, block_size=0)
        alloc = PagedAllocator(num_blocks=1, block_size=4)
        with pytest.raises(ValueError):
            alloc.append(("a",), -1)
