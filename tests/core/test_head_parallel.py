"""Tests for per-KV-head CP groups (Figure 5 composition)."""

import numpy as np
import pytest

from repro.attention.reference import reference_attention_with_lse
from repro.core.head_parallel import head_parallel_ring_passkv, split_by_kv_head
from repro.core.ring_passkv import ring_passkv_prefill
from repro.distributed.process_group import SimProcessGroup

from helpers import make_qkv, shard_qkv_full_prefill


class TestSplitByKvHead:
    def test_group_shapes(self, rng):
        q, k, v = make_qkv(rng, 12, 12, n_heads=8, n_kv_heads=2)
        queries, kvs = shard_qkv_full_prefill(q, k, v, 2)
        groups = split_by_kv_head(queries, kvs)
        assert len(groups) == 2
        for g_queries, g_kvs in groups:
            assert g_queries[0].q.shape[1] == 4  # NH / NKV query heads
            assert g_kvs[0].k.shape[1] == 1

    def test_head_assignment(self, rng):
        q, k, v = make_qkv(rng, 6, 6, n_heads=4, n_kv_heads=2)
        queries, kvs = shard_qkv_full_prefill(q, k, v, 1)
        groups = split_by_kv_head(queries, kvs)
        np.testing.assert_array_equal(groups[0][0][0].q, queries[0].q[:, :2])
        np.testing.assert_array_equal(groups[1][1][0].k[:, 0], kvs[0].k[:, 1])

    def test_validation(self, rng):
        q, k, v = make_qkv(rng, 6, 6)
        queries, kvs = shard_qkv_full_prefill(q, k, v, 2)
        with pytest.raises(ValueError):
            split_by_kv_head(queries, kvs[:1])
        with pytest.raises(ValueError):
            split_by_kv_head([], [])


class TestHeadParallelRing:
    @pytest.mark.parametrize("world", [1, 2, 4])
    def test_matches_rank_level_ring(self, rng, world):
        """Per-head groups reassemble to exactly the rank-level result."""
        t = 29
        q, k, v = make_qkv(rng, t, t, n_heads=8, n_kv_heads=2)
        queries, kvs = shard_qkv_full_prefill(q, k, v, world)
        rank_level = ring_passkv_prefill(SimProcessGroup(world), queries, kvs)
        head_level, _ = head_parallel_ring_passkv(queries, kvs)
        for a, b in zip(head_level, rank_level):
            np.testing.assert_allclose(a.out, b.out, atol=1e-10)
            np.testing.assert_allclose(a.lse, b.lse, atol=1e-10)

    def test_matches_reference(self, rng):
        t, world = 17, 3
        q, k, v = make_qkv(rng, t, t, n_heads=8, n_kv_heads=4)
        ref_out, _ = reference_attention_with_lse(q, k, v)
        queries, kvs = shard_qkv_full_prefill(q, k, v, world)
        results, _ = head_parallel_ring_passkv(queries, kvs)
        for res, qs in zip(results, queries):
            np.testing.assert_allclose(res.out, ref_out[qs.positions], atol=1e-10)

    def test_bandwidth_striping(self, rng):
        """Figure 5's point: each per-head group moves 1/NKV of the
        rank-level KV payload (metadata aside)."""
        world, t = 4, 32
        q, k, v = make_qkv(rng, t, t, n_heads=8, n_kv_heads=2)
        queries, kvs = shard_qkv_full_prefill(q, k, v, world)

        g_rank = SimProcessGroup(world)
        ring_passkv_prefill(g_rank, queries, kvs)
        rank_bytes = g_rank.tracer.total_bytes("sendrecv")

        _, tracers = head_parallel_ring_passkv(queries, kvs)
        group_bytes = [tr.total_bytes("sendrecv") for tr in tracers]
        # groups are symmetric
        assert len(set(group_bytes)) == 1
        # each group carries half the KV payload plus its own metadata copy
        kv_payload = rank_bytes  # includes metadata
        assert sum(group_bytes) == pytest.approx(kv_payload, rel=0.2)
        assert group_bytes[0] < 0.7 * rank_bytes
