"""Numeric-kernel microbenchmarks (simulator performance, not paper claims).

Times the NumPy substrate itself — the flash kernel, the ring algorithms,
an end-to-end engine prefill and a continuous-batching runtime replay at
test scale — so regressions in the simulation's own speed are visible.
The ``*_no_*skip`` / ``*_fp32_compute`` variants pin the A/B knobs of the
fused grouped-head kernel (PR 1): the ``no_skip`` variants disable
masked-block / masked-shard skipping, and the fp32 variant measures the
mixed-precision (fp32 compute, fp64 merge) mode. (The seed-equivalent
``fused=False`` expand-path baseline was retired with the path itself;
its seed timing survives in ``run_benchmarks.py``'s baseline table.)

Run via ``python benchmarks/run_benchmarks.py`` to record the results into
``BENCH_kernels.json``, or directly::

    PYTHONPATH=src python -m pytest benchmarks --benchmark-only -q

(add ``--smoke`` for the 1-round CI import/run check).
"""

import numpy as np
import pytest

from repro.attention.flash import flash_attention
from repro.attention.reference import reference_attention_with_lse
from repro.core.engine import ContextParallelEngine
from repro.core.ring_decode import DecodeBatch, ring_passq_decode
from repro.core.ring_passkv import ring_passkv_prefill
from repro.core.ring_passq import ring_passq_prefill
from repro.core.sharding import SequenceSpec, ShardedKV, ShardedQueries, shard_sequences
from repro.distributed.process_group import SimProcessGroup
from repro.model.config import tiny_config
from repro.model.llama import LlamaModel

pytestmark = pytest.mark.perf

T = 256
RNG = np.random.default_rng(0)
Q = RNG.standard_normal((T, 8, 32))
K = RNG.standard_normal((T, 2, 32))
V = RNG.standard_normal((T, 2, 32))


def _shards(world):
    shards = shard_sequences([SequenceSpec(0, T)], world)
    queries = [ShardedQueries(q=Q[pos], positions=pos, seq_ids=sid) for pos, sid in shards]
    kvs = [ShardedKV(k=K[pos], v=V[pos], positions=pos, seq_ids=sid) for pos, sid in shards]
    return queries, kvs


def bench_reference_attention(benchmark):
    benchmark(reference_attention_with_lse, Q, K, V)


def bench_flash_attention(benchmark):
    benchmark(flash_attention, Q, K, V, block_size=64)


def bench_flash_attention_no_block_skip(benchmark):
    """Fused kernel with masked-block skipping / row trimming disabled."""
    benchmark(flash_attention, Q, K, V, block_size=64, skip_masked_blocks=False)


def bench_flash_attention_fp32_compute(benchmark):
    """fp32 kernel arithmetic, fp64 merge accumulation."""
    benchmark(flash_attention, Q, K, V, block_size=64, compute_dtype=np.float32)


def bench_ring_passkv_cp4(benchmark):
    queries, kvs = _shards(4)

    def run():
        return ring_passkv_prefill(SimProcessGroup(4), queries, kvs, block_size=64)

    benchmark(run)


def bench_ring_passkv_cp4_no_skip(benchmark):
    queries, kvs = _shards(4)

    def run():
        return ring_passkv_prefill(
            SimProcessGroup(4), queries, kvs, block_size=64, skip_masked_shards=False
        )

    benchmark(run)


def bench_ring_passq_cp4(benchmark):
    queries, kvs = _shards(4)

    def run():
        return ring_passq_prefill(SimProcessGroup(4), queries, kvs, block_size=64)

    benchmark(run)


def bench_ring_decode_cp4(benchmark):
    """Batched pass-Q decode: 6 sequences' cached KV spread over 4 ranks
    (B=6, N=4 also pads two query slots — the shard-skip sweet spot)."""
    world, b = 4, 6
    seq_all = np.arange(T, dtype=np.int64) % b
    pos_all = np.arange(T, dtype=np.int64) // b
    kvs = [
        ShardedKV(
            k=K[r::world], v=V[r::world],
            positions=pos_all[r::world], seq_ids=seq_all[r::world],
        )
        for r in range(world)
    ]
    batch = DecodeBatch(
        q=RNG.standard_normal((b, 8, 32)),
        positions=np.full(b, T // b, dtype=np.int64),
        seq_ids=np.arange(b, dtype=np.int64),
    )

    def run():
        return ring_passq_decode(SimProcessGroup(world), kvs, batch, block_size=64)

    benchmark(run)


def bench_runtime_decode_hotloop(benchmark):
    """Batched pass-Q decode under a large decode trace: 24 sequences,
    ~1.5K cached tokens spread round-robin over 4 ranks, 4 consecutive
    decode steps per round (the rotating-assignment offsets included).

    This is the runtime's hot loop at serving scale — post PR 1 the
    engine's prefill is dense-linear-bound, so decode rounds dominate
    replayed-trace wall time (the ROADMAP's decode-path perf item)."""
    world, b, t = 4, 24, 1536
    rng = np.random.default_rng(7)
    k_all = rng.standard_normal((t, 2, 32))
    v_all = rng.standard_normal((t, 2, 32))
    seq_all = np.arange(t, dtype=np.int64) % b
    pos_all = np.arange(t, dtype=np.int64) // b
    kvs = [
        ShardedKV(
            k=k_all[r::world], v=v_all[r::world],
            positions=pos_all[r::world], seq_ids=seq_all[r::world],
        )
        for r in range(world)
    ]
    batch = DecodeBatch(
        q=rng.standard_normal((b, 8, 32)),
        positions=np.full(b, t // b, dtype=np.int64),
        seq_ids=np.arange(b, dtype=np.int64),
    )
    group = SimProcessGroup(world)

    def run():
        return [
            ring_passq_decode(group, kvs, batch, step=step, block_size=64)
            for step in range(4)
        ]

    benchmark(run)
    benchmark.extra_info["batch"] = b
    benchmark.extra_info["cached_tokens"] = t
    benchmark.extra_info["steps_per_round"] = 4


def bench_engine_prefill_cp2(benchmark):
    model = LlamaModel(tiny_config(), seed=0)
    toks = np.arange(64) % model.config.vocab_size

    def run():
        engine = ContextParallelEngine(model, world_size=2)
        return engine.prefill({0: toks})

    benchmark(run)


def bench_runtime_throughput(benchmark):
    """Tokens/s through the continuous-batching runtime on a replayed
    4-session x 2-turn trace (chunked prefill + batched decode, CP2).

    ``extra_info['tokens_per_wall_second']`` records decoded tokens per
    *wall* second — the serving runtime's end-to-end throughput figure."""
    from repro.runtime import ContinuousBatchingRuntime
    from repro.serving.scheduler import ChunkedPrefillPolicy
    from repro.workloads.generator import WorkloadGenerator
    from repro.workloads.replay import submit_scripts_to_runtime

    model = LlamaModel(tiny_config(), seed=0)
    gen = WorkloadGenerator(model.config.vocab_size, seed=3)
    scripts = [
        gen.conversation(
            sid, turns=2, first_prompt=40, followup_range=(6, 12), response_range=(3, 5)
        )
        for sid in range(4)
    ]

    def run():
        runtime = ContinuousBatchingRuntime(
            ContextParallelEngine(model, world_size=2),
            policy=ChunkedPrefillPolicy(
                chunk_tokens=16, max_tokens_per_round=32, max_seqs_per_round=4
            ),
        )
        submit_scripts_to_runtime(runtime, scripts, think_time_s=2.0)
        return runtime.run(max_steps=100_000)

    report = benchmark(run)
    wall = benchmark.stats.stats.mean if benchmark.stats else None
    if wall:
        benchmark.extra_info["tokens_per_wall_second"] = round(
            report.generated_tokens / wall, 1
        )
    benchmark.extra_info["generated_tokens"] = report.generated_tokens
    benchmark.extra_info["preemptions"] = report.metrics.preemptions


def bench_runtime_trace_overhead(benchmark):
    """The same replay as ``bench_runtime_throughput`` with the tracer
    hooks in the hot path: the benchmarked (tracer-off) run must stay
    within noise of ``bench_runtime_throughput`` — a NULL_TRACER guard is
    all the scheduler pays — while ``extra_info`` records the cost of
    actually recording (``traced_mean_ms`` / ``trace_overhead_pct``) and
    the event volume the workload produces."""
    import time

    from repro.obs import RecordingTracer
    from repro.runtime import ContinuousBatchingRuntime
    from repro.serving.scheduler import ChunkedPrefillPolicy
    from repro.workloads.generator import WorkloadGenerator
    from repro.workloads.replay import submit_scripts_to_runtime

    model = LlamaModel(tiny_config(), seed=0)
    gen = WorkloadGenerator(model.config.vocab_size, seed=3)
    scripts = [
        gen.conversation(
            sid, turns=2, first_prompt=40, followup_range=(6, 12), response_range=(3, 5)
        )
        for sid in range(4)
    ]

    def run(tracer=None):
        runtime = ContinuousBatchingRuntime(
            ContextParallelEngine(model, world_size=2),
            policy=ChunkedPrefillPolicy(
                chunk_tokens=16, max_tokens_per_round=32, max_seqs_per_round=4
            ),
            tracer=tracer,
        )
        submit_scripts_to_runtime(runtime, scripts, think_time_s=2.0)
        return runtime.run(max_steps=100_000)

    report = benchmark(run)

    def best_of(n, **kwargs):
        times = []
        for _ in range(n):
            t0 = time.perf_counter()
            run(**kwargs)
            times.append(time.perf_counter() - t0)
        return min(times)

    off = best_of(3)
    tracer = RecordingTracer()
    t0 = time.perf_counter()
    traced_report = run(tracer=tracer)
    traced = time.perf_counter() - t0
    for _ in range(2):
        t0 = time.perf_counter()
        run(tracer=RecordingTracer())
        traced = min(traced, time.perf_counter() - t0)

    assert traced_report.generated_tokens == report.generated_tokens
    benchmark.extra_info["trace_events"] = len(tracer.events)
    benchmark.extra_info["traced_mean_ms"] = round(traced * 1e3, 3)
    benchmark.extra_info["untraced_mean_ms"] = round(off * 1e3, 3)
    benchmark.extra_info["trace_overhead_pct"] = round(100.0 * (traced - off) / off, 1)


def bench_preemption_modes(benchmark):
    """One capacity-pressure trace replayed under all three preemption
    remedies (recompute, tail-trim, CPU swap) back to back.

    Wall time covers the full recompute+trim+swap sweep on a trace whose
    tight paged pool forces every remedy to fire; ``extra_info`` records
    the per-mode remedy counts so the JSON shows what actually ran."""
    from repro.runtime import ContinuousBatchingRuntime
    from repro.serving.scheduler import ChunkedPrefillPolicy
    from repro.workloads.generator import WorkloadGenerator
    from repro.workloads.replay import submit_scripts_to_runtime

    model = LlamaModel(tiny_config(), seed=0)
    gen = WorkloadGenerator(model.config.vocab_size, seed=11)
    scripts = [
        gen.conversation(
            sid, turns=2, first_prompt=40, followup_range=(6, 14), response_range=(3, 5)
        )
        for sid in range(4)
    ]

    def run():
        reports = {}
        for mode in ("recompute", "trim", "swap"):
            runtime = ContinuousBatchingRuntime(
                ContextParallelEngine(model, world_size=2, capacity_tokens=64),
                policy=ChunkedPrefillPolicy(
                    chunk_tokens=8, max_tokens_per_round=16, max_seqs_per_round=4
                ),
                preemption=mode,
            )
            submit_scripts_to_runtime(runtime, scripts, think_time_s=2.0)
            reports[mode] = runtime.run(max_steps=200_000)
        return reports

    reports = benchmark(run)
    tokens = {m: sorted(r.generated(i) for i in r.records) for m, r in reports.items()}
    assert tokens["trim"] == tokens["recompute"] == tokens["swap"]
    for mode, report in reports.items():
        m = report.metrics
        benchmark.extra_info[f"{mode}_remedies"] = (
            m.preemptions + m.trims + m.swaps_out
        )
    benchmark.extra_info["swaps"] = reports["swap"].metrics.swaps_out
    benchmark.extra_info["trims"] = reports["trim"].metrics.trims


def bench_prefix_reuse(benchmark):
    """One templated shared-prefix trace replayed with the radix prefix
    cache on and off, back to back, bit-checked against each other.

    Wall time covers both runs; ``extra_info`` records the hit rate,
    reused tokens and per-mode prefill rounds so the JSON shows the
    compute the cache actually skipped."""
    from repro.runtime import ContinuousBatchingRuntime
    from repro.serving.scheduler import ChunkedPrefillPolicy
    from repro.workloads.generator import WorkloadGenerator
    from repro.workloads.replay import collect_generated, submit_scripts_to_runtime

    model = LlamaModel(tiny_config(), seed=0)
    gen = WorkloadGenerator(model.config.vocab_size, seed=11)
    scripts = gen.shared_prefix_traffic(
        n_system_prompts=2, n_fewshot_variants=2, conversations=6,
        system_tokens=32, fewshot_tokens=12, unique_range=(6, 12),
        turns=1, response_range=(3, 5),
    )

    def run():
        out = {}
        for cache_on in (True, False):
            runtime = ContinuousBatchingRuntime(
                ContextParallelEngine(model, world_size=2),
                policy=ChunkedPrefillPolicy(
                    chunk_tokens=16, max_tokens_per_round=32, max_seqs_per_round=4
                ),
                prefix_cache=cache_on,
            )
            rids = submit_scripts_to_runtime(runtime, scripts, think_time_s=2.0)
            out[cache_on] = (runtime.run(max_steps=200_000), rids)
        return out

    out = benchmark(run)
    reports = {on: report for on, (report, _) in out.items()}
    tokens = {on: collect_generated(report, rids) for on, (report, rids) in out.items()}
    assert tokens[True] == tokens[False]
    m = reports[True].metrics
    benchmark.extra_info["hit_rate"] = round(m.prefix_hit_rate, 3)
    benchmark.extra_info["reused_tokens"] = m.prefix_reused_tokens
    benchmark.extra_info["prefill_rounds_cached"] = reports[True].prefill_rounds
    benchmark.extra_info["prefill_rounds_cold"] = reports[False].prefill_rounds


def bench_cluster_routing(benchmark):
    """One shared-prefix trace fanned over a 3-replica fleet under
    prefix-affinity and round-robin routing, back to back, bit-checked
    against each other.

    Wall time covers both fleet runs (routing, per-replica engines,
    merged reporting); ``extra_info`` records each policy's fleet hit
    rate and placement spread so the JSON shows what affinity bought."""
    from repro.cluster import ReplicaFleet, make_router
    from repro.runtime import ContinuousBatchingRuntime
    from repro.serving.scheduler import ChunkedPrefillPolicy
    from repro.workloads.generator import WorkloadGenerator
    from repro.workloads.replay import collect_generated, submit_scripts_to_runtime

    model = LlamaModel(tiny_config(), seed=0)
    gen = WorkloadGenerator(model.config.vocab_size, seed=11)
    scripts = gen.shared_prefix_traffic(
        n_system_prompts=2, n_fewshot_variants=2, conversations=9,
        system_tokens=32, fewshot_tokens=12, unique_range=(6, 12),
        turns=2, followup_range=(6, 12), response_range=(3, 5),
    )
    scripts = [scripts[i] for i in gen.rng.permutation(len(scripts))]

    def make_runtime(_replica_id):
        return ContinuousBatchingRuntime(
            ContextParallelEngine(model, world_size=2),
            policy=ChunkedPrefillPolicy(
                chunk_tokens=16, max_tokens_per_round=32, max_seqs_per_round=4
            ),
            prefix_cache=True,
        )

    def run():
        out = {}
        for policy in ("prefix", "round-robin"):
            fleet = ReplicaFleet.build(make_runtime, 3, router=make_router(policy))
            rids = submit_scripts_to_runtime(fleet, scripts, think_time_s=2.0)
            out[policy] = (fleet.run(max_steps=200_000), rids)
        return out

    out = benchmark(run)
    tokens = {p: collect_generated(report, rids) for p, (report, rids) in out.items()}
    assert tokens["prefix"] == tokens["round-robin"]
    for policy, (report, _rids) in out.items():
        key = policy.replace("-", "_")
        benchmark.extra_info[f"{key}_hit_rate"] = round(
            report.metrics.prefix_hit_rate, 3
        )
        benchmark.extra_info[f"{key}_replicas_used"] = len(
            set(report.placements.values())
        )
