"""Behavioral tests for the prefill latency model (shape properties)."""

import pytest

from repro.core.heuristics import RingAlgo
from repro.model.config import llama3_405b_config
from repro.perf.hardware import gti_host, gtt_host
from repro.perf.latency import LatencySimulator


@pytest.fixture(scope="module")
def sim():
    return LatencySimulator(llama3_405b_config(), gtt_host())


@pytest.fixture(scope="module")
def sim_gti():
    return LatencySimulator(llama3_405b_config(), gti_host())


class TestCpScaling:
    def test_near_linear_scaling_128k(self, sim):
        """Figure 6a/7: doubling CP ranks ~halves TTFT at long context."""
        t1 = sim.cp_prefill(131072, n_ranks=1).total
        for n in (2, 4, 8):
            ratio = t1 / sim.cp_prefill(131072, n_ranks=n).total
            assert ratio > 0.85 * n, f"CP{n} scaling ratio {ratio:.2f}"

    def test_gti_scales_to_4_nodes(self, sim_gti):
        """Figure 6b: TCP at ~3 GB/s/rank still hides pass-KV comm."""
        t1 = sim_gti.cp_prefill(131072, n_ranks=1).total
        for n in (2, 4):
            ratio = t1 / sim_gti.cp_prefill(131072, n_ranks=n).total
            assert ratio > 0.85 * n

    def test_short_context_scales_worse(self, sim):
        """At 2K the fixed overheads dominate and scaling degrades."""
        t1 = sim.cp_prefill(2048, n_ranks=1).total
        t8 = sim.cp_prefill(2048, n_ranks=8).total
        assert t1 / t8 < 4.0

    def test_superquadratic_ttft_growth(self, sim):
        """Figure 8: >=512K doubling context more than doubles TTFT."""
        t512 = sim.cp_prefill(524288, n_ranks=16).total
        t1m = sim.cp_prefill(1048576, n_ranks=16).total
        assert t1m > 2.0 * t512

    def test_cp_beats_multinode_tp(self, sim):
        """Figure 7: the CP-TP gap widens with node count."""
        gaps = []
        for n in (2, 4, 8):
            cp = sim.cp_prefill(131072, n_ranks=n).total
            tp = sim.tp_prefill(131072, n_nodes=n).total
            gaps.append(tp / cp)
        assert gaps[0] > 1.0
        assert gaps == sorted(gaps)
        assert gaps[-1] > 2.0  # "100% difference" at 8 nodes


class TestAlgoSelection:
    def test_auto_picks_min(self, sim):
        auto = sim.cp_prefill(1280, 126720, n_ranks=4)
        kv = sim.cp_prefill(1280, 126720, n_ranks=4, algo=RingAlgo.PASS_KV)
        qq = sim.cp_prefill(1280, 126720, n_ranks=4, algo=RingAlgo.PASS_Q)
        assert auto.total == min(kv.total, qq.total)

    def test_best_algo_crossover(self, sim):
        """Figure 9: pass-Q wins at very low miss rates, pass-KV at high."""
        assert sim.best_algo(1280, 126720, n_ranks=4) is RingAlgo.PASS_Q
        assert sim.best_algo(12800, 115200, n_ranks=4) is RingAlgo.PASS_KV
        assert sim.best_algo(128000, 0, n_ranks=4) is RingAlgo.PASS_KV

    def test_crossover_near_paper_tipping_point(self, sim):
        """The simulated tipping point falls in the paper's 2.5-5% band."""
        total = 128000
        flips = []
        for t in (1280, 3200, 4160, 6400, 12800):
            algo = sim.best_algo(t, total - t, n_ranks=4)
            flips.append((t / total, algo))
        rates_q = [r for r, a in flips if a is RingAlgo.PASS_Q]
        rates_kv = [r for r, a in flips if a is RingAlgo.PASS_KV]
        assert rates_q and rates_kv
        assert max(rates_q) < min(rates_kv)
        assert 0.02 <= max(rates_q) <= 0.05

    def test_ttft_linear_in_miss_rate(self, sim):
        """Table 4: TTFT grows ~linearly with miss rate at fixed T+P."""
        total = 128000
        samples = [
            sim.cp_prefill(t, total - t, n_ranks=4, algo=RingAlgo.PASS_KV).total
            for t in (12800, 25600, 51200, 102400)
        ]
        # doubling T should roughly double (attention-dominated) latency
        for a, b in zip(samples, samples[1:]):
            assert 1.5 < b / a < 2.2


class TestBreakdownConsistency:
    def test_components_sum(self, sim):
        r = sim.cp_prefill(131072, n_ranks=4, algo=RingAlgo.PASS_Q)
        reconstructed = r.gemm + r.attn + r.exposed_comm + r.all2all + r.overhead
        assert r.total == pytest.approx(reconstructed, rel=1e-9)

    def test_passkv_has_no_all2all(self, sim):
        assert sim.cp_prefill(131072, n_ranks=4, algo=RingAlgo.PASS_KV).all2all == 0.0

    def test_single_rank_has_no_comm(self, sim):
        r = sim.cp_prefill(131072, n_ranks=1)
        assert r.sendrecv_per_iter == 0.0
        assert r.exposed_comm == 0.0

    def test_batch_scales_compute(self, sim):
        one = sim.cp_prefill(32768, n_ranks=4, batch=1)
        four = sim.cp_prefill(32768, n_ranks=4, batch=4)
        assert four.gemm == pytest.approx(4 * one.gemm)
        assert four.attn == pytest.approx(4 * one.attn)

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            sim.cp_prefill(0, n_ranks=4)
        with pytest.raises(ValueError):
            sim.cp_prefill(100, n_ranks=0)
        with pytest.raises(ValueError):
            sim.tp_prefill(100, n_nodes=1, batch=0)
