"""Unit tests for the labeled metrics registry and its exposition."""

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, prometheus_text_multi


class TestCounter:
    def test_unlabeled_inc_and_value(self):
        c = Counter("x_total", "help")
        assert c.value() == 0
        c.inc()
        c.inc(3)
        assert c.value() == 4
        assert c.total() == 4

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match="must be >= 0"):
            Counter("x_total", "help").inc(-1)

    def test_labeled_values_are_independent(self):
        c = Counter("pool_total", "help", ("pool",))
        c.inc(2, pool="prefill")
        c.inc(1, pool="decode")
        assert c.value(pool="prefill") == 2
        assert c.value(pool="decode") == 1
        assert c.total() == 3

    def test_wrong_label_set_rejected(self):
        c = Counter("pool_total", "help", ("pool",))
        with pytest.raises(ValueError, match="wants labels"):
            c.inc(1)
        with pytest.raises(ValueError, match="wants labels"):
            c.inc(1, node="a")

    def test_expose_sorts_label_values(self):
        c = Counter("pool_total", "help", ("pool",))
        c.inc(1, pool="prefill")
        c.inc(2, pool="decode")
        lines = c.expose()
        assert lines[0] == "# HELP pool_total help"
        assert lines[1] == "# TYPE pool_total counter"
        assert lines[2] == 'pool_total{pool="decode"} 2'
        assert lines[3] == 'pool_total{pool="prefill"} 1'


class TestGauge:
    def test_set_and_set_max(self):
        g = Gauge("kv_peak", "help", ("pool",))
        g.set_max(0.25, pool="decode")
        g.set_max(0.75, pool="decode")
        g.set_max(0.5, pool="decode")
        assert g.value(pool="decode") == 0.75

    def test_set_overwrites(self):
        g = Gauge("depth", "help")
        g.set(3.0)
        g.set(1.0)
        assert g.value() == 1.0

    def test_unseen_labels_read_zero(self):
        g = Gauge("kv_peak", "help", ("pool",))
        assert g.value(pool="prefill") == 0.0


class TestHistogram:
    def test_empty_histogram_exposes_zero_counts(self):
        """A scrape of an idle runtime is valid: every bucket (including
        +Inf), _sum, and _count expose 0."""
        h = Histogram("ttft_seconds", "help", buckets=(0.1, 1.0))
        lines = h.expose()
        assert 'ttft_seconds_bucket{le="0.1"} 0' in lines
        assert 'ttft_seconds_bucket{le="1"} 0' in lines
        assert 'ttft_seconds_bucket{le="+Inf"} 0' in lines
        assert "ttft_seconds_sum 0" in lines
        assert "ttft_seconds_count 0" in lines

    def test_cumulative_buckets(self):
        h = Histogram("ttft_seconds", "help", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        lines = h.expose()
        assert 'ttft_seconds_bucket{le="0.1"} 1' in lines
        assert 'ttft_seconds_bucket{le="1"} 3' in lines
        assert 'ttft_seconds_bucket{le="10"} 4' in lines
        assert 'ttft_seconds_bucket{le="+Inf"} 5' in lines
        assert "ttft_seconds_count 5" in lines

    def test_samples_list_is_the_live_backing_store(self):
        """ServingMetrics' ttft_samples property aliases this list, so
        identity (not just equality) is part of the contract."""
        h = Histogram("ttft_seconds", "help")
        alias = h.samples
        h.observe(1.5)
        assert alias == [1.5]
        assert h.samples is alias

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram("x", "help", buckets=(1.0, 0.1))


class TestRegistry:
    def test_same_shape_reregistration_returns_existing(self):
        r = MetricsRegistry()
        a = r.counter("x_total", "help")
        b = r.counter("x_total", "help")
        assert a is b
        a.inc(2)
        assert b.value() == 2

    def test_label_collision_raises(self):
        r = MetricsRegistry()
        r.counter("x_total", "help", labels=("pool",))
        with pytest.raises(ValueError, match="colliding"):
            r.counter("x_total", "help", labels=("node",))

    def test_kind_collision_raises(self):
        r = MetricsRegistry()
        r.counter("x", "help")
        with pytest.raises(ValueError, match="colliding"):
            r.gauge("x", "help")

    def test_help_collision_raises(self):
        r = MetricsRegistry()
        r.counter("x_total", "one help")
        with pytest.raises(ValueError, match="colliding"):
            r.counter("x_total", "another help")

    def test_exposition_is_sorted_and_deterministic(self):
        def build():
            r = MetricsRegistry()
            r.counter("b_total", "b").inc(1)
            r.counter("a_total", "a").inc(2)
            r.histogram("h_seconds", "h", buckets=(1.0,)).observe(0.5)
            return r.prometheus_text()

        text = build()
        assert text == build()
        assert text.index("# HELP a_total") < text.index("# HELP b_total")
        assert text.index("# HELP b_total") < text.index("# HELP h_seconds")
        assert text.endswith("\n")

    def test_empty_registry_exposes_empty(self):
        assert MetricsRegistry().prometheus_text() == ""


class TestMultiReplicaExposition:
    def test_replica_label_prepended(self):
        regs = {}
        for rid in (0, 1):
            r = MetricsRegistry()
            r.counter("x_total", "help").inc(rid + 1)
            r.counter("pool_total", "help", labels=("pool",)).inc(5, pool="prefill")
            regs[rid] = r
        text = prometheus_text_multi(regs)
        assert 'x_total{replica="0"} 1' in text
        assert 'x_total{replica="1"} 2' in text
        assert 'pool_total{replica="0",pool="prefill"} 5' in text
        # one family header, not one per replica
        assert text.count("# HELP x_total help") == 1

    def test_empty_multi_exposes_empty(self):
        assert prometheus_text_multi({}) == ""
