"""Ablation: ring pass-KV vs all-gather pass-KV (Llama3-training style).

Both are exact; the difference is *when* the bytes move. The all-gather
completes before any attention starts (fully exposed); the ring overlaps
each hop with a partial-attention step. This ablation runs both on the
numeric simulator to confirm byte-for-byte equal traffic, then uses the
latency model to price the exposure across context lengths.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.allgather_passkv import allgather_passkv_prefill
from repro.core.heuristics import RingAlgo
from repro.core.ring_passkv import ring_passkv_prefill
from repro.core.sharding import SequenceSpec, ShardedKV, ShardedQueries, shard_sequences
from repro.distributed.process_group import SimProcessGroup
from repro.experiments.base import ExperimentResult
from repro.model.config import llama3_405b_config
from repro.perf.hardware import HostSpec, gtt_host
from repro.perf.latency import LatencySimulator
from repro.perf.roofline import kv_bytes


def traffic_check(world: int = 4, tokens: int = 64) -> tuple[int, int]:
    """Numeric run: (ring sendrecv bytes, allgather bytes) for one layer."""
    rng = np.random.default_rng(0)
    q = rng.standard_normal((tokens, 4, 8))
    k = rng.standard_normal((tokens, 2, 8))
    v = rng.standard_normal((tokens, 2, 8))
    shards = shard_sequences([SequenceSpec(0, tokens)], world)
    queries = [ShardedQueries(q=q[pos], positions=pos, seq_ids=sid) for pos, sid in shards]
    kvs = [ShardedKV(k=k[pos], v=v[pos], positions=pos, seq_ids=sid) for pos, sid in shards]
    g_ring = SimProcessGroup(world)
    ring_passkv_prefill(g_ring, queries, kvs)
    g_ag = SimProcessGroup(world)
    allgather_passkv_prefill(g_ag, queries, kvs)
    return g_ring.tracer.total_bytes("sendrecv"), g_ag.tracer.total_bytes("allgather")


def run(host: HostSpec | None = None, *, n_ranks: int = 4) -> ExperimentResult:
    host = host if host is not None else gtt_host()
    cfg = llama3_405b_config()
    sim = LatencySimulator(cfg, host)

    ring_bytes, ag_bytes = traffic_check()
    res = ExperimentResult(
        experiment_id="Ablation: all-gather",
        title=f"Ring vs all-gather pass-KV exposure, CP{n_ranks}",
        headers=[
            "context", "ring TTFT (s)", "all-gather TTFT (s)", "slowdown %",
            "exposed comm (s)",
        ],
    )
    for ctx in (8192, 32768, 131072, 524288):
        ring = sim.cp_prefill(ctx, n_ranks=n_ranks, algo=RingAlgo.PASS_KV)
        # all-gather: same total KV bytes, zero overlap
        shard = kv_bytes(cfg, ctx, 0, sim.element_bytes) / n_ranks
        gather_time = cfg.n_layers * (
            (n_ranks - 1) * (host.message_latency + shard / host.ring_bandwidth)
        )
        exposed = gather_time  # fully on the critical path
        ag_total = ring.total - ring.exposed_comm + exposed
        # ring keeps only the *unhidden* part; all-gather pays everything
        res.add_row(
            ctx,
            ring.total,
            ag_total,
            100 * (ag_total / ring.total - 1),
            exposed,
        )
    res.notes.append(
        f"Numeric traffic check (world=4, 64 tokens): ring moved {ring_bytes} "
        f"bytes vs all-gather {ag_bytes} - same volume, different exposure."
    )
    res.notes.append(
        "All-gather's exposure is modest for full prefill (attention "
        "dominates) but becomes the entire communication cost for "
        "high-hit-rate partial prefill - the paper's stated reason to "
        "prefer the ring formulation for inference (Section 3.5.2)."
    )
    return res
