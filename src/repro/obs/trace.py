"""Deterministic scheduling tracer: structured simulated-time events.

Every clock in this repository is simulated, which buys observability a
property production tracers cannot have: **same seed ⇒ byte-identical
trace**. Events carry simulated timestamps and are appended in the
runtime's (deterministic) execution order, so the serialized stream is
itself a schedule fingerprint — tier-1 tests diff it byte-for-byte.

Two tracer flavors:

- :data:`NULL_TRACER` — the default everywhere. ``enabled`` is False and
  every emit method is a no-op; hot paths guard bulk emission with
  ``if tracer.enabled:`` so a tracer-less run does no per-event work
  (pinned by ``bench_runtime_trace_overhead``).
- :class:`RecordingTracer` — appends :class:`TraceEvent` records for
  later export (:mod:`repro.obs.export`) and reconstruction
  (:mod:`repro.obs.timeline`).

Label scoping: ``tracer.scoped(replica=2, pool="prefill")`` returns a
lightweight view that stamps those fields onto every event it emits —
the fleet hands each runtime a replica-scoped view, the runtime hands
its transfer stream a wire-scoped one. Scopes compose (a scope of a
scope merges defaults; inner wins).

Event taxonomy (names are the wire format — exporters and the
reconciliation property key off them):

======================  ======  ==============================================
event                   phase   emitted from
======================  ======  ==============================================
``route``               inst.   ``cluster/fleet.py`` submit (attrs: policy,
                                chosen replica, candidate scores)
``admit``               inst.   runtime ``_admit`` (attrs: arrival, queue wait,
                                cached/suffix token split)
``prefill_round``       span    one fused chunked-prefill round (attrs: algo,
                                chunk tokens, round price)
``prefill_chunk``       span    per-request slice of a prefill round
``first_token``         inst.   prefill completion samples token 0
``kv_transfer_schedule``/
``_extend``/``_cancel`` inst.   ``runtime/transfer.py`` stream ops
``kv_transfer``         span    wire occupancy of a completed transfer
``kv_transfer_refused`` inst.   decode-side admission refusal
``transfer_stall``      span    decode blocked on an unlanded transfer
``decode_round``        span    one decode step over the live batch
``decode_token``        inst.   per-request token append in a decode round
``swap_out``/``swap_in``span    PCIe-priced swap DMA (attrs: tokens, stall)
``preempt``             inst.   victim eviction (attrs: victim, remedy ∈
                                recompute|trim|swap, reason)
``prefix_hit``/``_miss``/
``_adopt``/``_evict``   inst.   radix-cache consult / adoption / LRU drop
``fault_inject``        inst.   ``runtime/faults.py`` injector verdicts
``fault_retry``         inst.   transfer retry w/ backoff (attrs: attempt,
                                backoff seconds)
``fault_fallback``      inst.   retry budget exhausted → re-prefill
``shed``                inst.   deadline timeout / queue-depth shed
``finish``              inst.   request completion (attrs: ttft, tokens)
======================  ======  ==============================================
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TraceEvent:
    """One structured event at a simulated timestamp.

    ``phase`` is ``"span"`` (has ``dur``) or ``"instant"`` (``dur`` 0).
    ``t`` and ``dur`` are simulated seconds. Identity fields that don't
    apply are None (e.g. pool-level events carry no request id).
    """

    name: str
    phase: str
    t: float
    dur: float = 0.0
    replica: int | None = None
    pool: str | None = None
    request_id: int | None = None
    seq_id: int | None = None
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Stable wire form: sorted keys, Nones dropped."""
        d = {
            "name": self.name,
            "phase": self.phase,
            "t": self.t,
        }
        if self.phase == "span":
            d["dur"] = self.dur
        for k in ("replica", "pool", "request_id", "seq_id"):
            v = getattr(self, k)
            if v is not None:
                d[k] = v
        if self.attrs:
            d["attrs"] = self.attrs
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "TraceEvent":
        return cls(
            name=d["name"],
            phase=d["phase"],
            t=d["t"],
            dur=d.get("dur", 0.0),
            replica=d.get("replica"),
            pool=d.get("pool"),
            request_id=d.get("request_id"),
            seq_id=d.get("seq_id"),
            attrs=d.get("attrs", {}),
        )


class Tracer:
    """Null tracer: the zero-overhead default.

    ``enabled`` is False; emitters are no-ops. Hook sites that would do
    per-item work to build an event (e.g. one ``prefill_chunk`` per
    request in a fused round) guard on ``tracer.enabled`` first.
    """

    enabled = False

    def instant(self, name: str, t: float, **fields) -> None:
        pass

    def span(self, name: str, t: float, dur: float, **fields) -> None:
        pass

    def scoped(self, **defaults) -> "Tracer":
        """A view stamping default labels; the null tracer returns itself."""
        return self


#: Shared null tracer — every traced component's default.
NULL_TRACER = Tracer()

#: Identity/label field names ``instant``/``span`` lift out of **fields;
#: everything else lands in ``attrs``.
_IDENT_FIELDS = ("replica", "pool", "request_id", "seq_id")


class RecordingTracer(Tracer):
    """Appends events in emission order (which is deterministic)."""

    enabled = True

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def _emit(self, name: str, phase: str, t: float, dur: float, fields: dict) -> None:
        ident = {k: fields.pop(k) for k in _IDENT_FIELDS if k in fields}
        self.events.append(
            TraceEvent(
                name=name,
                phase=phase,
                t=float(t),
                dur=float(dur),
                attrs=fields,
                **ident,
            )
        )

    def instant(self, name: str, t: float, **fields) -> None:
        self._emit(name, "instant", t, 0.0, fields)

    def span(self, name: str, t: float, dur: float, **fields) -> None:
        self._emit(name, "span", t, dur, fields)

    def scoped(self, **defaults) -> "Tracer":
        return _ScopedTracer(self, defaults)


class _ScopedTracer(Tracer):
    """View over a recording tracer that stamps default labels.

    Explicit fields at the emit site win over scope defaults; scoping a
    scope merges (inner wins), always delegating to the root recorder.
    """

    enabled = True

    def __init__(self, root: RecordingTracer, defaults: dict) -> None:
        self._root = root
        self._defaults = defaults

    @property
    def events(self) -> list[TraceEvent]:
        return self._root.events

    def instant(self, name: str, t: float, **fields) -> None:
        self._root.instant(name, t, **{**self._defaults, **fields})

    def span(self, name: str, t: float, dur: float, **fields) -> None:
        self._root.span(name, t, dur, **{**self._defaults, **fields})

    def scoped(self, **defaults) -> "Tracer":
        return _ScopedTracer(self._root, {**self._defaults, **defaults})
