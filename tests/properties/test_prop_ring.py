"""Property-based tests: ring algorithms are lossless for arbitrary inputs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attention.reference import reference_attention_with_lse
from repro.core.ring_decode import DecodeBatch, ring_passq_decode
from repro.core.ring_passkv import ring_passkv_prefill
from repro.core.ring_passq import ring_passq_prefill
from repro.core.sharding import SequenceSpec, ShardedKV, ShardedQueries, shard_sequences
from repro.distributed.process_group import SimProcessGroup

SETTINGS = dict(max_examples=25, deadline=None)


@st.composite
def varseq_case(draw):
    """Random fused varseq full-prefill case sharded over a random world."""
    seed = draw(st.integers(0, 2**31 - 1))
    world = draw(st.integers(1, 5))
    n_seqs = draw(st.integers(1, 3))
    lengths = [draw(st.integers(1, 30)) for _ in range(n_seqs)]
    rng = np.random.default_rng(seed)
    per_seq = {
        i: (
            rng.standard_normal((n, 4, 8)),
            rng.standard_normal((n, 2, 8)),
            rng.standard_normal((n, 2, 8)),
        )
        for i, n in enumerate(lengths)
    }
    return world, per_seq


def build_shards(world, per_seq):
    specs = [SequenceSpec(sid, qkv[0].shape[0]) for sid, qkv in sorted(per_seq.items())]
    shards = shard_sequences(specs, world)
    queries, kvs = [], []
    for pos, sids in shards:
        qs = np.zeros((pos.shape[0], 4, 8))
        ks = np.zeros((pos.shape[0], 2, 8))
        vs = np.zeros((pos.shape[0], 2, 8))
        for i, (p, s) in enumerate(zip(pos, sids)):
            q, k, v = per_seq[int(s)]
            qs[i], ks[i], vs[i] = q[int(p)], k[int(p)], v[int(p)]
        queries.append(ShardedQueries(q=qs, positions=pos, seq_ids=sids))
        kvs.append(ShardedKV(k=ks, v=vs, positions=pos, seq_ids=sids))
    return queries, kvs


class TestRingLosslessness:
    @given(varseq_case())
    @settings(**SETTINGS)
    def test_passkv_exact_for_any_case(self, case):
        world, per_seq = case
        queries, kvs = build_shards(world, per_seq)
        results = ring_passkv_prefill(SimProcessGroup(world), queries, kvs)
        refs = {sid: reference_attention_with_lse(*qkv)[0] for sid, qkv in per_seq.items()}
        for res, qs in zip(results, queries):
            for i, (p, s) in enumerate(zip(qs.positions, qs.seq_ids)):
                np.testing.assert_allclose(res.out[i], refs[int(s)][int(p)], atol=1e-9)

    @given(varseq_case())
    @settings(**SETTINGS)
    def test_passq_exact_for_any_case(self, case):
        world, per_seq = case
        queries, kvs = build_shards(world, per_seq)
        results = ring_passq_prefill(SimProcessGroup(world), queries, kvs)
        refs = {sid: reference_attention_with_lse(*qkv)[0] for sid, qkv in per_seq.items()}
        for res, qs in zip(results, queries):
            for i, (p, s) in enumerate(zip(qs.positions, qs.seq_ids)):
                np.testing.assert_allclose(res.out[i], refs[int(s)][int(p)], atol=1e-9)

    @given(varseq_case())
    @settings(**SETTINGS)
    def test_variants_agree(self, case):
        """pass-KV and pass-Q are interchangeable: identical results."""
        world, per_seq = case
        queries, kvs = build_shards(world, per_seq)
        a = ring_passkv_prefill(SimProcessGroup(world), queries, kvs)
        b = ring_passq_prefill(SimProcessGroup(world), queries, kvs)
        for ra, rb in zip(a, b):
            np.testing.assert_allclose(ra.out, rb.out, atol=1e-9)
            np.testing.assert_allclose(ra.lse, rb.lse, atol=1e-9)


class TestShardSkipIsPureExecutionStrategy:
    """Skipping provably all-masked ring-step partials substitutes the exact
    merge identity element, so outputs are bitwise unchanged."""

    @given(varseq_case())
    @settings(**SETTINGS)
    def test_passkv_skip_on_off_identical(self, case):
        world, per_seq = case
        queries, kvs = build_shards(world, per_seq)
        a = ring_passkv_prefill(SimProcessGroup(world), queries, kvs)
        b = ring_passkv_prefill(
            SimProcessGroup(world), queries, kvs, skip_masked_shards=False
        )
        for ra, rb in zip(a, b):
            assert np.array_equal(ra.out, rb.out)
            assert np.array_equal(ra.lse, rb.lse)

    @given(varseq_case())
    @settings(**SETTINGS)
    def test_passq_skip_on_off_identical(self, case):
        world, per_seq = case
        queries, kvs = build_shards(world, per_seq)
        a = ring_passq_prefill(SimProcessGroup(world), queries, kvs)
        b = ring_passq_prefill(
            SimProcessGroup(world), queries, kvs, skip_masked_shards=False
        )
        for ra, rb in zip(a, b):
            assert np.array_equal(ra.out, rb.out)
            assert np.array_equal(ra.lse, rb.lse)

    @given(varseq_case(), st.integers(0, 5))
    @settings(**SETTINGS)
    def test_decode_skip_on_off_identical(self, case, step):
        """Decode's skip branch (all-pad payloads when B % N != 0, plus
        unrelated/empty shards) substitutes identity partials exactly."""
        world, per_seq = case
        _, kvs = build_shards(world, per_seq)
        rng = np.random.default_rng(step)
        sids = sorted(per_seq)
        batch = DecodeBatch(
            q=rng.standard_normal((len(sids), 4, 8)),
            positions=np.array([per_seq[s][0].shape[0] - 1 for s in sids]),
            seq_ids=np.array(sids, dtype=np.int64),
        )
        a, assign_a = ring_passq_decode(SimProcessGroup(world), kvs, batch, step=step)
        b, assign_b = ring_passq_decode(
            SimProcessGroup(world), kvs, batch, step=step, skip_masked_shards=False
        )
        assert np.array_equal(assign_a, assign_b)
        assert np.array_equal(a.out, b.out)
        assert np.array_equal(a.lse, b.lse)
