"""Property-based tests: merge attention is an exact, well-behaved monoid."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attention.flash import AttentionResult
from repro.attention.reference import reference_attention_with_lse
from repro.core.merge import merge_partials

SETTINGS = dict(max_examples=40, deadline=None)


def qkv_strategy(draw, max_tokens=24):
    seed = draw(st.integers(0, 2**31 - 1))
    tq = draw(st.integers(1, 8))
    tk = draw(st.integers(1, max_tokens))
    rng = np.random.default_rng(seed)
    q = rng.standard_normal((tq, 4, 8))
    k = rng.standard_normal((tk, 2, 8))
    v = rng.standard_normal((tk, 2, 8))
    return q, k, v, tq, tk


@st.composite
def attention_case(draw):
    q, k, v, tq, tk = qkv_strategy(draw)
    # queries positioned at the tail so most keys are visible
    q_pos = np.arange(tk - tq, tk) if tk >= tq else np.arange(tq)
    k_pos = np.arange(tk)
    n_chunks = draw(st.integers(1, min(6, tk)))
    edges = np.linspace(0, tk, n_chunks + 1, dtype=int)
    return q, k, v, q_pos, k_pos, edges


class TestMergeProperties:
    @given(attention_case())
    @settings(**SETTINGS)
    def test_chunked_merge_equals_monolithic(self, case):
        """For ANY chunking of the KV range, merging partials is exact."""
        q, k, v, q_pos, k_pos, edges = case
        full_out, full_lse = reference_attention_with_lse(q, k, v, q_pos=q_pos, k_pos=k_pos)
        partials = []
        for lo, hi in zip(edges, edges[1:]):
            o, l = reference_attention_with_lse(
                q, k[lo:hi], v[lo:hi], q_pos=q_pos, k_pos=k_pos[lo:hi]
            )
            partials.append(AttentionResult(out=o, lse=l))
        merged = merge_partials(partials)
        np.testing.assert_allclose(merged.out, full_out, atol=1e-9)
        np.testing.assert_allclose(merged.lse, full_lse, atol=1e-9)

    @given(attention_case(), st.randoms())
    @settings(**SETTINGS)
    def test_merge_order_invariance(self, case, pyrandom):
        """Merging is commutative: any permutation of partials agrees."""
        q, k, v, q_pos, k_pos, edges = case
        partials = []
        for lo, hi in zip(edges, edges[1:]):
            o, l = reference_attention_with_lse(
                q, k[lo:hi], v[lo:hi], q_pos=q_pos, k_pos=k_pos[lo:hi]
            )
            partials.append(AttentionResult(out=o, lse=l))
        shuffled = list(partials)
        pyrandom.shuffle(shuffled)
        a = merge_partials(partials)
        b = merge_partials(shuffled)
        np.testing.assert_allclose(a.out, b.out, atol=1e-9)
        np.testing.assert_allclose(a.lse, b.lse, atol=1e-9)

    @given(attention_case())
    @settings(**SETTINGS)
    def test_merge_associativity(self, case):
        """merge(merge(a, b), c) == merge(a, merge(b, c)) == merge(a,b,c)."""
        q, k, v, q_pos, k_pos, _ = case
        tk = k.shape[0]
        edges = np.linspace(0, tk, 4, dtype=int)
        parts = []
        for lo, hi in zip(edges, edges[1:]):
            o, l = reference_attention_with_lse(
                q, k[lo:hi], v[lo:hi], q_pos=q_pos, k_pos=k_pos[lo:hi]
            )
            parts.append(AttentionResult(out=o, lse=l))
        left = merge_partials([merge_partials(parts[:2]), parts[2]])
        right = merge_partials([parts[0], merge_partials(parts[1:])])
        flat = merge_partials(parts)
        np.testing.assert_allclose(left.out, right.out, atol=1e-9)
        np.testing.assert_allclose(left.out, flat.out, atol=1e-9)
        np.testing.assert_allclose(left.lse, flat.lse, atol=1e-9)

    @given(attention_case())
    @settings(**SETTINGS)
    def test_output_in_value_convex_hull(self, case):
        """Attention output per head lies inside the values' bounding box
        (softmax weights are a convex combination)."""
        q, k, v, q_pos, k_pos, edges = case
        partials = []
        for lo, hi in zip(edges, edges[1:]):
            o, l = reference_attention_with_lse(
                q, k[lo:hi], v[lo:hi], q_pos=q_pos, k_pos=k_pos[lo:hi]
            )
            partials.append(AttentionResult(out=o, lse=l))
        merged = merge_partials(partials)
        vmin, vmax = v.min() - 1e-9, v.max() + 1e-9
        visible = ~np.isneginf(merged.lse)
        assert np.all(merged.out[visible] >= vmin)
        assert np.all(merged.out[visible] <= vmax)
