"""Tests for serving metrics aggregation."""

import math

import pytest

from repro.serving.metrics import ServingMetrics
from repro.serving.request import TurnRecord


def turn(prompt, cached, response=2, algo="pass-kv"):
    return TurnRecord(
        seq_id=0, prompt_tokens=prompt, cached_tokens=cached,
        response_tokens=response, algo=algo,
    )


class TestServingMetrics:
    def test_token_accounting(self):
        m = ServingMetrics()
        m.record_turn(turn(100, 0, response=5))
        m.record_turn(turn(10, 105, response=3))
        assert m.total_prompt_tokens == 110
        assert m.total_generated_tokens == 8

    def test_cache_hit_rate(self):
        m = ServingMetrics()
        m.record_turn(turn(100, 0))      # hit rate 0
        m.record_turn(turn(50, 50))      # hit rate 0.5
        assert m.mean_cache_hit_rate == pytest.approx(0.25)

    def test_algo_counts(self):
        m = ServingMetrics()
        m.record_turn(turn(10, 0, algo="pass-kv"))
        m.record_turn(turn(1, 100, algo="pass-q"))
        m.record_turn(turn(1, 200, algo="pass-q"))
        assert m.algo_counts() == {"pass-kv": 1, "pass-q": 2}

    def test_latency_percentiles(self):
        m = ServingMetrics()
        for i, t in enumerate([1.0, 2.0, 3.0]):
            m.record_turn(turn(10, 0), ttft=t, ttit=t / 100)
        assert m.percentile_ttft(50) == pytest.approx(2.0)
        assert m.percentile_ttit(100) == pytest.approx(0.03)

    def test_empty_percentiles_are_nan(self):
        assert math.isnan(ServingMetrics().percentile_ttft(50))
        assert math.isnan(ServingMetrics().percentile_ttit(99))

    def test_tail_percentiles(self):
        m = ServingMetrics()
        for t in range(1, 101):
            m.record_turn(turn(10, 0), ttft=float(t))
        assert m.percentile_ttft(95) == pytest.approx(95.05)
        assert m.percentile_ttft(99) == pytest.approx(99.01)

    def test_preemption_accounting(self):
        m = ServingMetrics()
        assert m.preemptions == 0 and m.evicted_tokens == 0
        m.record_preemption(120)
        m.record_preemption(8)
        assert m.preemptions == 2
        assert m.evicted_tokens == 128
        assert "preemptions: 2 (128 KV tokens evicted)" in m.summary()

    def test_record_ttit_stream(self):
        m = ServingMetrics()
        for gap in (0.01, 0.02, 0.03):
            m.record_ttit(gap)
        assert m.percentile_ttit(50) == pytest.approx(0.02)

    def test_summary_renders(self):
        m = ServingMetrics()
        m.record_turn(turn(10, 0), ttft=1.5, ttit=0.05)
        text = m.summary()
        assert "turns: 1" in text
        assert "TTFT p50/p95/p99" in text
        assert "TTIT p50/p95/p99" in text

    def test_empty_summary(self):
        text = ServingMetrics().summary()
        assert "turns: 0" in text
        assert "TTFT" not in text
        assert "KV transfers" not in text
        assert "pool busy" not in text

    def test_transfer_accounting(self):
        m = ServingMetrics()
        m.record_transfer(40)
        m.record_transfer(8)
        m.record_transfer_refusal()
        m.record_transfer_cancel()
        m.record_transfer_stall(2.5)
        m.record_transfer_stall(0.5)
        assert m.transfers == 2
        assert m.transferred_kv_tokens == 48
        assert m.transfer_refusals == 1
        assert m.transfers_cancelled == 1
        assert m.transfer_stall_s == pytest.approx(3.0)
        assert "KV transfers: 2 (48 tokens, 1 refused, 1 cancelled" in m.summary()

    def test_refunded_cancel_counts_once(self):
        """A refunded cancel is a cancel AND a refund — never double-
        counted into either tally, and the refunded subset can never
        exceed the cancel total."""
        m = ServingMetrics()
        m.record_transfer_cancel(refunded=True)
        m.record_transfer_cancel(refunded=False)
        m.record_transfer_cancel()
        assert m.transfers_cancelled == 3
        assert m.transfers_refunded == 1
        assert m.transfers_refunded <= m.transfers_cancelled
        assert "3 cancelled (1 refunded)" in m.summary()

    def test_negative_transfer_stall_rejected(self):
        """Negative stall would mean a repacked transfer schedule placed
        a finish behind the clock that waited on it — reject loudly
        instead of silently corrupting the counter."""
        m = ServingMetrics()
        m.record_transfer_stall(0.0)
        with pytest.raises(ValueError):
            m.record_transfer_stall(-1e-9)
        assert m.transfer_stall_s == 0.0

    def test_trim_accounting(self):
        m = ServingMetrics()
        m.record_trim(24)
        m.record_trim(8)
        assert m.trims == 2
        assert m.trimmed_kv_tokens == 32
        assert "tail trims: 2 (32 KV tokens dropped)" in m.summary()

    def test_swap_accounting(self):
        m = ServingMetrics()
        m.record_swap_out(120, stall_s=0.25)
        m.record_swap_out(40, stall_s=0.05)
        m.record_swap_in(120, stall_s=0.25)
        assert m.swaps_out == 2 and m.swaps_in == 1
        assert m.swapped_out_tokens == 160
        assert m.swapped_in_tokens == 120
        assert m.swap_stall_s == pytest.approx(0.55)
        assert "KV swaps: 2 out/1 in (160 tokens out, 120 back" in m.summary()
        with pytest.raises(ValueError):
            m.record_swap_out(1, stall_s=-0.1)
        with pytest.raises(ValueError):
            m.record_swap_in(1, stall_s=-0.1)

    def test_empty_summary_hides_remedy_lines(self):
        text = ServingMetrics().summary()
        assert "tail trims" not in text
        assert "KV swaps" not in text

    def test_kv_occupancy_keeps_peak(self):
        m = ServingMetrics()
        m.record_kv_occupancy("decode", 0.25)
        m.record_kv_occupancy("decode", 0.75)
        m.record_kv_occupancy("decode", 0.5)
        assert m.peak_kv_utilization == {"decode": 0.75}
        assert "peak KV occupancy: decode: 75.0%" in m.summary()

    def test_pool_accounting(self):
        m = ServingMetrics()
        m.record_round("prefill", 2.0)
        m.record_round("prefill", 2.0)
        m.record_round("decode", 0.5)
        assert m.pool_rounds == {"prefill": 2, "decode": 1}
        assert m.pool_utilization("prefill", makespan=8.0) == pytest.approx(0.5)
        assert m.pool_utilization("decode", makespan=8.0) == pytest.approx(0.0625)
        assert math.isnan(m.pool_utilization("decode", makespan=0.0))
        assert math.isnan(m.pool_utilization("missing", makespan=8.0))
        assert "pool busy: decode: 0.500s/1 rounds, prefill: 4.000s/2 rounds" in m.summary()


class TestInstanceIndependence:
    """Every replica in a fleet owns its own ServingMetrics; no counter
    state may bleed between instances (the classic mutable-default
    trap)."""

    def test_no_shared_mutable_defaults(self):
        a, b = ServingMetrics(), ServingMetrics()
        assert a.registry is not b.registry, "ServingMetrics.registry is shared"
        for name in (
            "turns",
            "ttft_samples",
            "ttit_samples",
            "ttft_cold_samples",
            "ttft_warm_samples",
            "pool_busy_s",
            "pool_rounds",
            "peak_kv_utilization",
        ):
            va, vb = getattr(a, name), getattr(b, name)
            assert va is not vb, f"ServingMetrics.{name} is shared between instances"

    def test_mutations_stay_local(self):
        a, b = ServingMetrics(), ServingMetrics()
        a.record_round("prefill", 1.0)
        a.record_prefix_hit(8)
        a.ttft_samples.append(0.5)
        a.record_transfer_fault(retried=True, backoff_s=0.25)
        assert b.pool_rounds == {}
        assert b.pool_busy_s == {}
        assert b.prefix_hits == 0
        assert b.ttft_samples == []
        assert b.transfer_faults == 0

    def test_fleet_metrics_reads_do_not_mutate_replicas(self):
        from repro.serving.metrics import FleetMetrics

        m = ServingMetrics()
        m.record_prefix_hit(4)
        fm = FleetMetrics()
        fm.add_replica(0, m, 1.0)
        before = (m.prefix_hits, m.prefix_misses, list(m.ttft_samples))
        fm.summary()
        fm.prefix_hit_rate
        fm.percentile_ttft(50)
        assert (m.prefix_hits, m.prefix_misses, list(m.ttft_samples)) == before
