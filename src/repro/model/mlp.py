"""SwiGLU feed-forward network (Llama convention).

Like every linear layer in the model, the FFN is token-wise: under context
parallelism each rank evaluates it on its own token shard with zero
communication — the reason CP's communication volume beats TP's (Table 2:
TP AllReduces activations around every pair of linear layers; CP moves
nothing here).
"""

from __future__ import annotations

import numpy as np


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU / swish activation ``x * sigmoid(x)`` (numerically stable)."""
    x = np.asarray(x, dtype=np.float64)
    return x * (0.5 * (1.0 + np.tanh(0.5 * x)))


def swiglu(
    x: np.ndarray,
    w_gate: np.ndarray,
    w_up: np.ndarray,
    w_down: np.ndarray,
) -> np.ndarray:
    """SwiGLU FFN: ``(silu(x @ w_gate) * (x @ w_up)) @ w_down``.

    Args:
        x: ``[T, D]`` activations.
        w_gate: ``[D, F]`` gate projection.
        w_up: ``[D, F]`` up projection.
        w_down: ``[F, D]`` down projection.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError(f"x must be [T, D], got {x.shape}")
    if w_gate.shape != w_up.shape or w_gate.shape[0] != x.shape[1]:
        raise ValueError(f"shapes: x{x.shape} gate{w_gate.shape} up{w_up.shape}")
    if w_down.shape != (w_gate.shape[1], x.shape[1]):
        raise ValueError(f"down projection shape {w_down.shape} inconsistent")
    return (silu(x @ w_gate) * (x @ w_up)) @ w_down
