"""Table 4 + Figure 9: pass-KV vs pass-Q partial prefill on CP4.

Sweeps the persistent-KV miss rate ``T / (T + P)`` at fixed ``T + P =
128000`` and reports both variants' TTFT, their ratio (Figure 9's y-axis),
and the selections made by Algorithm 1, Algorithm 5 and the simulated
oracle. The reproduced claims:

- TTFT is ~linear in the miss rate for both variants;
- pass-Q wins below a small tipping point (paper: ~5%; differences within
  ~1% between 3.25% and 5%), pass-KV above it;
- Algorithm 5 tracks the oracle across the sweep.
"""

from __future__ import annotations

from repro.core.heuristics import RingAlgo, select_algo_simple, select_algo_with_all2all
from repro.experiments.base import ExperimentResult
from repro.model.config import llama3_405b_config
from repro.perf.hardware import HostSpec, gtt_host
from repro.perf.latency import LatencySimulator
from repro.workloads.traces import TABLE4_RANKS, TABLE4_SWEEP


#: Paper Table 4 TTFTs in ms: miss rate -> (pass-KV, pass-Q).
PAPER_TABLE4: dict[float, tuple[float, float]] = {
    0.0100: (1023.39, 898.71),
    0.0250: (1110.18, 1046.43),
    0.0325: (1298.92, 1280.10),
    0.0500: (1305.56, 1302.01),
    0.1000: (2080.67, 2205.27),
    0.2000: (3353.02, 3617.02),
    0.3000: (4629.23, 4922.52),
    0.4000: (5745.08, 6217.83),
    0.5000: (6845.21, 7367.99),
    0.6000: (7890.35, 8468.66),
    0.7000: (8697.27, 9666.62),
    0.8000: (10105.78, 10652.39),
    0.9000: (11136.40, 11571.62),
    1.0000: (11462.15, 12360.57),
}


def run(host: HostSpec | None = None) -> ExperimentResult:
    host = host if host is not None else gtt_host()
    sim = LatencySimulator(llama3_405b_config(), host)
    hc = sim.heuristic_config(TABLE4_RANKS)

    res = ExperimentResult(
        experiment_id="Table 4 / Figure 9",
        title=f"pass-KV vs pass-Q partial prefill, P+T=128000, CP{TABLE4_RANKS}",
        headers=[
            "P", "T", "miss%",
            "pass-KV ms", "pass-Q ms", "KV/Q ratio",
            "oracle", "Alg1", "Alg5",
            "paper pass-KV ms", "paper pass-Q ms",
        ],
    )
    for p, t in TABLE4_SWEEP:
        kv = sim.cp_prefill(t, p, n_ranks=TABLE4_RANKS, algo=RingAlgo.PASS_KV).total * 1e3
        qq = sim.cp_prefill(t, p, n_ranks=TABLE4_RANKS, algo=RingAlgo.PASS_Q).total * 1e3
        rate = t / (t + p)
        paper_kv, paper_q = PAPER_TABLE4[round(rate, 4)]
        res.add_row(
            p, t, 100 * rate,
            kv, qq, kv / qq,
            ("pass-kv" if kv <= qq else "pass-q"),
            select_algo_simple(hc, t, p).value,
            select_algo_with_all2all(hc, t, p).value,
            paper_kv, paper_q,
        )
    res.paper_values["tipping_point_miss_rate"] = 0.05
    res.notes.append(
        "Paper tipping point ~5% miss (ties within 1% from 3.25%); the "
        "simulated crossover lands between 2.5% and 3.25%, inside the "
        "paper's near-tie band."
    )
    return res


def crossover_miss_rate(result: ExperimentResult) -> float:
    """First sweep miss rate at which pass-KV beats pass-Q."""
    for row in result.rows:
        if row[6] == "pass-kv":
            return row[2] / 100.0
    return 1.0
