"""Tests for token sampling."""

import numpy as np
import pytest

from repro.model.sampling import sample_greedy, sample_temperature


class TestGreedy:
    def test_argmax(self):
        logits = np.array([[0.1, 5.0, -2.0], [3.0, 1.0, 2.0]])
        np.testing.assert_array_equal(sample_greedy(logits), [1, 0])

    def test_single_vector(self):
        assert sample_greedy(np.array([1.0, 9.0, 2.0])) == 1

    def test_scalar_rejected(self):
        with pytest.raises(ValueError):
            sample_greedy(np.float64(3.0))


class TestTemperature:
    def test_low_temperature_approaches_greedy(self):
        rng = np.random.default_rng(0)
        logits = np.array([[0.0, 4.0, 1.0]])
        samples = [sample_temperature(logits, 0.01, rng)[0] for _ in range(50)]
        assert all(s == 1 for s in samples)

    def test_high_temperature_spreads(self):
        rng = np.random.default_rng(0)
        logits = np.array([[0.0, 1.0, 0.5]])
        samples = {int(sample_temperature(logits, 100.0, rng)[0]) for _ in range(200)}
        assert samples == {0, 1, 2}

    def test_deterministic_given_rng(self):
        logits = np.array([[0.0, 1.0, 2.0]])
        a = sample_temperature(logits, 1.0, np.random.default_rng(7))
        b = sample_temperature(logits, 1.0, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_temperature(np.zeros((1, 3)), 0.0, rng)
        with pytest.raises(ValueError):
            sample_temperature(np.zeros(3), 1.0, rng)
