"""Per-rank persistent KV cache.

Each CP rank owns one :class:`RankKVCache` holding, for every transformer
layer and every live sequence, the K/V projections of the tokens *sharded to
this rank* — cached prompt tokens from earlier turns plus decode tokens the
round-robin assignment landed here. Absolute positions and sequence ids ride
along with the tensors so ring attention can mask exactly regardless of how
turns interleaved (the "load-balanced sharding for persistent KV cache"
contribution of the paper).

Capacity is enforced through a shared :class:`repro.kvcache.paged.PagedAllocator`
whose pool is sized from HBM bytes; exceeding it raises
:class:`CacheCapacityError`, which the decode-balance tests use to show the
round-robin scheme postpones OOM versus pinning decode to one rank (§3.6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.sharding import ShardedKV
from repro.kvcache.paged import OutOfBlocksError, PagedAllocator


class CacheCapacityError(RuntimeError):
    """A rank's KV pool overflowed."""


@dataclass
class _Stream:
    """KV storage for one (layer, sequence) stream, chunk-appended.

    Chunks are either float arrays (dense mode) or
    :class:`repro.kvcache.quantized.QuantizedKV` records (quantized mode);
    ``pos_chunks`` always holds positions.
    """

    k_chunks: list = field(default_factory=list)
    v_chunks: list = field(default_factory=list)
    pos_chunks: list[np.ndarray] = field(default_factory=list)

    def tokens(self) -> int:
        return sum(c.shape[0] for c in self.pos_chunks)


def _mask_chunk(k, v, keep: np.ndarray, *, quantized: bool):
    """Select ``keep`` rows of one KV chunk, dense or quantized.

    Always materialises fresh arrays (never a view), so the source chunk
    — possibly referenced by another stream via prefix sharing — is left
    untouched: chunk-level copy-on-write.
    """
    if quantized:
        from repro.kvcache.quantized import QuantizedKV

        sliced = QuantizedKV(
            k_codes=k.k_codes[keep],
            v_codes=k.v_codes[keep],
            k_scales=k.k_scales[keep],
            v_scales=k.v_scales[keep],
        )
        return sliced, sliced
    return k[keep], v[keep]


class RankKVCache:
    """One CP rank's KV cache across layers and sequences.

    Args:
        n_layers: transformer layers.
        n_kv_heads: KV heads per layer (this rank holds all of them; TP
            sharding inside the host is below this abstraction).
        head_dim: head dimension.
        capacity_tokens: optional per-rank token budget, enforced per layer
            (every layer stores the same token set, so one layer's pool is
            the binding constraint). ``None`` = unbounded.
        block_size: paged-allocator block size in tokens.
        quantized: store KV int8-quantized per (token, head) (paper §2.2's
            memory lever); reads dequantize transparently, trading exact
            logits for ~2x KV capacity.
    """

    def __init__(
        self,
        n_layers: int,
        n_kv_heads: int,
        head_dim: int,
        *,
        capacity_tokens: int | None = None,
        block_size: int = 16,
        quantized: bool = False,
    ):
        if n_layers < 1:
            raise ValueError(f"n_layers must be >= 1, got {n_layers}")
        self.n_layers = n_layers
        self.n_kv_heads = n_kv_heads
        self.head_dim = head_dim
        self.capacity_tokens = capacity_tokens
        self.block_size = block_size
        self.quantized = quantized
        self._streams: dict[tuple[int, int], _Stream] = {}
        num_blocks = 0 if capacity_tokens is None else -(-capacity_tokens // block_size)
        self._allocator = (
            None
            if capacity_tokens is None
            else PagedAllocator(num_blocks=num_blocks, block_size=block_size)
        )

    # ------------------------------------------------------------------ #

    def append(
        self,
        layer: int,
        seq_id: int,
        k: np.ndarray,
        v: np.ndarray,
        positions: np.ndarray,
    ) -> None:
        """Append projected KV for tokens of ``seq_id`` at ``layer``.

        Raises:
            CacheCapacityError: when the paged pool is exhausted (only
                layer 0 is charged against the allocator; all layers hold
                identical token counts).
        """
        self._check_layer(layer)
        k = np.asarray(k)
        v = np.asarray(v)
        positions = np.asarray(positions, dtype=np.int64)
        if k.shape != v.shape or k.ndim != 3:
            raise ValueError(f"bad KV shapes k{k.shape} v{v.shape}")
        if k.shape[1:] != (self.n_kv_heads, self.head_dim):
            raise ValueError(
                f"expected [*, {self.n_kv_heads}, {self.head_dim}], got {k.shape}"
            )
        if positions.shape != (k.shape[0],):
            raise ValueError("positions must match token count")
        if k.shape[0] == 0:
            return
        if layer == 0 and self._allocator is not None:
            try:
                self._allocator.append((seq_id,), k.shape[0])
            except OutOfBlocksError as exc:
                raise CacheCapacityError(str(exc)) from exc
        stream = self._streams.setdefault((layer, seq_id), _Stream())
        if self.quantized:
            from repro.kvcache.quantized import quantize_kv

            record = quantize_kv(k, v)
            stream.k_chunks.append(record)
            stream.v_chunks.append(record)
        else:
            stream.k_chunks.append(k)
            stream.v_chunks.append(v)
        stream.pos_chunks.append(positions)

    def get(self, layer: int, seq_ids: list[int] | None = None) -> ShardedKV:
        """Fused :class:`ShardedKV` view of this rank's cache at ``layer``.

        Args:
            layer: transformer layer.
            seq_ids: restrict to these sequences (default: all, sorted).
        """
        self._check_layer(layer)
        if seq_ids is None:
            seq_ids = sorted({sid for (lyr, sid) in self._streams if lyr == layer})
        ks, vs, ps, ss = [], [], [], []
        for sid in seq_ids:
            stream = self._streams.get((layer, sid))
            if stream is None or not stream.k_chunks:
                continue
            n = stream.tokens()
            if self.quantized:
                from repro.kvcache.quantized import dequantize_kv

                dk, dv = zip(*(dequantize_kv(rec) for rec in stream.k_chunks))
                ks.append(np.concatenate(dk, axis=0))
                vs.append(np.concatenate(dv, axis=0))
            else:
                ks.append(np.concatenate(stream.k_chunks, axis=0))
                vs.append(np.concatenate(stream.v_chunks, axis=0))
            ps.append(np.concatenate(stream.pos_chunks))
            ss.append(np.full(n, sid, dtype=np.int64))
        if not ks:
            return ShardedKV.empty(self.n_kv_heads, self.head_dim)
        return ShardedKV(
            k=np.concatenate(ks, axis=0),
            v=np.concatenate(vs, axis=0),
            positions=np.concatenate(ps),
            seq_ids=np.concatenate(ss),
        )

    # ------------------------------------------------------------------ #

    def tokens(self, seq_id: int, layer: int = 0) -> int:
        """Tokens cached for ``seq_id`` at ``layer`` on this rank."""
        stream = self._streams.get((layer, seq_id))
        return 0 if stream is None else stream.tokens()

    def total_tokens(self, layer: int = 0) -> int:
        """Total tokens cached at ``layer`` across sequences."""
        return sum(
            stream.tokens() for (lyr, _), stream in self._streams.items() if lyr == layer
        )

    def free_tokens(self) -> int | None:
        """Remaining appendable tokens, or ``None`` when unbounded."""
        if self._allocator is None:
            return None
        return self._allocator.free_tokens()

    def utilization(self) -> float | None:
        """Claimed fraction of this rank's block pool (``None`` = unbounded)."""
        if self._allocator is None:
            return None
        return self._allocator.utilization()

    def sequence_ids(self, layer: int = 0) -> list[int]:
        return sorted({sid for (lyr, sid) in self._streams if lyr == layer})

    def can_append(self, demands: dict[int, int]) -> bool:
        """Whether per-sequence token demands fit in this rank's pool.

        Args:
            demands: ``{seq_id: tokens to append}`` for one upcoming engine
                round (prefill chunk or decode step).

        Exact against fragmentation: each sequence first fills the slack in
        its own partially-filled last block, then claims whole free blocks.
        The serving runtime uses this as its admission predicate before
        launching a round, so capacity pressure surfaces as a scheduling
        decision (preempt / wait) instead of a mid-layer
        :class:`CacheCapacityError`.
        """
        if self._allocator is None:
            return True
        return self._allocator.fits({(sid,): n for sid, n in demands.items()})

    def share_prefix(self, src_seq: int, dst_seq: int, upto_pos: int) -> int:
        """Reference ``src_seq``'s cached KV below ``upto_pos`` as ``dst_seq``.

        Prefix sharing: the destination stream is built from the *same*
        chunk arrays the source stream holds (full chunks by reference —
        chunks are append-only, so aliasing is safe; a chunk straddling
        ``upto_pos`` is sliced into a fresh array), and the paged
        allocator accounts the shared span once via block refcounts
        (:meth:`repro.kvcache.paged.PagedAllocator.share`). Appends to
        either stream never mutate shared state: new chunks extend only
        the appending stream, and the allocator copy-on-write splits a
        shared last block.

        Args:
            src_seq: resident donor sequence.
            dst_seq: new sequence; must not be cached on this rank.
            upto_pos: share every token at absolute position ``< upto_pos``.

        Returns:
            Tokens shared on this rank at layer 0 (every layer stores the
            same token set); 0 when the donor holds nothing below
            ``upto_pos`` here (the destination then simply starts empty).
        """
        if upto_pos < 1:
            raise ValueError(f"upto_pos must be >= 1, got {upto_pos}")
        if src_seq == dst_seq:
            raise ValueError(f"cannot share sequence {src_seq} with itself")
        if any(sid == dst_seq for (_lyr, sid) in self._streams):
            raise ValueError(f"sequence {dst_seq} already cached on this rank")
        shared = 0
        for layer in range(self.n_layers):
            stream = self._streams.get((layer, src_seq))
            if stream is None:
                continue
            k_chunks, v_chunks, pos_chunks = [], [], []
            n = 0
            for k, v, pos in zip(stream.k_chunks, stream.v_chunks, stream.pos_chunks):
                keep = pos < upto_pos
                n_keep = int(keep.sum())
                if n_keep == 0:
                    continue
                if n_keep == pos.size:
                    k_chunks.append(k)
                    v_chunks.append(v)
                    pos_chunks.append(pos)
                else:
                    ks, vs = _mask_chunk(k, v, keep, quantized=self.quantized)
                    k_chunks.append(ks)
                    v_chunks.append(vs)
                    pos_chunks.append(pos[keep])
                n += n_keep
            if n == 0:
                continue
            self._streams[(layer, dst_seq)] = _Stream(k_chunks, v_chunks, pos_chunks)
            if layer == 0:
                shared = n
        if shared and self._allocator is not None:
            self._allocator.share((src_seq,), (dst_seq,), shared)
        return shared

    def drop_tail(self, seq_id: int, from_pos: int) -> int:
        """Evict every cached token of ``seq_id`` at position ``>= from_pos``.

        Partial (tail) eviction: the prefix this rank holds below
        ``from_pos`` stays resident, and only the whole allocator blocks
        the dropped tokens vacate return to the pool. Positions are
        absolute, so the tokens dropped here are exactly this rank's share
        of the sequence's global tail regardless of how sharding
        interleaved them into the stream.

        Returns:
            Tokens dropped at layer 0 (every layer stores the same token
            set); 0 when nothing at or above ``from_pos`` is cached here.
        """
        if from_pos < 0:
            raise ValueError(f"from_pos must be >= 0, got {from_pos}")
        freed = 0
        for layer in range(self.n_layers):
            stream = self._streams.get((layer, seq_id))
            if stream is None:
                continue
            dropped = 0
            k_chunks, v_chunks, pos_chunks = [], [], []
            for k, v, pos in zip(stream.k_chunks, stream.v_chunks, stream.pos_chunks):
                keep = pos < from_pos
                n_keep = int(keep.sum())
                dropped += pos.size - n_keep
                if n_keep == pos.size:
                    k_chunks.append(k)
                    v_chunks.append(v)
                    pos_chunks.append(pos)
                elif n_keep > 0:
                    ks, vs = _mask_chunk(k, v, keep, quantized=self.quantized)
                    k_chunks.append(ks)
                    v_chunks.append(vs)
                    pos_chunks.append(pos[keep])
            if dropped == 0:
                continue
            if pos_chunks:
                stream.k_chunks = k_chunks
                stream.v_chunks = v_chunks
                stream.pos_chunks = pos_chunks
            else:
                del self._streams[(layer, seq_id)]
            if layer == 0:
                freed = dropped
        if freed and self._allocator is not None:
            self._allocator.release_tail((seq_id,), freed)
        return freed

    def drop(self, seq_id: int) -> int:
        """Evict a sequence from all layers and release its blocks.

        Returns:
            Tokens freed at layer 0 (every layer stores the same token
            set); 0 when the sequence was not cached here. The serving
            runtime uses the return value for eviction accounting.
        """
        freed = self.tokens(seq_id)
        for layer in range(self.n_layers):
            self._streams.pop((layer, seq_id), None)
        if self._allocator is not None:
            self._allocator.release((seq_id,))
        return freed

    def _check_layer(self, layer: int) -> None:
        if not 0 <= layer < self.n_layers:
            raise ValueError(f"layer {layer} out of range [0, {self.n_layers})")
