"""Context-parallel inference engine: multi-turn prefill + decode.

:class:`ContextParallelEngine` is the integration layer that turns the
paper's pieces into a serving loop:

- **Full prefill** (first user turn): new tokens are load-balance sharded
  (§3.5.1), each rank projects Q/K/V locally, appends its KV shard to its
  persistent cache, and the planner-selected ring algorithm (pass-KV for
  full prefill) computes exact attention; linear stages stay rank-local.
- **Partial (persistent-KV) prefill** (follow-up turns): identical flow,
  but the cached tokens stay wherever earlier turns placed them and only
  the new tokens are re-sharded (Figure 2); the planner may flip to pass-Q
  at high cache-hit rates.
- **Decode**: one token per sequence per step, assigned round-robin with a
  per-step offset so generated KV spreads across ranks (§3.6), attention by
  batched ring pass-Q decode (Algorithm 4).

Everything is lockstep-simulated but *numerically real*: the engine's
logits are tested to match a single-device forward of the same model on the
same token history — the paper's "lossless exact" property.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.heuristics import HeuristicConfig, RingAlgo
from repro.core.planner import PrefillPlan, PrefillPlanner, SelectorKind
from repro.core.ring_decode import DecodeBatch, ring_passq_decode
from repro.core.ring_passkv import ring_passkv_prefill
from repro.core.ring_passq import ring_passq_prefill
from repro.core.sharding import SequenceSpec, ShardedQueries, shard_sequences
from repro.distributed.process_group import SimProcessGroup
from repro.distributed.topology import ClusterTopology
from repro.distributed.tracer import CommTracer
from repro.kvcache.cache import CacheCapacityError, RankKVCache
from repro.kvcache.prefix_index import PrefixIndex
from repro.model.llama import LlamaModel


@dataclass
class PrefillOutput:
    """Result of one prefill round.

    Attributes:
        logits: per-sequence ``[T_new, vocab]`` logits in position order.
        plan: the planner decision that ran this round.
    """

    logits: dict[int, np.ndarray]
    plan: PrefillPlan

    def last_logits(self, seq_id: int) -> np.ndarray:
        """Logits of the final new token of ``seq_id`` (next-token logits)."""
        return self.logits[seq_id][-1]


@dataclass
class DecodeOutput:
    """Result of one decode step.

    Attributes:
        logits: per-sequence ``[vocab]`` next-token logits.
        assignment: per-sequence owning rank this step.
    """

    logits: dict[int, np.ndarray]
    assignment: dict[int, int]


@dataclass
class KVExport:
    """Position-ordered KV of one sequence, detached from any sharding.

    Produced by :meth:`ContextParallelEngine.export_kv` and consumed by
    :meth:`ContextParallelEngine.import_kv` — the payload of a
    prefill-pool -> decode-pool transfer in the disaggregated serving
    runtime (:mod:`repro.runtime.transfer`). Because every ring algorithm
    is exact for *any* sharding, re-importing this data into an engine of
    a different world size reproduces the source engine's logits.

    Attributes:
        seq_id: the exported sequence.
        start_pos: first absolute position included (delta exports skip
            positions the destination already holds).
        positions: absolute positions, sorted ascending — always the
            contiguous range ``[start_pos, start_pos + tokens)``.
        layers: per-layer ``(k, v)`` arrays aligned with ``positions``.
    """

    seq_id: int
    start_pos: int
    positions: np.ndarray
    layers: list[tuple[np.ndarray, np.ndarray]]

    @property
    def tokens(self) -> int:
        return int(self.positions.size)

    @property
    def end_pos(self) -> int:
        """Context length of the sequence after importing this export."""
        return self.start_pos + self.tokens


class ContextParallelEngine:
    """Multi-turn context-parallel inference over a simulated CP group.

    Args:
        model: the stage-decomposed transformer.
        world_size: number of CP ranks.
        topology: cluster wiring (defaults to a generic simulated fabric).
        heuristic: hardware constants for the pass-KV/pass-Q selector.
        selector: which published selector the planner runs.
        capacity_tokens: optional per-rank KV capacity (OOM experiments).
        block_size: local flash kernel block size.
        quantized_kv_cache: store KV int8-quantized (2x capacity, slightly
            lossy logits; see :mod:`repro.kvcache.quantized`).
        compute_dtype: attention-kernel arithmetic dtype threaded through
            every ring algorithm (default ``None`` = exact float64). The
            online-softmax merge accumulation stays float64 regardless, so
            e.g. ``np.float32`` trades last-ulp exactness of the logits for
            kernel speed while keeping the merge recurrence lossless.
    """

    def __init__(
        self,
        model: LlamaModel,
        world_size: int,
        *,
        topology: ClusterTopology | None = None,
        heuristic: HeuristicConfig | None = None,
        selector: SelectorKind = SelectorKind.ALL2ALL_AWARE,
        capacity_tokens: int | None = None,
        block_size: int = 128,
        quantized_kv_cache: bool = False,
        compute_dtype=None,
    ):
        self.model = model
        self.world_size = world_size
        self.tracer = CommTracer()
        self.group = SimProcessGroup(world_size, topology=topology, tracer=self.tracer)
        self.planner = PrefillPlanner(heuristic, selector=selector)
        self.block_size = block_size
        self.compute_dtype = compute_dtype
        cfg = model.config
        self.caches = [
            RankKVCache(
                cfg.n_layers,
                cfg.n_kv_heads,
                cfg.head_dim,
                capacity_tokens=capacity_tokens,
                quantized=quantized_kv_cache,
            )
            for _ in range(world_size)
        ]
        self.seq_lengths: dict[int, int] = {}
        self.decode_steps = 0
        # shared-prefix KV reuse (opt-in): radix index over committed
        # token ids plus the per-sequence histories backing it. Tree
        # insertion is deferred out of the commit hot loop: histories
        # marked dirty here are (re)anchored lazily at the next lookup,
        # so a decode step costs O(1) bookkeeping instead of a full
        # root-to-leaf walk per token.
        self.prefix_index: PrefixIndex | None = None
        self._committed: dict[int, list[int]] = {}
        self._index_dirty: set[int] = set()

    # ------------------------------------------------------------------ #
    # prefill (full and partial)
    # ------------------------------------------------------------------ #

    def prefill(
        self,
        prompts: dict[int, np.ndarray],
        *,
        force_algo: RingAlgo | None = None,
    ) -> PrefillOutput:
        """Run one prefill round over a fused batch of sequences.

        Args:
            prompts: ``{seq_id: new token ids}``. Sequences already known to
                the engine are treated as partial prefill (the new tokens
                extend the cached history); unknown ids start fresh.
            force_algo: override the heuristic (used by benchmarks that
                sweep both variants).

        Returns:
            :class:`PrefillOutput` with per-sequence logits for every new
            token position.
        """
        if not prompts:
            raise ValueError("prefill requires at least one sequence")
        cfg = self.model.config
        specs = []
        new_ids: dict[int, np.ndarray] = {}
        for sid, ids in sorted(prompts.items()):
            ids = np.asarray(ids, dtype=np.int64)
            if ids.ndim != 1 or ids.size == 0:
                raise ValueError(f"sequence {sid}: token ids must be a non-empty 1-D array")
            specs.append(SequenceSpec(sid, int(ids.size), self.seq_lengths.get(sid, 0)))
            new_ids[sid] = ids
        plan = self.planner.plan(specs, force_algo=force_algo)

        shards = shard_sequences(specs, self.world_size)
        cached = {s.seq_id: s.cached_tokens for s in specs}

        # Per-rank token ids resolved from (seq, pos) coordinates.
        rank_tokens = []
        for positions, seq_ids in shards:
            toks = np.empty(positions.shape[0], dtype=np.int64)
            for i, (pos, sid) in enumerate(zip(positions, seq_ids)):
                toks[i] = new_ids[int(sid)][int(pos) - cached[int(sid)]]
            rank_tokens.append(toks)

        # Stage pipeline: local embed -> (per layer: local qkv + cache
        # append, ring attention, local residual/FFN) -> local unembed.
        xs = [self.model.embed(toks) for toks in rank_tokens]
        batch_sids = [s.seq_id for s in specs]
        for layer in range(cfg.n_layers):
            queries = []
            for rank in range(self.world_size):
                positions, seq_ids = shards[rank]
                q, k, v = self.model.attn_qkv(layer, xs[rank], positions)
                for sid in batch_sids:
                    idx = np.nonzero(seq_ids == sid)[0]
                    if idx.size:
                        self.caches[rank].append(layer, sid, k[idx], v[idx], positions[idx])
                queries.append(ShardedQueries(q=q, positions=positions, seq_ids=seq_ids))
            kv_shards = [self.caches[rank].get(layer, batch_sids) for rank in range(self.world_size)]
            if plan.algo is RingAlgo.PASS_KV:
                results = ring_passkv_prefill(
                    self.group, queries, kv_shards, block_size=self.block_size,
                    compute_dtype=self.compute_dtype,
                )
            else:
                results = ring_passq_prefill(
                    self.group, queries, kv_shards, block_size=self.block_size,
                    compute_dtype=self.compute_dtype,
                )
            for rank in range(self.world_size):
                xs[rank] = self.model.attn_residual(layer, xs[rank], results[rank].out)
                xs[rank] = self.model.ffn_residual(layer, xs[rank])

        # Reassemble per-sequence logits in position order.
        logits: dict[int, np.ndarray] = {}
        for spec in specs:
            rows = np.empty((spec.new_tokens, cfg.vocab_size))
            for rank in range(self.world_size):
                positions, seq_ids = shards[rank]
                idx = np.nonzero(seq_ids == spec.seq_id)[0]
                if idx.size == 0:
                    continue
                rank_logits = self.model.unembed(xs[rank][idx])
                rows[positions[idx] - spec.cached_tokens] = rank_logits
            logits[spec.seq_id] = rows
            self.seq_lengths[spec.seq_id] = spec.cached_tokens + spec.new_tokens
            self._track_commit(spec.seq_id, spec.cached_tokens, new_ids[spec.seq_id])
        return PrefillOutput(logits=logits, plan=plan)

    def prefill_chunked(
        self,
        seq_id: int,
        token_ids: np.ndarray,
        *,
        chunk_tokens: int,
        force_algo: RingAlgo | None = None,
    ) -> PrefillOutput:
        """Prefill one long prompt as a sequence of partial prefills.

        Chunked prefill bounds peak activation memory for very long
        prompts: each chunk runs as a partial prefill against the KV cached
        by the previous chunks. Because the algorithms are exact, the
        concatenated logits equal a one-shot prefill's (tested).

        Args:
            seq_id: sequence to extend.
            token_ids: the full new prompt.
            chunk_tokens: chunk size (>= 1).
            force_algo: optional override applied to every chunk.

        Returns:
            A :class:`PrefillOutput` whose logits cover the whole prompt;
            ``plan`` is the final chunk's plan.
        """
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if chunk_tokens < 1:
            raise ValueError(f"chunk_tokens must be >= 1, got {chunk_tokens}")
        if token_ids.ndim != 1 or token_ids.size == 0:
            raise ValueError("token_ids must be a non-empty 1-D array")
        pieces: list[np.ndarray] = []
        plan = None
        for start in range(0, token_ids.size, chunk_tokens):
            out = self.prefill(
                {seq_id: token_ids[start : start + chunk_tokens]},
                force_algo=force_algo,
            )
            pieces.append(out.logits[seq_id])
            plan = out.plan
        assert plan is not None
        return PrefillOutput(logits={seq_id: np.concatenate(pieces, axis=0)}, plan=plan)

    # ------------------------------------------------------------------ #
    # decode
    # ------------------------------------------------------------------ #

    def decode(self, tokens: dict[int, int]) -> DecodeOutput:
        """Run one decode step: one new token per listed sequence.

        Args:
            tokens: ``{seq_id: token id}`` — the tokens sampled from the
                previous step's logits. All sequences must have been
                prefetched via :meth:`prefill`.

        Returns:
            :class:`DecodeOutput` with per-sequence next-token logits.
        """
        if not tokens:
            raise ValueError("decode requires at least one sequence")
        cfg = self.model.config
        sids = sorted(tokens)
        for sid in sids:
            if sid not in self.seq_lengths:
                raise KeyError(f"sequence {sid} has no prefilled context")
        b = len(sids)
        token_arr = np.array([tokens[sid] for sid in sids], dtype=np.int64)
        positions = np.array([self.seq_lengths[sid] for sid in sids], dtype=np.int64)
        seq_arr = np.array(sids, dtype=np.int64)

        from repro.core.ring_decode import round_robin_assignment

        assignment = round_robin_assignment(b, self.world_size, self.decode_steps)
        rank_slots = [np.nonzero(assignment == rank)[0] for rank in range(self.world_size)]

        xs = [self.model.embed(token_arr[slots]) for slots in rank_slots]
        for layer in range(cfg.n_layers):
            q_batch = np.zeros((b, cfg.n_heads, cfg.head_dim))
            for rank, slots in enumerate(rank_slots):
                if slots.size == 0:
                    continue
                q, k, v = self.model.attn_qkv(layer, xs[rank], positions[slots])
                q_batch[slots] = q
                for i, slot in enumerate(slots):
                    self.caches[rank].append(
                        layer, int(seq_arr[slot]), k[i : i + 1], v[i : i + 1],
                        positions[slot : slot + 1],
                    )
            kv_shards = [self.caches[rank].get(layer, sids) for rank in range(self.world_size)]
            batch = DecodeBatch(q=q_batch, positions=positions, seq_ids=seq_arr)
            result, _ = ring_passq_decode(
                self.group, kv_shards, batch, step=self.decode_steps,
                block_size=self.block_size, compute_dtype=self.compute_dtype,
            )
            for rank, slots in enumerate(rank_slots):
                if slots.size == 0:
                    continue
                xs[rank] = self.model.attn_residual(layer, xs[rank], result.out[slots])
                xs[rank] = self.model.ffn_residual(layer, xs[rank])

        logits: dict[int, np.ndarray] = {}
        for rank, slots in enumerate(rank_slots):
            if slots.size == 0:
                continue
            rank_logits = self.model.unembed(xs[rank])
            for i, slot in enumerate(slots):
                logits[int(seq_arr[slot])] = rank_logits[i]
        for i, sid in enumerate(sids):
            self._track_commit(sid, int(positions[i]), [tokens[sid]])
            self.seq_lengths[sid] += 1
        self.decode_steps += 1
        return DecodeOutput(
            logits=logits,
            assignment={int(seq_arr[i]): int(assignment[i]) for i in range(b)},
        )

    # ------------------------------------------------------------------ #
    # generation convenience
    # ------------------------------------------------------------------ #

    def generate(
        self,
        prompts: dict[int, np.ndarray],
        *,
        max_new_tokens: int,
        temperature: float | None = None,
        rng: np.random.Generator | None = None,
        stop_tokens: set[int] | None = None,
    ) -> dict[int, list[int]]:
        """Prefill + autoregressive decode in one call.

        Args:
            prompts: ``{seq_id: token ids}`` — full or follow-up prompts.
            max_new_tokens: decode budget per sequence.
            temperature: ``None`` = greedy; otherwise softmax sampling.
            rng: generator for temperature sampling (required when
                ``temperature`` is set).
            stop_tokens: token ids that end a sequence's generation early.

        Returns:
            ``{seq_id: generated token ids}`` (may be shorter than the
            budget when a stop token fires).
        """
        from repro.model.sampling import sample_greedy, sample_temperature

        if max_new_tokens < 0:
            raise ValueError(f"max_new_tokens must be >= 0, got {max_new_tokens}")
        if temperature is not None and rng is None:
            raise ValueError("temperature sampling requires an rng")
        out = self.prefill(prompts)
        generated: dict[int, list[int]] = {sid: [] for sid in prompts}
        next_logits = {sid: out.last_logits(sid) for sid in prompts}
        live = set(prompts)
        for _ in range(max_new_tokens):
            if not live:
                break
            tokens: dict[int, int] = {}
            for sid in sorted(live):
                logits = next_logits[sid]
                if temperature is None:
                    tok = int(sample_greedy(logits))
                else:
                    tok = int(sample_temperature(logits[None, :], temperature, rng)[0])
                tokens[sid] = tok
                generated[sid].append(tok)
            step = self.decode(tokens)
            for sid, tok in tokens.items():
                if stop_tokens and tok in stop_tokens:
                    live.discard(sid)
                else:
                    next_logits[sid] = step.logits[sid]
        return generated

    # ------------------------------------------------------------------ #
    # shared-prefix KV reuse (radix prefix cache)
    # ------------------------------------------------------------------ #

    def enable_prefix_cache(self) -> PrefixIndex:
        """Turn on shared-prefix KV reuse; returns the radix index.

        From this call on, the engine tracks every sequence's committed
        token ids (prefill chunks and decode tokens alike) and anchors
        them in a :class:`repro.kvcache.prefix_index.PrefixIndex` kept in
        lockstep with residency: :meth:`evict` removes the anchor,
        :meth:`evict_tail` trims it, and :meth:`import_kv` — whose
        payload carries no token identity — marks the sequence
        non-donatable. Sequences resident *before* this call are not
        retroactively indexed. Idempotent.
        """
        if self.prefix_index is None:
            self.prefix_index = PrefixIndex()
        return self.prefix_index

    def match_prefix(self, tokens) -> tuple[int, int | None]:
        """Longest resident committed prefix of ``tokens``: ``(len, donor)``.

        ``(0, None)`` when the prefix cache is disabled or nothing
        matches. The donor's first ``len`` committed tokens equal
        ``tokens[:len]`` and are resident on every rank, so
        :meth:`adopt_prefix` can share them.
        """
        if self.prefix_index is None:
            return 0, None
        self._flush_index()
        return self.prefix_index.match(np.asarray(tokens, dtype=np.int64))

    def adopt_prefix(self, seq_id: int, donor_seq: int, length: int) -> int:
        """Start ``seq_id`` from ``donor_seq``'s first ``length`` tokens.

        Every rank's cache references the donor's KV below position
        ``length`` (chunk arrays aliased, paged blocks refcount-shared —
        capacity is charged once), and the engine treats the new
        sequence as having ``length`` cached tokens: the next
        :meth:`prefill` of the remaining suffix is an ordinary partial
        prefill, exact for any world size. The adopted tokens anchor
        ``seq_id`` in the index too, so it immediately becomes a donor.

        Returns:
            ``length`` (the adopted token count).

        Raises:
            RuntimeError: prefix cache disabled.
            ValueError: ``seq_id`` already resident, or ``length``
                outside the donor's tracked committed history.
        """
        if self.prefix_index is None:
            raise RuntimeError("prefix cache not enabled on this engine")
        if seq_id in self.seq_lengths:
            raise ValueError(f"sequence {seq_id} already has resident KV")
        donor_hist = self._committed.get(donor_seq)
        donor_len = self.seq_lengths.get(donor_seq, 0)
        if donor_hist is None or not 1 <= length <= min(len(donor_hist), donor_len):
            raise ValueError(
                f"cannot adopt {length} tokens from donor {donor_seq} "
                f"(resident {donor_len}, tracked {0 if donor_hist is None else len(donor_hist)})"
            )
        shared = sum(
            cache.share_prefix(donor_seq, seq_id, length) for cache in self.caches
        )
        assert shared == length, (
            f"donor {donor_seq} prefix [0, {length}) shards to {shared} tokens"
        )
        self.seq_lengths[seq_id] = length
        self._committed[seq_id] = list(donor_hist[:length])
        self.prefix_index.insert(
            seq_id, np.asarray(self._committed[seq_id], dtype=np.int64)
        )
        self.prefix_index.touch(donor_seq)
        self.prefix_index.touch(seq_id)
        return length

    def _track_commit(self, seq_id: int, cached_before: int, ids) -> None:
        """Keep the committed-token history and radix anchor in lockstep
        with a KV commit of ``ids`` at positions ``cached_before...``.

        The history list is extended here; the tree insertion itself is
        deferred to :meth:`_flush_index` (run before any lookup) so the
        per-token decode hot loop never pays a tree walk.
        """
        if self.prefix_index is None:
            return
        hist = self._committed.get(seq_id)
        if cached_before == 0:
            hist = [int(t) for t in ids]
            self._committed[seq_id] = hist
        elif hist is not None and len(hist) == cached_before:
            hist.extend(int(t) for t in ids)
        else:
            # resident KV with unknown token identity (an imported swap /
            # transfer payload): not donatable
            self._committed.pop(seq_id, None)
            self._index_dirty.discard(seq_id)
            self.prefix_index.remove(seq_id)
            return
        self._index_dirty.add(seq_id)

    def _flush_index(self) -> None:
        """Anchor every dirty committed history in the radix tree."""
        if not self._index_dirty:
            return
        for sid in self._index_dirty:
            hist = self._committed.get(sid)
            if hist:
                self.prefix_index.insert(sid, np.asarray(hist, dtype=np.int64))
        self._index_dirty.clear()

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #

    def release(self, seq_id: int) -> None:
        """Evict a finished conversation from every rank's cache."""
        self.evict(seq_id)

    def evict(self, seq_id: int) -> int:
        """Evict ``seq_id`` from every rank; return total tokens freed.

        The serving runtime uses this for capacity-pressure preemption:
        the sequence's KV is dropped everywhere and the engine forgets its
        length, so a later :meth:`prefill` of the full token history
        restores it exactly (the algorithms are exact for any sharding, so
        the resumed sequence's logits match the uninterrupted run).
        """
        freed = sum(cache.drop(seq_id) for cache in self.caches)
        self.seq_lengths.pop(seq_id, None)
        if self.prefix_index is not None:
            self._committed.pop(seq_id, None)
            self._index_dirty.discard(seq_id)
            self.prefix_index.remove(seq_id)
        return freed

    def evict_tail(self, seq_id: int, keep_tokens: int) -> int:
        """Drop cached KV at positions ``>= keep_tokens`` on every rank.

        Partial (tail-trim) eviction for the serving runtime's cheaper
        preemption remedy: the oldest ``keep_tokens`` positions stay
        resident wherever the sharding placed them, and a later partial
        :meth:`prefill` of just the trimmed suffix restores the sequence
        exactly (algorithms are exact for any sharding, so the resumed
        logits match the uninterrupted run). ``keep_tokens == 0``
        degenerates to :meth:`evict`.

        Returns:
            Total tokens freed across ranks.

        Raises:
            ValueError: ``keep_tokens`` outside the committed context.
        """
        length = self.seq_lengths.get(seq_id, 0)
        if not 0 <= keep_tokens <= length:
            raise ValueError(
                f"keep_tokens {keep_tokens} outside committed context [0, {length}]"
            )
        if keep_tokens == 0:
            return self.evict(seq_id)
        freed = sum(cache.drop_tail(seq_id, keep_tokens) for cache in self.caches)
        self.seq_lengths[seq_id] = keep_tokens
        if self.prefix_index is not None:
            hist = self._committed.get(seq_id)
            if hist is not None and len(hist) > keep_tokens:
                del hist[keep_tokens:]
            self.prefix_index.trim(seq_id, keep_tokens)
        return freed

    # ------------------------------------------------------------------ #
    # KV export / import (disaggregated prefill -> decode transfer)
    # ------------------------------------------------------------------ #

    def export_kv(self, seq_id: int, *, start_pos: int = 0) -> KVExport:
        """Extract ``seq_id``'s cached KV at positions ``>= start_pos``.

        Gathers the sequence's K/V across every rank's cache and reorders
        it by absolute position, producing a sharding-independent payload
        a different engine (any world size) can :meth:`import_kv`. A
        ``start_pos`` equal to the context length yields a valid
        zero-token export.

        Raises:
            KeyError: unknown sequence.
            ValueError: ``start_pos`` beyond the committed context, or a
                non-contiguous cache (which would indicate corruption).
        """
        if seq_id not in self.seq_lengths:
            raise KeyError(f"sequence {seq_id} has no cached context to export")
        length = self.seq_lengths[seq_id]
        if not 0 <= start_pos <= length:
            raise ValueError(
                f"start_pos {start_pos} outside committed context [0, {length}]"
            )
        cfg = self.model.config
        n = length - start_pos
        layers: list[tuple[np.ndarray, np.ndarray]] = []
        positions = np.arange(start_pos, length, dtype=np.int64)
        for layer in range(cfg.n_layers):
            ks, vs, ps = [], [], []
            for cache in self.caches:
                shard = cache.get(layer, [seq_id])
                keep = shard.positions >= start_pos
                if not keep.any():
                    continue
                ks.append(shard.k[keep])
                vs.append(shard.v[keep])
                ps.append(shard.positions[keep])
            if ps:
                pos = np.concatenate(ps)
                order = np.argsort(pos, kind="stable")
                if not np.array_equal(pos[order], positions):
                    raise ValueError(
                        f"sequence {seq_id} layer {layer}: cached positions are "
                        f"not the contiguous range [{start_pos}, {length})"
                    )
                k = np.concatenate(ks, axis=0)[order]
                v = np.concatenate(vs, axis=0)[order]
            else:
                if n != 0:
                    raise ValueError(
                        f"sequence {seq_id} layer {layer}: no cached KV despite "
                        f"context length {length}"
                    )
                k = np.zeros((0, cfg.n_kv_heads, cfg.head_dim))
                v = np.zeros((0, cfg.n_kv_heads, cfg.head_dim))
            layers.append((k, v))
        return KVExport(seq_id=seq_id, start_pos=start_pos, positions=positions, layers=layers)

    def import_kv(self, export: KVExport) -> None:
        """Append an exported KV payload to this engine's caches.

        The payload's positions must start exactly where this engine's
        committed context for the sequence ends (delta import). Tokens are
        placed with the same load-balanced sharding a prefill of the same
        ``(new, cached)`` shape would use, so
        :meth:`prefill_token_demand` doubles as the admission predicate
        (check :meth:`fits` before importing).

        Raises:
            ValueError: position mismatch or wrong layer count.
            repro.kvcache.cache.CacheCapacityError: destination pool full
                (raised before any cache is touched — the engine is left
                unchanged, so the caller can free blocks and retry).
        """
        cfg = self.model.config
        sid = export.seq_id
        cached = self.seq_lengths.get(sid, 0)
        if export.start_pos != cached:
            raise ValueError(
                f"sequence {sid}: import starts at {export.start_pos} but this "
                f"engine holds {cached} tokens"
            )
        if len(export.layers) != cfg.n_layers:
            raise ValueError(
                f"export has {len(export.layers)} layers, engine expects {cfg.n_layers}"
            )
        if export.tokens == 0:
            return
        spec = SequenceSpec(sid, export.tokens, cached)
        if not self.fits(self.prefill_token_demand([spec])):
            # checked up-front so a full pool can never leave some ranks
            # mutated: the raise below happens before any cache append
            raise CacheCapacityError(
                f"sequence {sid}: import of {export.tokens} tokens does not "
                "fit this engine's KV pools"
            )
        shards = shard_sequences([spec], self.world_size)
        for rank, (positions, _seq_ids) in enumerate(shards):
            if positions.size == 0:
                continue
            rows = positions - export.start_pos
            for layer in range(cfg.n_layers):
                k, v = export.layers[layer]
                self.caches[rank].append(layer, sid, k[rows], v[rows], positions)
        self.seq_lengths[sid] = export.end_pos
        if self.prefix_index is not None:
            # the payload carries KV but no token identity: the sequence
            # is resident yet not donatable, and any stale anchor would
            # misdescribe it
            self._committed.pop(sid, None)
            self._index_dirty.discard(sid)
            self.prefix_index.remove(sid)

    def import_token_demand(self, seq_id: int, tokens: int) -> list[dict[int, int]]:
        """Per-rank KV demand an :meth:`import_kv` of ``tokens`` would add."""
        if tokens == 0:
            return [{} for _ in range(self.world_size)]
        spec = SequenceSpec(seq_id, tokens, self.context_length(seq_id))
        return self.prefill_token_demand([spec])

    # ------------------------------------------------------------------ #
    # capacity queries (serving-runtime admission control)
    # ------------------------------------------------------------------ #

    def prefill_token_demand(self, specs: list[SequenceSpec]) -> list[dict[int, int]]:
        """Per-rank ``{seq_id: new tokens}`` a prefill round would append.

        Mirrors :meth:`prefill`'s load-balanced sharding without running
        it, so a scheduler can test the round against :meth:`fits` before
        committing.
        """
        shards = shard_sequences(specs, self.world_size)
        demands: list[dict[int, int]] = []
        for _, seq_ids in shards:
            counts: dict[int, int] = {}
            for sid in seq_ids:
                counts[int(sid)] = counts.get(int(sid), 0) + 1
            demands.append(counts)
        return demands

    def decode_token_demand(self, seq_ids: list[int]) -> list[dict[int, int]]:
        """Per-rank ``{seq_id: 1}`` the *next* decode step would append.

        Uses the current ``decode_steps`` counter, i.e. the round-robin
        offset the next :meth:`decode` call will actually use.
        """
        from repro.core.ring_decode import round_robin_assignment

        sids = sorted(seq_ids)
        assignment = round_robin_assignment(len(sids), self.world_size, self.decode_steps)
        demands: list[dict[int, int]] = [{} for _ in range(self.world_size)]
        for i, sid in enumerate(sids):
            demands[int(assignment[i])][sid] = 1
        return demands

    def fits(self, demands: list[dict[int, int]]) -> bool:
        """Whether per-rank token demands fit every rank's KV pool."""
        if len(demands) != self.world_size:
            raise ValueError(f"expected {self.world_size} per-rank demands, got {len(demands)}")
        return all(
            cache.can_append(demand) for cache, demand in zip(self.caches, demands)
        )

    def kv_block_tokens(self) -> int:
        """Tokens per paged-KV allocator block on each rank.

        The granularity at which tail-trim eviction actually frees pool
        capacity: dropping fewer than one rank's block of tokens only
        opens slack inside the victim's own last block.
        """
        return self.caches[0].block_size

    def cached_tokens(self, seq_id: int) -> list[int]:
        """Per-rank cached token counts for ``seq_id`` (balance diagnostics)."""
        return [cache.tokens(seq_id) for cache in self.caches]

    def kv_utilization(self) -> float | None:
        """Mean claimed fraction of the per-rank KV block pools
        (``None`` when any rank is unbounded). Block-granular, so it
        reflects allocatable pressure; the serving runtime samples it
        after every round for its peak-occupancy metric."""
        utils = [cache.utilization() for cache in self.caches]
        if any(u is None for u in utils):
            return None
        return sum(utils) / len(utils) if utils else 0.0

    def context_length(self, seq_id: int) -> int:
        """Committed context length of ``seq_id``."""
        return self.seq_lengths.get(seq_id, 0)

    def kv_leak_report(self) -> list[str]:
        """Audit KV bookkeeping consistency; returns violations (empty = clean).

        The fault-injection property uses this after a drained run to
        prove that pool resets, sheds, and degraded fallbacks left no
        dangling state behind:

        - every cached sequence id on every rank is tracked in
          ``seq_lengths``, and its per-rank cached tokens sum to the
          tracked length (no orphaned KV, no length drift);
        - with no resident sequences, every bounded rank's paged
          allocator is fully free (no leaked block refcounts);
        - every radix anchor describes a resident sequence, never more
          tokens than are committed, and every pin targets an anchor
          (no dangling donors or stale pins).
        """
        problems: list[str] = []
        for rank, cache in enumerate(self.caches):
            for sid in cache.sequence_ids():
                if sid not in self.seq_lengths:
                    problems.append(f"rank {rank}: orphaned KV for untracked seq {sid}")
            alloc = cache._allocator
            if alloc is not None:
                problems.extend(f"rank {rank}: {p}" for p in alloc.audit())
                if not self.seq_lengths and alloc.used_blocks:
                    problems.append(
                        f"rank {rank}: {alloc.used_blocks} blocks leaked with no "
                        "resident sequences"
                    )
        for sid, length in sorted(self.seq_lengths.items()):
            resident = sum(cache.tokens(sid) for cache in self.caches)
            if resident != length:
                problems.append(
                    f"seq {sid}: ranks hold {resident} tokens but tracked length is {length}"
                )
        if self.prefix_index is not None:
            self._flush_index()
            for sid in self.prefix_index.anchors():
                anchored = self.prefix_index.anchor_length(sid)
                if sid not in self.seq_lengths:
                    problems.append(f"dangling radix anchor for evicted seq {sid}")
                elif anchored > self.seq_lengths[sid]:
                    problems.append(
                        f"seq {sid}: anchor covers {anchored} tokens but only "
                        f"{self.seq_lengths[sid]} are resident"
                    )
            for sid in sorted(self.prefix_index.pins()):
                if sid not in self.prefix_index:
                    problems.append(f"stale pin on non-anchor seq {sid}")
        return problems
