"""Tests for the streaming softmax accumulator."""

import numpy as np
import pytest

from repro.attention.online_softmax import OnlineSoftmaxState
from repro.attention.reference import reference_attention_with_lse

from helpers import make_qkv


class TestOnlineSoftmaxState:
    def test_single_update_identity(self, rng):
        out = rng.standard_normal((3, 2, 4))
        lse = rng.standard_normal((3, 2))
        state = OnlineSoftmaxState(out.shape, lse.shape)
        state.update(out, lse)
        got_out, got_lse = state.finalize()
        np.testing.assert_allclose(got_out, out, atol=1e-12)
        np.testing.assert_allclose(got_lse, lse, atol=1e-12)

    def test_empty_state_finalizes_to_zero(self):
        state = OnlineSoftmaxState((2, 2, 4), (2, 2))
        out, lse = state.finalize()
        assert np.all(out == 0)
        assert np.all(np.isneginf(lse))

    def test_neg_inf_partial_is_identity(self, rng):
        out = rng.standard_normal((3, 2, 4))
        lse = rng.standard_normal((3, 2))
        state = OnlineSoftmaxState(out.shape, lse.shape)
        state.update(out, lse)
        state.update(np.zeros_like(out), np.full_like(lse, -np.inf))
        got_out, got_lse = state.finalize()
        np.testing.assert_allclose(got_out, out, atol=1e-12)
        np.testing.assert_allclose(got_lse, lse, atol=1e-12)

    def test_order_invariance(self, rng):
        partials = [
            (rng.standard_normal((2, 3, 4)), rng.standard_normal((2, 3)))
            for _ in range(5)
        ]
        a = OnlineSoftmaxState((2, 3, 4), (2, 3))
        b = OnlineSoftmaxState((2, 3, 4), (2, 3))
        for out, lse in partials:
            a.update(out, lse)
        for out, lse in reversed(partials):
            b.update(out, lse)
        out_a, lse_a = a.finalize()
        out_b, lse_b = b.finalize()
        np.testing.assert_allclose(out_a, out_b, atol=1e-10)
        np.testing.assert_allclose(lse_a, lse_b, atol=1e-10)

    def test_chunked_attention_recomposes(self, rng):
        """Splitting the KV range into chunks and folding partials equals
        one full attention — the identity merge attention relies on."""
        q, k, v = make_qkv(rng, 6, 24)
        kpos = np.arange(24)
        full_out, full_lse = reference_attention_with_lse(
            q, k, v, q_pos=np.arange(18, 24), k_pos=kpos
        )
        state = OnlineSoftmaxState(full_out.shape, full_lse.shape)
        for lo in range(0, 24, 5):
            hi = min(lo + 5, 24)
            o, l = reference_attention_with_lse(
                q, k[lo:hi], v[lo:hi], q_pos=np.arange(18, 24), k_pos=kpos[lo:hi]
            )
            state.update(o, l)
        out, lse = state.finalize()
        np.testing.assert_allclose(out, full_out, atol=1e-12)
        np.testing.assert_allclose(lse, full_lse, atol=1e-12)

    def test_extreme_lse_magnitudes(self):
        """Large score offsets must not overflow (the whole point of LSE)."""
        state = OnlineSoftmaxState((1, 1, 2), (1, 1))
        state.update(np.full((1, 1, 2), 1.0), np.array([[1000.0]]))
        state.update(np.full((1, 1, 2), 3.0), np.array([[-1000.0]]))
        out, lse = state.finalize()
        np.testing.assert_allclose(out, np.full((1, 1, 2), 1.0), atol=1e-12)
        assert lse[0, 0] == pytest.approx(1000.0, abs=1e-9)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            OnlineSoftmaxState((2, 3, 4), (3, 2))
        state = OnlineSoftmaxState((2, 3, 4), (2, 3))
        with pytest.raises(ValueError):
            state.update(np.zeros((2, 3, 5)), np.zeros((2, 3)))
        with pytest.raises(ValueError):
            state.update(np.zeros((2, 3, 4)), np.zeros((2, 2)))
