"""pass-KV vs pass-Q selection heuristics (paper §3.4, Appendices C-D).

The engine must decide, per partial prefill, whether to circulate KV
(Algorithm 2) or Q (Algorithm 3). The paper derives three selectors of
increasing fidelity, all implemented here:

1. **Algorithm 1** (message size + overlap): choose pass-KV when either

   - ``T >= N * C * NKV * e / (2 * NH * BW)`` (Equation 2: the new-token
     count is large enough that pass-KV SendRecv hides under attention), or
   - ``T / (T + P) >= 2 * NKV / NH`` (Equation 1: KV messages are smaller
     than Q messages anyway).

2. **Algorithm 5** (Appendix C): additionally charges pass-Q for its
   critical-path All2All, shrinking the miss-rate threshold to
   ``2 * NKV / NH - 4 * T * BW / (N * C * e)`` (Equation 5).

3. **Empirical model** (Appendix D): a fitted linear decision boundary in
   ``(log T, log(T/(T+P)))`` space,
   ``h(T, P) = alpha * log T + beta * log(T/(T+P)) + gamma``, preferring
   pass-KV when ``h > 0``. The paper's fitted coefficients are exposed as
   :data:`PAPER_EMPIRICAL_COEFFS`, and :func:`fit_empirical` refits them
   from labelled measurements (as the production system does periodically).

Thresholds are static per (model, hardware, N); the engine evaluates them
once and dispatches dynamically per request. Full prefill is the ``P = 0``
special case (pass-KV), decode the ``T = 1`` case (pass-Q).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import minimize


class RingAlgo(enum.Enum):
    """Which tensor circulates around the CP ring."""

    PASS_KV = "pass-kv"
    PASS_Q = "pass-q"


#: Appendix D fitted coefficients: (alpha, beta, gamma).
PAPER_EMPIRICAL_COEFFS: tuple[float, float, float] = (-1.059, 1.145, 12.112)


@dataclass(frozen=True)
class HeuristicConfig:
    """Static model/hardware parameters feeding the selection thresholds.

    Attributes:
        n_heads: query heads ``NH``.
        n_kv_heads: KV heads ``NKV``.
        element_bytes: wire bytes per element ``e`` (2 for bf16).
        peak_compute: per-CP-rank achieved compute ``C`` in FLOP/s (a CP
            rank is a whole TP8 host, so this is 8x the per-GPU figure).
        bandwidth: inter-rank bandwidth ``BW`` in bytes/s available to the
            ring (aggregate across the 8 per-KV-head channels).
        world_size: number of CP ranks ``N``.
    """

    n_heads: int
    n_kv_heads: int
    element_bytes: float
    peak_compute: float
    bandwidth: float
    world_size: int

    def __post_init__(self) -> None:
        if self.n_heads <= 0 or self.n_kv_heads <= 0 or self.n_heads % self.n_kv_heads:
            raise ValueError(
                f"need NH a positive multiple of NKV, got {self.n_heads}/{self.n_kv_heads}"
            )
        if min(self.element_bytes, self.peak_compute, self.bandwidth) <= 0:
            raise ValueError("element_bytes, peak_compute and bandwidth must be positive")
        if self.world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {self.world_size}")

    # ---------------------------- thresholds ---------------------------- #

    @property
    def kv_message_ratio(self) -> float:
        """RHS of Equation (1): ``2 * NKV / NH``.

        KV messages are smaller than Q messages when the miss rate exceeds
        this constant (1/8 = 12.5% for Llama3 405B).
        """
        return 2.0 * self.n_kv_heads / self.n_heads

    @property
    def passkv_overlap_threshold(self) -> float:
        """RHS of Equation (2): min new-token count ``T`` for pass-KV
        SendRecv to hide under attention compute."""
        return (
            self.world_size
            * self.peak_compute
            * self.n_kv_heads
            * self.element_bytes
            / (2.0 * self.n_heads * self.bandwidth)
        )

    @property
    def passq_overlap_threshold(self) -> float:
        """RHS of Equation (3): min total context ``T + P`` for pass-Q ring
        SendRecv to hide under attention compute."""
        return self.world_size * self.element_bytes * self.peak_compute / (4.0 * self.bandwidth)


def miss_rate(new_tokens: int, cached_tokens: int) -> float:
    """KV-cache miss rate ``T / (T + P)``; 0 for an empty request."""
    total = new_tokens + cached_tokens
    if new_tokens < 0 or cached_tokens < 0:
        raise ValueError("token counts must be non-negative")
    return new_tokens / total if total else 0.0


def select_algo_simple(
    config: HeuristicConfig, new_tokens: int, cached_tokens: int
) -> RingAlgo:
    """Algorithm 1: overlap (Eq. 2) or message-size (Eq. 1) tests."""
    if new_tokens >= config.passkv_overlap_threshold:
        return RingAlgo.PASS_KV
    if miss_rate(new_tokens, cached_tokens) >= config.kv_message_ratio:
        return RingAlgo.PASS_KV
    return RingAlgo.PASS_Q


def select_algo_with_all2all(
    config: HeuristicConfig, new_tokens: int, cached_tokens: int
) -> RingAlgo:
    """Algorithm 5: Algorithm 1 refined by pass-Q's All2All cost (Eq. 5).

    The miss-rate threshold drops by ``4 * T * BW / (N * C * e)`` because
    pass-Q pays an exposed All2All of partial outputs even when its ring
    messages hide perfectly.
    """
    if new_tokens >= config.passkv_overlap_threshold:
        return RingAlgo.PASS_KV
    adjusted = config.kv_message_ratio - (
        4.0
        * new_tokens
        * config.bandwidth
        / (config.world_size * config.peak_compute * config.element_bytes)
    )
    if miss_rate(new_tokens, cached_tokens) >= adjusted:
        return RingAlgo.PASS_KV
    return RingAlgo.PASS_Q


def empirical_score(
    new_tokens: int,
    cached_tokens: int,
    coeffs: tuple[float, float, float] = PAPER_EMPIRICAL_COEFFS,
) -> float:
    """Appendix D decision function ``h(T, P)``.

    Positive values prefer pass-KV. ``T`` must be >= 1 (there is nothing to
    select for an empty prefill).
    """
    if new_tokens < 1:
        raise ValueError(f"empirical model needs new_tokens >= 1, got {new_tokens}")
    alpha, beta, gamma = coeffs
    rate = miss_rate(new_tokens, cached_tokens)
    return alpha * math.log(new_tokens) + beta * math.log(rate) + gamma


def select_algo_empirical(
    new_tokens: int,
    cached_tokens: int,
    coeffs: tuple[float, float, float] = PAPER_EMPIRICAL_COEFFS,
) -> RingAlgo:
    """Appendix D selector: pass-KV iff ``h(T, P) > 0``."""
    return RingAlgo.PASS_KV if empirical_score(new_tokens, cached_tokens, coeffs) > 0 else RingAlgo.PASS_Q


def fit_empirical(
    new_tokens: np.ndarray,
    cached_tokens: np.ndarray,
    prefer_passkv: np.ndarray,
    *,
    initial: tuple[float, float, float] = (-1.0, 1.0, 10.0),
) -> tuple[float, float, float]:
    """Fit Appendix D's linear boundary from labelled measurements.

    Logistic regression on features ``(log T, log(T/(T+P)), 1)`` with labels
    ``prefer_passkv`` (True where measured pass-KV latency was lower).

    Returns:
        Fitted ``(alpha, beta, gamma)``.
    """
    t = np.asarray(new_tokens, dtype=np.float64)
    p = np.asarray(cached_tokens, dtype=np.float64)
    y = np.asarray(prefer_passkv, dtype=np.float64)
    if not (t.shape == p.shape == y.shape):
        raise ValueError("inputs must share a shape")
    if np.any(t < 1):
        raise ValueError("new_tokens must be >= 1 for the log features")
    feats = np.stack([np.log(t), np.log(t / (t + p)), np.ones_like(t)], axis=1)

    def loss(w: np.ndarray) -> float:
        z = feats @ w
        # numerically stable logistic loss
        return float(np.mean(np.logaddexp(0.0, -z) * y + np.logaddexp(0.0, z) * (1 - y)))

    res = minimize(loss, np.asarray(initial, dtype=np.float64), method="Nelder-Mead",
                   options={"maxiter": 5000, "xatol": 1e-8, "fatol": 1e-10})
    alpha, beta, gamma = (float(x) for x in res.x)
    return alpha, beta, gamma
