"""Striped sharding — the alternative load-balancing scheme (ablation).

Striped Attention (Brandon et al. 2023, cited in §3.5.1's related work)
balances causal attention by dealing tokens round-robin across ranks:
token ``t`` goes to rank ``t mod N``. Like the paper's 2N-chunk mirrored
scheme it equalizes both FLOPs and KV bytes; the trade-offs are

- stripes interleave at token granularity, so *every* (rank, KV-shard)
  pair contains work at *every* ring step — good balance, but the causal
  structure cannot be exploited to skip whole blocks;
- chunked layouts keep tokens contiguous, which is what production
  attention kernels (and paged KV caches) want.

This module exists for the sharding ablation: both schemes flow through
the same ring algorithms (position-based masks make them interchangeable)
and the ablation quantifies the balance each achieves.
"""

from __future__ import annotations

import numpy as np


def striped_shard_positions(
    length: int, world_size: int, *, offset: int = 0
) -> list[np.ndarray]:
    """Round-robin token assignment: rank ``i`` gets positions ``i, i+N, ...``.

    Args:
        length: tokens being sharded.
        world_size: CP ranks.
        offset: first absolute position (partial prefill).

    Returns:
        ``world_size`` position arrays partitioning
        ``[offset, offset + length)``.
    """
    if length < 0:
        raise ValueError(f"length must be >= 0, got {length}")
    if world_size < 1:
        raise ValueError(f"world_size must be >= 1, got {world_size}")
    positions = np.arange(offset, offset + length, dtype=np.int64)
    return [positions[rank::world_size] for rank in range(world_size)]


def striped_flops_per_rank(length: int, world_size: int) -> np.ndarray:
    """Relative causal-attention work per rank under striping.

    Same metric as :func:`repro.core.sharding.causal_flops_per_rank`:
    sum of ``pos + 1`` over the rank's positions.
    """
    return np.array(
        [float(np.sum(pos + 1)) for pos in striped_shard_positions(length, world_size)]
    )


def striped_imbalance(length: int, world_size: int) -> float:
    """Max-over-mean work ratio for striping (1.0 = perfectly balanced)."""
    work = striped_flops_per_rank(length, world_size)
    return float(work.max() / work.mean())
