"""Unit tests: RankKVCache prefix sharing (chunk aliasing + accounting)."""

import numpy as np
import pytest

from repro.kvcache.cache import RankKVCache


def make_cache(**kw):
    return RankKVCache(n_layers=2, n_kv_heads=2, head_dim=4, **kw)


def fill(cache, seq_id, positions):
    positions = np.asarray(positions, dtype=np.int64)
    rng = np.random.default_rng(int(positions.sum()) + seq_id)
    for layer in range(cache.n_layers):
        k = rng.standard_normal((positions.size, 2, 4))
        v = rng.standard_normal((positions.size, 2, 4))
        cache.append(layer, seq_id, k, v, positions)


class TestSharePrefix:
    def test_shared_view_matches_donor_prefix(self):
        cache = make_cache()
        fill(cache, 0, np.arange(10))
        shared = cache.share_prefix(0, 1, 6)
        assert shared == 6
        for layer in range(2):
            src = cache.get(layer, [0])
            dst = cache.get(layer, [1])
            keep = src.positions < 6
            np.testing.assert_array_equal(dst.positions, src.positions[keep])
            np.testing.assert_array_equal(dst.k, src.k[keep])
            np.testing.assert_array_equal(dst.v, src.v[keep])
            assert set(dst.seq_ids) == {1}

    def test_full_chunks_are_aliased_not_copied(self):
        cache = make_cache()
        fill(cache, 0, np.arange(4))  # one whole chunk below the cut
        fill(cache, 0, np.arange(4, 8))
        cache.share_prefix(0, 1, 4)
        src_chunk = cache._streams[(0, 0)].k_chunks[0]
        dst_chunk = cache._streams[(0, 1)].k_chunks[0]
        assert dst_chunk is src_chunk

    def test_straddling_chunk_is_sliced_fresh(self):
        cache = make_cache()
        fill(cache, 0, np.arange(8))
        cache.share_prefix(0, 1, 5)
        src_chunk = cache._streams[(0, 0)].k_chunks[0]
        dst_chunk = cache._streams[(0, 1)].k_chunks[0]
        assert dst_chunk is not src_chunk
        assert dst_chunk.shape[0] == 5

    def test_allocator_accounts_shared_blocks_once(self):
        cache = make_cache(capacity_tokens=64, block_size=4)
        fill(cache, 0, np.arange(10))
        used = cache._allocator.used_blocks
        cache.share_prefix(0, 1, 8)
        assert cache._allocator.used_blocks == used
        assert cache.tokens(1) == 8

    def test_appends_never_disturb_the_other_stream(self):
        cache = make_cache(capacity_tokens=64, block_size=4)
        fill(cache, 0, np.arange(6))
        cache.share_prefix(0, 1, 6)
        before = cache.get(0, [0])
        fill(cache, 1, np.arange(6, 12))
        after = cache.get(0, [0])
        np.testing.assert_array_equal(before.k, after.k)
        assert cache.tokens(1) == 12
        assert cache.tokens(0) == 6

    def test_drop_dst_keeps_donor(self):
        cache = make_cache(capacity_tokens=64, block_size=4)
        fill(cache, 0, np.arange(10))
        cache.share_prefix(0, 1, 10)
        cache.drop(1)
        assert cache.tokens(0) == 10
        assert cache.tokens(1) == 0
        # donor's blocks are exclusive again
        blocks = cache._allocator.stream_blocks((0,))
        assert all(cache._allocator.block_refcount(b) == 1 for b in blocks)

    def test_drop_donor_keeps_dst(self):
        cache = make_cache(capacity_tokens=64, block_size=4)
        fill(cache, 0, np.arange(10))
        cache.share_prefix(0, 1, 10)
        cache.drop(0)
        assert cache.tokens(1) == 10
        got = cache.get(0, [1])
        assert got.positions.size == 10

    def test_drop_tail_into_shared_span(self):
        cache = make_cache(capacity_tokens=64, block_size=4)
        fill(cache, 0, np.arange(10))
        cache.share_prefix(0, 1, 10)
        cache.drop_tail(1, 4)  # trim dst below the shared span
        assert cache.tokens(1) == 4
        assert cache.tokens(0) == 10  # donor untouched
        src = cache.get(0, [0])
        assert src.positions.size == 10

    def test_share_validation(self):
        cache = make_cache()
        fill(cache, 0, np.arange(4))
        with pytest.raises(ValueError):
            cache.share_prefix(0, 0, 2)
        with pytest.raises(ValueError):
            cache.share_prefix(0, 1, 0)
        cache.share_prefix(0, 1, 4)
        with pytest.raises(ValueError):
            cache.share_prefix(0, 1, 2)  # dst exists

    def test_share_nothing_below_cut(self):
        cache = make_cache()
        fill(cache, 0, np.arange(5, 9))  # donor holds only positions >= 5
        assert cache.share_prefix(0, 1, 5) == 0
        assert cache.tokens(1) == 0

    def test_quantized_share(self):
        cache = make_cache(capacity_tokens=64, block_size=4, quantized=True)
        fill(cache, 0, np.arange(8))
        shared = cache.share_prefix(0, 1, 6)
        assert shared == 6
        src = cache.get(0, [0])
        dst = cache.get(0, [1])
        keep = src.positions < 6
        np.testing.assert_array_equal(dst.k, src.k[keep])
