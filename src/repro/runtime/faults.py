"""Deterministic fault injection for the serving runtime (chaos layer).

Production disaggregated serving treats failure and overload as schedule
inputs, not exceptions: DistServe measures *goodput* (requests completed
within SLO per second), and Mooncake's overload-oriented scheduler
rejects work early rather than wedging the cluster. The runtime grown
here spans the same failure surface — a bandwidth-priced KV wire, a
host-side swap store, and two paged KV pools — so this module makes each
of those components fallible on purpose, deterministically:

- **Transfer failures**: an in-flight prefill->decode KV payload dies
  mid-stream at landing time. The wire seconds already streamed are
  sunk; the runtime retries with capped exponential backoff and, past
  ``max_transfer_retries``, degrades to a full re-prefill of the
  committed history (the remedy of last resort always available).
- **Swap losses**: a host-store payload is gone when its swap-in comes
  due. The runtime falls back to recomputation — the same spill path a
  capacity-blocked swap-in already takes.
- **Pool resets**: a whole pool loses every resident KV block (node
  crash / cache flush). Every holder is requeued through the ordinary
  preemption machinery, with prefix-index anchors and allocator
  refcounts invalidated consistently.
- **Deadlines & backpressure**: per-request deadlines shed requests
  that can no longer finish in time (``timed_out``), and a queue-depth
  cap rejects admissions under overload (``shed``), so saturation
  degrades completion rate instead of latency-for-everyone.

Determinism is the point: every stochastic decision is a pure function
of ``(plan seed, fault kind, seq_id, request_id, attempt index)`` via a
counter-based RNG, so the same :class:`FaultPlan` produces the same
fault schedule regardless of event interleaving — which is what lets
the serving-exactness property replay a faulted run and what makes
``--fault-seed`` reproducible from the CLI. Per-request fault *budgets*
(retries per transfer, losses per swap, a finite reset count) guarantee
every run still drains: past its budget a request is exempt and its
recovery path completes.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

#: RNG stream discriminators (never reuse across fault kinds).
_KIND_TRANSFER = 1
_KIND_SWAP = 2
_KIND_RESET = 3

#: Lost-swap budget per request: after this many injected losses the
#: request's swap-ins always succeed, so recovery terminates.
_MAX_SWAP_LOSSES = 2

#: CLI spec keys -> (FaultPlan field, parser).
_SPEC_KEYS = {
    "transfer": ("transfer_fail_rate", float),
    "swap": ("swap_loss_rate", float),
    "pool_reset": ("pool_resets", int),
    "window": ("pool_reset_window", int),
    "retries": ("max_transfer_retries", int),
    "backoff": ("backoff_base_s", float),
    "backoff_cap": ("backoff_cap_s", float),
    "deadline": ("deadline_s", float),
    "queue": ("max_queue_depth", int),
}


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of which faults a runtime run injects.

    Attributes:
        seed: root of every per-event RNG draw. One seed fully
            determines the fault schedule (given the same workload).
        transfer_fail_rate: probability an in-flight KV transfer dies at
            landing time (per landing attempt, disaggregated runtimes).
        swap_loss_rate: probability a host-stored swap payload is gone
            when its swap-in comes due (``preemption="swap"`` runtimes).
        pool_resets: how many whole-pool KV resets to inject.
        pool_reset_window: resets land within the first this-many engine
            rounds (prefill + decode combined).
        max_transfer_retries: failed-transfer retries before the
            degradation ladder falls back to full re-prefill.
        backoff_base_s: first retry delay; doubles per retry.
        backoff_cap_s: ceiling on any single retry delay.
        deadline_s: per-request completion deadline measured from
            arrival (``None`` = no deadline). A request past its
            deadline is shed as ``timed_out`` along with the rest of
            its conversation.
        max_queue_depth: prefill-queue depth above which *new*
            admissions are rejected (``shed``) instead of enqueued
            (``None`` = no backpressure).
    """

    seed: int = 0
    transfer_fail_rate: float = 0.0
    swap_loss_rate: float = 0.0
    pool_resets: int = 0
    pool_reset_window: int = 24
    max_transfer_retries: int = 3
    backoff_base_s: float = 0.5
    backoff_cap_s: float = 8.0
    deadline_s: float | None = None
    max_queue_depth: int | None = None

    def __post_init__(self) -> None:
        for name in ("transfer_fail_rate", "swap_loss_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.pool_resets < 0:
            raise ValueError(f"pool_resets must be >= 0, got {self.pool_resets}")
        if self.pool_reset_window < 1:
            raise ValueError(
                f"pool_reset_window must be >= 1, got {self.pool_reset_window}"
            )
        if self.max_transfer_retries < 0:
            raise ValueError(
                f"max_transfer_retries must be >= 0, got {self.max_transfer_retries}"
            )
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {self.deadline_s}")
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )

    @property
    def active(self) -> bool:
        """Whether this plan injects or sheds anything at all."""
        return bool(
            self.transfer_fail_rate
            or self.swap_loss_rate
            or self.pool_resets
            or self.deadline_s is not None
            or self.max_queue_depth is not None
        )

    def backoff(self, attempt: int) -> float:
        """Capped exponential delay before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        return min(self.backoff_cap_s, self.backoff_base_s * (2.0 ** (attempt - 1)))

    @classmethod
    def parse(cls, spec: str, *, seed: int = 0) -> "FaultPlan":
        """Build a plan from a CLI spec like
        ``"transfer=0.2,swap=0.2,pool_reset=1,deadline=30,queue=16"``.

        Keys: ``transfer`` (fail rate), ``swap`` (loss rate),
        ``pool_reset`` (count), ``window`` (reset round window),
        ``retries``, ``backoff``, ``backoff_cap``, ``deadline``
        (seconds), ``queue`` (max depth). Unknown keys raise.
        """
        kwargs: dict = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key = key.strip()
            if not sep or key not in _SPEC_KEYS:
                known = ", ".join(sorted(_SPEC_KEYS))
                raise ValueError(
                    f"bad fault spec item {part!r}: want key=value with key in {{{known}}}"
                )
            field_name, cast = _SPEC_KEYS[key]
            try:
                kwargs[field_name] = cast(value)
            except ValueError as exc:
                raise ValueError(f"bad fault spec value in {part!r}: {exc}") from exc
        return cls(seed=seed, **kwargs)

    def describe(self) -> str:
        """Compact non-default-fields summary (CLI banner / logs)."""
        parts = []
        for f in fields(self):
            val = getattr(self, f.name)
            if f.name != "seed" and val != f.default:
                parts.append(f"{f.name}={val}")
        return ", ".join(parts) if parts else "inactive"


class FaultInjector:
    """Stateful fault oracle for one runtime run.

    Each query is answered by a counter-based RNG keyed on
    ``(seed, kind, seq_id, request_id, attempt)`` — the attempt index is
    the per-request count of faults already injected for that kind, so a
    payload re-examined on several steps (e.g. a refused transfer
    retried every landing pass) re-derives the *same* verdict until a
    fault actually fires and advances the counter. That makes the
    schedule independent of how the event loop happens to interleave,
    which is what the determinism acceptance criterion requires.

    Args:
        plan: the fault plan to execute.
        pools: pool names eligible for resets (the runtime passes
            ``("prefill", "decode")`` when disaggregated, ``("prefill",)``
            colocated — the single aliased pool).
        tracer: optional :class:`repro.obs.trace.Tracer`; every injected
            verdict (a ``True`` from :meth:`transfer_fails` /
            :meth:`swap_lost`) emits a ``fault_inject`` instant at the
            simulated time the caller passes via ``now``. Pool resets
            are emitted by the runtime, which knows the evicted tokens.
    """

    def __init__(
        self,
        plan: FaultPlan,
        *,
        pools: tuple[str, ...] = ("prefill",),
        tracer=None,
    ):
        from repro.obs.trace import NULL_TRACER

        if not pools:
            raise ValueError("at least one pool name is required")
        self.plan = plan
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._transfer_faults: dict[int, int] = {}
        self._swap_losses: dict[int, int] = {}
        # the reset schedule is pre-drawn so it never depends on which
        # requests happen to exist when a reset comes due
        rng = np.random.default_rng([plan.seed, _KIND_RESET])
        schedule = [
            (
                int(rng.integers(1, plan.pool_reset_window + 1)),
                str(pools[int(rng.integers(0, len(pools)))]),
            )
            for _ in range(plan.pool_resets)
        ]
        self._reset_schedule = sorted(schedule)
        self._resets_fired = 0

    def _draw(self, kind: int, seq_id: int, request_id: int, attempt: int) -> float:
        rng = np.random.default_rng([self.plan.seed, kind, seq_id, request_id, attempt])
        return float(rng.random())

    # ------------------------------------------------------------------ #

    def transfer_fails(self, seq_id: int, request_id: int, *, now: float = 0.0) -> bool:
        """Whether this landing attempt of ``request_id``'s transfer dies.

        Budgeted: at most ``max_transfer_retries + 1`` faults per request
        (the retries plus the one that triggers re-prefill fallback);
        past that the request's transfers always land, so the run drains.
        A ``True`` advances the request's fault counter (and emits a
        ``fault_inject`` trace instant at simulated time ``now``).
        """
        used = self._transfer_faults.get(request_id, 0)
        if used > self.plan.max_transfer_retries:
            return False
        if self._draw(_KIND_TRANSFER, seq_id, request_id, used) >= self.plan.transfer_fail_rate:
            return False
        self._transfer_faults[request_id] = used + 1
        if self.tracer.enabled:
            self.tracer.instant(
                "fault_inject",
                now,
                request_id=request_id,
                seq_id=seq_id,
                kind="transfer",
                attempt=used + 1,
            )
        return True

    def transfer_faults_injected(self, request_id: int) -> int:
        """Faults injected so far for ``request_id`` (the attempt index)."""
        return self._transfer_faults.get(request_id, 0)

    def swap_lost(self, seq_id: int, request_id: int, *, now: float = 0.0) -> bool:
        """Whether ``request_id``'s host-stored payload is gone at
        swap-in time. Budgeted at ``_MAX_SWAP_LOSSES`` per request."""
        used = self._swap_losses.get(request_id, 0)
        if used >= _MAX_SWAP_LOSSES:
            return False
        if self._draw(_KIND_SWAP, seq_id, request_id, used) >= self.plan.swap_loss_rate:
            return False
        self._swap_losses[request_id] = used + 1
        if self.tracer.enabled:
            self.tracer.instant(
                "fault_inject",
                now,
                request_id=request_id,
                seq_id=seq_id,
                kind="swap",
                attempt=used + 1,
            )
        return True

    def pool_resets_due(self, completed_rounds: int) -> list[str]:
        """Pool names whose scheduled reset round has been reached.

        Each scheduled reset fires exactly once, in schedule order.
        """
        due = []
        while (
            self._resets_fired < len(self._reset_schedule)
            and self._reset_schedule[self._resets_fired][0] <= completed_rounds
        ):
            due.append(self._reset_schedule[self._resets_fired][1])
            self._resets_fired += 1
        return due

    def reset_schedule(self) -> list[tuple[int, str]]:
        """The pre-drawn ``(round, pool)`` reset schedule (diagnostics)."""
        return list(self._reset_schedule)
