"""Tests for the tensor-parallel attention baseline."""

import numpy as np
import pytest

from repro.attention.reference import reference_attention_with_lse
from repro.baselines.tensor_parallel import tp_attention, tp_shard_heads
from repro.distributed.process_group import SimProcessGroup

from helpers import make_qkv


class TestHeadSharding:
    def test_sharded_kv_heads(self):
        """G <= NKV: each rank owns distinct query and KV heads."""
        shards = tp_shard_heads(n_heads=8, n_kv_heads=4, group_size=2)
        np.testing.assert_array_equal(shards[0]["q_heads"], np.arange(4))
        np.testing.assert_array_equal(shards[0]["kv_heads"], [0, 1])
        np.testing.assert_array_equal(shards[1]["kv_heads"], [2, 3])

    def test_replicated_kv_heads(self):
        """G > NKV: KV heads replicate (the paper's multi-node TP setup)."""
        shards = tp_shard_heads(n_heads=8, n_kv_heads=2, group_size=8)
        # each rank has 1 query head; kv head 0 serves ranks 0-3
        owners_of_kv0 = [r for r, s in enumerate(shards) if 0 in s["kv_heads"]]
        assert owners_of_kv0 == [0, 1, 2, 3]

    def test_llama405b_tp16(self):
        """TP16: 8 query heads per GPU, each KV head on 2 GPUs."""
        shards = tp_shard_heads(128, 8, 16)
        assert all(len(s["q_heads"]) == 8 for s in shards)
        replication = sum(1 for s in shards if 0 in s["kv_heads"])
        assert replication == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            tp_shard_heads(10, 2, 4)
        with pytest.raises(ValueError):
            tp_shard_heads(8, 3, 2)
        with pytest.raises(ValueError):
            tp_shard_heads(8, 2, 0)


class TestTpAttention:
    @pytest.mark.parametrize("world", [1, 2, 4, 8])
    def test_matches_reference(self, rng, world):
        q, k, v = make_qkv(rng, 21, 21, n_heads=8, n_kv_heads=2)
        ref_out, ref_lse = reference_attention_with_lse(q, k, v)
        res = tp_attention(SimProcessGroup(world), q, k, v)
        np.testing.assert_allclose(res.out, ref_out, atol=1e-10)
        np.testing.assert_allclose(res.lse, ref_lse, atol=1e-10)

    def test_partial_prefill_positions(self, rng):
        q, _, _ = make_qkv(rng, 4, 1, n_heads=4, n_kv_heads=2)
        _, k, v = make_qkv(rng, 1, 12, n_heads=4, n_kv_heads=2)
        qpos = np.arange(8, 12)
        kpos = np.arange(12)
        ref_out, _ = reference_attention_with_lse(q, k, v, q_pos=qpos, k_pos=kpos)
        res = tp_attention(SimProcessGroup(2), q, k, v, q_pos=qpos, k_pos=kpos)
        np.testing.assert_allclose(res.out, ref_out, atol=1e-10)

    def test_traffic_traced(self, rng):
        q, k, v = make_qkv(rng, 8, 8, n_heads=4, n_kv_heads=2)
        group = SimProcessGroup(2)
        tp_attention(group, q, k, v)
        assert group.tracer.count("allgather") == 1
