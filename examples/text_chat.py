"""Text in, text out: a byte-tokenized chat loop over the CP engine.

Ties the whole stack together at the string level: a byte tokenizer feeds
a (synthetic-weight) Llama-family model served by the context-parallel
engine across 3 ranks, with multi-turn persistent KV and an exactness
audit after every turn. The "assistant" babbles (untrained weights) —
the point is the plumbing, not the prose.

Run:  python examples/text_chat.py
"""

import numpy as np

from repro import ContextParallelEngine, LlamaModel, tiny_config
from repro.model.tokenizer import VOCAB_SIZE, ByteTokenizer


def main() -> None:
    tok = ByteTokenizer()
    model = LlamaModel(tiny_config(vocab_size=VOCAB_SIZE), seed=2024)
    engine = ContextParallelEngine(model, world_size=3)

    user_turns = [
        "Summarize the design of pass-KV ring attention.",
        "And when is pass-Q preferred?",
        "Thanks!",
    ]

    history_ids: list[int] = []
    for turn_idx, text in enumerate(user_turns):
        prompt = tok.encode(text, add_bos=(turn_idx == 0))
        reply_ids = engine.generate(
            {0: prompt}, max_new_tokens=12, stop_tokens={tok.eos_id}
        )[0]
        history_ids.extend(int(t) for t in prompt)
        history_ids.extend(reply_ids)

        reply = tok.decode(reply_ids)
        miss = prompt.size / engine.context_length(0)
        print(f"user      > {text}")
        print(f"assistant > {reply!r}  "
              f"[turn miss rate {miss:.1%}, context {engine.context_length(0)} tokens]")

        # exactness audit: engine state equals a monolithic replay
        ref = model.forward(np.array(history_ids))
        probe = engine.decode({0: int(np.argmax(ref[-1]))})
        history_ids.append(int(np.argmax(ref[-1])))
        ref2 = model.forward(np.array(history_ids))
        err = float(np.abs(probe.logits[0] - ref2[-1]).max())
        assert err < 1e-8, err

    print(f"\nper-rank cached tokens: {engine.cached_tokens(0)} (balanced)")
    print("every turn audited lossless against single-device replay")


if __name__ == "__main__":
    main()
