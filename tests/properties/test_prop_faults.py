"""Property test: serving exactness holds over randomized fault schedules.

The fault-injection layer (:mod:`repro.runtime.faults`) rescopes the
runtime's serving-exactness contract: under any deterministic schedule
of mid-stream KV-transfer deaths (retried with capped backoff, then
degraded to full re-prefill), lost swap payloads (recomputed), whole
pool KV resets (every holder requeued), per-request deadlines and
queue-depth backpressure, three things must hold for every deployment
shape (colocated and disaggregated) and every preemption remedy
(recompute / trim / swap):

- **every run drains** — each request reaches a terminal state
  (``finished`` / ``timed_out`` / ``shed``); fault budgets guarantee
  recovery terminates;
- **completed requests are exact** — every request that reaches
  ``FINISHED`` streamed tokens bit-identical to replaying its
  conversation alone, uninterrupted, fault-free; shed and timed-out
  requests claim nothing;
- **nothing leaks** — after the drain, the engines' KV bookkeeping
  audits clean (:meth:`kv_leak_report`): no orphaned KV, no leaked
  paged-allocator blocks or refcounts, no dangling radix anchors or
  stale donor pins — even after pool resets tore down every resident.

A determinism property pins the CLI contract on top: the same fault
seed over the same workload reproduces the identical outcome map,
token streams, and fault counts.
"""

import pytest
from helpers import assert_exact_vs_sequential, assert_leak_free
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import ContextParallelEngine
from repro.model.config import tiny_config
from repro.model.llama import LlamaModel
from repro.runtime import ContinuousBatchingRuntime, FaultPlan, RequestState
from repro.serving.scheduler import ChunkedPrefillPolicy
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.replay import (
    replay_scripts_sequential,
    submit_scripts_to_runtime,
)

MODEL = LlamaModel(tiny_config(), seed=0)
VOCAB = MODEL.config.vocab_size
SETTINGS = dict(max_examples=10, deadline=None)

MODES = ("recompute", "trim", "swap")


def fresh_engine(world):
    return ContextParallelEngine(LlamaModel(tiny_config(), seed=0), world_size=world)


@st.composite
def fault_case(draw):
    """A workload plus a fault plan plus a deployment/remedy choice."""
    seed = draw(st.integers(0, 2**31 - 1))
    n_sessions = draw(st.integers(1, 4))
    turns = draw(st.integers(1, 3))
    chunk = draw(st.sampled_from([5, 16]))
    # None = no pressure; small pools force organic preemptions that
    # interleave with the injected faults
    capacity = draw(st.sampled_from([None, 96, 144]))
    think = draw(st.sampled_from([0.0, 2.5]))
    mode = draw(st.sampled_from(MODES))
    prefix_cache = draw(st.booleans())
    plan = FaultPlan(
        seed=draw(st.integers(0, 2**16)),
        transfer_fail_rate=draw(st.sampled_from([0.0, 0.3, 0.8])),
        swap_loss_rate=draw(st.sampled_from([0.0, 0.5])),
        pool_resets=draw(st.integers(0, 2)),
        pool_reset_window=draw(st.sampled_from([8, 24])),
        backoff_base_s=0.5,
        deadline_s=draw(st.sampled_from([None, 20.0])),
        max_queue_depth=draw(st.sampled_from([None, 2])),
    )
    gen = WorkloadGenerator(VOCAB, seed=seed)
    scripts = [
        gen.conversation(
            sid,
            turns=turns,
            first_prompt=int(gen.rng.integers(10, 50)),
            followup_range=(4, 12),
            response_range=(2, 5),
        )
        for sid in range(n_sessions)
    ]
    return scripts, chunk, capacity, think, mode, prefix_cache, plan


def _build(scripts, chunk, capacity, mode, prefix_cache, plan, split):
    """A runtime over ``split`` (int = colocated world, tuple = pools)."""
    kwargs = dict(
        policy=ChunkedPrefillPolicy(
            chunk_tokens=chunk, max_tokens_per_round=2 * chunk, max_seqs_per_round=4
        ),
        preemption=mode,
        swap_capacity_tokens=4096 if mode == "swap" else None,
        prefix_cache=prefix_cache,
        faults=plan,
    )
    if isinstance(split, tuple):
        world_p, world_d = split
        engine = ContextParallelEngine(
            MODEL, world_size=world_p, capacity_tokens=capacity
        )
        decode_engine = ContextParallelEngine(
            MODEL, world_size=world_d, capacity_tokens=capacity
        )
        return ContinuousBatchingRuntime(engine, decode_engine=decode_engine, **kwargs)
    engine = ContextParallelEngine(MODEL, world_size=split, capacity_tokens=capacity)
    return ContinuousBatchingRuntime(engine, **kwargs)


def _check_run(runtime, scripts, think, replay_world):
    """Drain + exactness-of-completed + leak audit for one faulted run."""
    rids = submit_scripts_to_runtime(runtime, scripts, think_time_s=think)
    report = runtime.run(max_steps=200_000)

    # 1. the run drained: every request reached a terminal state
    for rec in report.records.values():
        assert rec.status is not None, (
            f"request {rec.request_id} wedged in {rec.state} "
            f"(faults={runtime.faults.describe()})"
        )

    # 2. completed requests streamed bit-identical tokens (and a shed
    # chain shed its whole tail)
    reference = replay_scripts_sequential(lambda: fresh_engine(replay_world), scripts)
    assert_exact_vs_sequential(
        report, rids, reference, completed_only=True,
        context=f"faults={runtime.faults.describe()}, "
                f"transfer faults={report.metrics.transfer_faults}, "
                f"swap losses={report.metrics.swap_losses}, "
                f"resets={report.metrics.pool_resets}",
    )

    # 3. nothing leaked: KV, allocator blocks, radix anchors, pins, and
    # the host-side swap store drained with the requests
    assert_leak_free(runtime, context=f"faults={runtime.faults.describe()}")
    return report


class TestFaultScheduleExactness:
    @given(fault_case(), st.sampled_from([1, 2, 3]))
    @settings(**SETTINGS)
    def test_colocated_faulted_runs_stay_exact(self, case, world):
        """Any fault schedule over a colocated runtime: drains, completed
        requests bit-identical to sequential replay, leak-free."""
        scripts, chunk, capacity, think, mode, prefix_cache, plan = case
        runtime = _build(scripts, chunk, capacity, mode, prefix_cache, plan, world)
        _check_run(runtime, scripts, think, world)

    @given(fault_case(), st.sampled_from([(1, 2), (2, 1), (2, 2)]))
    @settings(**SETTINGS)
    def test_disaggregated_faulted_runs_stay_exact(self, case, split):
        """Any fault schedule over any prefill/decode split — transfer
        deaths mid-wire, resets of either pool — same three guarantees."""
        scripts, chunk, capacity, think, mode, prefix_cache, plan = case
        runtime = _build(scripts, chunk, capacity, mode, prefix_cache, plan, split)
        _check_run(runtime, scripts, think, split[0])

    @given(fault_case())
    @settings(**SETTINGS)
    def test_same_fault_seed_reproduces_the_run(self, case):
        """One seed pins the whole faulted run: outcome map, token
        streams, fault counts, and makespan all replay identically."""
        scripts, chunk, capacity, think, mode, prefix_cache, plan = case

        def signature():
            runtime = _build(
                scripts, chunk, capacity, mode, prefix_cache, plan, (2, 2)
            )
            rids = submit_scripts_to_runtime(runtime, scripts, think_time_s=think)
            report = runtime.run(max_steps=200_000)
            streams = {
                rid: report.generated(rid)
                for turn_rids in rids.values()
                for rid in turn_rids
            }
            m = report.metrics
            return (
                report.statuses(),
                streams,
                m.transfer_faults,
                m.swap_losses,
                m.pool_resets,
                m.timeouts,
                m.sheds,
                report.makespan,
            )

        assert signature() == signature()


class TestFaultBudgetsDrain:
    def test_max_rate_transfer_faults_still_drain(self):
        """transfer_fail_rate=1.0: every landing dies until the budget is
        spent, then the re-prefill fallback completes every request."""
        gen = WorkloadGenerator(VOCAB, seed=3)
        scripts = [gen.conversation(sid, turns=2, first_prompt=30) for sid in range(2)]
        plan = FaultPlan(seed=1, transfer_fail_rate=1.0, max_transfer_retries=2,
                         backoff_base_s=0.25)
        runtime = _build(scripts, 16, None, "recompute", False, plan, (2, 2))
        report = _check_run(runtime, scripts, 0.0, 2)
        assert report.statuses() == {"finished": 4}
        m = report.metrics
        # per request: `retries` retried faults + 1 fault that degrades
        assert m.transfer_faults > m.fault_retries
        assert m.degraded_fallbacks >= 1

    def test_max_rate_swap_losses_still_drain(self):
        """swap_loss_rate=1.0 under heavy swap pressure: every swap-in is
        lost until the per-request budget caps it, then recompute wins."""
        gen = WorkloadGenerator(VOCAB, seed=5)
        scripts = [gen.conversation(sid, turns=2, first_prompt=40) for sid in range(4)]
        plan = FaultPlan(seed=2, swap_loss_rate=1.0)
        runtime = _build(scripts, 16, 96, "swap", False, plan, 2)
        report = _check_run(runtime, scripts, 0.0, 2)
        assert report.statuses() == {"finished": 8}
        if report.metrics.swaps_out:
            assert report.metrics.swap_losses >= 1
            assert report.metrics.degraded_fallbacks >= report.metrics.swap_losses

    @pytest.mark.parametrize("pool_resets", [1, 3])
    def test_pool_reset_storms_still_drain(self, pool_resets):
        """Every scheduled whole-pool reset fires, every holder requeues,
        and the run still completes every request bit-exactly."""
        gen = WorkloadGenerator(VOCAB, seed=9)
        scripts = [gen.conversation(sid, turns=2, first_prompt=30) for sid in range(3)]
        plan = FaultPlan(seed=4, pool_resets=pool_resets, pool_reset_window=10)
        runtime = _build(scripts, 16, None, "recompute", True, plan, (2, 2))
        report = _check_run(runtime, scripts, 0.0, 2)
        assert report.statuses() == {"finished": 6}
        assert report.metrics.pool_resets == pool_resets
