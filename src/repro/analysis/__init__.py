"""Correctness tooling: static determinism linting and dynamic KV sanitizing.

Two complementary layers defend the repo's exactness invariants:

- :mod:`repro.analysis.lint` — an AST-based determinism linter that
  rejects sources of hidden nondeterminism (unseeded RNG, wall-clock
  reads, set-iteration-order leaks, ``id()``-based ordering) before the
  code ever runs.  ``python -m repro lint`` is the CLI entry point.
- :mod:`repro.analysis.sanitizer` — a shadow-state sanitizer that
  mirrors every paged-KV block (owner streams, refcount, freed bit,
  copy-on-write lineage) and validates each allocator and engine
  lifecycle operation as it happens, raising :class:`SanitizerError`
  with an op trace at the first faulty operation instead of at the
  end-of-run ``audit()``.
"""

from repro.analysis.lint import Finding, LintRule, lint_paths, lint_source
from repro.analysis.sanitizer import (
    AllocatorSanitizer,
    KVSanitizer,
    SanitizerError,
    attach_sanitizer,
)

__all__ = [
    "AllocatorSanitizer",
    "Finding",
    "KVSanitizer",
    "LintRule",
    "SanitizerError",
    "attach_sanitizer",
    "lint_paths",
    "lint_source",
]
