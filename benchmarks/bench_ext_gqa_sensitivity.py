"""Extension: pass-KV economics across GQA ratios (405B/70B/8B/MHA)."""

from repro.experiments import gqa_sensitivity


def bench_gqa_sensitivity(benchmark, paper_table):
    result = benchmark(gqa_sensitivity.run)
    paper_table(benchmark, result)
    thresholds = result.column("Eq.1 miss threshold")
    ratios = result.column("TP/CP traffic ratio")
    # coarser GQA (fewer KV heads per query head) -> lower threshold,
    # bigger traffic advantage
    assert thresholds == sorted(thresholds)
    assert ratios == sorted(ratios, reverse=True)
    # MHA counterfactual: no pass-KV message advantage at all
    assert thresholds[-1] == 2.0
    assert ratios[-1] == 1.0
    # Llama3 405B: the paper's 12.5% / 16x numbers
    assert thresholds[0] == 0.125
    assert ratios[0] == 16.0


if __name__ == "__main__":
    print(gqa_sensitivity.run().render())
