"""Persistent KV cache substrate.

CP distributes KV storage as well as compute: each rank caches only its
shard of every sequence, so adding CP nodes grows aggregate KV capacity
linearly (one of the paper's three motivations for CP, §1). This package
provides the per-rank cache the engine uses across multi-turn prefill and
decode:

- :mod:`repro.kvcache.paged` — a paged block allocator in the style of
  PagedAttention (Kwon et al. 2023), which the paper cites as the standard
  memory-management substrate for long-context serving.
- :mod:`repro.kvcache.cache` — :class:`RankKVCache`, a per-rank, per-layer,
  per-sequence KV store with position/seq-id bookkeeping and capacity (OOM)
  accounting, backed by the paged allocator.
"""

from repro.kvcache.cache import CacheCapacityError, RankKVCache
from repro.kvcache.paged import PagedAllocator

__all__ = ["CacheCapacityError", "PagedAllocator", "RankKVCache"]
