"""Continuous-batching serving runtime for the numeric CP engine(s).

This package turns the reproduction's layers into one live system
(paper §3.3/§4.3 made executable): the per-request state machine
(:mod:`repro.runtime.state`), simulated step-time pricing
(:mod:`repro.runtime.clock`), the prefill->decode KV channel
(:mod:`repro.runtime.transfer`), and the event loop itself
(:mod:`repro.runtime.runtime`) — chunked prefill fused across requests,
batched decode interleaving, admission control and capacity-pressure
preemption against the paged KV allocator, with three priced eviction
remedies (full evict + exact re-prefill, tail-trim + suffix re-prefill,
or CPU-side KV swap over PCIe), and optional shared-prefix KV reuse
through the radix prefix cache (:mod:`repro.kvcache.prefix_index`) with
refcounted copy-on-write paged blocks. One engine gives the colocated
deployment; a second engine turns
it into the disaggregated prefill/decode pools of §4.3, connected by a
priced, serialized KV-transfer stream. A seeded fault plan
(:mod:`repro.runtime.faults`) makes every fallible component fail on
purpose — mid-stream transfer deaths, lost swap payloads, whole-pool KV
resets, deadlines and queue backpressure — with a degradation ladder
(retry with capped backoff -> recompute -> shed) keeping every run
draining. Decoded tokens of every *completed* request are identical to
replaying its conversation sequentially; only placement, (simulated)
timing, and — under faults — completion change.
"""

from repro.runtime.clock import SimulatedStepClock, UnitStepClock
from repro.runtime.faults import FaultInjector, FaultPlan
from repro.runtime.runtime import ContinuousBatchingRuntime, RuntimeReport
from repro.runtime.state import RequestRecord, RequestState, TurnRequest
from repro.runtime.transfer import KVTransferStream, Transfer

__all__ = [
    "ContinuousBatchingRuntime",
    "FaultInjector",
    "FaultPlan",
    "KVTransferStream",
    "RequestRecord",
    "RequestState",
    "RuntimeReport",
    "SimulatedStepClock",
    "Transfer",
    "TurnRequest",
    "UnitStepClock",
]
