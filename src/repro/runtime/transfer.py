"""KV-transfer stream between the prefill pool and the decode pool.

The disaggregated serving architecture (paper §4.3, DistServe / Mooncake)
connects its two resource pools with a KV stream: when a prompt finishes
prefilling on pool A, its committed KV blocks move to pool B, where the
response decodes at interference-free TTIT. :class:`KVTransferStream`
models that channel for the runtime:

- **Serialized**: one transfer occupies the wire at a time; a transfer
  scheduled while the channel is busy starts when the channel frees
  (FIFO). This is what makes transfer time a contended resource the
  experiments can observe.
- **Priced, not free**: duration comes from the runtime clock's
  ``price_transfer(tokens)`` (bandwidth model for the calibrated clock).
- **Overlappable with compute**: the stream only tracks *when* payloads
  arrive; both pools keep executing rounds while transfers are in
  flight. The runtime imports a payload into the decode pool the first
  time the decode clock passes the transfer's finish time *and* the
  destination pool admits it.

The physical payload (:class:`repro.core.engine.KVExport`) is exported
and imported by the runtime at landing time, not held here — so a
transfer cancelled by a prefill-pool eviction simply never lands, and
the re-prefilled conversation schedules a fresh transfer later.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Transfer:
    """One in-flight prefill->decode KV move.

    Attributes:
        seq_id: conversation whose KV is moving.
        request_id: the turn that triggered the move.
        tokens: payload size priced at schedule time (the delta between
            the pools' committed lengths).
        start: when the channel began streaming it.
        finish: when the payload is fully on the decode side.
        refused: the decode pool has already refused this payload at
            least once (admission counter de-duplication).
    """

    seq_id: int
    request_id: int
    tokens: int
    start: float
    finish: float
    refused: bool = False


class KVTransferStream:
    """Serialized, priced KV channel from the prefill to the decode pool.

    Args:
        clock: any runtime step clock exposing ``price_transfer(tokens)``
            (:class:`repro.runtime.clock.UnitStepClock` or
            :class:`repro.runtime.clock.SimulatedStepClock`).
    """

    def __init__(self, clock):
        self.clock = clock
        self.busy_until = 0.0
        self.busy_s = 0.0
        self._in_flight: list[Transfer] = []

    # ------------------------------------------------------------------ #

    def schedule(self, seq_id: int, request_id: int, tokens: int, now: float) -> Transfer:
        """Enqueue a transfer at simulated time ``now``; returns its record.

        The channel is serialized: the transfer starts at
        ``max(now, busy_until)``. Zero-token transfers are legal (an
        up-to-date destination) and cost whatever the clock prices them
        at (0 for both built-in clocks).
        """
        if tokens < 0:
            raise ValueError(f"tokens must be >= 0, got {tokens}")
        if any(t.seq_id == seq_id for t in self._in_flight):
            raise ValueError(f"sequence {seq_id} already has a transfer in flight")
        start = max(now, self.busy_until)
        duration = self.clock.price_transfer(tokens)
        transfer = Transfer(
            seq_id=seq_id, request_id=request_id, tokens=tokens,
            start=start, finish=start + duration,
        )
        self.busy_until = transfer.finish
        self.busy_s += duration
        self._in_flight.append(transfer)
        return transfer

    def ready(self, now: float) -> list[Transfer]:
        """In-flight transfers fully arrived by ``now``, in finish order."""
        return sorted(
            (t for t in self._in_flight if t.finish <= now),
            key=lambda t: (t.finish, t.request_id),
        )

    def extend(self, transfer: Transfer, extra_tokens: int, now: float) -> None:
        """Grow an in-flight transfer's payload by ``extra_tokens``.

        Used when the destination evicted its resident copy of the
        sequence while the delta was on the wire: the landing must now
        re-ship the whole history, and the *additional* tokens occupy the
        channel from ``max(now, busy_until)`` — the already-streamed delta
        is not re-charged.
        """
        if extra_tokens < 1:
            raise ValueError(f"extra_tokens must be >= 1, got {extra_tokens}")
        if transfer not in self._in_flight:
            raise ValueError(f"transfer for seq {transfer.seq_id} is not in flight")
        start = max(now, self.busy_until)
        duration = self.clock.price_transfer(extra_tokens)
        transfer.tokens += extra_tokens
        transfer.finish = start + duration
        self.busy_until = max(self.busy_until, transfer.finish)
        self.busy_s += duration

    def complete(self, transfer: Transfer) -> None:
        """Mark a landed transfer done (the runtime imported its payload).

        Landed/cancelled/token tallies live in
        :class:`repro.serving.metrics.ServingMetrics` — the stream tracks
        only wire state (``busy_until`` / ``busy_s`` / in-flight set).
        """
        self._in_flight.remove(transfer)

    def cancel(self, seq_id: int) -> Transfer | None:
        """Drop the in-flight transfer of ``seq_id`` (eviction mid-stream).

        The channel time already spent is *not* refunded — the wire was
        occupied whether or not the payload ends up used, which is
        exactly the cost a preemption storm inflicts on a disaggregated
        deployment.
        """
        for transfer in self._in_flight:
            if transfer.seq_id == seq_id:
                self._in_flight.remove(transfer)
                return transfer
        return None

    # ------------------------------------------------------------------ #

    def in_flight(self) -> list[Transfer]:
        return list(self._in_flight)
