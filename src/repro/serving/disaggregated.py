"""Disaggregated prefill/decode serving model (paper §4.3's conclusion).

The paper ends its decode analysis with: *"context parallel is best suited
for improving prefill performance and can be best leveraged with a serving
system that decouples the parallelization scheme for prefill and decode"*
(citing Mooncake and DistServe). This module prices that architecture:

- **Colocated**: one CP-N pool does both phases; prefill is fast, every
  decoded token pays the CP decode regression (Table 7).
- **Disaggregated**: a CP-N prefill pool computes the KV cache, streams it
  to a TP8 decode host (layer-wise, overlappable with ongoing prefill),
  and decode runs at single-host TTIT.

The KV-transfer cost uses the same topology constants as the ring model,
so the break-even analysis is consistent with the rest of the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.config import ModelConfig
from repro.perf.hardware import HostSpec
from repro.perf.latency import LatencySimulator


@dataclass(frozen=True)
class RequestLatency:
    """End-to-end latency decomposition for one request.

    Attributes:
        mode: ``"colocated"`` or ``"disaggregated"``.
        ttft: prefill latency (plus any exposed KV-transfer tail).
        ttit: per-output-token latency.
        kv_transfer: total KV-stream time (0 when colocated); only the
            non-overlapped tail contributes to ``ttft``.
        total: ``ttft + output_tokens * ttit``.
        output_tokens: decode budget used for ``total``.
    """

    mode: str
    ttft: float
    ttit: float
    kv_transfer: float
    total: float
    output_tokens: int


class DisaggregatedSimulator:
    """Latency model for colocated vs disaggregated CP serving.

    Args:
        config: model architecture.
        host: platform spec (shared by both pools).
        element_bytes: KV element size on the wire/HBM.
    """

    def __init__(self, config: ModelConfig, host: HostSpec, *, element_bytes: float = 2.0):
        self.config = config
        self.host = host
        self.element_bytes = element_bytes
        self.sim = LatencySimulator(config, host, element_bytes=element_bytes)

    # ------------------------------------------------------------------ #

    def kv_transfer_time(self, context: int) -> float:
        """Stream the full KV cache from the prefill pool to a decode host.

        Layer-wise transfers can start as soon as a layer's prefill
        finishes, so on the critical path only the *last* layer's shard is
        exposed; we report the full stream time and expose
        ``1 / n_layers`` of it.
        """
        total_bytes = context * self.config.kv_bytes_per_token(self.element_bytes)
        return total_bytes / self.host.ring_bandwidth

    def colocated(self, context: int, output_tokens: int, *, n_ranks: int) -> RequestLatency:
        """One CP-N pool serving both phases."""
        ttft = self.sim.cp_prefill(context, n_ranks=n_ranks).total
        if n_ranks > 1:
            ttit = self.sim.cp_decode(context, n_ranks=n_ranks).total
        else:
            ttit = self.sim.tp_decode(context, n_nodes=1).total
        return RequestLatency(
            mode="colocated",
            ttft=ttft,
            ttit=ttit,
            kv_transfer=0.0,
            total=ttft + output_tokens * ttit,
            output_tokens=output_tokens,
        )

    def disaggregated(self, context: int, output_tokens: int, *, prefill_ranks: int) -> RequestLatency:
        """CP prefill pool + TP8 decode host with layer-overlapped KV stream."""
        prefill = self.sim.cp_prefill(context, n_ranks=prefill_ranks).total
        transfer = self.kv_transfer_time(context)
        exposed_tail = transfer / self.config.n_layers
        ttft = prefill + exposed_tail
        ttit = self.sim.tp_decode(context, n_nodes=1).total
        return RequestLatency(
            mode="disaggregated",
            ttft=ttft,
            ttit=ttit,
            kv_transfer=transfer,
            total=ttft + output_tokens * ttit,
            output_tokens=output_tokens,
        )

    def break_even_output_tokens(self, context: int, *, n_ranks: int) -> int:
        """Output length beyond which disaggregation wins end-to-end.

        Disaggregation pays a KV-transfer tail once but saves
        ``(cp_ttit - tp_ttit)`` on every output token.
        """
        colo = self.colocated(context, 0, n_ranks=n_ranks)
        disagg = self.disaggregated(context, 0, prefill_ranks=n_ranks)
        per_token_saving = colo.ttit - disagg.ttit
        if per_token_saving <= 0:
            return -1
        upfront_cost = disagg.ttft - colo.ttft
        return max(0, int(upfront_cost / per_token_saving) + 1)
