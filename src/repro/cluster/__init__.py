"""Cluster tier: a multi-replica fleet behind prefix-affinity routing.

:class:`ReplicaFleet` runs N independent continuous-batching runtimes;
a :class:`Router` (:class:`PrefixAffinityRouter` by default, SGLang
cache-aware-routing / Mooncake global-scheduler shaped) places each new
conversation, with session stickiness for follow-up turns and
drain/join elasticity. Serving exactness extends across the fleet:
routing changes placement and timing, never token values.
"""

from repro.cluster.fleet import FleetReport, Replica, ReplicaFleet
from repro.cluster.router import (
    ROUTING_POLICIES,
    LeastLoadedRouter,
    PrefixAffinityRouter,
    RoundRobinRouter,
    Router,
    make_router,
)

__all__ = [
    "FleetReport",
    "Replica",
    "ReplicaFleet",
    "Router",
    "RoundRobinRouter",
    "LeastLoadedRouter",
    "PrefixAffinityRouter",
    "ROUTING_POLICIES",
    "make_router",
]
