"""Ring-schedule index arithmetic.

All three ring algorithms (pass-KV prefill, pass-Q prefill, pass-Q decode)
share one schedule: at ring step ``j``, rank ``k`` holds the payload that
originated at rank ``(k - j) mod N``, having received it from its previous
neighbour ``(k - 1) mod N`` and about to forward it to ``(k + 1) mod N``.
Keeping this arithmetic in one place keeps the three algorithm
implementations honest with each other and gives the tests a single oracle.
"""

from __future__ import annotations


def ring_neighbors(rank: int, world_size: int) -> tuple[int, int]:
    """``(prev, next)`` neighbours of ``rank`` on the ring.

    Messages flow ``prev -> rank -> next``.
    """
    _check(rank, world_size)
    return (rank - 1) % world_size, (rank + 1) % world_size


def source_rank_at_step(rank: int, step: int, world_size: int) -> int:
    """Origin rank of the payload held by ``rank`` at ring step ``step``.

    Step 0 is the local payload; after ``world_size - 1`` shifts every rank
    has seen every origin exactly once (paper Algorithms 2-4: ``s = (k - j)
    mod N``).
    """
    _check(rank, world_size)
    if step < 0:
        raise ValueError(f"step must be >= 0, got {step}")
    return (rank - step) % world_size


def visit_order(rank: int, world_size: int) -> list[int]:
    """Origins visited by ``rank`` over a full ring sweep, in step order."""
    return [source_rank_at_step(rank, j, world_size) for j in range(world_size)]


def _check(rank: int, world_size: int) -> None:
    if world_size < 1:
        raise ValueError(f"world_size must be >= 1, got {world_size}")
    if not 0 <= rank < world_size:
        raise ValueError(f"rank {rank} out of range [0, {world_size})")
