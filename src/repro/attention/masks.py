"""Position-based causal attention masks.

Context parallelism permutes tokens: load-balanced sharding (paper §3.5.1)
assigns each rank two non-contiguous chunks of every sequence, and fused
variable-length batches interleave tokens from different sequences. A mask
computed from *storage order* would therefore be wrong almost everywhere.

Instead, every token carries two integers through the whole system:

- ``pos``  — its absolute position inside its own sequence (0-based), and
- ``seq``  — the id of the sequence it belongs to (``PAD_SEQ`` = -1 marks
  padding entries which must never give or receive attention).

Causality is then simply ``k.pos <= q.pos`` restricted to ``k.seq == q.seq``,
which is invariant under any permutation or partition of the tokens. All ring
algorithms in :mod:`repro.core` rely on this invariance: a rank can compute a
*partial* attention between its local queries and any remote KV shard with no
knowledge of how the other ranks laid out their tokens.
"""

from __future__ import annotations

import numpy as np

#: Sequence id used for padding tokens. Padding never attends / is attended.
PAD_SEQ: int = -1


def causal_mask(q_pos: np.ndarray, k_pos: np.ndarray) -> np.ndarray:
    """Boolean ``[Tq, Tk]`` mask allowing attention to positions ``<= q_pos``.

    This is the permutation-invariant causal predicate used everywhere in the
    library. It does **not** know about sequence boundaries; combine with
    sequence ids via :func:`attention_mask` for fused batches.

    Args:
        q_pos: int array ``[Tq]`` of absolute query positions.
        k_pos: int array ``[Tk]`` of absolute key positions.

    Returns:
        Boolean array ``[Tq, Tk]``; ``True`` where attention is allowed.
    """
    q_pos = np.asarray(q_pos)
    k_pos = np.asarray(k_pos)
    return k_pos[None, :] <= q_pos[:, None]


def attention_mask(
    q_pos: np.ndarray,
    k_pos: np.ndarray,
    q_seq: np.ndarray | None = None,
    k_seq: np.ndarray | None = None,
    *,
    causal: bool = True,
) -> np.ndarray:
    """Full attention-permission mask for (possibly fused, padded) tokens.

    A query at ``(seq, pos)`` may attend a key at ``(seq', pos')`` iff:

    - ``seq == seq'`` (no cross-sequence attention in a fused batch),
    - neither token is padding (``seq != PAD_SEQ``), and
    - ``pos' <= pos`` when ``causal`` is set.

    Args:
        q_pos: ``[Tq]`` absolute positions of queries.
        k_pos: ``[Tk]`` absolute positions of keys.
        q_seq: ``[Tq]`` sequence ids of queries (``None`` = all sequence 0).
        k_seq: ``[Tk]`` sequence ids of keys (``None`` = all sequence 0).
        causal: apply the causal predicate (the paper's inference workloads
            are always causal; ``False`` is provided for kernel tests).

    Returns:
        Boolean array ``[Tq, Tk]``.
    """
    q_pos = np.asarray(q_pos)
    k_pos = np.asarray(k_pos)
    if q_seq is None:
        q_seq = np.zeros(q_pos.shape[0], dtype=np.int64)
    if k_seq is None:
        k_seq = np.zeros(k_pos.shape[0], dtype=np.int64)
    q_seq = np.asarray(q_seq)
    k_seq = np.asarray(k_seq)

    if q_pos.shape != q_seq.shape:
        raise ValueError(f"q_pos {q_pos.shape} and q_seq {q_seq.shape} must match")
    if k_pos.shape != k_seq.shape:
        raise ValueError(f"k_pos {k_pos.shape} and k_seq {k_seq.shape} must match")

    same_seq = q_seq[:, None] == k_seq[None, :]
    not_pad = (q_seq[:, None] != PAD_SEQ) & (k_seq[None, :] != PAD_SEQ)
    mask = same_seq & not_pad
    if causal:
        mask &= causal_mask(q_pos, k_pos)
    return mask


def mask_fraction(mask: np.ndarray) -> float:
    """Fraction of allowed (query, key) pairs — useful for FLOP accounting.

    For a single full-prefill causal sequence this tends to ``~0.5`` (the
    causal triangle), which is where the ``1/2`` factor in the paper's
    Appendix A attention-FLOPs formula comes from.
    """
    if mask.size == 0:
        return 0.0
    return float(np.count_nonzero(mask)) / float(mask.size)
