"""Fully materialized exact GQA attention — the gold standard.

Every distributed algorithm in this repository is tested against this kernel.
It trades memory (it materializes the full ``[Tq, NH, Tk]`` score tensor) for
absolute clarity: scores, masking, softmax and the value contraction are each
one line of NumPy.

The ``*_with_lse`` variant additionally returns the per-(token, head)
log-sum-exp, which is the quantity the ring algorithms communicate (pass-Q)
or accumulate (pass-KV) in order to merge partial results exactly
(paper Appendix B).
"""

from __future__ import annotations

import numpy as np

from repro.attention.gqa import expand_kv_heads, validate_gqa_shapes
from repro.attention.masks import attention_mask


def reference_attention_with_lse(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    *,
    q_pos: np.ndarray | None = None,
    k_pos: np.ndarray | None = None,
    q_seq: np.ndarray | None = None,
    k_seq: np.ndarray | None = None,
    causal: bool = True,
    scale: float | None = None,
    mask_fn=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact scaled-dot-product GQA attention returning ``(O, LSE)``.

    Args:
        q: ``[Tq, NH, DH]`` queries.
        k: ``[Tk, NKV, DH]`` keys.
        v: ``[Tk, NKV, DH]`` values.
        q_pos / k_pos: absolute positions (default: storage order).
        q_seq / k_seq: sequence ids for fused batches (default: one sequence).
        causal: apply the causal predicate.
        scale: score scale; default ``1/sqrt(DH)``.
        mask_fn: optional mask override ``(q_pos, k_pos, q_seq, k_seq) ->
            bool [Tq, Tk]`` replacing the default causal mask (e.g.
            :func:`repro.attention.windowed.windowed_attention_mask_fn`).
            Because it is evaluated in absolute coordinates, any such mask
            composes with the ring algorithms unchanged.

    Returns:
        ``O`` with shape ``[Tq, NH, DH]`` (float64) and ``LSE`` with shape
        ``[Tq, NH]``. Queries with no visible key produce ``O = 0`` and
        ``LSE = -inf``.
    """
    tq, tk, nh, _ = validate_gqa_shapes(q, k, v)
    if tq == 0 or tk == 0:
        return (
            np.zeros((tq, nh, q.shape[-1]), dtype=np.float64),
            np.full((tq, nh), -np.inf, dtype=np.float64),
        )
    if q_pos is None:
        q_pos = np.arange(tq, dtype=np.int64)
    if k_pos is None:
        k_pos = np.arange(tk, dtype=np.int64)

    if scale is None:
        scale = 1.0 / np.sqrt(q.shape[-1])

    if mask_fn is not None:
        mask = np.asarray(mask_fn(q_pos, k_pos, q_seq, k_seq), dtype=bool)
        if mask.shape != (tq, tk):
            raise ValueError(f"mask_fn returned shape {mask.shape}, expected {(tq, tk)}")
    else:
        mask = attention_mask(q_pos, k_pos, q_seq, k_seq, causal=causal)

    qf = np.asarray(q, dtype=np.float64)
    kf = expand_kv_heads(np.asarray(k, dtype=np.float64), nh)
    vf = expand_kv_heads(np.asarray(v, dtype=np.float64), nh)

    # scores[t, h, s] = q[t, h] . k[s, h] * scale — head-batched BLAS matmul
    # (an order of magnitude faster than the equivalent einsum, and the
    # contraction the blocked fused kernel must stay bit-compatible with).
    scores = np.matmul(qf.transpose(1, 0, 2), kf.transpose(1, 2, 0)).transpose(1, 0, 2) * scale
    scores = np.where(mask[:, None, :], scores, -np.inf)

    with np.errstate(invalid="ignore"):
        m = np.max(scores, axis=-1, keepdims=True)
        m_safe = np.where(np.isneginf(m), 0.0, m)
        p = np.exp(scores - m_safe)
        p = np.where(mask[:, None, :], p, 0.0)
        denom = p.sum(axis=-1)
        lse = np.where(denom > 0, m_safe[..., 0] + np.log(np.where(denom == 0, 1.0, denom)), -np.inf)
        out = np.matmul(p.transpose(1, 0, 2), vf.transpose(1, 0, 2)).transpose(1, 0, 2)
        out = np.where(denom[..., None] > 0, out / np.where(denom == 0, 1.0, denom)[..., None], 0.0)
    return out, lse


def reference_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    **kwargs,
) -> np.ndarray:
    """Exact GQA attention output only (see :func:`reference_attention_with_lse`)."""
    out, _ = reference_attention_with_lse(q, k, v, **kwargs)
    return out
