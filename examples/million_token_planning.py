"""Capacity planning for million-token inference with the analytic model.

Answers the deployment question the paper's evaluation answers with 128
GPUs: *how many CP hosts does a 405B model need to prefill a given context
within a latency SLA?* Uses the calibrated latency simulator (Figures 6-8)
plus KV-capacity accounting to print a plan per context length.

Run:  python examples/million_token_planning.py
"""

from repro import LatencySimulator, gtt_host, llama3_405b_config
from repro.perf.flops import achieved_flops_per_gpu, mfu, model_flops


def plan(context: int, sla_seconds: float, sim: LatencySimulator) -> dict:
    """Smallest CP rank count meeting the SLA (and fitting the KV cache)."""
    cfg, host = sim.config, sim.host
    kv_per_token = cfg.kv_bytes_per_token(sim.element_bytes)
    # ~70% of HBM available for KV after FP8 weights + activations
    hbm_for_kv = 0.70 * host.gpus_per_host * host.gpu.hbm_capacity - kv_per_token * 0

    for n in (1, 2, 4, 8, 16, 32):
        ttft = sim.cp_prefill(context, n_ranks=n).total
        kv_bytes_per_rank = context * kv_per_token / n
        weights_bytes = 405e9  # FP8 per rank (TP8-sharded inside)
        fits = kv_bytes_per_rank + weights_bytes < host.gpus_per_host * host.gpu.hbm_capacity * 0.9
        if ttft <= sla_seconds and fits:
            flops = model_flops(cfg, context)
            gpus = n * host.gpus_per_host
            return {
                "context": context,
                "ranks": n,
                "gpus": gpus,
                "ttft": ttft,
                "kv_gb_per_rank": kv_bytes_per_rank / 1e9,
                "tf_per_gpu": achieved_flops_per_gpu(flops, ttft, gpus) / 1e12,
                "mfu": mfu(flops, ttft, gpus, host.gpu.peak_flops),
            }
    return {"context": context, "ranks": None}


def main() -> None:
    sim = LatencySimulator(llama3_405b_config(), gtt_host())
    sla = 100.0  # seconds to first token

    print(f"Planning Llama3 405B prefill on GTT hosts, TTFT SLA = {sla:.0f}s")
    print(f"{'context':>10} {'CP ranks':>9} {'GPUs':>5} {'TTFT (s)':>9} "
          f"{'KV GB/rank':>11} {'TF/s/GPU':>9} {'MFU':>6}")
    for context in (131072, 262144, 524288, 1_048_576, 2_097_152):
        p = plan(context, sla, sim)
        if p["ranks"] is None:
            print(f"{context:>10}  -- no configuration meets the SLA --")
            continue
        print(
            f"{p['context']:>10} {p['ranks']:>9} {p['gpus']:>5} {p['ttft']:>9.1f} "
            f"{p['kv_gb_per_rank']:>11.0f} {p['tf_per_gpu']:>9.0f} {p['mfu']:>6.1%}"
        )

    print()
    print("Decode-side trade-off at 128K (TTIT, batch 1):")
    for n in (1, 2, 4):
        d = sim.cp_decode(131072, n_ranks=n) if n > 1 else sim.tp_decode(131072, n_nodes=1)
        print(f"  CP{n}: TTIT = {d.total * 1e3:6.2f} ms "
              f"(attention path {d.whole_attn * 1e6:6.1f} us/layer)")
    print("-> CP accelerates prefill; pair it with disaggregated decode "
          "(paper Section 4.3).")


if __name__ == "__main__":
    main()
