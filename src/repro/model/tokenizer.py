"""Byte-level tokenizer for runnable text demos.

A reproduction meant for adoption needs end-to-end runnable examples with
*text*, not just integer arrays. This byte-level tokenizer (UTF-8 bytes as
tokens 0-255 plus a few specials) pairs with
:func:`repro.model.config.byte_tokenizer_config` so the tiny NumPy model
can round-trip real strings through the CP engine.
"""

from __future__ import annotations

import numpy as np

#: Special token ids placed after the 256 byte values.
BOS_ID = 256
EOS_ID = 257
PAD_ID = 258

#: Vocabulary size a model must have to pair with this tokenizer.
VOCAB_SIZE = 259


class ByteTokenizer:
    """UTF-8 byte tokenizer with BOS/EOS specials."""

    vocab_size = VOCAB_SIZE
    bos_id = BOS_ID
    eos_id = EOS_ID
    pad_id = PAD_ID

    def encode(self, text: str, *, add_bos: bool = True, add_eos: bool = False) -> np.ndarray:
        """String -> int64 token ids."""
        ids = list(text.encode("utf-8"))
        if add_bos:
            ids = [BOS_ID] + ids
        if add_eos:
            ids = ids + [EOS_ID]
        return np.array(ids, dtype=np.int64)

    def decode(self, token_ids: np.ndarray | list[int]) -> str:
        """Token ids -> string (specials dropped, invalid UTF-8 replaced)."""
        data = bytes(int(t) for t in np.asarray(token_ids).ravel() if 0 <= int(t) < 256)
        return data.decode("utf-8", errors="replace")

    def __len__(self) -> int:
        return VOCAB_SIZE
