"""Parameter grids for every reproduced table and figure.

Centralising the sweeps keeps the benchmark harness, the tests and
EXPERIMENTS.md in exact agreement about what each experiment runs.
"""

from __future__ import annotations

#: Figure 6: full-prefill context lengths (2K - 128K).
FIG6_CONTEXT_LENGTHS: list[int] = [2048, 4096, 8192, 16384, 32768, 65536, 98304, 131072]

#: Figure 6 CP rank counts per platform.
FIG6_GTT_RANKS: list[int] = [1, 2, 4, 8]
FIG6_GTI_RANKS: list[int] = [1, 2, 4]

#: Figure 7: scaling-ratio node counts at 128K.
FIG7_NODE_COUNTS: list[int] = [1, 2, 4, 8]
FIG7_CONTEXT: int = 131072

#: Figure 8: long-context TTFT lengths on CP8 / CP16.
FIG8_CONTEXT_LENGTHS: list[int] = [131072, 262144, 524288, 1048576]
FIG8_RANKS: list[int] = [8, 16]

#: Table 4 / Figure 9: partial-prefill sweep, P + T = 128000 on CP4.
TABLE4_TOTAL: int = 128000
TABLE4_RANKS: int = 4
TABLE4_SWEEP: list[tuple[int, int]] = [
    (126720, 1280),
    (124800, 3200),
    (123840, 4160),
    (121600, 6400),
    (115200, 12800),
    (102400, 25600),
    (89600, 38400),
    (76800, 51200),
    (64000, 64000),
    (51200, 76800),
    (38400, 89600),
    (25600, 102400),
    (12800, 115200),
    (0, 128000),
]

#: Table 5: breakdown miss rates (2.5% and 10%).
TABLE5_POINTS: list[tuple[int, int]] = [(124800, 3200), (115200, 12800)]

#: Table 6: context lengths for TP8 vs CP2 TTFT/TTIT.
TABLE6_CONTEXT_LENGTHS: list[int] = [8192, 32768, 131072]

#: Table 7: parallelism configs at 128K (label, kind, nodes).
TABLE7_CONFIGS: list[tuple[str, str, int]] = [
    ("CP1+TP8", "cp", 1),
    ("CP2+TP8", "cp", 2),
    ("TP16", "tp", 2),
    ("CP4+TP8", "cp", 4),
    ("TP32", "tp", 4),
]

#: Table 8: decode attention scaling scenarios (context, batch, ranks).
TABLE8_SCENARIOS: list[tuple[int, int, list[int]]] = [
    (131072, 1, [1, 2, 4]),
    (32768, 4, [1, 2, 4]),
]


def table4_rows() -> list[dict]:
    """Table 4's rows as dicts: ``{"P", "T", "miss_rate"}``."""
    rows = []
    for p, t in TABLE4_SWEEP:
        rows.append({"P": p, "T": t, "miss_rate": t / (t + p)})
    return rows
