"""Extension experiment: CP vs PP — latency vs throughput (paper §1).

Tabulates, for the same number of hosts, what each parallelism buys on a
128K prefill: CP cuts TTFT near-linearly; PP leaves TTFT at single-host
level (plus hand-offs) while multiplying steady-state throughput.
"""

from __future__ import annotations

from repro.baselines.pipeline_parallel import pp_prefill
from repro.experiments.base import ExperimentResult
from repro.model.config import llama3_405b_config
from repro.perf.hardware import HostSpec, gtt_host
from repro.perf.latency import LatencySimulator

CONTEXT = 131072


def run(host: HostSpec | None = None) -> ExperimentResult:
    host = host if host is not None else gtt_host()
    cfg = llama3_405b_config()
    sim = LatencySimulator(cfg, host)

    res = ExperimentResult(
        experiment_id="CP vs PP",
        title=f"Latency vs throughput at {CONTEXT // 1024}K, same host count",
        headers=[
            "hosts",
            "CP TTFT (s)", "PP TTFT (s)",
            "CP prefills/s", "PP prefills/s (saturated)",
        ],
    )
    for hosts in (1, 2, 3, 6):
        cp = sim.cp_prefill(CONTEXT, n_ranks=hosts)
        pp = pp_prefill(cfg, host, CONTEXT, stages=hosts, micro_batches=8 * hosts)
        res.add_row(
            hosts,
            cp.total,
            pp.ttft,
            1.0 / cp.total,
            pp.steady_throughput,
        )
    res.notes.append(
        "CP reduces latency (TTFT / hosts); PP leaves TTFT ~flat while "
        "multiplying saturated throughput - the paper's opening contrast "
        "(Section 1, bullet 1) in numbers."
    )
    return res
