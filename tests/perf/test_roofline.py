"""Tests for message sizes and overlap predicates (Tables 2-3, Eqs. 1-3)."""

import pytest

from repro.model.config import llama3_405b_config, tiny_config
from repro.perf.roofline import (
    all2all_bytes,
    can_hide_passkv_comm,
    can_hide_passq_comm,
    cp_attn_message_bytes,
    cp_block_comm_bytes,
    kv_bytes,
    q_bytes,
    tp_block_comm_bytes,
)


CFG = llama3_405b_config()


class TestMessageSizes:
    def test_q_bytes_formula(self):
        assert q_bytes(CFG, 1000) == 1000 * 16384 * 2

    def test_kv_bytes_gqa_ratio(self):
        """KV messages are 16x smaller than Q for Llama3 405B (§3.2)."""
        t = 10000
        assert q_bytes(CFG, t) / kv_bytes(CFG, t, 0) == pytest.approx(
            CFG.n_heads / (2 * CFG.n_kv_heads)
        )

    def test_kv_bytes_include_cache(self):
        assert kv_bytes(CFG, 100, 900) == kv_bytes(CFG, 1000, 0)

    def test_min_message_selection(self):
        # full prefill: KV smaller
        assert cp_attn_message_bytes(CFG, 10000, 0) == kv_bytes(CFG, 10000, 0)
        # high hit rate: Q smaller
        assert cp_attn_message_bytes(CFG, 100, 100000) == q_bytes(CFG, 100)

    def test_table2_cp_vs_tp(self):
        """Table 2: per block, TP moves 2*T*NH*DH vs CP's T*NKV*DH-scale
        KV traffic — a 16x gap for full prefill on this model."""
        t = 131072
        tp = tp_block_comm_bytes(CFG, t)
        cp = cp_block_comm_bytes(CFG, t, 0)
        assert tp / cp == pytest.approx(16.0)


class TestOverlapPredicates:
    def test_eq2_monotone_in_t(self):
        kw = dict(compute_flops=8 * 540e12, bandwidth=220e9)
        assert can_hide_passkv_comm(CFG, 128000, 4, **kw)
        assert not can_hide_passkv_comm(CFG, 100, 4, **kw)

    def test_eq2_threshold_independent_of_p(self):
        """The paper stresses the pass-KV threshold doesn't involve P."""
        kw = dict(compute_flops=8 * 540e12, bandwidth=220e9)
        assert can_hide_passkv_comm(CFG, 12800, 4, **kw)
        # (no P parameter even exists in the predicate)

    def test_eq3_total_context(self):
        kw = dict(compute_flops=8 * 540e12, bandwidth=220e9)
        assert can_hide_passq_comm(CFG, 128000, 4, **kw)
        assert not can_hide_passq_comm(CFG, 1000, 4, **kw)

    def test_more_ranks_raise_thresholds(self):
        kw = dict(compute_flops=8 * 540e12, bandwidth=220e9)
        t = 15000
        assert can_hide_passkv_comm(CFG, t, 4, **kw)
        assert not can_hide_passkv_comm(CFG, t, 16, **kw)

    def test_gqa_ratio_matters(self):
        """An MHA model (NKV == NH) has 16x bigger KV messages, making
        pass-KV much harder to hide."""
        mha = tiny_config(n_heads=8, n_kv_heads=8)
        gqa = tiny_config(n_heads=8, n_kv_heads=1)
        kw = dict(compute_flops=8 * 540e12, bandwidth=220e9)
        t = 60000
        assert can_hide_passkv_comm(gqa, t, 4, **kw)
        assert not can_hide_passkv_comm(mha, t, 4, **kw)


class TestAll2AllBytes:
    def test_appendix_c_formula(self):
        """(N-1) partials of (D+1) values per token."""
        n, tokens = 4, 3200
        expected = 3 * tokens * (16384 + 1) * 2
        assert all2all_bytes(CFG, tokens, n) == expected

    def test_single_rank_zero(self):
        assert all2all_bytes(CFG, 100, 1) == 0
