"""Hardware specifications and calibration anchors.

The paper's platforms (§4.1):

- **H100 (power-limited)**: 96 GB HBM2e at 2.4 TB/s, BF16 peak 800 TF/s
  (vs 989 TF/s for the 700 W HBM3 part — Appendix A caveat).
- **GTT** hosts: backend RDMA at 400 Gb/s per GPU.
- **GTI** hosts: frontend TCP at 100 Gb/s per GPU, ~3 GB/s/rank achieved.

Achieved-rate constants below are *fit once* against the paper's published
measurements and then reused for every experiment (no per-table tuning):

- attention 540 TF/s/GPU — the paper's own standalone FA3 measurement
  (Appendix A).
- GEMM 560 TF/s/GPU — fit so TP8 128K full-prefill TTFT ≈ 42 s (Table 6).
- ring SendRecv 220 GB/s/host on GTT — fit from Table 5's 627 us
  per-iteration SendRecv of a 131 MB KV shard (≈0.55 of the 300 GB/s
  8-NIC line rate).
- All2All 300 GB/s/host on GTT — fit from Table 5's 1023 us All2All at
  T = 12800, CP4.
- per-message latency 32 us — Table 8's CP2 decode SendRecv.
- elementwise-pass count 56 — the non-GEMM token-wise work per layer
  (norms, RoPE, residual adds, KV-cache writes: ~7 logical activation
  sweeps, executed by small kernels at roughly 1/8 of peak HBM
  bandwidth). Fit from the TP8 TTFT residuals at 8K/32K/128K, which grow
  ~linearly in T (0.18 s / 0.65 s / 1.65 s).
- ring setup 5.5 ms/layer when CP spans multiple hosts — the fixed
  multi-host orchestration cost visible as the T-independent residual of
  the CP2..CP8 and Table 4 partial-prefill TTFTs.
- decode per-layer overhead 130 us and 7 us kernel-launch floor — fit
  from Tables 6/8 TTIT decompositions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class GPUSpec:
    """One accelerator's achieved-rate envelope.

    Attributes:
        name: marketing name.
        achieved_attn_flops: attention FLOP/s actually sustained (FA3).
        achieved_gemm_flops: dense linear-layer FLOP/s sustained (FP8).
        peak_flops: spec-sheet peak used for utilization reporting.
        hbm_bandwidth: memory bandwidth in bytes/s.
        hbm_capacity: memory capacity in bytes.
        kernel_launch_overhead: per-kernel latency floor (seconds) under
            CUDA Graphs, visible in decode's tiny attention ops (Table 8).
    """

    name: str
    achieved_attn_flops: float = 540e12
    achieved_gemm_flops: float = 560e12
    peak_flops: float = 800e12
    hbm_bandwidth: float = 2.4e12
    hbm_capacity: float = 96e9
    kernel_launch_overhead: float = 7e-6


@dataclass(frozen=True)
class HostSpec:
    """One CP rank: a TP-group host plus its network personality.

    Attributes:
        name: platform name (GTT / GTI).
        gpu: the accelerator spec.
        gpus_per_host: TP group size (paper: 8).
        ring_bandwidth: achieved host-level bandwidth for CP ring SendRecv
            (aggregate of the per-KV-head channels), bytes/s.
        all2all_bandwidth: achieved host-level bandwidth for the pass-Q
            output All2All, bytes/s.
        message_latency: per-message inter-host latency (seconds).
        allreduce_bandwidth: effective inter-node bandwidth for the TP
            baseline's activation AllReduce, bytes/s.
        allreduce_latency: per-AllReduce-hop latency (seconds).
        nvlink_bandwidth: per-GPU intra-host bandwidth, bytes/s.
        pcie_bandwidth: achieved host-level device<->host-DRAM bandwidth
            for KV offload traffic (the runtime's ``--preemption swap``
            remedy), bytes/s. Conservatively one PCIe Gen5 x16 link's
            practical ~56 GB/s: per-GPU DMAs fan out in parallel but
            contend with NIC traffic and host-memory bandwidth, so the
            sustained host aggregate lands near a single link.
        elementwise_passes: *effective* HBM passes over the activation per
            layer spent on non-GEMM token-wise work (norms, RoPE,
            residuals, cache writes), already derated for the low achieved
            bandwidth of small elementwise kernels; the per-token prefill
            overhead.
        ring_setup_per_layer: fixed per-layer orchestration cost when CP
            spans multiple hosts (s).
        decode_layer_overhead: fixed per-layer decode overhead (s).
    """

    name: str
    gpu: GPUSpec
    gpus_per_host: int = 8
    ring_bandwidth: float = 220e9
    all2all_bandwidth: float = 300e9
    message_latency: float = 32e-6
    allreduce_bandwidth: float = 140e9
    allreduce_latency: float = 30e-6
    nvlink_bandwidth: float = 450e9
    pcie_bandwidth: float = 56e9
    elementwise_passes: float = 56.0
    ring_setup_per_layer: float = 5.5e-3
    decode_layer_overhead: float = 0.13e-3

    @property
    def attn_flops(self) -> float:
        """Host-level achieved attention FLOP/s."""
        return self.gpus_per_host * self.gpu.achieved_attn_flops

    @property
    def gemm_flops(self) -> float:
        """Host-level achieved GEMM FLOP/s."""
        return self.gpus_per_host * self.gpu.achieved_gemm_flops

    @property
    def hbm_bandwidth(self) -> float:
        """Host-level aggregate HBM bandwidth."""
        return self.gpus_per_host * self.gpu.hbm_bandwidth

    def with_ring_bandwidth(self, bw: float) -> "HostSpec":
        return replace(self, ring_bandwidth=bw, all2all_bandwidth=bw)


def gtt_host() -> HostSpec:
    """Grand Teton Training host: 8xH100, 400 Gb/s RDMA per GPU."""
    return HostSpec(name="GTT", gpu=GPUSpec(name="H100-96GB-500W"))


def gti_host() -> HostSpec:
    """Grand Teton Inference host: 8xH100, 100 Gb/s TCP per GPU.

    The paper's traces show ~3 GB/s achieved per rank (GPU) over TCP, i.e.
    24 GB/s per host for both ring and All2All traffic, with higher
    per-message latency than RDMA.
    """
    return HostSpec(
        name="GTI",
        gpu=GPUSpec(name="H100-96GB-500W"),
        ring_bandwidth=24e9,
        all2all_bandwidth=24e9,
        message_latency=60e-6,
    )


#: Anchor measurements from the paper used to fit the constants above.
#: ``(description, paper_value, where)`` — tests assert the model stays
#: within tolerance of each anchor.
CALIBRATION_ANCHORS: list[tuple[str, float, str]] = [
    ("TP8 128K full prefill TTFT (s)", 42.010, "Table 6"),
    ("CP2 128K full prefill TTFT (s)", 21.042, "Table 7"),
    ("CP4 128K full prefill TTFT (s)", 10.950, "Table 7"),
    ("CP8 128K full prefill TTFT (s)", 5.85, "Section 4.2.1"),
    ("CP16 1M full prefill TTFT (s)", 77.0, "Figure 8"),
    ("CP4 partial prefill pass-KV TTFT @ 1% miss (ms)", 1023.39, "Table 4"),
    ("CP4 partial prefill pass-Q TTFT @ 1% miss (ms)", 898.71, "Table 4"),
    ("CP4 partial prefill pass-KV TTFT @ 100% miss (ms)", 11462.15, "Table 4"),
    ("CP4 SendRecv per ring iteration @ 2.5% miss (us)", 627.0, "Table 5"),
    ("CP4 ATTN per ring iteration @ 2.5% miss (us)", 414.0, "Table 5"),
    ("CP4 pass-Q All2All @ 10% miss (us)", 1023.0, "Table 5"),
    ("TP8 128K decode TTIT (ms)", 46.26, "Table 6"),
    ("CP2 128K decode TTIT (ms)", 60.23, "Table 7"),
    ("CP4 128K decode TTIT (ms)", 71.31, "Table 7"),
    ("TP8 decode individual attention op 128K B=1 (us)", 38.9, "Table 8"),
    ("CP2 decode whole pass-Q 128K B=1 (us)", 157.7, "Table 8"),
]
