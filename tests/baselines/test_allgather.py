"""Tests for the all-gather pass-KV baseline."""

import numpy as np
import pytest

from repro.attention.reference import reference_attention_with_lse
from repro.baselines.allgather_passkv import allgather_passkv_prefill
from repro.core.ring_passkv import ring_passkv_prefill
from repro.distributed.process_group import SimProcessGroup

from helpers import make_qkv, shard_qkv_full_prefill, shard_varseq_full_prefill


class TestExactness:
    @pytest.mark.parametrize("world", [1, 2, 4])
    def test_matches_reference(self, rng, world):
        q, k, v = make_qkv(rng, 29, 29)
        ref_out, ref_lse = reference_attention_with_lse(q, k, v)
        queries, kvs = shard_qkv_full_prefill(q, k, v, world)
        results = allgather_passkv_prefill(SimProcessGroup(world), queries, kvs)
        for res, qs in zip(results, queries):
            np.testing.assert_allclose(res.out, ref_out[qs.positions], atol=1e-10)
            np.testing.assert_allclose(res.lse, ref_lse[qs.positions], atol=1e-10)

    def test_agrees_with_ring(self, rng):
        world = 3
        per_seq = {0: make_qkv(rng, 10, 10), 1: make_qkv(rng, 15, 15)}
        queries, kvs = shard_varseq_full_prefill(per_seq, world)
        ag = allgather_passkv_prefill(SimProcessGroup(world), queries, kvs)
        ring = ring_passkv_prefill(SimProcessGroup(world), queries, kvs)
        for a, b in zip(ag, ring):
            np.testing.assert_allclose(a.out, b.out, atol=1e-10)


class TestCommunicationShape:
    def test_allgather_not_sendrecv(self, rng):
        """The ablation's point: same bytes-scale traffic, but as one
        exposed collective rather than N-1 overlappable hops."""
        world = 4
        q, k, v = make_qkv(rng, 16, 16)
        queries, kvs = shard_qkv_full_prefill(q, k, v, world)
        group = SimProcessGroup(world)
        allgather_passkv_prefill(group, queries, kvs)
        assert group.tracer.count("allgather") == 1
        assert group.tracer.count("sendrecv") == 0

    def test_total_bytes_comparable_to_ring(self, rng):
        """AllGather moves the same KV volume the ring does (N-1 shards)."""
        world = 4
        q, k, v = make_qkv(rng, 16, 16)
        queries, kvs = shard_qkv_full_prefill(q, k, v, world)
        g_ring = SimProcessGroup(world)
        ring_passkv_prefill(g_ring, queries, kvs)
        g_ag = SimProcessGroup(world)
        allgather_passkv_prefill(g_ag, queries, kvs)
        ring_bytes = g_ring.tracer.total_bytes("sendrecv")
        ag_bytes = g_ag.tracer.total_bytes("allgather")
        assert ag_bytes == pytest.approx(ring_bytes, rel=0.01)

    def test_world_mismatch(self, rng):
        q, k, v = make_qkv(rng, 8, 8)
        queries, kvs = shard_qkv_full_prefill(q, k, v, 2)
        with pytest.raises(ValueError):
            allgather_passkv_prefill(SimProcessGroup(3), queries, kvs)
