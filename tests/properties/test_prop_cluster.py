"""Property test: the cluster tier preserves serving exactness.

The fleet (:mod:`repro.cluster`) rescopes the runtime's
serving-exactness contract over *placement*: for any traffic mix, any
replica count, any routing policy, any drain schedule, and any injected
fault plan, routing changes which replica serves a conversation — and
therefore timing, placement, and (under faults) completion — but never
the value of a single decoded token:

- **every fleet run drains** — each request reaches a terminal state on
  whichever replica owns it;
- **completed requests are exact** — every ``FINISHED`` turn streamed
  tokens bit-identical to replaying its conversation alone through a
  single sequential session, regardless of which replica ran it;
- **nothing leaks anywhere** — after the drain, *every* replica's KV
  bookkeeping audits clean;
- **stickiness is absolute** — all turns of a conversation execute on
  the replica that served its first turn (drain included);
- **a fleet of one is the runtime** — ``ReplicaFleet([runtime])`` is
  byte-for-byte the bare runtime: same streams, statuses, makespan
  (the metamorphic anchor tying the cluster tier to the single-runtime
  property suite).
"""

import numpy as np
import pytest
from helpers import assert_exact_vs_sequential, assert_leak_free
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ReplicaFleet, make_router
from repro.cluster.router import ROUTING_POLICIES
from repro.core.engine import ContextParallelEngine
from repro.model.config import tiny_config
from repro.model.llama import LlamaModel
from repro.runtime import ContinuousBatchingRuntime, FaultPlan
from repro.serving.scheduler import ChunkedPrefillPolicy
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.replay import (
    replay_scripts_sequential,
    submit_scripts_to_runtime,
)

MODEL = LlamaModel(tiny_config(), seed=0)
VOCAB = MODEL.config.vocab_size
SETTINGS = dict(max_examples=10, deadline=None)


def fresh_engine(world):
    return ContextParallelEngine(LlamaModel(tiny_config(), seed=0), world_size=world)


def make_runtime_factory(*, world, disaggregate, chunk, capacity, prefix_cache, plan):
    """A fleet-ready factory: every call returns a fresh, fully
    independent runtime (own engines, clocks, metrics, injector) over
    the shared read-only model."""

    def make_runtime(_replica_id):
        kwargs = dict(
            policy=ChunkedPrefillPolicy(
                chunk_tokens=chunk,
                max_tokens_per_round=2 * chunk,
                max_seqs_per_round=4,
            ),
            prefix_cache=prefix_cache,
            faults=plan,
        )
        engine = ContextParallelEngine(MODEL, world_size=world, capacity_tokens=capacity)
        if disaggregate:
            decode_engine = ContextParallelEngine(
                MODEL, world_size=world, capacity_tokens=capacity
            )
            return ContinuousBatchingRuntime(engine, decode_engine=decode_engine, **kwargs)
        return ContinuousBatchingRuntime(engine, **kwargs)

    return make_runtime


@st.composite
def cluster_case(draw, *, with_faults=False):
    """Traffic x replica count x routing policy (x fault schedule)."""
    seed = draw(st.integers(0, 2**31 - 1))
    n_replicas = draw(st.integers(1, 3))
    policy = draw(st.sampled_from(ROUTING_POLICIES))
    world = draw(st.sampled_from([1, 2]))
    disaggregate = draw(st.booleans())
    chunk = draw(st.sampled_from([5, 16]))
    capacity = draw(st.sampled_from([None, 144]))
    think = draw(st.sampled_from([0.0, 2.5]))
    prefix_cache = draw(st.booleans())
    plan = None
    if with_faults:
        plan = FaultPlan(
            seed=draw(st.integers(0, 2**16)),
            transfer_fail_rate=draw(st.sampled_from([0.0, 0.3])),
            swap_loss_rate=0.0,
            pool_resets=draw(st.integers(0, 1)),
            pool_reset_window=24,
            backoff_base_s=0.5,
            deadline_s=draw(st.sampled_from([None, 20.0])),
        )
    gen = WorkloadGenerator(VOCAB, seed=seed)
    shared = draw(st.booleans())
    if shared:
        scripts = gen.shared_prefix_traffic(
            n_system_prompts=draw(st.integers(1, 2)),
            n_fewshot_variants=2,
            conversations=draw(st.integers(2, 5)),
            system_tokens=24,
            fewshot_tokens=8,
            unique_range=(4, 12),
            turns=draw(st.integers(1, 2)),
            response_range=(2, 5),
        )
    else:
        scripts = [
            gen.conversation(
                sid,
                turns=draw(st.integers(1, 2)),
                first_prompt=int(gen.rng.integers(10, 40)),
                followup_range=(4, 12),
                response_range=(2, 5),
            )
            for sid in range(draw(st.integers(1, 4)))
        ]
    factory = make_runtime_factory(
        world=world,
        disaggregate=disaggregate,
        chunk=chunk,
        capacity=capacity,
        prefix_cache=prefix_cache,
        plan=plan,
    )
    return scripts, n_replicas, policy, world, think, factory


def _assert_sticky(report):
    """Every turn of a conversation ran on its placement replica."""
    for rid, rec in report.records.items():
        owner = report.owners[rid]
        assert owner == report.placements[rec.seq_id], (
            f"request {rid} (seq {rec.seq_id}) ran on replica {owner}, "
            f"but the conversation was placed on "
            f"{report.placements[rec.seq_id]}"
        )


class TestFleetExactness:
    @given(cluster_case())
    @settings(**SETTINGS)
    def test_any_routing_schedule_is_exact(self, case):
        """Fault-free: every request finishes, every stream matches
        sequential replay, every replica audits leak-free, stickiness
        holds — for any (traffic, replicas, policy) draw."""
        scripts, n_replicas, policy, world, think, factory = case
        fleet = ReplicaFleet.build(factory, n_replicas, router=make_router(policy))
        rids = submit_scripts_to_runtime(fleet, scripts, think_time_s=think)
        report = fleet.run(max_steps=200_000)

        assert report.statuses() == {
            "finished": sum(s.turns for s in scripts)
        }, f"policy={policy}, replicas={n_replicas}"
        reference = replay_scripts_sequential(lambda: fresh_engine(world), scripts)
        assert_exact_vs_sequential(
            report, rids, reference,
            context=f"policy={policy}, replicas={n_replicas}",
        )
        assert_leak_free(fleet, context=f"policy={policy}, replicas={n_replicas}")
        _assert_sticky(report)

    @given(cluster_case(with_faults=True))
    @settings(**SETTINGS)
    def test_faulted_fleet_completed_requests_stay_exact(self, case):
        """Under any injected fault schedule (independently replayed on
        each replica): the fleet drains, completed turns stay
        bit-identical, nothing leaks on any replica."""
        scripts, n_replicas, policy, world, think, factory = case
        fleet = ReplicaFleet.build(factory, n_replicas, router=make_router(policy))
        rids = submit_scripts_to_runtime(fleet, scripts, think_time_s=think)
        report = fleet.run(max_steps=200_000)

        for rec in report.records.values():
            assert rec.status is not None, (
                f"request {rec.request_id} wedged in {rec.state} "
                f"(policy={policy}, replicas={n_replicas})"
            )
        reference = replay_scripts_sequential(lambda: fresh_engine(world), scripts)
        assert_exact_vs_sequential(
            report, rids, reference, completed_only=True,
            context=f"policy={policy}, replicas={n_replicas}",
        )
        assert_leak_free(fleet, context=f"policy={policy}, replicas={n_replicas}")
        _assert_sticky(report)

    @given(cluster_case())
    @settings(**SETTINGS)
    def test_routing_policy_never_changes_token_values(self, case):
        """Metamorphic over policy: the same traffic through each of the
        three routers decodes identical token streams — placement and
        timing may differ, values may not."""
        scripts, n_replicas, _policy, world, think, factory = case

        def streams(policy):
            fleet = ReplicaFleet.build(
                factory, n_replicas, router=make_router(policy)
            )
            rids = submit_scripts_to_runtime(fleet, scripts, think_time_s=think)
            report = fleet.run(max_steps=200_000)
            return {
                (seq_id, i): report.generated(rid)
                for seq_id, turn_rids in rids.items()
                for i, rid in enumerate(turn_rids)
            }

        base = streams(ROUTING_POLICIES[0])
        for policy in ROUTING_POLICIES[1:]:
            assert streams(policy) == base, (
                f"policy {policy} changed token values vs "
                f"{ROUTING_POLICIES[0]} ({n_replicas} replicas)"
            )


class TestFleetOfOneIsTheRuntime:
    @given(cluster_case())
    @settings(**SETTINGS)
    def test_single_replica_fleet_matches_bare_runtime(self, case):
        """Metamorphic anchor: a 1-replica fleet is byte-for-byte the
        bare runtime (streams, statuses, makespan), for every policy —
        the router has one choice and the step loop degenerates."""
        scripts, _n, policy, _world, think, factory = case

        def signature(target):
            rids = submit_scripts_to_runtime(target, scripts, think_time_s=think)
            report = target.run(max_steps=200_000)
            return (
                {
                    (seq_id, i): list(report.generated(rid))
                    for seq_id, turn_rids in rids.items()
                    for i, rid in enumerate(turn_rids)
                },
                report.statuses(),
                report.makespan,
            )

        bare = signature(factory(0))
        fleet = signature(
            ReplicaFleet.build(factory, 1, router=make_router(policy))
        )
        assert fleet == bare


class TestDrainSchedules:
    @given(cluster_case(), st.integers(0, 2))
    @settings(**SETTINGS)
    def test_drain_reroutes_only_new_conversations(self, case, drain_at):
        """Drain a replica between submissions: conversations already
        placed there finish there (stickiness overrides drain), no new
        conversation lands on it, and the run stays exact and leak-free."""
        scripts, n_replicas, policy, world, think, factory = case
        if n_replicas < 2:
            n_replicas = 2  # draining the only replica is the error path
        fleet = ReplicaFleet.build(factory, n_replicas, router=make_router(policy))
        target = drain_at % n_replicas

        cut = max(1, len(scripts) // 2)
        rids = {}
        for script in scripts[:cut]:
            rids[script.seq_id] = fleet.submit_script(script, think_time=think)
        placed_before = set(fleet.placements())
        fleet.drain(target)
        for script in scripts[cut:]:
            rids[script.seq_id] = fleet.submit_script(script, think_time=think)

        for seq_id, replica_id in fleet.placements().items():
            if seq_id not in placed_before:
                assert replica_id != target, (
                    f"new conversation {seq_id} routed to draining "
                    f"replica {target} (policy={policy})"
                )

        report = fleet.run(max_steps=200_000)
        assert report.statuses() == {"finished": sum(s.turns for s in scripts)}
        reference = replay_scripts_sequential(lambda: fresh_engine(world), scripts)
        assert_exact_vs_sequential(
            report, rids, reference,
            context=f"policy={policy}, drained replica {target}",
        )
        assert_leak_free(fleet, context=f"policy={policy}, drained={target}")
        _assert_sticky(report)

    def test_all_draining_rejects_new_conversations(self):
        factory = make_runtime_factory(
            world=1, disaggregate=False, chunk=16, capacity=None,
            prefix_cache=False, plan=None,
        )
        fleet = ReplicaFleet.build(factory, 2, router=make_router("round-robin"))
        fleet.drain(0)
        fleet.drain(1)
        gen = WorkloadGenerator(VOCAB, seed=0)
        with pytest.raises(RuntimeError, match="every replica is draining"):
            fleet.submit_script(gen.conversation(0, turns=1, first_prompt=8))
