"""Per-KV-head CP communication groups (paper Figure 5).

In the production deployment each host is a TP8 group holding one KV head
per GPU, and CP forms **one communication group per KV head**: the N GPUs
(one per host) holding the same head ring among themselves, so a CP-rank
message is physically an 8-way parallel SendRecv of per-head slices.

This module reproduces that structure numerically:

- :func:`split_by_kv_head` slices rank-level Q/KV shards into per-KV-head
  sub-shards (each query head travels with its KV head's group);
- :func:`head_parallel_ring_passkv` runs an independent pass-KV ring per
  KV-head group and reassembles full-head outputs;
- the per-group traced traffic demonstrates the bandwidth-striping claim:
  every group moves ``1 / NKV`` of the rank-level bytes.

Attention heads never interact, so the result is exactly the rank-level
ring's (tested) — this is the formal content of "TP inside the host
composes freely with CP across hosts".
"""

from __future__ import annotations

import numpy as np

from repro.attention.flash import AttentionResult
from repro.core.ring_passkv import ring_passkv_prefill
from repro.core.sharding import ShardedKV, ShardedQueries
from repro.distributed.process_group import SimProcessGroup
from repro.distributed.topology import ClusterTopology
from repro.distributed.tracer import CommTracer


def split_by_kv_head(
    queries: list[ShardedQueries], kv_shards: list[ShardedKV]
) -> list[tuple[list[ShardedQueries], list[ShardedKV]]]:
    """Slice rank-level shards into per-KV-head-group sub-shards.

    Query heads are grouped with their KV head (Llama convention): group
    ``g`` carries query heads ``[g * G, (g + 1) * G)`` and KV head ``g``,
    where ``G = NH / NKV``.

    Returns:
        One ``(queries, kv_shards)`` pair per KV head group.
    """
    if not queries or not kv_shards or len(queries) != len(kv_shards):
        raise ValueError("need matching non-empty per-rank query and KV lists")
    nh = queries[0].q.shape[1]
    nkv = kv_shards[0].k.shape[1]
    if nh % nkv != 0:
        raise ValueError(f"NH={nh} not divisible by NKV={nkv}")
    group_size = nh // nkv

    groups = []
    for g in range(nkv):
        q_heads = slice(g * group_size, (g + 1) * group_size)
        g_queries = [
            ShardedQueries(q=qs.q[:, q_heads, :], positions=qs.positions, seq_ids=qs.seq_ids)
            for qs in queries
        ]
        g_kvs = [
            ShardedKV(
                k=kv.k[:, g : g + 1, :],
                v=kv.v[:, g : g + 1, :],
                positions=kv.positions,
                seq_ids=kv.seq_ids,
            )
            for kv in kv_shards
        ]
        groups.append((g_queries, g_kvs))
    return groups


def head_parallel_ring_passkv(
    queries: list[ShardedQueries],
    kv_shards: list[ShardedKV],
    *,
    topology: ClusterTopology | None = None,
    scale: float | None = None,
    block_size: int = 128,
) -> tuple[list[AttentionResult], list[CommTracer]]:
    """pass-KV prefill run as NKV independent per-head CP groups (Fig. 5).

    Returns:
        ``(results, tracers)``: per-rank full-head attention results plus
        one tracer per KV-head group (for the striping analysis).
    """
    world = len(queries)
    groups = split_by_kv_head(queries, kv_shards)
    per_group_results = []
    tracers = []
    for g_queries, g_kvs in groups:
        group = SimProcessGroup(world, topology=topology)
        per_group_results.append(
            ring_passkv_prefill(group, g_queries, g_kvs, scale=scale, block_size=block_size)
        )
        tracers.append(group.tracer)

    # reassemble full-head outputs per rank
    results = []
    for rank in range(world):
        outs = [per_group_results[g][rank].out for g in range(len(groups))]
        lses = [per_group_results[g][rank].lse for g in range(len(groups))]
        results.append(
            AttentionResult(out=np.concatenate(outs, axis=1), lse=np.concatenate(lses, axis=1))
        )
    return results, tracers
