"""Labeled metrics registry with Prometheus text exposition.

The serving stack accumulates dozens of counters (preemptions, transfer
refusals, fault retries, ...) that until this layer lived as loose
dataclass fields on :class:`repro.serving.metrics.ServingMetrics`. This
module gives them a production-shaped home: a small registry of named,
optionally labeled **counters**, **gauges**, and **histograms**, with
deterministic Prometheus text-format exposition
(https://prometheus.io/docs/instrumenting/exposition_formats/).

Design points, matched to the repository's invariants:

- **Deterministic exposition.** :meth:`MetricsRegistry.prometheus_text`
  orders metric families by name and label sets by sorted label values,
  so two identical runs expose byte-identical text — the same bar the
  trace determinism property holds event streams to.
- **Simulated-time friendly.** Nothing here reads a clock; histograms
  record whatever (simulated-seconds) samples callers pass.
- **Collision-safe.** Registering the same name twice with an identical
  kind/label-set/help returns the existing instrument (so re-based
  metrics objects can share a registry); registering it with a
  *different* shape raises — a label collision is a bug, not a merge.

Instruments keep their raw state inspectable (``Counter.value()``,
``Histogram.samples``) because the repository's experiments and tests
read exact integers, not scraped approximations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Default histogram buckets (simulated seconds): wide enough for TTFT at
#: paper scale (tens of seconds) and TTIT (tens of milliseconds) alike.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
    10.0, 30.0, 60.0, 120.0, 300.0,
)


def _format_value(value: float) -> str:
    """Prometheus sample value: integers render bare, floats via repr."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _label_str(names: tuple[str, ...], values: tuple[str, ...]) -> str:
    if not names:
        return ""
    inner = ",".join(f'{n}="{v}"' for n, v in zip(names, values))
    return "{" + inner + "}"


@dataclass
class Counter:
    """Monotonic counter, optionally labeled.

    Unlabeled usage: ``c.inc()`` / ``c.value()``. Labeled usage:
    ``c.inc(2, pool="prefill")`` / ``c.value(pool="prefill")`` /
    ``c.items()`` for every label tuple seen so far.
    """

    name: str
    help: str
    label_names: tuple[str, ...] = ()
    _values: dict[tuple[str, ...], float] = field(default_factory=dict)

    def _key(self, labels: dict[str, str]) -> tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"counter {self.name!r} wants labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[n]) for n in self.label_names)

    def inc(self, amount: float = 1, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: increment must be >= 0, got {amount}")
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: str) -> float:
        return self._values.get(self._key(labels), 0)

    def total(self) -> float:
        """Sum over every label combination."""
        return sum(self._values.values())

    def items(self) -> list[tuple[tuple[str, ...], float]]:
        """``(label_values, value)`` pairs, sorted by label values."""
        return sorted(self._values.items())

    def expose(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} counter"]
        if not self.label_names:
            lines.append(f"{self.name} {_format_value(self._values.get((), 0))}")
            return lines
        for values, v in self.items():
            lines.append(f"{self.name}{_label_str(self.label_names, values)} {_format_value(v)}")
        if not self._values:
            # an empty labeled counter still exposes its family header only
            pass
        return lines


@dataclass
class Gauge:
    """Last-value (or running-max) gauge, optionally labeled."""

    name: str
    help: str
    label_names: tuple[str, ...] = ()
    _values: dict[tuple[str, ...], float] = field(default_factory=dict)

    def _key(self, labels: dict[str, str]) -> tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"gauge {self.name!r} wants labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[n]) for n in self.label_names)

    def set(self, value: float, **labels: str) -> None:
        self._values[self._key(labels)] = float(value)

    def set_max(self, value: float, **labels: str) -> None:
        """Keep the running maximum (peak-occupancy style gauges)."""
        key = self._key(labels)
        self._values[key] = max(self._values.get(key, float("-inf")), float(value))

    def value(self, **labels: str) -> float:
        return self._values.get(self._key(labels), 0.0)

    def items(self) -> list[tuple[tuple[str, ...], float]]:
        return sorted(self._values.items())

    def expose(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} gauge"]
        if not self.label_names:
            lines.append(f"{self.name} {_format_value(self._values.get((), 0.0))}")
            return lines
        for values, v in self.items():
            lines.append(f"{self.name}{_label_str(self.label_names, values)} {_format_value(v)}")
        return lines


@dataclass
class Histogram:
    """Sample-retaining histogram (unlabeled).

    Keeps the raw sample list — the repository's metrics API computes
    exact percentiles from it — and exposes cumulative Prometheus
    buckets, ``_sum`` and ``_count`` derived from the same samples, so
    the two views can never drift. An empty histogram exposes zero
    counts (a scrape of an idle runtime is valid, not an error).
    """

    name: str
    help: str
    buckets: tuple[float, ...] = DEFAULT_BUCKETS
    samples: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if tuple(sorted(self.buckets)) != tuple(self.buckets):
            raise ValueError(f"histogram {self.name!r}: buckets must be sorted")

    def observe(self, value: float) -> None:
        self.samples.append(float(value))

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def sum(self) -> float:
        return float(sum(self.samples))

    def expose(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} histogram"]
        cumulative = 0
        remaining = sorted(self.samples)
        idx = 0
        for bound in self.buckets:
            while idx < len(remaining) and remaining[idx] <= bound:
                idx += 1
            cumulative = idx
            lines.append(f'{self.name}_bucket{{le="{_format_value(bound)}"}} {cumulative}')
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {self.count}')
        lines.append(f"{self.name}_sum {_format_value(self.sum)}")
        lines.append(f"{self.name}_count {self.count}")
        return lines


class MetricsRegistry:
    """A named collection of instruments with one exposition surface.

    Re-registering a name with the *same* shape (kind, labels, help,
    buckets) returns the existing instrument; a different shape raises
    ``ValueError`` — silent label collisions would corrupt exposition.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, object] = {}

    def _register(self, name: str, instrument) -> object:
        existing = self._instruments.get(name)
        if existing is None:
            self._instruments[name] = instrument
            return instrument
        same_kind = type(existing) is type(instrument)
        same_shape = same_kind and (
            getattr(existing, "label_names", ()) == getattr(instrument, "label_names", ())
            and getattr(existing, "buckets", None) == getattr(instrument, "buckets", None)
            and existing.help == instrument.help
        )
        if not same_shape:
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(existing).__name__}({getattr(existing, 'label_names', ())}); "
                f"refusing colliding re-registration as "
                f"{type(instrument).__name__}({getattr(instrument, 'label_names', ())})"
            )
        return existing

    def counter(self, name: str, help: str, *, labels: tuple[str, ...] = ()) -> Counter:
        return self._register(name, Counter(name, help, tuple(labels)))

    def gauge(self, name: str, help: str, *, labels: tuple[str, ...] = ()) -> Gauge:
        return self._register(name, Gauge(name, help, tuple(labels)))

    def histogram(
        self, name: str, help: str, *, buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._register(name, Histogram(name, help, tuple(buckets)))

    def instruments(self) -> list[object]:
        """Registered instruments, sorted by name."""
        return [self._instruments[n] for n in sorted(self._instruments)]

    def prometheus_text(self) -> str:
        """Full exposition, metric families sorted by name."""
        lines: list[str] = []
        for instrument in self.instruments():
            lines.extend(instrument.expose())
        return "\n".join(lines) + ("\n" if lines else "")


def prometheus_text_multi(registries: dict[int, MetricsRegistry]) -> str:
    """Merged exposition over per-replica registries.

    Each metric family appears once, every sample line gaining a
    ``replica="<id>"`` label (prepended, so per-replica series stay
    distinguishable). Used by
    :meth:`repro.serving.metrics.FleetMetrics.prometheus_text`.
    """
    families: dict[str, list[str]] = {}
    headers: dict[str, list[str]] = {}
    for replica_id in sorted(registries):
        for instrument in registries[replica_id].instruments():
            exposed = instrument.expose()
            name = instrument.name
            headers.setdefault(name, exposed[:2])
            body = families.setdefault(name, [])
            for line in exposed[2:]:
                metric, _, value = line.rpartition(" ")
                if "{" in metric:
                    head, rest = metric.split("{", 1)
                    metric = f'{head}{{replica="{replica_id}",{rest}'
                else:
                    metric = f'{metric}{{replica="{replica_id}"}}'
                body.append(f"{metric} {value}")
    lines: list[str] = []
    for name in sorted(families):
        lines.extend(headers[name])
        lines.extend(families[name])
    return "\n".join(lines) + ("\n" if lines else "")
