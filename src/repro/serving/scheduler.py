"""Fused variable-length batch assembly.

The paper's prefill algorithms operate on *fused varseq* inputs: several
sequences of different lengths packed into one round (Figure 1), each
load-balance sharded independently. This scheduler builds those rounds from
a FIFO of :class:`repro.serving.request.PrefillRequest`, bounded by a token
budget per round (a stand-in for activation-memory limits).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.serving.request import PrefillRequest


@dataclass
class FusedBatch:
    """One prefill round's worth of requests.

    Attributes:
        requests: the fused requests, admission order preserved.
    """

    requests: list[PrefillRequest] = field(default_factory=list)

    @property
    def total_new_tokens(self) -> int:
        return sum(r.prompt_tokens for r in self.requests)

    @property
    def seq_ids(self) -> list[int]:
        return [r.seq_id for r in self.requests]

    def prompts(self) -> dict[int, np.ndarray]:
        """Engine-ready ``{seq_id: token_ids}`` mapping."""
        return {r.seq_id: r.token_ids for r in self.requests}


class Scheduler:
    """FIFO batcher with a per-round token budget.

    Args:
        max_tokens_per_batch: cap on the fused round's new-token total. A
            single request larger than the cap still forms its own round
            (it cannot be split without changing semantics).
        max_seqs_per_batch: cap on the number of fused sequences.
    """

    def __init__(self, *, max_tokens_per_batch: int = 131072, max_seqs_per_batch: int = 16):
        if max_tokens_per_batch < 1 or max_seqs_per_batch < 1:
            raise ValueError("batch limits must be >= 1")
        self.max_tokens_per_batch = max_tokens_per_batch
        self.max_seqs_per_batch = max_seqs_per_batch
        self._queue: deque[PrefillRequest] = deque()

    def submit(self, request: PrefillRequest) -> None:
        """Enqueue a request. Duplicate pending seq_ids are rejected (a
        sequence can only appear once per round)."""
        if any(r.seq_id == request.seq_id for r in self._queue):
            raise ValueError(f"sequence {request.seq_id} already queued")
        self._queue.append(request)

    def pending(self) -> int:
        return len(self._queue)

    def next_batch(self) -> FusedBatch | None:
        """Pop the next fused round, or ``None`` when idle."""
        if not self._queue:
            return None
        batch = FusedBatch()
        budget = self.max_tokens_per_batch
        while self._queue and len(batch.requests) < self.max_seqs_per_batch:
            head = self._queue[0]
            if batch.requests and head.prompt_tokens > budget:
                break
            batch.requests.append(self._queue.popleft())
            budget -= head.prompt_tokens
            if budget <= 0:
                break
        return batch
