"""Tests for Chrome-trace export."""

import json

import numpy as np

from repro.core.ring_passq import ring_passq_prefill
from repro.distributed.process_group import SimProcessGroup
from repro.distributed.timeline import save_chrome_trace, to_chrome_trace
from repro.distributed.tracer import CommTracer

from helpers import make_qkv, shard_qkv_full_prefill


class TestChromeTrace:
    def test_events_and_lanes(self):
        tr = CommTracer()
        tr.record("sendrecv", step=0, nbytes=100, duration=1e-3, tag="passkv")
        tr.record("sendrecv", step=1, nbytes=100, duration=2e-3)
        tr.record("all2all", nbytes=50, duration=5e-4)
        trace = to_chrome_trace(tr)
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 3
        # serial layout within a lane
        sr = [e for e in spans if e["cat"] == "sendrecv"]
        assert sr[1]["ts"] == sr[0]["ts"] + sr[0]["dur"]
        # lanes named via metadata
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        lane_names = {e["args"]["name"] for e in meta}
        assert {"sendrecv", "all2all"} <= lane_names

    def test_tag_becomes_name(self):
        tr = CommTracer()
        tr.record("sendrecv", duration=1e-6, tag="my-op")
        spans = [e for e in to_chrome_trace(tr)["traceEvents"] if e["ph"] == "X"]
        assert spans[0]["name"] == "my-op"

    def test_roundtrip_through_ring_run(self, rng, tmp_path):
        """A real ring run produces a loadable JSON trace."""
        q, k, v = make_qkv(rng, 16, 16)
        queries, kvs = shard_qkv_full_prefill(q, k, v, 3)
        group = SimProcessGroup(3)
        ring_passq_prefill(group, queries, kvs)
        path = tmp_path / "trace.json"
        save_chrome_trace(group.tracer, str(path))
        loaded = json.loads(path.read_text())
        cats = {e.get("cat") for e in loaded["traceEvents"] if e.get("ph") == "X"}
        assert cats == {"sendrecv", "all2all"}

    def test_empty_tracer(self):
        trace = to_chrome_trace(CommTracer())
        assert all(e["ph"] == "M" for e in trace["traceEvents"])
