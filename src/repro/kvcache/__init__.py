"""Persistent KV cache substrate.

CP distributes KV storage as well as compute: each rank caches only its
shard of every sequence, so adding CP nodes grows aggregate KV capacity
linearly (one of the paper's three motivations for CP, §1). This package
provides the per-rank cache the engine uses across multi-turn prefill and
decode:

- :mod:`repro.kvcache.paged` — a paged block allocator in the style of
  PagedAttention (Kwon et al. 2023), which the paper cites as the standard
  memory-management substrate for long-context serving.
- :mod:`repro.kvcache.cache` — :class:`RankKVCache`, a per-rank, per-layer,
  per-sequence KV store with position/seq-id bookkeeping and capacity (OOM)
  accounting, backed by the paged allocator.
- :mod:`repro.kvcache.prefix_index` — :class:`PrefixIndex`, a radix tree
  over committed token ids that lets requests *share* resident KV
  (SGLang-RadixAttention / Mooncake style): the allocator refcounts shared
  blocks, appends copy-on-write split them, and the serving runtime
  adopts matched prefixes so templated traffic prefills only its
  uncached suffix.
"""

from repro.kvcache.cache import CacheCapacityError, RankKVCache
from repro.kvcache.paged import PagedAllocator
from repro.kvcache.prefix_index import PrefixIndex

__all__ = ["CacheCapacityError", "PagedAllocator", "PrefixIndex", "RankKVCache"]
