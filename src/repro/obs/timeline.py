"""Per-request timeline reconstruction, TTFT attribution, reconciliation.

Three consumers of a recorded event stream live here:

- :func:`build_timeline` / :func:`explain_ttft` — reconstruct one
  request's scheduling story and decompose its TTFT into an **exact
  partition**: queue wait, prefill compute, swap stall, transfer stall,
  fault backoff, and post-preemption requeue wait. Components sum to
  the recorded TTFT *exactly* (the sweep partitions the window; the
  queue-wait term is closed so the insertion-order sum telescopes back
  to the window length).
- :func:`format_explanation` — the human rendering behind
  ``python -m repro explain REQ_ID --trace PATH``.
- :func:`reconcile` / :func:`reconcile_fleet` — the trace-vs-metrics
  cross-check: every counter and stall-second total in
  :class:`~repro.serving.metrics.ServingMetrics` must be *exactly*
  derivable from the trace (same floats, summed in emission order ==
  record order). Any drift means a hook site and a ``record_*`` call
  disagree — reported as a failure by ``serve --verify`` and pinned by
  ``tests/properties/test_prop_trace.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.trace import TraceEvent

#: TTFT claim categories, highest priority first: when intervals overlap
#: (they shouldn't, but clipping can touch at borders), compute wins
#: over stalls, stalls over backoff.
_CLAIM_PRIORITY = ("prefill_compute", "swap_stall", "transfer_stall", "fault_backoff")

_CLAIM_SOURCES = {
    "prefill_chunk": "prefill_compute",
    "swap_out": "swap_stall",
    "swap_in": "swap_stall",
    "transfer_stall": "transfer_stall",
    "kv_transfer": "transfer_stall",
}


@dataclass
class RequestTimeline:
    """One request's events, keyed by the moments explain cares about."""

    request_id: int
    seq_id: int | None = None
    replica: int | None = None
    route: TraceEvent | None = None
    admits: list[TraceEvent] = field(default_factory=list)
    first_token: TraceEvent | None = None
    finish: TraceEvent | None = None
    shed: TraceEvent | None = None
    preempts: list[TraceEvent] = field(default_factory=list)
    events: list[TraceEvent] = field(default_factory=list)

    @property
    def arrival(self) -> float | None:
        if self.admits:
            return self.admits[0].attrs.get("arrival")
        if self.route is not None:
            return self.route.t
        return None

    @property
    def status(self) -> str:
        if self.finish is not None:
            return "finished"
        if self.shed is not None:
            return str(self.shed.attrs.get("status", "shed"))
        return "incomplete"


@dataclass
class TTFTBreakdown:
    """Exact TTFT partition. ``components`` sums (in insertion order)
    to ``ttft``; ``queue_wait`` is the closing term."""

    request_id: int
    arrival: float
    first_token_at: float
    components: dict[str, float]

    @property
    def ttft(self) -> float:
        return self.first_token_at - self.arrival

    @property
    def total(self) -> float:
        total = 0.0
        for v in self.components.values():
            total += v
        return total


def events_for_request(events: list[TraceEvent], request_id: int) -> list[TraceEvent]:
    return [e for e in events if e.request_id == request_id]


def request_ids(events: list[TraceEvent]) -> list[int]:
    """Distinct request ids in first-seen order."""
    seen: dict[int, None] = {}
    for e in events:
        if e.request_id is not None:
            seen.setdefault(e.request_id, None)
    return list(seen)


def build_timeline(events: list[TraceEvent], request_id: int) -> RequestTimeline:
    tl = RequestTimeline(request_id=request_id)
    for e in events_for_request(events, request_id):
        tl.events.append(e)
        if tl.seq_id is None and e.seq_id is not None:
            tl.seq_id = e.seq_id
        if e.name == "route":
            tl.route = e
        elif e.name == "admit":
            tl.admits.append(e)
            if e.replica is not None:
                tl.replica = e.replica
        elif e.name == "first_token" and tl.first_token is None:
            tl.first_token = e
        elif e.name == "finish":
            tl.finish = e
        elif e.name == "shed":
            tl.shed = e
        elif e.name == "preempt":
            tl.preempts.append(e)
    if not tl.events:
        raise ValueError(f"request {request_id} does not appear in the trace")
    if tl.replica is None:
        for e in tl.events:
            if e.replica is not None:
                tl.replica = e.replica
                break
    return tl


def _claims_in_window(
    tl: RequestTimeline, lo: float, hi: float
) -> list[tuple[float, float, str]]:
    claims: list[tuple[float, float, str]] = []
    for e in tl.events:
        category = None
        if e.phase == "span" and e.name in _CLAIM_SOURCES:
            start, end = e.t, e.t + e.dur
            category = _CLAIM_SOURCES[e.name]
        elif e.name == "fault_retry":
            start, end = e.t, e.t + float(e.attrs.get("backoff", 0.0))
            category = "fault_backoff"
        if category is None:
            continue
        start, end = max(start, lo), min(end, hi)
        if end > start:
            claims.append((start, end, category))
    return claims


def explain_ttft(events: list[TraceEvent], request_id: int) -> TTFTBreakdown:
    """Decompose a request's TTFT into an exact component partition.

    Sweeps the ``[arrival, first_token]`` window over the request's
    claim intervals (prefill chunks, swap/transfer stalls, retry
    backoff); unclaimed time after the first preemption is requeue
    wait, and the remaining unclaimed time — computed as the closing
    difference so the component sum telescopes to TTFT exactly — is
    queue wait.
    """
    tl = build_timeline(events, request_id)
    arrival = tl.arrival
    if arrival is None:
        raise ValueError(f"request {request_id} was never admitted or routed")
    if tl.first_token is None:
        raise ValueError(
            f"request {request_id} streamed no token (status: {tl.status})"
        )
    ft = tl.first_token.t
    claims = _claims_in_window(tl, arrival, ft)
    first_preempt = min((p.t for p in tl.preempts), default=None)

    bounds: dict[float, None] = {arrival: None, ft: None}
    for start, end, _ in claims:
        bounds.setdefault(start, None)
        bounds.setdefault(end, None)
    if first_preempt is not None and arrival < first_preempt < ft:
        bounds.setdefault(first_preempt, None)
    cuts = sorted(bounds)

    measured = {cat: 0.0 for cat in _CLAIM_PRIORITY}
    measured["preempt_requeue"] = 0.0
    for lo, hi in zip(cuts, cuts[1:]):
        mid = (lo + hi) / 2.0
        owner = None
        for cat in _CLAIM_PRIORITY:
            if any(s <= mid < e for s, e, c in claims if c == cat):
                owner = cat
                break
        if owner is None:
            if first_preempt is not None and mid >= first_preempt:
                owner = "preempt_requeue"
            else:
                continue  # queue wait: folded into the closing term
        measured[owner] += hi - lo

    components: dict[str, float] = {}
    partial = 0.0
    for cat in (*_CLAIM_PRIORITY, "preempt_requeue"):
        components[cat] = measured[cat]
        partial += measured[cat]
    components["queue_wait"] = (ft - arrival) - partial
    return TTFTBreakdown(
        request_id=request_id,
        arrival=arrival,
        first_token_at=ft,
        components=components,
    )


_COMPONENT_LABELS = {
    "queue_wait": "queue wait",
    "prefill_compute": "prefill compute",
    "swap_stall": "swap stall",
    "transfer_stall": "transfer stall",
    "fault_backoff": "fault backoff",
    "preempt_requeue": "preempt requeue",
}


def format_explanation(events: list[TraceEvent], request_id: int) -> str:
    """Human rendering for ``python -m repro explain``."""
    tl = build_timeline(events, request_id)
    lines = [f"request {request_id}" + (f" (seq {tl.seq_id})" if tl.seq_id is not None else "")]
    if tl.route is not None:
        policy = tl.route.attrs.get("policy", "?")
        sticky = " [sticky session]" if tl.route.attrs.get("sticky") else ""
        lines.append(
            f"  routed to replica {tl.route.replica} by {policy} policy{sticky} "
            f"at t={tl.route.t:.6f}"
        )
        scores = tl.route.attrs.get("scores")
        if scores:
            ranked = ", ".join(
                f"r{rid}={score:.3f}" for rid, score in sorted(scores.items())
            )
            lines.append(f"    candidate scores: {ranked}")
    elif tl.replica is not None:
        lines.append(f"  replica {tl.replica}")
    arrival = tl.arrival
    if arrival is not None:
        lines.append(f"  arrival t={arrival:.6f}")
    for admit in tl.admits:
        cached = admit.attrs.get("cached", 0)
        cached_s = f", {cached} prefix tokens cached" if cached else ""
        lines.append(f"  admitted t={admit.t:.6f}{cached_s}")
    for p in tl.preempts:
        lines.append(
            f"  preempted t={p.t:.6f} "
            f"(remedy={p.attrs.get('remedy', '?')}, reason={p.attrs.get('reason', '?')})"
        )
    if tl.first_token is not None and arrival is not None:
        bd = explain_ttft(events, request_id)
        lines.append(
            f"  first token t={tl.first_token.t:.6f} — TTFT {bd.ttft:.6f}s, decomposed:"
        )
        ttft = bd.ttft
        order = ("queue_wait", *_CLAIM_PRIORITY, "preempt_requeue")
        for cat in order:
            v = bd.components[cat]
            if v == 0.0 and cat not in ("queue_wait", "prefill_compute"):
                continue
            pct = f" ({v / ttft:6.1%})" if ttft > 0 else ""
            lines.append(f"    {_COMPONENT_LABELS[cat]:<16s} {v:12.6f}s{pct}")
    if tl.finish is not None:
        tokens = tl.finish.attrs.get("tokens", 0)
        span = None
        if tl.first_token is not None and tokens and tokens > 1:
            span = (tl.finish.t - tl.first_token.t) / (tokens - 1)
        tpot = f", mean TPOT {span:.6f}s" if span is not None else ""
        lines.append(f"  finished t={tl.finish.t:.6f} — {tokens} tokens{tpot}")
        if tl.first_token is not None:
            stalls = _claims_in_window(tl, tl.first_token.t, tl.finish.t)
            decode_stalls: dict[str, float] = {}
            for start, end, cat in stalls:
                decode_stalls[cat] = decode_stalls.get(cat, 0.0) + (end - start)
            if decode_stalls:
                detail = ", ".join(
                    f"{_COMPONENT_LABELS[c]} {v:.6f}s"
                    for c, v in sorted(decode_stalls.items())
                )
                lines.append(f"    decode-window stalls: {detail}")
    elif tl.shed is not None:
        lines.append(f"  shed t={tl.shed.t:.6f} ({tl.shed.attrs.get('status', 'shed')})")
    elif tl.first_token is None:
        lines.append(f"  no first token recorded (status: {tl.status})")
    return "\n".join(lines)


# --------------------------- reconciliation ----------------------------- #


def _sum(values) -> float:
    total = 0.0
    for v in values:
        total += v
    return total


def reconcile(events: list[TraceEvent], metrics) -> list[str]:
    """Cross-check a trace against a :class:`ServingMetrics` instance.

    Returns drift descriptions (empty == reconciled). Counts must match
    exactly and stall/TTFT totals must match as *floats*: the trace
    carries the same values the ``record_*`` calls saw, in the same
    order, so running sums are bit-identical — there is no tolerance.
    """
    drift: list[str] = []

    def check(label: str, derived, recorded) -> None:
        if derived != recorded:
            drift.append(f"{label}: trace-derived {derived!r} != metrics {recorded!r}")

    by_name: dict[str, list[TraceEvent]] = {}
    for e in events:
        by_name.setdefault(e.name, []).append(e)

    def named(name: str) -> list[TraceEvent]:
        return by_name.get(name, [])

    preempts = named("preempt")
    full = [e for e in preempts if e.attrs.get("remedy") == "recompute"]
    trims = [e for e in preempts if e.attrs.get("remedy") == "trim"]
    check("preemptions", len(full), metrics.preemptions)
    check("evicted_tokens", sum(e.attrs.get("evicted", 0) for e in full), metrics.evicted_tokens)
    check("trims", len(trims), metrics.trims)
    check("trimmed_kv_tokens", sum(e.attrs.get("tokens", 0) for e in trims), metrics.trimmed_kv_tokens)

    swaps_out, swaps_in = named("swap_out"), named("swap_in")
    check("swaps_out", len(swaps_out), metrics.swaps_out)
    check("swaps_in", len(swaps_in), metrics.swaps_in)
    check("swapped_out_tokens", sum(e.attrs.get("tokens", 0) for e in swaps_out), metrics.swapped_out_tokens)
    check("swapped_in_tokens", sum(e.attrs.get("tokens", 0) for e in swaps_in), metrics.swapped_in_tokens)
    check(
        "swap_stall_s",
        _sum(e.dur for e in events if e.name in ("swap_out", "swap_in")),
        metrics.swap_stall_s,
    )

    transfers = named("kv_transfer")
    check("transfers", len(transfers), metrics.transfers)
    check("transferred_kv_tokens", sum(e.attrs.get("tokens", 0) for e in transfers), metrics.transferred_kv_tokens)
    check("transfer_refusals", len(named("kv_transfer_refused")), metrics.transfer_refusals)
    cancels = named("kv_transfer_cancel")
    check("transfers_cancelled", len(cancels), metrics.transfers_cancelled)
    check(
        "transfers_refunded",
        sum(1 for e in cancels if e.attrs.get("refunded")),
        metrics.transfers_refunded,
    )
    check("transfer_stall_s", _sum(e.dur for e in named("transfer_stall")), metrics.transfer_stall_s)

    hits = named("prefix_hit")
    check("prefix_hits", len(hits), metrics.prefix_hits)
    check("prefix_reused_tokens", sum(e.attrs.get("reused", 0) for e in hits), metrics.prefix_reused_tokens)
    check("prefix_misses", len(named("prefix_miss")), metrics.prefix_misses)
    evicts = named("prefix_evict")
    check("prefix_evictions", len(evicts), metrics.prefix_evictions)
    check("prefix_evicted_tokens", sum(e.attrs.get("tokens", 0) for e in evicts), metrics.prefix_evicted_tokens)

    injects = named("fault_inject")
    check("transfer_faults", sum(1 for e in injects if e.attrs.get("kind") == "transfer"), metrics.transfer_faults)
    check("swap_losses", sum(1 for e in injects if e.attrs.get("kind") == "swap"), metrics.swap_losses)
    resets = [e for e in injects if e.attrs.get("kind") == "pool_reset"]
    check("pool_resets", len(resets), metrics.pool_resets)
    check("pool_reset_evicted_tokens", sum(e.attrs.get("tokens", 0) for e in resets), metrics.pool_reset_evicted_tokens)
    retries = named("fault_retry")
    check("fault_retries", len(retries), metrics.fault_retries)
    check("fault_backoff_s", _sum(e.attrs.get("backoff", 0.0) for e in retries), metrics.fault_backoff_s)
    fallbacks = named("fault_fallback")
    check("degraded_fallbacks", len(fallbacks), metrics.degraded_fallbacks)
    check(
        "swap_lost_tokens",
        sum(e.attrs.get("tokens", 0) for e in fallbacks if e.attrs.get("reason") == "swap_loss"),
        metrics.swap_lost_tokens,
    )

    sheds = named("shed")
    check("timeouts", sum(1 for e in sheds if e.attrs.get("status") == "timed_out"), metrics.timeouts)
    check("sheds", sum(1 for e in sheds if e.attrs.get("status") == "shed"), metrics.sheds)

    finishes = named("finish")
    check("completed_requests", len(finishes), metrics.completed_requests)
    check(
        "ttft_samples",
        [e.attrs["ttft"] for e in finishes if "ttft" in e.attrs],
        list(metrics.ttft_samples),
    )
    check(
        "ttft_warm_samples",
        [e.attrs["ttft"] for e in finishes if e.attrs.get("warm") is True],
        list(metrics.ttft_warm_samples),
    )
    check(
        "ttft_cold_samples",
        [e.attrs["ttft"] for e in finishes if e.attrs.get("warm") is False],
        list(metrics.ttft_cold_samples),
    )
    check(
        "ttit_sample_count",
        sum(e.attrs.get("gaps", 0) for e in finishes),
        len(metrics.ttit_samples),
    )

    rounds = metrics.pool_rounds
    busy = metrics.pool_busy_s
    for pool, name in (("prefill", "prefill_round"), ("decode", "decode_round")):
        pool_rounds = named(name)
        check(f"pool_rounds[{pool}]", len(pool_rounds), rounds.get(pool, 0))
        check(f"pool_busy_s[{pool}]", _sum(e.dur for e in pool_rounds), busy.get(pool, 0.0))

    return drift


def reconcile_fleet(events: list[TraceEvent], fleet_metrics) -> list[str]:
    """Per-replica reconciliation against a :class:`FleetMetrics`.

    Routing instants are fleet-level (not any replica's schedule) and
    are excluded; every other event must carry its replica label.
    """
    drift: list[str] = []
    runtime_events = [e for e in events if e.name != "route"]
    unlabeled = sum(1 for e in runtime_events if e.replica is None)
    if unlabeled:
        drift.append(f"fleet trace has {unlabeled} events without a replica label")
    for rid in sorted(fleet_metrics.replicas):
        sub = [e for e in runtime_events if e.replica == rid]
        drift.extend(
            f"replica {rid}: {d}" for d in reconcile(sub, fleet_metrics.replicas[rid])
        )
    known = set(fleet_metrics.replicas)
    stray = sorted({e.replica for e in runtime_events} - known - {None})
    if stray:
        drift.append(f"trace carries events for unknown replicas {stray}")
    return drift
