"""AST-based determinism linter for the serving stack.

Every invariant the test suite pins — merge-exactness, serving-exactness
over arbitrary fault/routing/preemption schedules — assumes the code
under test is a deterministic function of its explicit seeds.  This
module enforces that statically, with a small rule engine over the
Python AST:

====== ==================== =======================================================
id     name                 what it rejects
====== ==================== =======================================================
DET101 unseeded-rng         ``default_rng()`` with no seed, the stdlib ``random``
                            module, and legacy ``np.random.*`` global-state calls
DET102 wall-clock           ``time.time``/``perf_counter``/``monotonic``/
                            ``datetime.now`` and friends outside ``benchmarks/``
DET201 set-iteration        iterating a set expression (literal, ``set(...)``,
                            set-annotated attribute, set-returning call) in a
                            scheduling-decision module (``runtime/``, ``serving/``,
                            ``cluster/``) without an order-insensitive consumer
DET202 dict-popitem         ``dict.popitem()`` (LIFO on insertion order) in
                            scheduling-decision modules
DET301 id-ordering          ``id()`` inside a ``sorted``/``min``/``max``/``.sort``
                            key — memory addresses are not stable across runs
====== ==================== =======================================================

Findings on a line can be suppressed with a trailing
``# repro-lint: disable=DET201`` comment (comma-separate multiple ids,
or ``disable=all``); suppressions are expected to carry a justification
in the surrounding comment.

The linter is intentionally self-contained (stdlib ``ast`` only) so the
CI ``lint`` lane needs nothing beyond the package itself.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

# --------------------------------------------------------------------------
# rule registry


@dataclass(frozen=True)
class LintRule:
    """A single determinism rule: identity, scope, and documentation."""

    rule_id: str
    name: str
    summary: str
    doc: str
    scope: str  # human-readable scope description


RULES: tuple[LintRule, ...] = (
    LintRule(
        rule_id="DET101",
        name="unseeded-rng",
        summary="RNG without an explicit seed",
        doc=(
            "Flags zero-argument numpy default_rng() calls, any use of the "
            "stdlib random module (its state is process-global and unseeded "
            "by default), and legacy np.random.* global-state functions "
            "(rand, randint, shuffle, ...). All randomness must flow from an "
            "explicitly threaded seed or SeedSequence so every run replays."
        ),
        scope="all linted files",
    ),
    LintRule(
        rule_id="DET102",
        name="wall-clock",
        summary="wall-clock read in simulated-time code",
        doc=(
            "Flags time.time/time_ns/perf_counter/perf_counter_ns/monotonic/"
            "monotonic_ns/process_time and datetime.now/utcnow/today. The "
            "runtime prices time through SimulatedStepClock; a wall-clock "
            "read makes schedules (and therefore metrics and preemption "
            "choices) machine-dependent. benchmarks/ is exempt — measuring "
            "real elapsed time is its job."
        ),
        scope="all linted files except benchmarks/",
    ),
    LintRule(
        rule_id="DET201",
        name="set-iteration",
        summary="iteration over a set in a scheduling module",
        doc=(
            "Flags for-loops and comprehensions whose iterable is a set "
            "expression — a set literal, set()/frozenset() call, a name or "
            "self-attribute annotated set[...] in the module, or a call to a "
            "local function annotated -> set[...]. Python set order is "
            "insertion-and-hash dependent, so iterating one in admission/"
            "packing/eviction code lets placement leak into token values. "
            "Wrap the iterable in sorted(...), or feed it directly to an "
            "order-insensitive reducer (sorted/min/max/sum/any/all/len/set/"
            "frozenset), which this rule recognizes and allows."
        ),
        scope="scheduling modules: runtime/, serving/, cluster/",
    ),
    LintRule(
        rule_id="DET202",
        name="dict-popitem",
        summary="dict.popitem() in a scheduling module",
        doc=(
            "Flags .popitem() calls: which entry pops depends on insertion "
            "history, which depends on schedule. Pop an explicit, "
            "deterministically chosen key instead."
        ),
        scope="scheduling modules: runtime/, serving/, cluster/",
    ),
    LintRule(
        rule_id="DET301",
        name="id-ordering",
        summary="id() used as a sort key or tie-break",
        doc=(
            "Flags id(...) (or a bare reference to the id builtin) inside "
            "the key= argument of sorted/min/max/list.sort. CPython object "
            "addresses vary run to run, so any ordering derived from them "
            "is nondeterministic. Break ties on stable fields (request id, "
            "arrival index) instead."
        ),
        scope="all linted files",
    ),
)

RULES_BY_ID: dict[str, LintRule] = {r.rule_id: r for r in RULES}

SCHEDULING_DIRS = ("runtime", "serving", "cluster")
CLOCK_EXEMPT_DIRS = ("benchmarks",)

_NP_LEGACY_RANDOM = {
    "seed", "rand", "randn", "randint", "random", "random_sample",
    "ranf", "sample", "choice", "shuffle", "permutation", "normal",
    "uniform", "standard_normal", "exponential", "poisson", "binomial",
    "bytes", "get_state", "set_state",
}
_STDLIB_RANDOM = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "expovariate",
    "betavariate", "gammavariate", "lognormvariate", "paretovariate",
    "weibullvariate", "triangular", "vonmisesvariate", "seed",
    "getrandbits", "randbytes", "getstate", "setstate",
}
_CLOCK_TIME_ATTRS = {
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "process_time", "process_time_ns",
}
_CLOCK_DATETIME_ATTRS = {"now", "utcnow", "today"}
# calling any of these directly on a set expression consumes the
# iteration order without observing it
_ORDER_INSENSITIVE_CONSUMERS = {
    "sorted", "min", "max", "sum", "any", "all", "len", "set", "frozenset",
}

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s-]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        rule = RULES_BY_ID[self.rule_id]
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} [{rule.name}] {self.message}"


# --------------------------------------------------------------------------
# per-module type facts (which names/attributes/functions are sets)


@dataclass
class _SetFacts:
    """Names, self-attributes, and local callables known to be sets."""

    names: set[str] = field(default_factory=set)
    attrs: set[str] = field(default_factory=set)  # self.<attr>
    funcs: set[str] = field(default_factory=set)  # def f(...) -> set[...]

    @staticmethod
    def _is_set_annotation(node: ast.expr | None) -> bool:
        if node is None:
            return False
        if isinstance(node, ast.Subscript):
            return _SetFacts._is_set_annotation(node.value)
        if isinstance(node, ast.Name):
            return node.id in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet")
        if isinstance(node, ast.Attribute):  # typing.Set etc.
            return node.attr in ("Set", "FrozenSet", "AbstractSet")
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                return _SetFacts._is_set_annotation(
                    ast.parse(node.value, mode="eval").body
                )
            except SyntaxError:
                return False
        return False

    @classmethod
    def collect(cls, tree: ast.AST) -> "_SetFacts":
        facts = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.AnnAssign) and cls._is_set_annotation(node.annotation):
                facts._record_target(node.target)
            elif isinstance(node, ast.arg) and cls._is_set_annotation(node.annotation):
                facts.names.add(node.arg)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if cls._is_set_annotation(node.returns):
                    facts.funcs.add(node.name)
            elif isinstance(node, ast.Assign):
                if isinstance(node.value, (ast.Set, ast.SetComp)) or (
                    isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Name)
                    and node.value.func.id in ("set", "frozenset")
                ):
                    for tgt in node.targets:
                        facts._record_target(tgt)
        return facts

    def _record_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.names.add(target.id)
        elif isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
            if target.value.id == "self":
                self.attrs.add(target.attr)

    def is_set_expr(self, node: ast.expr) -> bool:
        """Whether ``node`` evaluates to a set, as far as local facts show."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Attribute):
            return (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in self.attrs
            )
        if isinstance(node, ast.Call):
            f = node.func
            if isinstance(f, ast.Name):
                return f.id in ("set", "frozenset") or f.id in self.funcs
            if isinstance(f, ast.Attribute):
                return f.attr in self.funcs or f.attr in (
                    "intersection", "union", "difference", "symmetric_difference",
                )
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set_expr(node.left) and self.is_set_expr(node.right)
        return False


# --------------------------------------------------------------------------
# the checker


class _Checker(ast.NodeVisitor):
    def __init__(self, relpath: str, source: str):
        self.relpath = relpath
        parts = Path(relpath).parts
        self.in_scheduling = any(p in SCHEDULING_DIRS for p in parts)
        self.in_benchmarks = any(p in CLOCK_EXEMPT_DIRS for p in parts)
        self.findings: list[Finding] = []
        self.tree = ast.parse(source, filename=relpath)
        self.facts = _SetFacts.collect(self.tree)
        self.parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent

    def run(self) -> list[Finding]:
        self.visit(self.tree)
        return self.findings

    def _flag(self, rule_id: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(rule_id, self.relpath, node.lineno, node.col_offset, message)
        )

    # ---- DET101 / DET102 ----------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random":
                self._flag(
                    "DET101", node,
                    "stdlib random module imported — its global state is "
                    "unseeded; thread a numpy Generator instead",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            self._flag(
                "DET101", node,
                "import from stdlib random — thread a seeded numpy Generator",
            )
        elif node.module == "time" and not self.in_benchmarks:
            clocky = sorted(
                a.name for a in node.names if a.name in _CLOCK_TIME_ATTRS
            )
            if clocky:
                self._flag(
                    "DET102", node,
                    f"wall-clock import ({', '.join(clocky)}) outside benchmarks/",
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # default_rng() with no seed
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name == "default_rng" and not node.args and not node.keywords:
            self._flag(
                "DET101", node,
                "default_rng() without a seed — derive one from the "
                "experiment/request seed (e.g. default_rng(seed))",
            )
        # dict.popitem in scheduling modules
        if (
            self.in_scheduling
            and isinstance(func, ast.Attribute)
            and func.attr == "popitem"
        ):
            self._flag(
                "DET202", node,
                ".popitem() pops by insertion order, which depends on "
                "schedule — pop an explicitly chosen key",
            )
        # id() in sort keys
        if name in ("sorted", "min", "max") or (
            isinstance(func, ast.Attribute) and func.attr == "sort"
        ):
            for kw in node.keywords:
                if kw.arg == "key" and self._mentions_id(kw.value):
                    self._flag(
                        "DET301", kw.value,
                        f"id() used in a {name or 'sort'} key — object "
                        "addresses are not stable across runs; break ties "
                        "on a stable field",
                    )
        self.generic_visit(node)

    @staticmethod
    def _mentions_id(node: ast.expr) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and sub.id == "id":
                return True
        return False

    def visit_Attribute(self, node: ast.Attribute) -> None:
        v = node.value
        # np.random.<legacy> global-state functions
        if (
            node.attr in _NP_LEGACY_RANDOM
            and isinstance(v, ast.Attribute)
            and v.attr == "random"
            and isinstance(v.value, ast.Name)
            and v.value.id in ("np", "numpy")
        ):
            self._flag(
                "DET101", node,
                f"legacy np.random.{node.attr} uses the process-global RNG — "
                "use a threaded Generator",
            )
        # random.<fn> on the stdlib module
        if (
            node.attr in _STDLIB_RANDOM
            and isinstance(v, ast.Name)
            and v.id == "random"
        ):
            self._flag(
                "DET101", node,
                f"stdlib random.{node.attr} draws from unseeded global state",
            )
        if not self.in_benchmarks:
            # time.<clock>
            if (
                node.attr in _CLOCK_TIME_ATTRS
                and isinstance(v, ast.Name)
                and v.id == "time"
            ):
                self._flag(
                    "DET102", node,
                    f"wall-clock time.{node.attr} outside benchmarks/ — "
                    "schedules must run on SimulatedStepClock",
                )
            # datetime.now / date.today — match datetime.now(...),
            # datetime.datetime.now(...), date.today()
            if node.attr in _CLOCK_DATETIME_ATTRS:
                root = v
                while isinstance(root, ast.Attribute):
                    root = root.value
                leaf = v.attr if isinstance(v, ast.Attribute) else (
                    v.id if isinstance(v, ast.Name) else None
                )
                if (
                    isinstance(root, ast.Name)
                    and root.id in ("datetime", "date")
                    and leaf in ("datetime", "date")
                ):
                    self._flag(
                        "DET102", node,
                        f"wall-clock datetime {node.attr}() outside benchmarks/",
                    )
        self.generic_visit(node)

    # ---- DET201: set iteration ----------------------------------------

    def visit_For(self, node: ast.For) -> None:
        if self.in_scheduling and self.facts.is_set_expr(node.iter):
            self._flag(
                "DET201", node.iter,
                f"for-loop over set expression {ast.unparse(node.iter)!r} — "
                "iterate sorted(...) so schedule never leaks through hash order",
            )
        self.generic_visit(node)

    visit_AsyncFor = visit_For  # type: ignore[assignment]

    def _comp_is_order_safe(self, comp: ast.expr) -> bool:
        """A comprehension/genexp whose result is consumed order-insensitively."""
        if isinstance(comp, ast.SetComp):
            return True  # result is itself a set; order never observed
        parent = self.parents.get(comp)
        if isinstance(parent, ast.Call) and comp in parent.args:
            f = parent.func
            if isinstance(f, ast.Name) and f.id in _ORDER_INSENSITIVE_CONSUMERS:
                return True
        return False

    def _visit_comp(self, node: ast.expr) -> None:
        if self.in_scheduling and not self._comp_is_order_safe(node):
            for gen in node.generators:
                if self.facts.is_set_expr(gen.iter):
                    self._flag(
                        "DET201", gen.iter,
                        f"comprehension over set expression "
                        f"{ast.unparse(gen.iter)!r} whose result order is "
                        "observable — wrap in sorted(...) or consume with an "
                        "order-insensitive reducer",
                    )
        self.generic_visit(node)

    visit_ListComp = _visit_comp  # type: ignore[assignment]
    visit_SetComp = _visit_comp  # type: ignore[assignment]
    visit_DictComp = _visit_comp  # type: ignore[assignment]
    visit_GeneratorExp = _visit_comp  # type: ignore[assignment]


# --------------------------------------------------------------------------
# suppression handling + entry points


def _suppressed_rules(source_line: str) -> set[str]:
    m = _SUPPRESS_RE.search(source_line)
    if not m:
        return set()
    return {tok.strip().upper() for tok in m.group(1).split(",") if tok.strip()}


def lint_source(source: str, relpath: str = "<string>") -> list[Finding]:
    """Lint one module's source; ``relpath`` drives rule scoping."""
    try:
        checker = _Checker(relpath, source)
    except SyntaxError as exc:
        return [
            Finding(
                "DET101", relpath, exc.lineno or 1, exc.offset or 0,
                f"could not parse: {exc.msg}",
            )
        ]
    findings = checker.run()
    lines = source.splitlines()
    kept = []
    for f in findings:
        line = lines[f.line - 1] if 0 < f.line <= len(lines) else ""
        suppressed = _suppressed_rules(line)
        if "ALL" in suppressed or f.rule_id in suppressed:
            continue
        kept.append(f)
    return sorted(kept, key=lambda f: (f.path, f.line, f.col, f.rule_id))


def lint_paths(paths: Iterable[str | Path], root: Path | None = None) -> list[Finding]:
    """Lint files and/or directory trees (``*.py``, recursively).

    Paths reported in findings (and used for rule scoping) are made
    relative to ``root`` when given, falling back to the path as passed.
    """
    findings: list[Finding] = []
    for p in paths:
        p = Path(p)
        files = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for f in files:
            rel: Path = f
            if root is not None:
                try:
                    rel = f.resolve().relative_to(Path(root).resolve())
                except ValueError:
                    rel = f
            findings.extend(lint_source(f.read_text(), rel.as_posix()))
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule_id))


def default_lint_target() -> Path:
    """The tree ``python -m repro lint`` checks by default: the installed
    ``repro`` package itself."""
    return Path(__file__).resolve().parent.parent


def rules_table() -> str:
    """Human-readable rule documentation for ``lint --list-rules``."""
    out = []
    for r in RULES:
        out.append(f"{r.rule_id}  {r.name}  [{r.scope}]")
        out.append(f"    {r.summary}")
        for chunk in _wrap(r.doc, 72):
            out.append(f"    {chunk}")
        out.append("")
    return "\n".join(out).rstrip()


def _wrap(text: str, width: int) -> list[str]:
    words, lines, cur = text.split(), [], ""
    for w in words:
        if cur and len(cur) + 1 + len(w) > width:
            lines.append(cur)
            cur = w
        else:
            cur = f"{cur} {w}".strip()
    if cur:
        lines.append(cur)
    return lines
