"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``experiments [--markdown] [--only ID]`` — regenerate the paper's tables
  and figures (plus extension experiments) and print them.
- ``plan --context N [--sla S]`` — smallest CP deployment meeting a TTFT
  SLA for Llama3 405B on GTT.
- ``heuristic --new-tokens T --cached P [--ranks N]`` — what each selector
  chooses for a partial prefill.
- ``demo [--world N] [--tokens T]`` — run the numeric engine end-to-end
  and report the losslessness error.
- ``serve`` — replay a multi-session trace through the continuous-batching
  runtime (chunked prefill + preemption under KV pressure) and report
  streaming metrics; ``--disaggregate P:D`` splits it into a CP-P prefill
  pool feeding a CP-D decode pool over a priced KV-transfer stream
  (§4.3); ``--preemption {recompute,trim,swap}`` picks the eviction
  remedy (full re-prefill, tail-trim + suffix re-prefill, or CPU-side KV
  swap priced at PCIe bandwidth, bounded by ``--swap-capacity``);
  ``--prefix-cache`` turns on shared-prefix KV reuse (a radix index over
  committed tokens with refcounted copy-on-write paged blocks);
  ``--traffic shared-prefix`` replays the templated N-system-prompts x
  M-few-shot-variants workload that exercises it;
  ``--policy {fifo,srpf}`` picks the chunk-packing order
  (shortest-remaining-prefill-first trades head-of-line blocking for
  mean TTFT); ``--faults`` arms the deterministic chaos layer
  (``transfer=0.2,swap=0.2,pool_reset=1,deadline=30,queue=16`` — see
  :meth:`repro.runtime.faults.FaultPlan.parse`), seeded by
  ``--fault-seed`` (default: ``--seed``, so one seed reproduces both
  the workload and the fault schedule); ``--replicas N`` serves the
  trace through a cluster-tier fleet of N independent replicas (each
  with the chosen deployment shape) behind ``--routing
  {prefix,round-robin,least-loaded}`` — prefix-affinity routing places
  each conversation on the replica whose radix index holds its longest
  cached prefix, balanced against load and queue depth, with session
  stickiness for follow-up turns; ``--verify`` bit-checks every
  decoded token against sequential per-conversation replay (under
  faults, every *completed* request — shed and timed-out requests
  claim nothing; routing never changes token values) and cross-checks
  every metrics counter against the recorded scheduling trace (drift
  fails the run); ``--trace PATH --trace-format {jsonl,chrome}``
  records the deterministic scheduling trace (same seed ⇒
  byte-identical file; the chrome format loads in ui.perfetto.dev);
  ``--prom PATH`` writes the metrics as a Prometheus text exposition.
- ``explain REQ_ID --trace PATH`` — reconstruct one request's timeline
  from a recorded serve trace and decompose its TTFT into queue wait,
  prefill compute, swap/transfer stalls, fault backoff, and
  post-preemption requeue wait (components sum to TTFT exactly), plus
  the fleet routing decision when the trace came from ``--replicas``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments import (
        capacity_scaling,
        cluster_routing,
        disagg_runtime,
        disaggregation,
        fault_tolerance,
        gqa_sensitivity,
        pp_vs_cp,
        preemption_modes,
        prefix_reuse,
        report,
        serving_load,
    )

    results = report.run_all(include_fig10=not args.fast)
    results.append(capacity_scaling.run())
    results.append(gqa_sensitivity.run())
    results.append(disaggregation.run())
    results.append(pp_vs_cp.run())
    results.append(serving_load.run_runtime())
    results.append(disagg_runtime.run())
    results.append(preemption_modes.run())
    results.append(prefix_reuse.run())
    results.append(fault_tolerance.run())
    results.append(cluster_routing.run())
    if not args.fast:
        results.append(serving_load.run())
    for res in results:
        if args.only and args.only.lower() not in res.experiment_id.lower():
            continue
        print(res.render_markdown() if args.markdown else res.render())
        print()
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.model.config import llama3_405b_config
    from repro.perf.flops import mfu, model_flops
    from repro.perf.hardware import gti_host, gtt_host
    from repro.perf.latency import LatencySimulator

    host = gti_host() if args.platform == "gti" else gtt_host()
    sim = LatencySimulator(llama3_405b_config(), host)
    print(f"planning {args.context} tokens on {host.name}, SLA {args.sla:.1f}s")
    for n in (1, 2, 4, 8, 16, 32):
        ttft = sim.cp_prefill(args.context, n_ranks=n).total
        flops = model_flops(sim.config, args.context)
        util = mfu(flops, ttft, n * host.gpus_per_host, host.gpu.peak_flops)
        marker = " <-- meets SLA" if ttft <= args.sla else ""
        print(f"  CP{n:<3} ({n * host.gpus_per_host:>3} GPUs): "
              f"TTFT {ttft:8.2f}s  MFU {util:5.1%}{marker}")
        if ttft <= args.sla:
            return 0
    print("  no configuration meets the SLA")
    return 1


def _cmd_heuristic(args: argparse.Namespace) -> int:
    from repro.core.heuristics import (
        select_algo_empirical,
        select_algo_simple,
        select_algo_with_all2all,
    )
    from repro.model.config import llama3_405b_config
    from repro.perf.hardware import gtt_host
    from repro.perf.latency import LatencySimulator

    sim = LatencySimulator(llama3_405b_config(), gtt_host())
    hc = sim.heuristic_config(args.ranks)
    t, p = args.new_tokens, args.cached
    rate = t / (t + p) if t + p else 0.0
    print(f"T={t} P={p} miss rate={rate:.2%} on CP{args.ranks}")
    print(f"  Algorithm 1:        {select_algo_simple(hc, t, p).value}")
    print(f"  Algorithm 5:        {select_algo_with_all2all(hc, t, p).value}")
    print(f"  empirical (paper):  {select_algo_empirical(t, p).value}")
    print(f"  simulated oracle:   {sim.best_algo(t, p, n_ranks=args.ranks).value}")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.core.engine import ContextParallelEngine
    from repro.model.config import tiny_config
    from repro.model.llama import LlamaModel

    model = LlamaModel(tiny_config(), seed=0)
    engine = ContextParallelEngine(model, world_size=args.world)
    toks = (np.arange(args.tokens) * 13) % model.config.vocab_size
    out = engine.prefill({0: toks})
    err = float(np.abs(out.logits[0] - model.forward(toks)).max())
    generated = engine.generate({1: toks[: args.tokens // 2]}, max_new_tokens=4)
    print(f"world={args.world} tokens={args.tokens}")
    print(f"prefill algo: {out.plan.algo.value}")
    print(f"losslessness max error vs single device: {err:.3e}")
    print(f"sample generation: {generated[1]}")
    print(f"comm bytes by kind: {engine.tracer.bytes_by_kind()}")
    return 0 if err < 1e-8 else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.core.engine import ContextParallelEngine
    from repro.distributed.timeline import save_chrome_trace
    from repro.model.config import tiny_config
    from repro.model.llama import LlamaModel

    model = LlamaModel(tiny_config(), seed=0)
    engine = ContextParallelEngine(model, world_size=args.world)
    toks = np.arange(args.tokens) % model.config.vocab_size
    engine.prefill({0: toks})
    engine.generate({0: np.array([1])}, max_new_tokens=args.decode_steps)
    save_chrome_trace(engine.tracer, args.output, process_name=f"cp{args.world}")
    print(f"wrote {len(engine.tracer)} traced events to {args.output}")
    print(engine.tracer.summary())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.core.engine import ContextParallelEngine
    from repro.model.config import llama3_405b_config, tiny_config
    from repro.model.llama import LlamaModel
    from repro.perf.hardware import gti_host, gtt_host
    from repro.perf.latency import LatencySimulator
    from repro.runtime import ContinuousBatchingRuntime, FaultPlan, SimulatedStepClock
    from repro.runtime.state import RequestState
    from repro.serving.scheduler import ChunkedPrefillPolicy
    from repro.workloads.generator import WorkloadGenerator
    from repro.workloads.replay import (
        replay_scripts_sequential,
        submit_scripts_to_runtime,
    )

    if args.round_budget < args.chunk:
        print(
            f"error: --round-budget ({args.round_budget}) must be >= "
            f"--chunk ({args.chunk})",
            file=sys.stderr,
        )
        return 2
    model = LlamaModel(tiny_config(), seed=0)
    gen = WorkloadGenerator(model.config.vocab_size, seed=args.seed)
    if args.traffic == "shared-prefix":
        scripts = gen.shared_prefix_traffic(
            n_system_prompts=max(1, args.sessions // 4),
            n_fewshot_variants=2,
            conversations=args.sessions,
            system_tokens=args.first_prompt,
            fewshot_tokens=max(1, args.first_prompt // 3),
            unique_range=(6, 12),
            turns=args.turns,
            followup_range=(6, 12),
            response_range=(4, 6),
        )
    else:
        scripts = [
            gen.conversation(
                sid, turns=args.turns, first_prompt=args.first_prompt,
                followup_range=(6, 12), response_range=(4, 6),
            )
            for sid in range(args.sessions)
        ]
    host = gti_host() if args.platform == "gti" else gtt_host()
    sim = LatencySimulator(llama3_405b_config(), host)
    pools = None
    if args.disaggregate is not None:
        try:
            p, d = (int(x) for x in args.disaggregate.split(":"))
            if p < 1 or d < 1:
                raise ValueError
        except ValueError:
            print(
                f"error: --disaggregate wants P:D with positive integers, "
                f"got {args.disaggregate!r}",
                file=sys.stderr,
            )
            return 2
        pools = (p, d)
    if args.decode_capacity is not None and pools is None:
        print(
            "error: --decode-capacity only applies with --disaggregate",
            file=sys.stderr,
        )
        return 2
    if args.world is not None and pools is not None:
        print(
            "error: --world conflicts with --disaggregate (pool sizes come "
            "from P:D)",
            file=sys.stderr,
        )
        return 2
    if args.swap_capacity is not None and args.preemption != "swap":
        print(
            "error: --swap-capacity only applies with --preemption swap",
            file=sys.stderr,
        )
        return 2
    faults = None
    if args.faults is not None:
        # one seed controls workload AND fault plan unless split explicitly
        fault_seed = args.fault_seed if args.fault_seed is not None else args.seed
        try:
            faults = FaultPlan.parse(args.faults, seed=fault_seed)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    elif args.fault_seed is not None:
        print("error: --fault-seed only applies with --faults", file=sys.stderr)
        return 2
    if args.replicas < 1:
        print(f"error: --replicas must be >= 1, got {args.replicas}", file=sys.stderr)
        return 2
    # --verify needs a recorded trace for the metrics reconciliation
    # cross-check even when no --trace file was asked for
    from repro.obs import NULL_TRACER, RecordingTracer

    tracer = RecordingTracer() if (args.trace or args.verify) else NULL_TRACER
    if args.routing is not None and args.replicas == 1:
        print(
            "error: --routing only applies with --replicas > 1 "
            "(a single replica has nothing to route)",
            file=sys.stderr,
        )
        return 2
    world = args.world if args.world is not None else 2

    remedy = dict(
        preemption=args.preemption,
        swap_capacity_tokens=args.swap_capacity,
        prefix_cache=args.prefix_cache,
        faults=faults,
        sanitize=args.sanitize,
    )

    # fresh policy/clock/engines per replica: replicas share model
    # weights (read-only) but never scheduler or clock state; fleet
    # replicas record through a replica-scoped tracer view so every
    # event in a fleet trace is attributable
    def make_runtime(replica_id=None):
        rt_tracer = tracer if replica_id is None else tracer.scoped(replica=replica_id)
        policy = ChunkedPrefillPolicy(
            chunk_tokens=args.chunk,
            max_tokens_per_round=args.round_budget,
            max_seqs_per_round=8,
            order=args.policy,
        )
        if pools is None:
            engine = ContextParallelEngine(
                model, world_size=world, capacity_tokens=args.capacity
            )
            return ContinuousBatchingRuntime(
                engine,
                policy=policy,
                clock=SimulatedStepClock(sim, n_ranks=args.priced_ranks),
                tracer=rt_tracer,
                **remedy,
            )
        decode_cap = (
            args.decode_capacity if args.decode_capacity is not None else args.capacity
        )
        engine = ContextParallelEngine(
            model, world_size=pools[0], capacity_tokens=args.capacity
        )
        decode_engine = ContextParallelEngine(
            model, world_size=pools[1], capacity_tokens=decode_cap
        )
        # a dedicated decode pool streams at single-host TP TTIT (§4.3)
        return ContinuousBatchingRuntime(
            engine,
            decode_engine=decode_engine,
            policy=policy,
            clock=SimulatedStepClock(sim, n_ranks=args.priced_ranks, tp_decode=True),
            tracer=rt_tracer,
            **remedy,
        )

    deploy = (
        f"CP{world}"
        if pools is None
        else f"CP{pools[0]} prefill -> CP{pools[1]} decode"
    )
    fleet = None
    if args.replicas == 1:
        # the bare-runtime path, untouched: a 1-replica fleet's output is
        # byte-identical to this (the metamorphic property), so keep the
        # simple object when there is nothing to route
        runtime = make_runtime()
    else:
        from repro.cluster import ReplicaFleet, make_router

        routing = args.routing if args.routing is not None else "prefix"
        fleet = ReplicaFleet.build(
            make_runtime, args.replicas, router=make_router(routing), tracer=tracer
        )
        runtime = fleet
        deploy = f"{args.replicas} x {deploy} ({routing} routing)"
    rids = submit_scripts_to_runtime(runtime, scripts)
    report = runtime.run(max_steps=1_000_000)

    cap = "unbounded" if args.capacity is None else str(args.capacity)
    extras = f"policy: {args.policy}"
    if args.prefix_cache:
        extras += ", prefix cache: on"
    print(
        f"served {args.sessions} sessions x {args.turns} turns "
        f"({args.traffic} traffic) on {deploy} "
        f"(KV capacity/rank: {cap}, chunk: {args.chunk}, "
        f"preemption: {args.preemption}, {extras}, "
        f"priced as 405B on CP{args.priced_ranks} {host.name})"
    )
    if faults is not None:
        print(f"fault plan (seed {faults.seed}): {faults.describe()}")
        outcomes = ", ".join(
            f"{k}: {v}" for k, v in sorted(report.statuses().items())
        )
        print(f"request outcomes: {outcomes}")
        print(f"goodput: {report.goodput():.3f} completed requests/s")
    print(f"rounds: {report.prefill_rounds} prefill, {report.decode_rounds} decode")
    print(f"makespan: {report.makespan:.1f}s simulated, "
          f"{report.tokens_per_second():.2f} decoded tok/s")
    if fleet is not None:
        placed = report.placements
        spread = ", ".join(
            f"replica {rid}: {sum(1 for r in placed.values() if r == rid)} sessions"
            for rid in sorted(report.replica_reports)
        )
        print(f"placements: {spread}")
        leaks = fleet.kv_leak_reports()
        clean = all(not v for v in leaks.values())
        print(f"post-drain KV audit: {'clean' if clean else leaks}")
    elif pools is not None:
        util = report.pool_utilization()
        print(
            "pool utilization: "
            + ", ".join(f"{pool}: {frac:.1%}" for pool, frac in util.items())
        )
    print(report.metrics.summary())

    if args.trace:
        from repro.obs import write_chrome, write_jsonl

        if args.trace_format == "chrome":
            write_chrome(tracer.events, args.trace)
        else:
            write_jsonl(tracer.events, args.trace)
        print(
            f"wrote {len(tracer.events)} trace events to {args.trace} "
            f"({args.trace_format})"
        )
    if args.prom:
        with open(args.prom, "w") as fh:
            fh.write(report.metrics.prometheus_text())
        print(f"wrote Prometheus exposition to {args.prom}")

    if not args.verify:
        return 0
    reference = replay_scripts_sequential(
        lambda: ContextParallelEngine(
            LlamaModel(tiny_config(), seed=0),
            world_size=pools[0] if pools is not None else world,
        ),
        scripts,
    )
    mismatches = compared = skipped = 0
    for script in scripts:
        ref_turns = reference[script.seq_id]
        for i, rid in enumerate(rids[script.seq_id]):
            if report.records[rid].state is not RequestState.FINISHED:
                # shed/timed-out turns claim nothing; the exactness
                # contract under faults covers completed requests only
                skipped += 1
                continue
            compared += 1
            got = list(report.generated(rid))
            if got != list(ref_turns[i]):
                mismatches += 1
                print(f"MISMATCH seq {script.seq_id} turn {i}: "
                      f"{got} != {ref_turns[i]}")
    verdict = "identical" if mismatches == 0 else f"{mismatches} turns differ"
    scope = f"{compared} completed turns"
    if skipped:
        scope += f", {skipped} shed/timed-out skipped"
    print(f"verify vs sequential replay: {verdict} ({scope})")

    # the trace/metrics cross-check: every ServingMetrics counter and
    # stall total must be exactly derivable from the recorded trace
    from repro.obs import reconcile, reconcile_fleet

    if fleet is not None:
        drift = reconcile_fleet(tracer.events, report.metrics)
    else:
        drift = reconcile(tracer.events, runtime.metrics)
    for problem in drift:
        print(f"DRIFT {problem}")
    recon = "exact" if not drift else f"{len(drift)} counter(s) drifted"
    print(f"verify trace reconciliation: {recon} "
          f"({len(tracer.events)} events vs metrics)")
    return 0 if mismatches == 0 and not drift else 1


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.obs import format_explanation, load_jsonl, request_ids

    try:
        events = load_jsonl(args.trace)
    except OSError as exc:
        print(f"error: cannot read trace {args.trace!r}: {exc}", file=sys.stderr)
        return 2
    except (ValueError, KeyError, TypeError) as exc:
        print(
            f"error: {args.trace!r} is not a JSONL trace ({exc!r}); "
            "explain wants the output of serve --trace PATH "
            "--trace-format jsonl",
            file=sys.stderr,
        )
        return 2
    if args.request_id is None:
        ids = request_ids(events)
        print(f"{len(events)} events, {len(ids)} requests: "
              + ", ".join(str(i) for i in ids))
        return 0
    try:
        print(format_explanation(events, args.request_id))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.lint import (
        default_lint_target,
        lint_paths,
        rules_table,
    )

    if args.list_rules:
        print(rules_table())
        return 0
    if args.paths:
        findings = lint_paths(args.paths)
        target_desc = ", ".join(args.paths)
    else:
        target = default_lint_target()
        findings = lint_paths([target], root=target.parent)
        target_desc = str(target)
    for finding in findings:
        print(finding.format())
    if findings:
        print(f"{len(findings)} finding(s) in {target_desc}", file=sys.stderr)
        return 1
    print(f"clean: no determinism findings in {target_desc}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Context Parallelism for Scalable Million-Token Inference - reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiments", help="regenerate paper tables/figures")
    p_exp.add_argument("--markdown", action="store_true", help="emit markdown tables")
    p_exp.add_argument("--only", default="", help="filter by experiment id substring")
    p_exp.add_argument("--fast", action="store_true", help="skip the slow sweeps")
    p_exp.set_defaults(func=_cmd_experiments)

    p_plan = sub.add_parser("plan", help="size a CP deployment for a TTFT SLA")
    p_plan.add_argument("--context", type=int, required=True)
    p_plan.add_argument("--sla", type=float, default=60.0)
    p_plan.add_argument("--platform", choices=["gtt", "gti"], default="gtt")
    p_plan.set_defaults(func=_cmd_plan)

    p_h = sub.add_parser("heuristic", help="pass-KV vs pass-Q selection for (T, P)")
    p_h.add_argument("--new-tokens", type=int, required=True)
    p_h.add_argument("--cached", type=int, required=True)
    p_h.add_argument("--ranks", type=int, default=4)
    p_h.set_defaults(func=_cmd_heuristic)

    p_demo = sub.add_parser("demo", help="numeric engine end-to-end check")
    p_demo.add_argument("--world", type=int, default=4)
    p_demo.add_argument("--tokens", type=int, default=32)
    p_demo.set_defaults(func=_cmd_demo)

    p_serve = sub.add_parser(
        "serve", help="replay a trace through the continuous-batching runtime"
    )
    p_serve.add_argument("--sessions", type=int, default=4)
    p_serve.add_argument("--turns", type=int, default=2)
    p_serve.add_argument("--first-prompt", type=int, default=48)
    p_serve.add_argument(
        "--world", type=int, default=None,
        help="colocated CP pool size (default 2; conflicts with --disaggregate)",
    )
    p_serve.add_argument(
        "--capacity", type=int, default=None,
        help="per-rank KV token capacity (default unbounded; small values force preemption)",
    )
    p_serve.add_argument(
        "--disaggregate", metavar="P:D", default=None,
        help="split serving into a CP-P prefill pool feeding a CP-D decode "
             "pool over a priced KV-transfer stream (default: colocated)",
    )
    p_serve.add_argument(
        "--decode-capacity", type=int, default=None,
        help="per-rank KV token capacity of the decode pool "
             "(default: same as --capacity; only with --disaggregate)",
    )
    p_serve.add_argument(
        "--preemption", choices=["recompute", "trim", "swap"], default="recompute",
        help="eviction remedy under KV pressure: full evict + exact re-prefill "
             "(recompute, default), tail-trim newest blocks + re-prefill only the "
             "suffix (trim), or CPU-side KV swap priced at PCIe bandwidth (swap)",
    )
    p_serve.add_argument(
        "--swap-capacity", type=int, default=None,
        help="host-side KV store budget in tokens per pool "
             "(default unbounded; only with --preemption swap)",
    )
    p_serve.add_argument(
        "--prefix-cache", action="store_true",
        help="shared-prefix KV reuse: a radix index over committed tokens "
             "lets admissions adopt resident prefixes through refcounted "
             "copy-on-write paged blocks, charging only the uncached suffix",
    )
    p_serve.add_argument(
        "--traffic", choices=["conversations", "shared-prefix"],
        default="conversations",
        help="workload shape: independent multi-turn conversations "
             "(default), or templated shared-prefix traffic (N system "
             "prompts x M few-shot variants) that exercises the prefix cache",
    )
    p_serve.add_argument(
        "--policy", choices=["fifo", "srpf"], default="fifo",
        help="chunked-prefill packing order: arrival order (fifo, default) "
             "or shortest-remaining-prefill-first (srpf)",
    )
    p_serve.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="arm the deterministic chaos layer: comma-separated key=value "
             "spec, e.g. transfer=0.2,swap=0.2,pool_reset=1,deadline=30,"
             "queue=16 (keys: transfer/swap fault rates, pool_reset count, "
             "window, retries, backoff, backoff_cap, deadline seconds, "
             "queue depth cap)",
    )
    p_serve.add_argument(
        "--fault-seed", type=int, default=None,
        help="seed of the fault schedule (default: --seed, so one seed "
             "reproduces workload and faults together; only with --faults)",
    )
    p_serve.add_argument(
        "--replicas", type=int, default=1,
        help="serve through a cluster-tier fleet of N independent replicas "
             "(each with the deployment shape the other flags pick); 1 "
             "(default) keeps the bare single runtime",
    )
    p_serve.add_argument(
        "--routing", choices=["prefix", "round-robin", "least-loaded"],
        default=None,
        help="fleet routing policy for new conversations (only with "
             "--replicas > 1; default prefix): prefix-affinity scores "
             "replicas by cached-prefix match minus load and queue depth, "
             "round-robin cycles, least-loaded picks the fewest queued "
             "prefill tokens; follow-up turns always stick to their "
             "conversation's replica",
    )
    p_serve.add_argument("--chunk", type=int, default=16, help="prefill chunk tokens")
    p_serve.add_argument("--round-budget", type=int, default=32,
                         help="fused prefill round token budget")
    p_serve.add_argument("--priced-ranks", type=int, default=4,
                         help="CP pool size the step clock prices (405B model)")
    p_serve.add_argument("--platform", choices=["gtt", "gti"], default="gtt")
    p_serve.add_argument("--seed", type=int, default=11)
    p_serve.add_argument(
        "--verify", action="store_true",
        help="bit-check decoded tokens against sequential per-conversation "
             "replay, and cross-check every metrics counter against the "
             "recorded scheduling trace (any drift fails the run)",
    )
    p_serve.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record the deterministic scheduling trace (admits, prefill "
             "chunks, decode rounds, KV transfers, swaps, preemptions, "
             "prefix-cache and fault events on simulated time) and write "
             "it to PATH; same seed + same flags => byte-identical file",
    )
    p_serve.add_argument(
        "--trace-format", choices=["jsonl", "chrome"], default="jsonl",
        help="trace file format: JSONL (one event per line, canonical, "
             "default) or Chrome/Perfetto trace.json (load in "
             "chrome://tracing or ui.perfetto.dev; replicas are "
             "processes, pools and requests are thread tracks)",
    )
    p_serve.add_argument(
        "--prom", metavar="PATH", default=None,
        help="write the run's metrics as a Prometheus text exposition to "
             "PATH (fleet runs label every series with its replica id)",
    )
    p_serve.add_argument(
        "--sanitize", action="store_true",
        help="arm the KV shadow-state sanitizer on every pool engine: each "
             "allocator/lifecycle op is validated against an independent "
             "shadow model and the run fails at the first double-free, "
             "use-after-free, refcount, copy-on-write, or leak violation",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_lint = sub.add_parser(
        "lint",
        help="AST determinism linter over the repro package "
             "(unseeded RNG, wall-clock reads, set-iteration order, "
             "id()-based ordering)",
    )
    p_lint.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to lint (default: the installed "
             "repro package tree)",
    )
    p_lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table (ids, scopes, rationale) and exit",
    )
    p_lint.set_defaults(func=_cmd_lint)

    p_explain = sub.add_parser(
        "explain",
        help="decompose one request's TTFT from a recorded serve trace",
    )
    p_explain.add_argument(
        "request_id", type=int, nargs="?", default=None,
        help="fleet/runtime request id to explain (omit to list the "
             "trace's request ids)",
    )
    p_explain.add_argument(
        "--trace", metavar="PATH", required=True,
        help="JSONL trace recorded by serve --trace PATH "
             "--trace-format jsonl",
    )
    p_explain.set_defaults(func=_cmd_explain)

    p_trace = sub.add_parser("trace", help="export a Chrome trace of a demo run")
    p_trace.add_argument("--world", type=int, default=4)
    p_trace.add_argument("--tokens", type=int, default=48)
    p_trace.add_argument("--decode-steps", type=int, default=4)
    p_trace.add_argument("--output", default="cp_trace.json")
    p_trace.set_defaults(func=_cmd_trace)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
