"""Tests for ring pass-KV prefill (Algorithm 2): lossless exactness."""

import numpy as np
import pytest

from repro.attention.reference import reference_attention_with_lse
from repro.core.ring_passkv import ring_passkv_prefill
from repro.core.sharding import SequenceSpec, ShardedKV, ShardedQueries, shard_sequences
from repro.distributed.process_group import SimProcessGroup

from helpers import make_qkv, shard_qkv_full_prefill, shard_varseq_full_prefill


class TestFullPrefill:
    @pytest.mark.parametrize("world", [1, 2, 3, 4, 8])
    def test_matches_reference(self, rng, world):
        t = 41
        q, k, v = make_qkv(rng, t, t)
        ref_out, ref_lse = reference_attention_with_lse(q, k, v)
        queries, kvs = shard_qkv_full_prefill(q, k, v, world)
        group = SimProcessGroup(world)
        results = ring_passkv_prefill(group, queries, kvs)
        for res, qs in zip(results, queries):
            np.testing.assert_allclose(res.out, ref_out[qs.positions], atol=1e-10)
            np.testing.assert_allclose(res.lse, ref_lse[qs.positions], atol=1e-10)

    def test_sendrecv_count(self, rng):
        """The ring shifts KV exactly N-1 times per call."""
        world = 4
        q, k, v = make_qkv(rng, 16, 16)
        queries, kvs = shard_qkv_full_prefill(q, k, v, world)
        group = SimProcessGroup(world)
        ring_passkv_prefill(group, queries, kvs)
        assert group.tracer.count("sendrecv") == world - 1
        assert group.tracer.count("all2all") == 0

    def test_varseq_fused_batch(self, rng):
        """Fused variable-length sequences stay isolated and exact."""
        world = 3
        per_seq = {
            0: make_qkv(rng, 13, 13),
            1: make_qkv(rng, 29, 29),
            2: make_qkv(rng, 7, 7),
        }
        queries, kvs = shard_varseq_full_prefill(per_seq, world)
        group = SimProcessGroup(world)
        results = ring_passkv_prefill(group, queries, kvs)
        refs = {
            sid: reference_attention_with_lse(*qkv) for sid, qkv in per_seq.items()
        }
        for res, qs in zip(results, queries):
            for i, (p, s) in enumerate(zip(qs.positions, qs.seq_ids)):
                np.testing.assert_allclose(
                    res.out[i], refs[int(s)][0][int(p)], atol=1e-10
                )


class TestPartialPrefill:
    def test_unbalanced_cached_kv(self, rng):
        """Cached KV lives wherever earlier turns put it (here: rank 0 holds
        much more) — padding keeps messages equal and output exact."""
        world = 3
        p_len, t_len = 20, 9
        total = p_len + t_len
        q_new, k_all, v_all = make_qkv(rng, t_len, total)
        ref_out, _ = reference_attention_with_lse(
            q_new, k_all, v_all, q_pos=np.arange(p_len, total), k_pos=np.arange(total)
        )
        # new tokens load-balance sharded
        shards = shard_sequences([SequenceSpec(0, t_len, p_len)], world)
        # cached tokens unevenly sharded: rank 0 gets 14, rank 1 gets 6, rank 2 none
        cached_split = [np.arange(0, 14), np.arange(14, 20), np.arange(20, 20)]
        queries, kvs = [], []
        for (pos, sid), cached_pos in zip(shards, cached_split):
            queries.append(
                ShardedQueries(q=q_new[pos - p_len], positions=pos, seq_ids=sid)
            )
            all_pos = np.concatenate([cached_pos, pos])
            kvs.append(
                ShardedKV(
                    k=k_all[all_pos],
                    v=v_all[all_pos],
                    positions=all_pos,
                    seq_ids=np.zeros(all_pos.shape[0], dtype=np.int64),
                )
            )
        group = SimProcessGroup(world)
        results = ring_passkv_prefill(group, queries, kvs)
        for res, qs in zip(results, queries):
            np.testing.assert_allclose(res.out, ref_out[qs.positions - p_len], atol=1e-10)

    def test_padding_bytes_on_wire(self, rng):
        """Padded shards mean every ring message has the max shard's size."""
        world = 2
        q, k, v = make_qkv(rng, 8, 8)
        queries, kvs = shard_qkv_full_prefill(q, k, v, world)
        # Make rank 1 artificially hold one extra cached token of seq 0.
        extra = ShardedKV(
            k=k[:1], v=v[:1],
            positions=np.array([0], dtype=np.int64),
            seq_ids=np.array([0], dtype=np.int64),
        )
        kvs[1] = ShardedKV.concat([kvs[1], extra])
        group = SimProcessGroup(world)
        ring_passkv_prefill(group, queries, kvs)
        events = [e for e in group.tracer if e.kind == "sendrecv"]
        assert len(events) == 1
        # both ranks padded to 5 tokens of seq 0: k+v (2) * 5 tokens * 2 heads
        # * 16 dims + positions/seq_ids (2 * 5) elements, x2 wire bytes
        expected_elements = 2 * 5 * 2 * 16 + 2 * 5
        assert events[0].bytes == expected_elements * group.wire_bytes_per_element


class TestValidation:
    def test_world_size_mismatch(self, rng):
        q, k, v = make_qkv(rng, 8, 8)
        queries, kvs = shard_qkv_full_prefill(q, k, v, 2)
        group = SimProcessGroup(3)
        with pytest.raises(ValueError):
            ring_passkv_prefill(group, queries, kvs)
