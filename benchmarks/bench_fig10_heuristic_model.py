"""Figure 10 / Appendix D: refit the empirical decision boundary."""

from repro.experiments import fig10_heuristic


def bench_fig10_heuristic_fit(benchmark, paper_table):
    result = benchmark(fig10_heuristic.run)
    paper_table(benchmark, result)
    values = {row[0]: row[1] for row in result.rows}
    # the linear boundary separates the sweep cleanly
    assert values["boundary agreement"] > 0.9
    # qualitative match to Appendix D: higher miss rate -> pass-KV
    assert values["fitted beta"] > 0
    # misclassifications (if any) cost little: the two variants differ by
    # under ~15% latency at every misclassified point (paper: <1% on its
    # denser production dataset)
    assert values["max latency gap among misclassified"] < 0.15


if __name__ == "__main__":
    print(fig10_heuristic.run().render())
