"""Extension experiment: TTFT/throughput under load, colocated vs disaggregated.

Drives the discrete-event simulator with a Poisson stream of 128K-context
requests and compares CP4 colocated (prefill preempts decode) against CP4
prefill + dedicated TP8 decode — the serving-architecture question raised
by §4.3.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.model.config import llama3_405b_config
from repro.perf.hardware import HostSpec, gtt_host
from repro.serving.simulator import ClusterServingSimulator, poisson_arrivals


def run(
    host: HostSpec | None = None,
    *,
    n_ranks: int = 4,
    n_requests: int = 24,
    context_tokens: int = 131072,
    output_tokens: int = 64,
) -> ExperimentResult:
    host = host if host is not None else gtt_host()
    cfg = llama3_405b_config()

    res = ExperimentResult(
        experiment_id="Serving under load",
        title=(
            f"Poisson load, {context_tokens // 1024}K context, "
            f"{output_tokens} output tokens, CP{n_ranks}"
        ),
        headers=[
            "arrival rate (req/s)", "mode",
            "mean TTFT (s)", "p99 TTFT (s)",
            "mean ms/token", "mean E2E (s)",
            "throughput (req/s)",
        ],
    )
    for rate in (0.02, 0.05, 0.08):
        arrivals = poisson_arrivals(
            rate, n_requests,
            context_tokens=context_tokens, output_tokens=output_tokens, seed=7,
        )
        for disagg in (False, True):
            sim = ClusterServingSimulator(cfg, host, n_ranks=n_ranks, disaggregated=disagg)
            report = sim.simulate(arrivals)
            per_token = [
                (c.finish - c.first_token) / max(c.decoded, 1)
                for c in report.completions
            ]
            e2e = [c.finish - c.arrival for c in report.completions]
            res.add_row(
                rate,
                "disaggregated" if disagg else "colocated",
                report.mean_ttft(),
                report.p99_ttft(),
                1e3 * sum(per_token) / len(per_token),
                sum(e2e) / len(e2e),
                report.throughput(),
            )
    res.notes.append(
        "TTFT is prefill-pool-bound and similar in both modes; the decode "
        "experience is not: colocated sequences stall behind every queued "
        "prefill (ms/token includes multi-second gaps), while the "
        "dedicated decode host streams tokens at TP8 TTIT - the "
        "Mooncake/DistServe architecture the paper recommends (§4.3)."
    )
    return res
