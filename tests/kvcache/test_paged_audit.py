"""audit() defect coverage: deliberately corrupt allocator state and pin
the exact violation each detector reports (only the clean path was
pinned before)."""

from __future__ import annotations

from repro.kvcache.paged import PagedAllocator


def make_alloc():
    alloc = PagedAllocator(num_blocks=8, block_size=4)
    alloc.append((1,), 6)
    alloc.append((2,), 4)
    return alloc


class TestAuditDetectors:
    def test_clean_state_is_clean(self):
        assert make_alloc().audit() == []

    def test_refcount_drift_reported_per_block(self):
        alloc = make_alloc()
        block = alloc._owners[(1,)][0]
        alloc._ref[block] += 1
        problems = alloc.audit()
        assert problems == [
            f"block {block}: refcount {alloc._ref[block]} but 1 stream references"
        ]

    def test_free_and_referenced_block_reported(self):
        alloc = make_alloc()
        block = alloc._owners[(2,)][0]
        alloc._free.append(block)
        problems = alloc.audit()
        assert any(
            p == f"block {block}: simultaneously free and referenced"
            for p in problems
        )

    def test_orphan_refcount_reported(self):
        alloc = make_alloc()
        alloc._ref[99] = 3
        problems = alloc.audit()
        assert any(
            p == "block 99: refcount 3 with no owning stream" for p in problems
        )

    def test_pool_partition_violation_reported(self):
        alloc = make_alloc()
        alloc._free.pop()  # a block vanishes: neither free nor referenced
        problems = alloc.audit()
        assert any("does not partition" in p for p in problems)

    def test_leaked_owner_entry_reported(self):
        # a release that forgot _unref: owners gone, refcount survives
        alloc = make_alloc()
        blocks = alloc._owners.pop((1,))
        alloc._fill.pop((1,))
        problems = alloc.audit()
        assert any("no owning stream" in p for p in problems)
        # every leaked block is named
        for b in blocks:
            assert any(f"block {b}" in p for p in problems)

    def test_multiple_defects_all_reported(self):
        alloc = make_alloc()
        b1 = alloc._owners[(1,)][0]
        alloc._ref[b1] += 1
        alloc._ref[99] = 1
        problems = alloc.audit()
        assert len(problems) >= 2
