"""Tests for the lockstep simulated process group."""

import numpy as np
import pytest

from repro.core.sharding import ShardedKV
from repro.distributed.process_group import SimProcessGroup, payload_elements
from repro.distributed.topology import gtt_topology


class TestPayloadElements:
    def test_array(self):
        assert payload_elements(np.zeros((3, 4))) == 12

    def test_nested(self):
        payload = {"a": [np.zeros(2), np.zeros(3)], "b": (np.zeros(5), 1.0)}
        assert payload_elements(payload) == 11

    def test_none(self):
        assert payload_elements(None) == 0

    def test_dataclass(self):
        kv = ShardedKV(
            k=np.zeros((2, 2, 4)), v=np.zeros((2, 2, 4)),
            positions=np.zeros(2, dtype=np.int64), seq_ids=np.zeros(2, dtype=np.int64),
        )
        assert payload_elements(kv) == 16 + 16 + 2 + 2

    def test_unsupported(self):
        with pytest.raises(TypeError):
            payload_elements(object())


class TestRingShift:
    def test_rotation(self):
        g = SimProcessGroup(4)
        payloads = [np.full(3, k) for k in range(4)]
        shifted = g.ring_shift(payloads)
        for k in range(4):
            np.testing.assert_array_equal(shifted[k], payloads[(k - 1) % 4])

    def test_no_aliasing(self):
        g = SimProcessGroup(2)
        payloads = [np.zeros(3), np.ones(3)]
        shifted = g.ring_shift(payloads)
        shifted[0][0] = 99.0
        assert payloads[1][0] == 1.0  # sender's buffer untouched

    def test_singleton_world(self):
        g = SimProcessGroup(1)
        out = g.ring_shift([np.arange(3)])
        np.testing.assert_array_equal(out[0], np.arange(3))
        assert g.tracer.count("sendrecv") == 0  # no wire traffic

    def test_bytes_accounting(self):
        g = SimProcessGroup(2, wire_bytes_per_element=2)
        g.ring_shift([np.zeros(10), np.zeros(7)])
        events = list(g.tracer)
        assert len(events) == 1
        assert events[0].bytes == 10 * 2  # max payload sets the step size

    def test_wrong_world_size(self):
        g = SimProcessGroup(3)
        with pytest.raises(ValueError):
            g.ring_shift([np.zeros(1)] * 2)


class TestAllToAll:
    def test_transpose_semantics(self):
        g = SimProcessGroup(3)
        matrix = [[np.array([src * 10 + dst]) for dst in range(3)] for src in range(3)]
        out = g.all_to_all(matrix)
        for dst in range(3):
            for src in range(3):
                assert out[dst][src][0] == src * 10 + dst

    def test_egress_accounting_excludes_self(self):
        g = SimProcessGroup(2, wire_bytes_per_element=2)
        matrix = [[np.zeros(5), np.zeros(5)], [np.zeros(5), np.zeros(5)]]
        g.all_to_all(matrix)
        events = [e for e in g.tracer if e.kind == "all2all"]
        assert events[0].bytes == 5 * 2  # one off-diagonal payload per rank

    def test_non_square_rejected(self):
        g = SimProcessGroup(2)
        with pytest.raises(ValueError):
            g.all_to_all([[np.zeros(1)], [np.zeros(1)]])


class TestAllGather:
    def test_everyone_sees_everything(self):
        g = SimProcessGroup(3)
        out = g.all_gather([np.full(2, k) for k in range(3)])
        for k in range(3):
            for s in range(3):
                np.testing.assert_array_equal(out[k][s], np.full(2, s))

    def test_bytes_scale_with_world(self):
        g2 = SimProcessGroup(2, wire_bytes_per_element=2)
        g4 = SimProcessGroup(4, wire_bytes_per_element=2)
        g2.all_gather([np.zeros(8)] * 2)
        g4.all_gather([np.zeros(8)] * 4)
        assert g4.tracer.total_bytes("allgather") == 3 * g2.tracer.total_bytes("allgather")


class TestAllReduce:
    def test_sum(self):
        g = SimProcessGroup(3)
        out = g.all_reduce_sum([np.full(4, float(k)) for k in range(3)])
        for arr in out:
            np.testing.assert_array_equal(arr, np.full(4, 3.0))

    def test_shape_mismatch(self):
        g = SimProcessGroup(2)
        with pytest.raises(ValueError):
            g.all_reduce_sum([np.zeros(3), np.zeros(4)])


class TestConstruction:
    def test_topology_world_mismatch(self):
        with pytest.raises(ValueError):
            SimProcessGroup(4, topology=gtt_topology(2))

    def test_matching_topology(self):
        g = SimProcessGroup(2, topology=gtt_topology(2))
        assert g.topology.name == "GTT-2n"

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            SimProcessGroup(0)
        with pytest.raises(ValueError):
            SimProcessGroup(2, wire_bytes_per_element=0)
