"""Observability layer: deterministic tracer, exporters, metrics registry.

Everything here runs on simulated time only (no wall-clock reads — the
determinism linter holds this package to DET102 with zero
suppressions), so same-seed runs produce byte-identical traces and
byte-identical Prometheus expositions.
"""

from repro.obs.export import (
    dumps_jsonl,
    load_jsonl,
    to_chrome,
    validate_chrome,
    write_chrome,
    write_jsonl,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    prometheus_text_multi,
)
from repro.obs.timeline import (
    RequestTimeline,
    TTFTBreakdown,
    build_timeline,
    events_for_request,
    explain_ttft,
    format_explanation,
    reconcile,
    reconcile_fleet,
    request_ids,
)
from repro.obs.trace import NULL_TRACER, RecordingTracer, TraceEvent, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "RecordingTracer",
    "RequestTimeline",
    "TTFTBreakdown",
    "TraceEvent",
    "Tracer",
    "build_timeline",
    "dumps_jsonl",
    "events_for_request",
    "explain_ttft",
    "format_explanation",
    "load_jsonl",
    "prometheus_text_multi",
    "reconcile",
    "reconcile_fleet",
    "request_ids",
    "to_chrome",
    "validate_chrome",
    "write_chrome",
    "write_jsonl",
]
