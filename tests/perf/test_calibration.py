"""Regression tests pinning the latency model against the paper's anchors.

Every anchor in :data:`repro.perf.hardware.CALIBRATION_ANCHORS` comes from a
table or figure in the paper; the model must stay within tolerance of each.
These are the tests that make the benchmark harness's claims checkable: if a
constant drifts, the corresponding anchor fails by name.
"""

import pytest

from repro.core.heuristics import RingAlgo
from repro.model.config import llama3_405b_config
from repro.perf.hardware import gtt_host
from repro.perf.latency import LatencySimulator


@pytest.fixture(scope="module")
def sim():
    return LatencySimulator(llama3_405b_config(), gtt_host())


def within(model, paper, rel):
    assert model == pytest.approx(paper, rel=rel), (
        f"model {model:.4g} vs paper {paper:.4g} (tol {rel:.0%})"
    )


class TestPrefillAnchors:
    def test_tp8_128k_ttft(self, sim):
        within(sim.tp_prefill(131072, n_nodes=1).total, 42.010, 0.10)

    def test_tp8_8k_ttft(self, sim):
        within(sim.tp_prefill(8192, n_nodes=1).total, 1.740, 0.10)

    def test_tp8_32k_ttft(self, sim):
        within(sim.tp_prefill(32768, n_nodes=1).total, 7.658, 0.10)

    def test_tp16_128k_ttft(self, sim):
        within(sim.tp_prefill(131072, n_nodes=2).total, 29.917, 0.10)

    def test_tp32_128k_ttft(self, sim):
        within(sim.tp_prefill(131072, n_nodes=4).total, 19.841, 0.15)

    def test_cp2_128k_ttft(self, sim):
        within(sim.cp_prefill(131072, n_ranks=2).total, 21.042, 0.10)

    def test_cp4_128k_ttft(self, sim):
        within(sim.cp_prefill(131072, n_ranks=4).total, 10.950, 0.10)

    def test_cp8_128k_ttft(self, sim):
        within(sim.cp_prefill(131072, n_ranks=8).total, 5.85, 0.10)

    def test_cp16_1m_ttft(self, sim):
        """The headline: 1M tokens in 77 s on 128 GPUs."""
        within(sim.cp_prefill(1048576, n_ranks=16).total, 77.0, 0.06)


class TestPartialPrefillAnchors:
    def test_table4_passkv_1pct(self, sim):
        r = sim.cp_prefill(1280, 126720, n_ranks=4, algo=RingAlgo.PASS_KV)
        within(r.total * 1e3, 1023.39, 0.10)

    def test_table4_passq_1pct(self, sim):
        r = sim.cp_prefill(1280, 126720, n_ranks=4, algo=RingAlgo.PASS_Q)
        within(r.total * 1e3, 898.71, 0.10)

    def test_table4_passkv_100pct(self, sim):
        r = sim.cp_prefill(128000, 0, n_ranks=4, algo=RingAlgo.PASS_KV)
        within(r.total * 1e3, 11462.15, 0.10)

    def test_table4_passq_100pct(self, sim):
        r = sim.cp_prefill(128000, 0, n_ranks=4, algo=RingAlgo.PASS_Q)
        within(r.total * 1e3, 12360.57, 0.10)

    def test_table5_sendrecv_2p5pct(self, sim):
        r = sim.cp_prefill(3200, 124800, n_ranks=4, algo=RingAlgo.PASS_KV)
        within(r.sendrecv_per_iter * 1e6, 627.0, 0.10)

    def test_table5_attn_2p5pct(self, sim):
        r = sim.cp_prefill(3200, 124800, n_ranks=4, algo=RingAlgo.PASS_KV)
        within(r.attn_per_iter * 1e6, 414.0, 0.10)

    def test_table5_all2all_10pct(self, sim):
        r = sim.cp_prefill(12800, 115200, n_ranks=4, algo=RingAlgo.PASS_Q)
        within(r.all2all / 126 * 1e6, 1023.0, 0.15)

    def test_table5_passkv_exposed_at_low_miss(self, sim):
        """At 2.5% miss, pass-KV SendRecv > ATTN (communication exposed);
        at 10% it hides — the paper's §4.2.4 narrative."""
        low = sim.cp_prefill(3200, 124800, n_ranks=4, algo=RingAlgo.PASS_KV)
        high = sim.cp_prefill(12800, 115200, n_ranks=4, algo=RingAlgo.PASS_KV)
        assert low.sendrecv_per_iter > low.attn_per_iter
        assert high.sendrecv_per_iter < high.attn_per_iter


class TestDecodeAnchors:
    def test_tp8_ttit_128k(self, sim):
        within(sim.tp_decode(131072, n_nodes=1).total * 1e3, 46.26, 0.10)

    def test_tp8_attn_op(self, sim):
        within(sim.tp_decode(131072, n_nodes=1).attn_op * 1e6, 38.9, 0.12)

    def test_cp2_ttit_128k(self, sim):
        within(sim.cp_decode(131072, n_ranks=2).total * 1e3, 60.23, 0.10)

    def test_cp2_whole_passq(self, sim):
        within(sim.cp_decode(131072, n_ranks=2).whole_attn * 1e6, 157.7, 0.10)

    def test_cp4_ttit_128k(self, sim):
        within(sim.cp_decode(131072, n_ranks=4).total * 1e3, 71.31, 0.10)

    def test_cp4_whole_passq(self, sim):
        within(sim.cp_decode(131072, n_ranks=4).whole_attn * 1e6, 238.6, 0.10)

    def test_tp16_ttit(self, sim):
        within(sim.tp_decode(131072, n_nodes=2).total * 1e3, 39.52, 0.10)

    def test_tp32_ttit(self, sim):
        within(sim.tp_decode(131072, n_nodes=4).total * 1e3, 47.3, 0.10)

    def test_table8_attn_ops_by_rank(self, sim):
        """Individual attention op shrinks with effective context."""
        within(sim.cp_decode(131072, n_ranks=2).attn_op * 1e6, 22.0, 0.10)
        within(sim.cp_decode(131072, n_ranks=4).attn_op * 1e6, 14.7, 0.10)
