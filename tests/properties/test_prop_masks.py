"""Property-based tests: kernels agree under arbitrary custom masks."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attention.flash import flash_attention
from repro.attention.reference import reference_attention_with_lse
from repro.attention.windowed import windowed_attention_mask_fn

SETTINGS = dict(max_examples=30, deadline=None)


@st.composite
def masked_case(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    t = draw(st.integers(2, 24))
    rng = np.random.default_rng(seed)
    q = rng.standard_normal((t, 4, 8))
    k = rng.standard_normal((t, 2, 8))
    v = rng.standard_normal((t, 2, 8))
    window = draw(st.integers(1, t))
    sinks = draw(st.integers(0, 3))
    block = draw(st.integers(1, t))
    splits = draw(st.integers(1, 4))
    return q, k, v, window, sinks, block, splits


class TestMaskedKernelAgreement:
    @given(masked_case())
    @settings(**SETTINGS)
    def test_flash_equals_reference_under_windowed_mask(self, case):
        """Blocked/split execution is exact for any window/sink mask: the
        mask is evaluated per block in absolute coordinates, so chunking
        cannot change the result."""
        q, k, v, window, sinks, block, splits = case
        fn = windowed_attention_mask_fn(window, sink_tokens=sinks)
        ref_out, ref_lse = reference_attention_with_lse(q, k, v, mask_fn=fn)
        res = flash_attention(q, k, v, mask_fn=fn, block_size=block, num_kv_splits=splits)
        np.testing.assert_allclose(res.out, ref_out, atol=1e-9)
        np.testing.assert_allclose(res.lse, ref_lse, atol=1e-9)

    @given(masked_case())
    @settings(**SETTINGS)
    def test_window_of_t_equals_causal(self, case):
        """A window covering the whole sequence is plain causal attention."""
        q, k, v, _, _, block, _ = case
        t = q.shape[0]
        fn = windowed_attention_mask_fn(t)
        windowed, _ = reference_attention_with_lse(q, k, v, mask_fn=fn)
        causal, _ = reference_attention_with_lse(q, k, v)
        np.testing.assert_allclose(windowed, causal, atol=1e-12)

    @given(masked_case())
    @settings(**SETTINGS)
    def test_windowed_lse_at_most_causal(self, case):
        """Removing visible keys can only shrink the softmax denominator."""
        q, k, v, window, _, _, _ = case
        fn = windowed_attention_mask_fn(window)
        _, lse_w = reference_attention_with_lse(q, k, v, mask_fn=fn)
        _, lse_c = reference_attention_with_lse(q, k, v)
        assert np.all(lse_w <= lse_c + 1e-9)
