"""Long-document QA ("needle in a haystack") over context parallelism.

The paper's motivating workload: a user uploads a long document, then asks
questions whose answers depend on tokens buried deep inside it. This
example plants a recognizable "needle" pattern inside a long synthetic
document, prefills it across 4 CP ranks (chunked, to bound activation
memory), and shows that:

1. the CP engine's next-token predictions are identical to single-device
   execution wherever the needle's learned continuation applies, and
2. sliding-window attention — which *cannot* see the far-away needle —
   diverges, while exact CP attention does not: exactness is the point.

Run:  python examples/long_document_qa.py
"""

import numpy as np

from repro import ContextParallelEngine, LlamaModel, tiny_config
from repro.attention.windowed import windowed_attention_mask_fn
from repro.attention.flash import flash_attention


def main() -> None:
    model = LlamaModel(tiny_config(), seed=13)
    vocab = model.config.vocab_size
    rng = np.random.default_rng(99)

    # --- build a long document with a needle planted early ---------------
    needle = np.array([7, 77, 17])  # a distinctive trigram
    filler = rng.integers(0, vocab, size=180)
    probe = needle[:2]  # the question re-states the needle's prefix
    document = np.concatenate([filler[:20], needle, filler[20:], probe])

    engine = ContextParallelEngine(model, world_size=4)
    out = engine.prefill_chunked(0, document, chunk_tokens=64)
    print(f"document: {document.size} tokens across 4 CP ranks "
          f"(chunks of 64, final algo={out.plan.algo.value})")
    print(f"per-rank KV: {engine.cached_tokens(0)}")

    # --- exactness: CP logits == single-device logits ---------------------
    ref = model.forward(document)
    err = np.abs(out.logits[0] - ref).max()
    print(f"losslessness over the whole document: max err = {err:.2e}")
    assert err < 1e-8

    # --- retrieval contrast: exact attention vs a 32-token window ---------
    # With exact attention, the probe's last position attends the needle
    # ~180 tokens away. A window of 32 cannot see it; the paper's CP keeps
    # attention exact precisely to preserve such long-range dependencies.
    positions = np.arange(document.size)
    x = model.embed(document)
    for layer in range(model.config.n_layers):
        q, k, v = model.attn_qkv(layer, x, positions)
        exact = flash_attention(q, k, v, q_pos=positions, k_pos=positions)
        windowed = flash_attention(
            q, k, v, q_pos=positions, k_pos=positions,
            mask_fn=windowed_attention_mask_fn(32),
        )
        x = model.attn_residual(layer, x, exact.out)
        x = model.ffn_residual(layer, x)
    final_gap = np.abs(exact.out[-1] - windowed.out[-1]).max()
    print(f"last-layer attention difference at the probe position, "
          f"exact vs 32-token window: {final_gap:.3f} (non-zero = the "
          f"window lost the needle)")
    assert final_gap > 1e-6

    # --- answer generation is identical to single-device greedy ----------
    cp_answer = engine.generate({0: np.array([needle[2]])}, max_new_tokens=4)[0]
    history = list(document) + [int(needle[2])]
    expected = []
    for _ in range(4):
        logits = model.forward(np.array(history))
        tok = int(np.argmax(logits[-1]))
        expected.append(tok)
        history.append(tok)
    print(f"CP answer tokens:       {cp_answer}")
    print(f"single-device tokens:   {expected}")
    assert cp_answer == expected
    print("long-range retrieval preserved exactly under context parallelism")


if __name__ == "__main__":
    main()
