"""Extension experiment: measured disaggregation vs the analytic simulator.

:mod:`repro.experiments.disaggregation` prices the §4.3 architecture with
closed-form per-request latencies, and
:class:`repro.serving.simulator.ClusterServingSimulator` predicts its
system-level TTFT/TTIT under load — but both only *model* the interference
colocated serving suffers. This experiment runs the same multi-session
trace through the executable continuous-batching runtime twice — one
colocated engine, then a prefill pool feeding a decode pool over the
priced KV-transfer stream — and puts the *measured* TTFT/TTIT next to the
discrete-event simulator's prediction for the same deployment shape.

The headline is the TTIT tail: colocated decode rounds stall behind every
interleaved prefill chunk (p95 TTIT carries whole prefill rounds), while
the disaggregated decode pool streams at clean per-round TTIT and pays the
wire only once per turn (the first inter-token gap). Both runs decode
bit-identical tokens — disaggregation changes timing, never values.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.model.config import llama3_405b_config, tiny_config
from repro.perf.hardware import HostSpec, gtt_host
from repro.perf.latency import LatencySimulator
from repro.serving.simulator import ClusterServingSimulator
from repro.workloads.replay import script_to_arrivals, submit_scripts_to_runtime


def _ttit_ms(metrics) -> tuple[float, float]:
    """Mean/p95 TTIT in ms from a :class:`ServingMetrics` (nan-safe)."""
    mean = float(np.mean(metrics.ttit_samples)) if metrics.ttit_samples else float("nan")
    return mean * 1e3, metrics.percentile_ttit(95) * 1e3


def run(
    host: HostSpec | None = None,
    *,
    n_sessions: int = 4,
    turns: int = 2,
    first_prompt: int = 48,
    prefill_world: int = 2,
    decode_world: int = 2,
    priced_ranks: int = 4,
    seed: int = 11,
) -> ExperimentResult:
    """Measured colocated vs disaggregated serving, with predictions.

    Numerics run the tiny model (colocated on ``prefill_world`` ranks;
    disaggregated as ``prefill_world``:``decode_world`` pools); the step
    clock prices rounds for Llama3 405B on ``priced_ranks`` CP hosts,
    with the disaggregated decode pool priced at single-host TP TTIT and
    the KV stream at ring bandwidth — the same constants the analytic
    simulator uses, so the two columns are comparable.
    """
    from repro.core.engine import ContextParallelEngine
    from repro.model.llama import LlamaModel
    from repro.runtime import ContinuousBatchingRuntime, SimulatedStepClock
    from repro.serving.scheduler import ChunkedPrefillPolicy
    from repro.workloads.generator import WorkloadGenerator

    host = host if host is not None else gtt_host()
    cfg405 = llama3_405b_config()
    sim = LatencySimulator(cfg405, host)
    model = LlamaModel(tiny_config(), seed=0)
    gen = WorkloadGenerator(model.config.vocab_size, seed=seed)
    scripts = [
        gen.conversation(
            sid, turns=turns, first_prompt=first_prompt,
            followup_range=(6, 12), response_range=(4, 6),
        )
        for sid in range(n_sessions)
    ]

    def make_policy():
        return ChunkedPrefillPolicy(
            chunk_tokens=16, max_tokens_per_round=32, max_seqs_per_round=4
        )

    def measure(disaggregated: bool):
        if disaggregated:
            engine = ContextParallelEngine(model, world_size=prefill_world)
            decode_engine = ContextParallelEngine(model, world_size=decode_world)
            runtime = ContinuousBatchingRuntime(
                engine,
                decode_engine=decode_engine,
                policy=make_policy(),
                clock=SimulatedStepClock(sim, n_ranks=priced_ranks, tp_decode=True),
            )
        else:
            engine = ContextParallelEngine(model, world_size=prefill_world)
            runtime = ContinuousBatchingRuntime(
                engine,
                policy=make_policy(),
                clock=SimulatedStepClock(sim, n_ranks=priced_ranks),
            )
        rids = submit_scripts_to_runtime(runtime, scripts)
        report = runtime.run(max_steps=1_000_000)
        tokens = {
            script.seq_id: [report.generated(rid) for rid in rids[script.seq_id]]
            for script in scripts
        }
        return report, tokens

    def predict(disaggregated: bool):
        cluster = ClusterServingSimulator(
            cfg405, host, n_ranks=priced_ranks, disaggregated=disaggregated
        )
        report = cluster.simulate(script_to_arrivals(scripts))
        per_token = [
            (c.finish - c.first_token) / c.decoded
            for c in report.completions
            if c.decoded
        ]
        mean_ttit = float(np.mean(per_token) * 1e3) if per_token else float("nan")
        p95_ttit = float(np.percentile(per_token, 95) * 1e3) if per_token else float("nan")
        return report, mean_ttit, p95_ttit

    res = ExperimentResult(
        experiment_id="Disaggregated runtime",
        title=(
            f"{n_sessions} sessions x {turns} turns: colocated CP{prefill_world} vs "
            f"CP{prefill_world}:CP{decode_world} pools (priced as 405B, CP{priced_ranks})"
        ),
        headers=[
            "deployment", "source",
            "mean TTFT (s)", "p95 TTFT (s)",
            "mean TTIT (ms)", "p95 TTIT (ms)",
            "makespan (s)",
        ],
    )

    colo_report, colo_tokens = measure(False)
    disagg_report, disagg_tokens = measure(True)
    if colo_tokens != disagg_tokens:
        raise AssertionError(
            "serving-level exactness violated: disaggregated tokens diverged "
            "from colocated replay"
        )

    for name, report in (("colocated", colo_report), ("disaggregated", disagg_report)):
        m = report.metrics
        mean_ttit, p95_ttit = _ttit_ms(m)
        res.add_row(
            name, "runtime (measured)",
            float(np.mean(m.ttft_samples)), m.percentile_ttft(95),
            mean_ttit, p95_ttit,
            report.makespan,
        )
    for name, disagg in (("colocated", False), ("disaggregated", True)):
        report, mean_ttit, p95_ttit = predict(disagg)
        res.add_row(
            name, "simulator (predicted)",
            report.mean_ttft(), float(np.percentile(report.ttfts(), 95)),
            mean_ttit, p95_ttit,
            report.makespan,
        )

    stall = disagg_report.metrics.transfer_stall_s
    res.notes.append(
        "Both runtime runs decode bit-identical tokens (asserted): pool "
        "splits and transfer schedules change timing, never values."
    )
    res.notes.append(
        f"Disaggregated run: {disagg_report.metrics.transfers} KV transfers "
        f"({disagg_report.metrics.transferred_kv_tokens} tokens), "
        f"{stall:.2f}s decode-pool stall waiting on the wire; pool "
        "utilization "
        + ", ".join(
            f"{pool}: {frac:.1%}" for pool, frac in disagg_report.pool_utilization().items()
        )
        + "."
    )
    res.notes.append(
        "Interference is the measured story the analytic model predicts: "
        "the disaggregated decode pool's measured TTIT lands on the "
        "simulator's clean TP-decode prediction, while measured colocated "
        "TTIT is *worse* than predicted — the runtime interleaves decode "
        "with every prefill chunk (fine-grained stalls the simulator's "
        "whole-prefill-at-a-time model underestimates). Measured TTFTs run "
        "above the predictions for the complementary reason: chunked "
        "prefill rounds serialize against the decode interleave instead of "
        "running one monolithic dedicated prefill."
    )
    return res
