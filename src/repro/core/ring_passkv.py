"""Ring pass-KV attention — paper Algorithm 2 (Figure 3).

Each CP rank keeps its queries stationary and circulates its KV shard around
the ring. At ring step ``j``, rank ``k`` holds the KV shard that originated
at rank ``s = (k - j) mod N``, computes the partial attention
``O_s_k = GQA(Q_k, KV_s)``, and forwards the shard to its next neighbour
(overlapped with the compute on real hardware). After ``N`` partials the
exact output is recovered with merge attention (Appendix B).

Why pass-KV for full prefill: with GQA, KV messages are ``2 * NKV / NH`` the
size of Q messages (16x smaller for Llama3 405B), and with ``P = 0`` the
attention compute per step comfortably hides the SendRecv (Equation 2). The
fused-varseq variant here also honours the equal-message-size invariant by
padding per-sequence KV slices to ``L_i = max_j (P^i_j + T^i_j)`` before
the ring starts (see :func:`repro.core.sharding.pad_kv_shards`).
"""

from __future__ import annotations

import numpy as np

from repro.attention.flash import AttentionResult, flash_attention
from repro.core.merge import merge_partials
from repro.core.ring_skip import kv_reach, partial_fully_masked, query_reach
from repro.core.sharding import ShardedKV, ShardedQueries, pad_kv_shards
from repro.distributed.process_group import SimProcessGroup
from repro.distributed.ring import source_rank_at_step


def ring_passkv_prefill(
    group: SimProcessGroup,
    queries: list[ShardedQueries],
    kv_shards: list[ShardedKV],
    *,
    scale: float | None = None,
    block_size: int = 128,
    pad_messages: bool = True,
    mask_fn=None,
    compute_dtype=None,
    skip_masked_shards: bool = True,
) -> list[AttentionResult]:
    """Fused varseq ring pass-KV prefill (Algorithm 2).

    Args:
        group: lockstep process group (world_size == len(queries)).
        queries: per-rank query shards (new tokens only, load-balance
            sharded; see :func:`repro.core.sharding.shard_sequences`).
        kv_shards: per-rank KV shards containing both cached tokens from
            previous turns and the freshly projected KV of this turn's new
            tokens.
        scale: attention score scale (default ``1/sqrt(DH)``).
        block_size: KV block size of the local flash kernel.
        pad_messages: enforce the equal-message-size ring invariant by
            padding per-sequence KV slices; disable only in unit tests that
            want to observe raw shard lengths.
        mask_fn: optional absolute-coordinate mask override (windowed /
            sink attention); exactness is preserved because masks never
            depend on storage order.
        compute_dtype: kernel arithmetic dtype forwarded to the local flash
            kernel (merge accumulation stays float64; default exact fp64).
        skip_masked_shards: skip ring-step partials whose causal mask is
            provably all-False (see :mod:`repro.core.ring_skip`) — the
            skipped partial is replaced by the exact identity element, so
            output is unchanged. Disabled automatically under ``mask_fn``,
            which *replaces* the causal predicate (it may be non-causal),
            invalidating the reach test.

    Returns:
        Per-rank exact :class:`AttentionResult` for each rank's queries, in
        the rank's local token order.
    """
    n = group.world_size
    if len(queries) != n or len(kv_shards) != n:
        raise ValueError(
            f"need one query and KV shard per rank: world={n}, "
            f"queries={len(queries)}, kvs={len(kv_shards)}"
        )

    if pad_messages:
        blocks, _ = pad_kv_shards(list(kv_shards))
    else:
        blocks = list(kv_shards)

    # Causal-reach summaries, computed once per shard. blocks[r] at step 0
    # originated at rank r, so k_summary is indexed by origin rank and the
    # ring schedule (source_rank_at_step) recovers which summary applies to
    # the payload a rank holds at any later step.
    skip = skip_masked_shards and mask_fn is None
    if skip:
        q_summary = [query_reach(qr.positions, qr.seq_ids) for qr in queries]
        k_summary = [kv_reach(blk.positions, blk.seq_ids) for blk in blocks]

    partials: list[list[AttentionResult]] = [[] for _ in range(n)]
    for step in range(n):
        for rank in range(n):
            src = source_rank_at_step(rank, step, n)
            if skip and partial_fully_masked(q_summary[rank], k_summary[src]):
                # Provably all-masked partial: append the identity element
                # without touching the kernel (in causal full prefill this
                # skips roughly half of all rank x step partials).
                tq, nh, dh = queries[rank].q.shape
                partials[rank].append(AttentionResult.empty(tq, nh, dh))
            else:
                blk = blocks[rank]
                partials[rank].append(
                    flash_attention(
                        queries[rank].q,
                        blk.k,
                        blk.v,
                        q_pos=queries[rank].positions,
                        k_pos=blk.positions,
                        q_seq=queries[rank].seq_ids,
                        k_seq=blk.seq_ids,
                        causal=True,
                        scale=scale,
                        block_size=block_size,
                        mask_fn=mask_fn,
                        compute_dtype=compute_dtype,
                    )
                )
        if step < n - 1:
            blocks = group.ring_shift(blocks, step=step, tag="passkv")

    return [merge_partials(p) for p in partials]
