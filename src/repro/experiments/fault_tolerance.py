"""Extension experiment: graceful degradation under injected faults.

Production serving systems are judged by *goodput* — requests completed
within SLO per second (DistServe) — and by how they behave when
components actually fail: Mooncake's overload-oriented scheduler sheds
work early rather than wedging the cluster. This experiment arms the
runtime's deterministic chaos layer (:mod:`repro.runtime.faults`) over
a disaggregated prefill/decode deployment and sweeps fault intensity
(mid-stream KV-transfer deaths, lost swap payloads, a whole-pool KV
reset) against the three recovery policies (``--preemption``
recompute / trim / swap), with a per-request deadline so saturation
shows up as shed requests instead of unbounded latency.

The headline is the shape of the degradation: as the fault rate rises,
p95 TTFT and makespan grow (retries, backoff, re-prefills) and the
completion rate falls (deadline sheds) — but every cell *drains*, no
cell leaks KV state, and every request that does complete streams
tokens bit-identical to its sequential, fault-free replay (asserted
per cell). Faults change who finishes and when — never what a
completed request computed.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.model.config import llama3_405b_config, tiny_config
from repro.perf.hardware import HostSpec, gtt_host
from repro.perf.latency import LatencySimulator

#: Recovery policies compared, in sweep order.
MODES = ("recompute", "trim", "swap")

#: Injected fault intensity: transfer-death and swap-loss probability
#: per event (the highest tier also injects a whole-pool KV reset).
RATES = (0.0, 0.25, 0.6)


def run(
    host: HostSpec | None = None,
    *,
    n_sessions: int = 4,
    turns: int = 2,
    first_prompt: int = 64,
    world_size: int = 2,
    capacity: int = 96,
    rates: tuple[float, ...] = RATES,
    deadline_s: float = 10.0,
    priced_ranks: int = 4,
    seed: int = 11,
    fault_seed: int = 7,
) -> ExperimentResult:
    """Fault rate x recovery policy over a disaggregated deployment.

    Every cell replays the *same* trace through a CP-``world_size``
    prefill pool feeding a CP-``world_size`` decode pool (tiny-model
    numerics, rounds priced for Llama3 405B on ``priced_ranks`` CP
    hosts) under a :class:`repro.runtime.faults.FaultPlan` of the given
    intensity. Per cell, three things are asserted, mirroring the
    fault-schedule property test: the run drains, the engines' KV
    bookkeeping audits clean (:meth:`kv_leak_report`), and each
    *completed* request's tokens equal its sequential fault-free replay.
    """
    from repro.core.engine import ContextParallelEngine
    from repro.model.llama import LlamaModel
    from repro.runtime import ContinuousBatchingRuntime, FaultPlan, SimulatedStepClock
    from repro.runtime.state import RequestState
    from repro.serving.scheduler import ChunkedPrefillPolicy
    from repro.workloads.generator import WorkloadGenerator
    from repro.workloads.replay import (
        replay_scripts_sequential,
        submit_scripts_to_runtime,
    )

    host = host if host is not None else gtt_host()
    model = LlamaModel(tiny_config(), seed=0)
    gen = WorkloadGenerator(model.config.vocab_size, seed=seed)
    scripts = [
        gen.conversation(
            sid, turns=turns, first_prompt=first_prompt,
            followup_range=(8, 16), response_range=(4, 6),
        )
        for sid in range(n_sessions)
    ]
    total_requests = sum(s.turns for s in scripts)
    clock = SimulatedStepClock(
        LatencySimulator(llama3_405b_config(), host),
        n_ranks=priced_ranks,
        tp_decode=True,
    )
    reference = replay_scripts_sequential(
        lambda: ContextParallelEngine(model, world_size=world_size), scripts
    )

    res = ExperimentResult(
        experiment_id="Fault tolerance",
        title=(
            f"{n_sessions} sessions x {turns} turns through CP{world_size} "
            f"prefill -> CP{world_size} decode under injected faults "
            f"(deadline {deadline_s:.0f}s, CP{priced_ranks} 405B pricing)"
        ),
        headers=[
            "fault rate", "recovery",
            "transfer faults", "swap losses", "resets",
            "completed", "completion rate",
            "p95 TTFT (s)", "makespan (s)", "goodput (req/s)",
        ],
    )

    for rate in rates:
        plan = FaultPlan(
            seed=fault_seed,
            transfer_fail_rate=rate,
            swap_loss_rate=rate,
            pool_resets=1 if rate >= max(rates) > 0 else 0,
            deadline_s=deadline_s,
        )
        for mode in MODES:
            engine = ContextParallelEngine(
                model, world_size=world_size, capacity_tokens=capacity
            )
            decode_engine = ContextParallelEngine(
                model, world_size=world_size, capacity_tokens=capacity
            )
            runtime = ContinuousBatchingRuntime(
                engine,
                decode_engine=decode_engine,
                policy=ChunkedPrefillPolicy(
                    chunk_tokens=16, max_tokens_per_round=32, max_seqs_per_round=4
                ),
                clock=clock,
                preemption=mode,
                swap_capacity_tokens=4096 if mode == "swap" else None,
                faults=plan,
            )
            rids = submit_scripts_to_runtime(runtime, scripts)
            report = runtime.run(max_steps=400_000)

            leaks = engine.kv_leak_report() + decode_engine.kv_leak_report()
            if leaks:
                raise AssertionError(
                    f"KV state leaked at rate {rate} / {mode}: {leaks}"
                )
            for script in scripts:
                for i, rid in enumerate(rids[script.seq_id]):
                    rec = report.records[rid]
                    if rec.status is None:
                        raise AssertionError(
                            f"rate {rate} / {mode}: request {rid} never "
                            "reached a terminal state"
                        )
                    if rec.state is RequestState.FINISHED and (
                        list(report.generated(rid))
                        != list(reference[script.seq_id][i])
                    ):
                        raise AssertionError(
                            "serving-level exactness violated under faults: "
                            f"rate {rate} / {mode}, seq {script.seq_id} turn {i}"
                        )

            m = report.metrics
            completed = len(report.completed)
            res.add_row(
                rate,
                mode,
                m.transfer_faults,
                m.swap_losses,
                m.pool_resets,
                f"{completed}/{total_requests}",
                completed / total_requests,
                m.percentile_ttft(95),
                report.makespan,
                report.goodput(),
            )

    res.notes.append(
        "Every cell drained, audited leak-free, and streamed bit-identical "
        "tokens for each completed request vs sequential fault-free replay "
        "(asserted): faults change who finishes and when, never what a "
        "completed request computed."
    )
    base = res.column("p95 TTFT (s)")[: len(MODES)]
    worst = res.column("p95 TTFT (s)")[-len(MODES):]
    rate_hi = rates[-1]
    res.notes.append(
        f"Degradation is graceful, not cliff-shaped: raising fault intensity "
        f"from {rates[0]} to {rate_hi} moved p95 TTFT from "
        + "/".join(f"{v:.2f}s" for v in base)
        + " to "
        + "/".join(f"{v:.2f}s" for v in worst)
        + f" ({'/'.join(MODES)}) while the deadline shed the overflow instead "
        "of stretching every latency unboundedly."
    )
    return res
