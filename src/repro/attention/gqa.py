"""Grouped-query attention (GQA) head bookkeeping.

GQA (Ainslie et al. 2023) shares each key/value head among a *group* of
query heads. The paper leans on this asymmetry heavily: Llama3 405B has
``NH = 128`` query heads but only ``NKV = 8`` KV heads, so KV messages are
16x smaller than Q messages — the reason pass-KV wins for full prefill
(Table 2) and the source of the ``2 * NKV / NH`` threshold in Equation (1).

Tensor convention used across the library (varseq / token-major):

- queries ``q``: ``[T, NH, DH]``
- keys/values ``k``, ``v``: ``[S, NKV, DH]``
"""

from __future__ import annotations

import numpy as np


def kv_head_for_query_head(query_head: int, n_heads: int, n_kv_heads: int) -> int:
    """Index of the KV head serving a given query head.

    Query heads are partitioned into ``n_kv_heads`` contiguous groups of size
    ``n_heads // n_kv_heads`` (the Llama convention).
    """
    if n_heads % n_kv_heads != 0:
        raise ValueError(f"n_heads={n_heads} not divisible by n_kv_heads={n_kv_heads}")
    if not 0 <= query_head < n_heads:
        raise ValueError(f"query_head={query_head} out of range [0, {n_heads})")
    return query_head // (n_heads // n_kv_heads)


def expand_kv_heads(kv: np.ndarray, n_heads: int) -> np.ndarray:
    """Broadcast ``[S, NKV, DH]`` KV tensor to ``[S, NH, DH]``.

    Each KV head is repeated ``NH / NKV`` times so that a plain multi-head
    kernel can consume it. Only the fully-materialized reference kernel
    (:mod:`repro.attention.reference`) uses this expanding copy — it is the
    independent oracle the fused kernel is equivalence-tested against.
    :func:`repro.attention.flash.flash_attention` itself reshapes Q to
    ``[Tq, NKV, G, DH]`` and contracts grouped query heads directly against
    the ``[Tk, NKV, DH]`` KV blocks, so no repeated-head tensor is ever
    materialized on the hot path (its legacy ``fused=False`` expand path
    was removed once the fused kernel's equivalence was pinned).
    """
    s, n_kv, dh = kv.shape
    if n_heads % n_kv != 0:
        raise ValueError(f"n_heads={n_heads} not divisible by n_kv_heads={n_kv}")
    group = n_heads // n_kv
    return np.repeat(kv, group, axis=1).reshape(s, n_heads, dh)


def validate_gqa_shapes(q: np.ndarray, k: np.ndarray, v: np.ndarray) -> tuple[int, int, int, int]:
    """Validate GQA tensor shapes; return ``(Tq, Tk, NH, NKV)``.

    Raises:
        ValueError: on rank/shape/grouping mismatches.
    """
    if q.ndim != 3 or k.ndim != 3 or v.ndim != 3:
        raise ValueError(
            f"expected 3-D [tokens, heads, head_dim] tensors, got q{q.shape} k{k.shape} v{v.shape}"
        )
    tq, nh, dh = q.shape
    tk, nkv, dh_k = k.shape
    if k.shape != v.shape:
        raise ValueError(f"k{k.shape} and v{v.shape} must have identical shapes")
    if dh != dh_k:
        raise ValueError(f"head_dim mismatch: q has {dh}, k has {dh_k}")
    if nkv == 0 or nh % nkv != 0:
        raise ValueError(f"query heads ({nh}) must be a positive multiple of kv heads ({nkv})")
    return tq, tk, nh, nkv
