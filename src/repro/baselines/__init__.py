"""Baselines the paper compares against.

- :mod:`repro.baselines.tensor_parallel` — multi-node tensor parallelism
  (§4.2.2): query heads sharded across GPUs, KV heads replicated when the
  group outgrows ``NKV``, activations AllReduced around every block. The
  numeric implementation here validates losslessness; the latency story
  lives in :meth:`repro.perf.latency.LatencySimulator.tp_prefill`.
- :mod:`repro.baselines.allgather_passkv` — the all-gather pass-KV scheme
  used in Llama3 *training* (§3.5.2): gather every rank's KV, then one
  local attention. Exact, but the gather is exposed on the critical path —
  the motivation for the ring formulation.
"""

from repro.baselines.allgather_passkv import allgather_passkv_prefill
from repro.baselines.tensor_parallel import tp_attention, tp_shard_heads

__all__ = ["allgather_passkv_prefill", "tp_attention", "tp_shard_heads"]
