"""Tests for the KV-transfer stream and transfer pricing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.config import llama3_405b_config
from repro.perf.hardware import gtt_host
from repro.perf.latency import LatencySimulator
from repro.runtime.clock import SimulatedStepClock, UnitStepClock
from repro.runtime.transfer import KVTransferStream


class TestTransferPricing:
    def test_unit_clock_fixed_cost(self):
        c = UnitStepClock(transfer_cost=2.5)
        assert c.price_transfer(1) == 2.5
        assert c.price_transfer(10_000) == 2.5

    def test_unit_clock_zero_tokens_free(self):
        assert UnitStepClock().price_transfer(0) == 0.0

    def test_unit_clock_validation(self):
        with pytest.raises(ValueError):
            UnitStepClock(transfer_cost=-1.0)
        with pytest.raises(ValueError):
            UnitStepClock().price_transfer(-1)

    def test_simulated_clock_bandwidth_model(self):
        sim = LatencySimulator(llama3_405b_config(), gtt_host())
        clock = SimulatedStepClock(sim, n_ranks=4)
        tokens = 131072
        want = tokens * sim.config.kv_bytes_per_token(sim.element_bytes) / sim.host.ring_bandwidth
        assert clock.price_transfer(tokens) == pytest.approx(want)
        assert clock.price_transfer(0) == 0.0
        # linear in payload
        assert clock.price_transfer(2 * tokens) == pytest.approx(2 * clock.price_transfer(tokens))

    def test_simulated_clock_tp_decode_pricing(self):
        sim = LatencySimulator(llama3_405b_config(), gtt_host())
        cp = SimulatedStepClock(sim, n_ranks=4)
        tp = SimulatedStepClock(sim, n_ranks=4, tp_decode=True)
        ctx = [131072]
        assert tp.price_decode(ctx) == pytest.approx(sim.tp_decode(131072, batch=1, n_nodes=1).total)
        # the dedicated decode host avoids the CP decode regression
        assert tp.price_decode(ctx) < cp.price_decode(ctx)


class TestKVTransferStream:
    def make(self, cost=2.0):
        return KVTransferStream(UnitStepClock(transfer_cost=cost))

    def test_schedule_and_ready(self):
        s = self.make()
        t = s.schedule(seq_id=0, request_id=10, tokens=16, now=1.0)
        assert (t.start, t.finish) == (1.0, 3.0)
        assert s.ready(2.9) == []
        assert s.ready(3.0) == [t]
        s.complete(t)
        assert s.in_flight() == []

    def test_channel_serializes(self):
        """A transfer scheduled while the wire is busy queues behind it."""
        s = self.make(cost=5.0)
        a = s.schedule(0, 1, 8, now=0.0)
        b = s.schedule(1, 2, 8, now=1.0)  # wire busy until 5.0
        assert a.finish == 5.0
        assert (b.start, b.finish) == (5.0, 10.0)
        assert s.busy_until == 10.0
        assert s.busy_s == 10.0

    def test_zero_token_transfer(self):
        """An up-to-date destination yields a legal zero-length transfer."""
        s = self.make()
        t = s.schedule(0, 1, 0, now=4.0)
        assert t.finish == 4.0
        assert s.ready(4.0) == [t]
        s.complete(t)
        assert s.in_flight() == []
        assert s.busy_s == 0.0

    def test_cancel_after_finish_sinks_everything(self):
        """A payload already fully streamed refunds nothing."""
        s = self.make(cost=3.0)
        s.schedule(0, 1, 8, now=0.0)
        cancelled = s.cancel(0, now=3.0)
        assert cancelled is not None and cancelled.seq_id == 0
        assert cancelled.refunded_s == 0.0 and cancelled.sunk_s == 3.0
        assert s.in_flight() == []
        assert s.busy_s == 3.0
        # the channel reservation stands: a later transfer queues behind
        assert s.schedule(1, 2, 8, now=0.0).start == 3.0

    def test_cancel_mid_stream_refunds_unstreamed_tail(self):
        """A mid-stream cancel sinks only the seconds already streamed."""
        s = self.make(cost=4.0)
        s.schedule(0, 1, 8, now=0.0)
        cancelled = s.cancel(0, now=1.5)
        assert cancelled.refunded_s == pytest.approx(2.5)
        assert cancelled.sunk_s == pytest.approx(1.5)
        assert s.busy_s == pytest.approx(1.5)
        # the wire frees at the cancel instant, not the phantom finish
        assert s.schedule(1, 2, 8, now=1.5).start == 1.5

    def test_cancel_queued_refunds_fully_and_unblocks_successors(self):
        """Regression: a transfer cancelled while still queued used to
        leave ``busy_until`` at its phantom finish, delaying every later
        transfer; now the reservation refunds and successors re-pack."""
        s = self.make(cost=3.0)
        a = s.schedule(0, 1, 8, now=0.0)   # streams [0, 3)
        b = s.schedule(1, 2, 8, now=0.5)   # queued  [3, 6)
        c = s.schedule(2, 3, 8, now=1.0)   # queued  [6, 9)
        cancelled = s.cancel(1, now=2.0)   # b never started
        assert cancelled.refunded_s == pytest.approx(3.0)
        assert cancelled.sunk_s == 0.0
        assert s.busy_s == pytest.approx(6.0)
        # a untouched, c takes b's slot
        assert (a.start, a.finish) == (0.0, 3.0)
        assert (c.start, c.finish) == (3.0, 6.0)
        assert s.busy_until == 6.0
        # and the wire frees for new work at 6.0, not 9.0
        assert s.schedule(3, 4, 8, now=2.0).start == 6.0

    def test_cancel_repack_respects_requested_times(self):
        """A successor never re-packs earlier than its own request."""
        s = self.make(cost=2.0)
        s.schedule(0, 1, 8, now=0.0)       # streams [0, 2)
        b = s.schedule(1, 2, 8, now=1.0)   # queued  [2, 4)
        c = s.schedule(2, 3, 8, now=5.0)   # queued  [5, 7)
        s.cancel(1, now=1.5)               # b cancelled while queued
        assert (c.start, c.finish) == (5.0, 7.0)
        assert s.busy_until == 7.0

    def test_cancel_unknown_is_noop(self):
        s = self.make()
        assert s.cancel(7, now=0.0) is None

    def test_cancel_extended_transfer_never_refunds_gap_time(self):
        """An extended payload's [start, finish] spans the idle gap
        before the extension re-entered the wire; the refund must cover
        only wire segments still ahead of the cancel, not the gap."""
        s = self.make(cost=10.0)
        t = s.schedule(0, 1, 8, now=0.0)        # streams [0, 10)
        s.extend(t, 4, now=20.0)                # re-enters wire [20, 30)
        assert t.wire_s == 20.0
        cancelled = s.cancel(0, now=12.0)       # first segment fully streamed
        assert cancelled.refunded_s == pytest.approx(10.0)  # only the extension
        assert cancelled.sunk_s == pytest.approx(10.0)      # the streamed delta
        assert s.busy_s == pytest.approx(10.0)

    def test_repack_never_reuses_completed_wire_time(self):
        """Slots physically consumed by already-landed transfers stay
        consumed: a cancel-triggered repack must not move a queued
        successor into them."""
        s = self.make(cost=5.0)
        refused = s.schedule(0, 1, 8, now=0.0)   # streams [0, 5), lands but is refused
        landed = s.schedule(1, 2, 8, now=1.0)    # streams [5, 10)
        queued = s.schedule(2, 3, 8, now=2.0)    # queued  [10, 15)
        s.complete(landed)                       # decode pool imported it
        # the refused payload's request is evicted at a lagging clock
        s.cancel(0, now=1.0)
        # queued must not slide into [5, 10) — that wire time was spent
        assert queued.start >= 10.0
        assert s.busy_until >= queued.finish

    def test_duplicate_in_flight_rejected(self):
        s = self.make()
        s.schedule(0, 1, 8, now=0.0)
        with pytest.raises(ValueError):
            s.schedule(0, 2, 4, now=0.0)

    def test_negative_tokens_rejected(self):
        with pytest.raises(ValueError):
            self.make().schedule(0, 1, -1, now=0.0)

    def test_ready_orders_by_finish(self):
        s = self.make(cost=1.0)
        a = s.schedule(0, 1, 8, now=0.0)
        b = s.schedule(1, 2, 8, now=0.0)
        assert s.ready(10.0) == [a, b]
        assert s.in_flight() == [a, b]

    def test_extend_reships_extra_tokens(self):
        """Growing an in-flight payload occupies the wire again for the
        extra tokens only, pushing its finish out."""
        s = self.make(cost=3.0)
        t = s.schedule(0, 1, 8, now=0.0)
        assert t.finish == 3.0
        s.extend(t, 40, now=5.0)
        assert t.tokens == 48
        assert (t.start, t.finish) == (0.0, 8.0)  # 5.0 + another 3.0 on the wire
        assert s.busy_until == 8.0
        assert s.busy_s == 6.0
        assert s.ready(7.9) == []
        assert s.ready(8.0) == [t]

    def test_extend_validation(self):
        s = self.make()
        t = s.schedule(0, 1, 8, now=0.0)
        with pytest.raises(ValueError):
            s.extend(t, 0, now=0.0)
        s.cancel(0, now=0.0)
        with pytest.raises(ValueError, match="not in flight"):
            s.extend(t, 4, now=0.0)

    def test_extend_rearms_refusal_dedup(self):
        """A reshipped (grown) payload is a new admission decision: its
        ``refused`` flag resets so the next refusal counts once, not zero
        times — and never twice for the same payload."""
        s = self.make(cost=3.0)
        t = s.schedule(0, 1, 8, now=0.0)
        t.refused = True
        s.extend(t, 4, now=1.0)
        assert t.refused is False

    def test_repeated_refuse_extend_cancel_cycle_refunds_exactly(self):
        """Regression for the refund accounting under the full admission
        grind: a payload refused at landing, reshipped by ``extend``
        (re-arming ``refused`` each cycle), refused again, reshipped
        again, then cancelled mid-stream. The refund must cover only the
        un-streamed tail of the *last* segment — every earlier segment
        was physically streamed and stays sunk, and the idle gaps
        between wire re-entries never count as refundable."""
        s = self.make(cost=2.0)
        t = s.schedule(0, 1, 8, now=0.0)          # seg [0, 2)
        t.refused = True                          # decode pool refuses at 2.0
        s.extend(t, 4, now=3.0)                   # seg [3, 5)
        assert t.refused is False                 # re-armed: new admission decision
        t.refused = True                          # refused again at 5.0
        s.extend(t, 4, now=6.0)                   # seg [6, 8)
        assert t.refused is False
        assert t.wire_s == pytest.approx(6.0)
        assert t.segments == [(0.0, 2.0), (3.0, 5.0), (6.0, 8.0)]

        cancelled = s.cancel(0, now=7.0)          # mid-third-segment
        assert cancelled.refunded_s == pytest.approx(1.0)   # only [7, 8)
        assert cancelled.sunk_s == pytest.approx(5.0)       # all streamed seconds
        assert s.busy_s == pytest.approx(5.0)
        # the wire frees at the cancel instant, not the phantom finish
        assert s.schedule(1, 2, 8, now=6.0).start == pytest.approx(7.0)

    def test_refuse_extend_cycle_cancelled_at_landing_sinks_all(self):
        """The injected-fault path: a transfer that dies *at landing
        time* — after any number of refuse/extend cycles — has streamed
        every reserved second, so the cancel refunds nothing and the
        whole wire cost is sunk (what the fault metrics charge)."""
        s = self.make(cost=2.0)
        t = s.schedule(0, 1, 8, now=0.0)          # seg [0, 2)
        t.refused = True
        s.extend(t, 4, now=4.0)                   # seg [4, 6)
        cancelled = s.cancel(0, now=6.0)          # dies exactly at landing
        assert cancelled.refunded_s == 0.0
        assert cancelled.sunk_s == pytest.approx(4.0)
        assert s.busy_s == pytest.approx(4.0)
        # the retry reschedule (fault path) is a fresh transfer and may
        # start immediately: the dead payload holds no future reservation
        retry = s.schedule(0, 1, 12, now=6.5)
        assert retry.start == pytest.approx(6.5)

    def test_refuse_extend_cancel_cycles_with_queued_successor(self):
        """Refunds from a cancelled refuse/extend grind re-pack queued
        successors without ever handing them wire time that was spent."""
        s = self.make(cost=2.0)
        t = s.schedule(0, 1, 8, now=0.0)          # seg [0, 2)
        t.refused = True
        s.extend(t, 4, now=3.0)                   # seg [3, 5)
        queued = s.schedule(1, 2, 8, now=3.5)     # queued [5, 7)
        cancelled = s.cancel(0, now=4.0)          # mid-second-segment
        assert cancelled.refunded_s == pytest.approx(1.0)   # only [4, 5)
        assert cancelled.sunk_s == pytest.approx(3.0)
        # the successor slides into the freed tail, never before its
        # own request nor into streamed wire time
        assert queued.start == pytest.approx(4.0)
        assert queued.finish == pytest.approx(6.0)
        assert s.busy_s == pytest.approx(5.0)
        assert s.busy_until == pytest.approx(6.0)


class TestCancelRefundProperty:
    """A transfer cancelled before it starts must be invisible: every
    later transfer's (start, finish) matches a channel where the
    cancelled transfer was never scheduled at all."""

    @given(
        st.lists(
            st.tuples(st.floats(0.0, 10.0), st.integers(0, 64)),
            min_size=2,
            max_size=6,
        ),
        st.integers(0, 5),
        st.floats(0.0, 10.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_cancelled_before_start_leaves_no_trace(self, reqs, cancel_idx, gap):
        reqs = sorted(reqs)  # schedule calls happen in time order
        cancel_idx = cancel_idx % len(reqs)
        cancel_now = reqs[cancel_idx][0] + gap  # any time >= its request

        real = KVTransferStream(UnitStepClock(transfer_cost=2.0))
        scheduled = []
        for i, (now, tokens) in enumerate(reqs):
            scheduled.append(real.schedule(i, i, tokens, now=now))
        target = scheduled[cancel_idx]
        if target.start < cancel_now:
            return  # already streaming: sunk time is legitimate
        cancelled = real.cancel(target.seq_id, now=cancel_now)
        assert cancelled.sunk_s == 0.0

        counterfactual = KVTransferStream(UnitStepClock(transfer_cost=2.0))
        expected = {}
        for i, (now, tokens) in enumerate(reqs):
            if i == cancel_idx:
                continue
            t = counterfactual.schedule(i, i, tokens, now=now)
            expected[i] = (t.start, t.finish)

        got = {t.seq_id: (t.start, t.finish) for t in real.in_flight()}
        assert got == pytest.approx(expected)
        assert real.busy_s == pytest.approx(counterfactual.busy_s)
        # the next schedule lands identically on both channels
        n = len(reqs)
        t_real = real.schedule(n, n, 8, now=cancel_now)
        t_cf = counterfactual.schedule(n, n, 8, now=cancel_now)
        assert (t_real.start, t_real.finish) == pytest.approx((t_cf.start, t_cf.finish))
