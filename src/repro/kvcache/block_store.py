"""Block-table KV storage with gather-based attention access.

:class:`repro.kvcache.cache.RankKVCache` stores KV as appended chunks and
concatenates on read; production systems instead keep KV in fixed-size
*blocks* addressed through a block table (PagedAttention, Kwon et al. 2023
— the memory-management substrate the paper cites in §2.2). This module
implements that layout faithfully:

- a :class:`BlockStore` owns a pool of ``[num_blocks, block_size, NKV, DH]``
  K/V block tensors;
- each sequence's tokens live in non-contiguous blocks listed by its block
  table;
- :meth:`BlockStore.gather` materializes a sequence's KV in position order
  via block-table indirection — the access pattern a paged attention
  kernel performs.

Tests pin gather-based attention to contiguous-storage attention exactly.
"""

from __future__ import annotations

import numpy as np

from repro.core.sharding import ShardedKV
from repro.kvcache.paged import OutOfBlocksError, PagedAllocator


class BlockStore:
    """Paged KV storage for one rank and one layer.

    Args:
        num_blocks: pool size.
        block_size: tokens per block.
        n_kv_heads / head_dim: KV geometry.
    """

    def __init__(self, num_blocks: int, block_size: int, n_kv_heads: int, head_dim: int):
        self.allocator = PagedAllocator(num_blocks=num_blocks, block_size=block_size)
        self.block_size = block_size
        self.n_kv_heads = n_kv_heads
        self.head_dim = head_dim
        self.k_pool = np.zeros((num_blocks, block_size, n_kv_heads, head_dim))
        self.v_pool = np.zeros((num_blocks, block_size, n_kv_heads, head_dim))
        self.pos_pool = np.zeros((num_blocks, block_size), dtype=np.int64)
        #: per-sequence block tables: ordered block ids
        self.block_tables: dict[int, list[int]] = {}
        self._fill: dict[int, int] = {}

    # ------------------------------------------------------------------ #

    def append(self, seq_id: int, k: np.ndarray, v: np.ndarray, positions: np.ndarray) -> None:
        """Append tokens to a sequence, allocating blocks on demand.

        Raises:
            OutOfBlocksError: when the pool is exhausted (allocation is
                transactional via the underlying allocator).
        """
        k = np.asarray(k)
        v = np.asarray(v)
        positions = np.asarray(positions, dtype=np.int64)
        n = k.shape[0]
        if k.shape != v.shape or k.shape[1:] != (self.n_kv_heads, self.head_dim):
            raise ValueError(f"bad KV shapes k{k.shape} v{v.shape}")
        if positions.shape != (n,):
            raise ValueError("positions must match token count")
        if n == 0:
            return

        before_blocks = list(self.block_tables.get(seq_id, []))
        before_fill = self._fill.get(seq_id, 0)
        self.allocator.append((seq_id,), n)  # may raise; pool state exact

        table = self.block_tables.setdefault(seq_id, [])
        fill = before_fill
        # extend the table to match the allocator's view
        owned = self.allocator._owners[(seq_id,)]
        for blk in owned[len(table):]:
            table.append(blk)
        del before_blocks

        for i in range(n):
            blk = table[fill // self.block_size]
            slot = fill % self.block_size
            self.k_pool[blk, slot] = k[i]
            self.v_pool[blk, slot] = v[i]
            self.pos_pool[blk, slot] = positions[i]
            fill += 1
        self._fill[seq_id] = fill

    def tokens(self, seq_id: int) -> int:
        return self._fill.get(seq_id, 0)

    def gather(self, seq_ids: list[int] | None = None) -> ShardedKV:
        """Materialize sequences' KV via block-table indirection."""
        if seq_ids is None:
            seq_ids = sorted(self.block_tables)
        ks, vs, ps, ss = [], [], [], []
        for sid in seq_ids:
            fill = self._fill.get(sid, 0)
            if fill == 0:
                continue
            table = np.array(self.block_tables[sid], dtype=np.int64)
            # flat token index -> (block, slot) gather
            idx = np.arange(fill)
            blocks = table[idx // self.block_size]
            slots = idx % self.block_size
            ks.append(self.k_pool[blocks, slots])
            vs.append(self.v_pool[blocks, slots])
            ps.append(self.pos_pool[blocks, slots])
            ss.append(np.full(fill, sid, dtype=np.int64))
        if not ks:
            return ShardedKV.empty(self.n_kv_heads, self.head_dim)
        return ShardedKV(
            k=np.concatenate(ks, axis=0),
            v=np.concatenate(vs, axis=0),
            positions=np.concatenate(ps),
            seq_ids=np.concatenate(ss),
        )

    def release(self, seq_id: int) -> None:
        """Free a sequence's blocks back to the pool."""
        self.allocator.release((seq_id,))
        self.block_tables.pop(seq_id, None)
        self._fill.pop(seq_id, None)

    def fragmentation(self) -> float:
        """Wasted fraction of allocated slots (last-block slack)."""
        allocated = self.allocator.used_blocks * self.block_size
        used = sum(self._fill.values())
        return 0.0 if allocated == 0 else 1.0 - used / allocated
