"""Tests for batched ring pass-Q decode (Algorithm 4)."""

import numpy as np
import pytest

from repro.attention.reference import reference_attention_with_lse
from repro.core.ring_decode import DecodeBatch, ring_passq_decode, round_robin_assignment
from repro.core.sharding import ShardedKV
from repro.distributed.process_group import SimProcessGroup

from helpers import make_qkv


def build_decode_scenario(rng, world, batch, ctx_lens):
    """Per-sequence contexts sharded round-robin-ish across ranks, plus one
    new decode token per sequence (its KV appended to its owner's shard)."""
    assert len(ctx_lens) == batch
    nh, nkv, dh = 8, 2, 16
    seq_kv = {}
    refs = {}
    batch_q = np.zeros((batch, nh, dh))
    positions = np.zeros(batch, dtype=np.int64)
    assignment = round_robin_assignment(batch, world, step=0)

    rank_parts = [[] for _ in range(world)]
    for b, ctx in enumerate(ctx_lens):
        total = ctx + 1  # cached context + the new decode token
        q, k, v = make_qkv(rng, 1, total, n_heads=nh, n_kv_heads=nkv, head_dim=dh)
        seq_kv[b] = (k, v)
        batch_q[b] = q[0]
        positions[b] = ctx
        out, lse = reference_attention_with_lse(
            q, k, v, q_pos=np.array([ctx]), k_pos=np.arange(total)
        )
        refs[b] = (out[0], lse[0])
        # scatter the cached context across ranks by stripes; the decode
        # token's KV goes to the assigned rank
        stripes = np.array_split(np.arange(ctx), world)
        for rank, stripe in enumerate(stripes):
            pos = stripe
            if rank == assignment[b]:
                pos = np.concatenate([stripe, [ctx]])
            if pos.size:
                rank_parts[rank].append(
                    ShardedKV(
                        k=k[pos], v=v[pos],
                        positions=pos.astype(np.int64),
                        seq_ids=np.full(pos.shape[0], b, dtype=np.int64),
                    )
                )
    kv_shards = [
        ShardedKV.concat(parts) if parts else ShardedKV.empty(nkv, dh)
        for parts in rank_parts
    ]
    batch_obj = DecodeBatch(
        q=batch_q, positions=positions, seq_ids=np.arange(batch, dtype=np.int64)
    )
    return kv_shards, batch_obj, refs


class TestRoundRobin:
    def test_offset_rotates(self):
        a0 = round_robin_assignment(4, 4, 0)
        a1 = round_robin_assignment(4, 4, 1)
        np.testing.assert_array_equal(a0, [0, 1, 2, 3])
        np.testing.assert_array_equal(a1, [1, 2, 3, 0])

    def test_balanced_over_steps(self):
        """Over N steps every batch slot visits every rank once — the
        property that levels KV-cache growth (§3.6)."""
        world, batch = 4, 4
        visits = np.zeros((batch, world), dtype=int)
        for step in range(world):
            a = round_robin_assignment(batch, world, step)
            for b in range(batch):
                visits[b, a[b]] += 1
        assert np.all(visits == 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            round_robin_assignment(-1, 4, 0)
        with pytest.raises(ValueError):
            round_robin_assignment(4, 0, 0)
        with pytest.raises(ValueError):
            round_robin_assignment(4, 4, -1)


class TestDecodeExactness:
    @pytest.mark.parametrize("world,batch", [(1, 1), (2, 1), (2, 4), (3, 5), (4, 2)])
    def test_matches_reference(self, rng, world, batch):
        ctx_lens = [int(c) for c in rng.integers(5, 40, size=batch)]
        kv_shards, batch_obj, refs = build_decode_scenario(rng, world, batch, ctx_lens)
        group = SimProcessGroup(world)
        result, assignment = ring_passq_decode(group, kv_shards, batch_obj, step=0)
        for b in range(batch):
            np.testing.assert_allclose(result.out[b], refs[b][0], atol=1e-10)
            np.testing.assert_allclose(result.lse[b], refs[b][1], atol=1e-10)
        np.testing.assert_array_equal(
            assignment, round_robin_assignment(batch, world, 0)
        )

    def test_kv_splits_exact(self, rng):
        """Flash-Decoding split-KV inside the ring stays exact."""
        kv_shards, batch_obj, refs = build_decode_scenario(rng, 2, 3, [20, 31, 9])
        result, _ = ring_passq_decode(
            SimProcessGroup(2), kv_shards, batch_obj, step=0, num_kv_splits=8
        )
        for b in range(3):
            np.testing.assert_allclose(result.out[b], refs[b][0], atol=1e-10)

    def test_comm_pattern(self, rng):
        world = 4
        kv_shards, batch_obj, _ = build_decode_scenario(rng, world, 4, [12, 12, 12, 12])
        group = SimProcessGroup(world)
        ring_passq_decode(group, kv_shards, batch_obj, step=0)
        assert group.tracer.count("sendrecv") == world - 1
        assert group.tracer.count("all2all") == 1


class TestDecodeBatchValidation:
    def test_duplicate_seq_rejected(self, rng):
        q = rng.standard_normal((2, 4, 8))
        with pytest.raises(ValueError):
            DecodeBatch(q=q, positions=np.zeros(2, dtype=np.int64), seq_ids=np.array([1, 1]))

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            DecodeBatch(
                q=rng.standard_normal((2, 4)),
                positions=np.zeros(2, dtype=np.int64),
                seq_ids=np.array([0, 1]),
            )

    def test_kv_shard_count_checked(self, rng):
        kv_shards, batch_obj, _ = build_decode_scenario(rng, 2, 2, [8, 8])
        with pytest.raises(ValueError):
            ring_passq_decode(SimProcessGroup(3), kv_shards, batch_obj, step=0)
