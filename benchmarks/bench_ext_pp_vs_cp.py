"""Extension: CP vs PP latency/throughput contrast (paper §1)."""

from repro.experiments import pp_vs_cp


def bench_pp_vs_cp(benchmark, paper_table):
    result = benchmark(pp_vs_cp.run)
    paper_table(benchmark, result)
    cp_ttft = result.column("CP TTFT (s)")
    pp_ttft = result.column("PP TTFT (s)")
    # CP latency falls with hosts; PP latency does not
    assert cp_ttft == sorted(cp_ttft, reverse=True)
    assert max(pp_ttft) / min(pp_ttft) < 1.05
    # but PP throughput keeps pace with CP's
    cp_thr = result.column("CP prefills/s")
    pp_thr = result.column("PP prefills/s (saturated)")
    assert pp_thr[-1] > 0.9 * cp_thr[-1]


if __name__ == "__main__":
    print(pp_vs_cp.run().render())
