"""Tests for the blocked flash-style kernel."""

import numpy as np
import pytest

from repro.attention.flash import flash_attention
from repro.attention.reference import reference_attention_with_lse

from helpers import make_qkv


class TestFlashMatchesReference:
    @pytest.mark.parametrize("block_size", [1, 3, 8, 64, 1000])
    def test_block_size_invariance(self, rng, block_size):
        q, k, v = make_qkv(rng, 17, 17)
        ref_out, ref_lse = reference_attention_with_lse(q, k, v)
        res = flash_attention(q, k, v, block_size=block_size)
        np.testing.assert_allclose(res.out, ref_out, atol=1e-12)
        np.testing.assert_allclose(res.lse, ref_lse, atol=1e-12)

    @pytest.mark.parametrize("splits", [1, 2, 5, 17, 50])
    def test_kv_split_invariance(self, rng, splits):
        """Flash-Decoding style split-KV is exact for any split count."""
        q, k, v = make_qkv(rng, 5, 33)
        ref_out, ref_lse = reference_attention_with_lse(
            q, k, v, q_pos=np.arange(28, 33), k_pos=np.arange(33)
        )
        res = flash_attention(
            q, k, v, q_pos=np.arange(28, 33), k_pos=np.arange(33),
            block_size=7, num_kv_splits=splits,
        )
        np.testing.assert_allclose(res.out, ref_out, atol=1e-12)
        np.testing.assert_allclose(res.lse, ref_lse, atol=1e-12)

    def test_partial_prefill_layout(self, rng):
        """Q over new positions, K over cached + new positions."""
        p, t = 20, 7
        q, _, _ = make_qkv(rng, t, 1)
        _, k, v = make_qkv(rng, 1, p + t)
        ref_out, ref_lse = reference_attention_with_lse(
            q, k, v, q_pos=np.arange(p, p + t), k_pos=np.arange(p + t)
        )
        res = flash_attention(q, k, v, q_pos=np.arange(p, p + t), k_pos=np.arange(p + t), block_size=5)
        np.testing.assert_allclose(res.out, ref_out, atol=1e-12)

    def test_fused_sequences(self, rng):
        q, k, v = make_qkv(rng, 10, 10)
        pos = np.array([0, 1, 2, 3, 4, 0, 1, 2, 3, 4])
        seq = np.array([0] * 5 + [1] * 5)
        ref_out, ref_lse = reference_attention_with_lse(
            q, k, v, q_pos=pos, k_pos=pos, q_seq=seq, k_seq=seq
        )
        res = flash_attention(q, k, v, q_pos=pos, k_pos=pos, q_seq=seq, k_seq=seq, block_size=3)
        np.testing.assert_allclose(res.out, ref_out, atol=1e-12)
        np.testing.assert_allclose(res.lse, ref_lse, atol=1e-12)


class TestFlashEdgeCases:
    def test_empty_kv(self, rng):
        q, _, _ = make_qkv(rng, 3, 1)
        res = flash_attention(q, np.zeros((0, 2, 16)), np.zeros((0, 2, 16)))
        assert np.all(res.out == 0)
        assert np.all(np.isneginf(res.lse))

    def test_empty_queries(self, rng):
        _, k, v = make_qkv(rng, 1, 5)
        res = flash_attention(np.zeros((0, 8, 16)), k, v)
        assert res.out.shape == (0, 8, 16)
        assert res.lse.shape == (0, 8)

    def test_invalid_block_size(self, rng):
        q, k, v = make_qkv(rng, 3, 3)
        with pytest.raises(ValueError):
            flash_attention(q, k, v, block_size=0)

    def test_invalid_splits(self, rng):
        q, k, v = make_qkv(rng, 3, 3)
        with pytest.raises(ValueError):
            flash_attention(q, k, v, num_kv_splits=0)

    def test_result_tokens_property(self, rng):
        q, k, v = make_qkv(rng, 4, 4)
        res = flash_attention(q, k, v)
        assert res.tokens == 4

    def test_astype(self, rng):
        q, k, v = make_qkv(rng, 4, 4)
        res = flash_attention(q, k, v).astype(np.float32)
        assert res.out.dtype == np.float32
        assert res.lse.dtype == np.float32
