"""Ring pass-Q attention — paper Algorithm 3 (Figure 4).

Dual of pass-KV: the (large, cached) KV shards stay resident and the (small)
query shards circulate. Partial outputs therefore end the ring *scattered*:
rank ``k`` holds ``O^k_s`` — the partial for rank ``s``'s queries against
rank ``k``'s KV — so a permute + All2All over the CP group restores them to
their source ranks before the merge. That All2All sits on the critical path
and is what the refined heuristic of Appendix C (Algorithm 5) accounts for.

pass-Q wins when ``T`` (new tokens) is small relative to the persistent KV
length ``P`` — the high-cache-hit-rate partial prefill and decode regimes —
because circulating Q moves ``T * NH * DH`` elements versus pass-KV's
``2 * (P + T) * NKV * DH``.
"""

from __future__ import annotations

import numpy as np

from repro.attention.flash import AttentionResult, flash_attention
from repro.core.merge import merge_partials
from repro.core.ring_skip import kv_reach, partial_fully_masked, query_reach
from repro.core.sharding import ShardedKV, ShardedQueries, pad_query_shards
from repro.distributed.process_group import SimProcessGroup
from repro.distributed.ring import source_rank_at_step


def ring_passq_prefill(
    group: SimProcessGroup,
    queries: list[ShardedQueries],
    kv_shards: list[ShardedKV],
    *,
    scale: float | None = None,
    block_size: int = 128,
    mask_fn=None,
    compute_dtype=None,
    skip_masked_shards: bool = True,
) -> list[AttentionResult]:
    """Fused varseq ring pass-Q prefill (Algorithm 3).

    Args:
        group: lockstep process group.
        queries: per-rank query shards. Load-balanced sharding guarantees
            near-equal lengths; shards are padded to the max so ring
            messages are equal-sized (padding outputs are dropped).
        kv_shards: per-rank resident KV shards (cached + new), never moved.
        scale: attention score scale (default ``1/sqrt(DH)``).
        block_size: KV block size of the local flash kernel.
        mask_fn: optional absolute-coordinate mask override (windowed /
            sink attention).
        compute_dtype: kernel arithmetic dtype forwarded to the local flash
            kernel (merge accumulation stays float64; default exact fp64).
        skip_masked_shards: replace provably all-masked ring-step partials
            with the exact identity element instead of calling the kernel
            (see :mod:`repro.core.ring_skip`); disabled under ``mask_fn``.

    Returns:
        Per-rank exact :class:`AttentionResult`, trimmed back to each rank's
        original (pre-padding) query count.
    """
    n = group.world_size
    if len(queries) != n or len(kv_shards) != n:
        raise ValueError(
            f"need one query and KV shard per rank: world={n}, "
            f"queries={len(queries)}, kvs={len(kv_shards)}"
        )

    original_lengths = [len(q) for q in queries]
    padded, _ = pad_query_shards(list(queries))

    # traveling[k] = the query payload currently held by rank k.
    traveling: list[ShardedQueries] = list(padded)
    # computed[k][s] = partial result rank k computed for origin rank s.
    computed: list[dict[int, AttentionResult]] = [dict() for _ in range(n)]

    # Causal-reach summaries, one scan per shard: padded[s] is the query
    # payload originating at rank s (the ring schedule maps the payload a
    # rank holds at step j back to its origin), KV shards never move.
    skip = skip_masked_shards and mask_fn is None
    if skip:
        q_summary = [query_reach(p.positions, p.seq_ids) for p in padded]
        k_summary = [kv_reach(kv.positions, kv.seq_ids) for kv in kv_shards]

    for step in range(n):
        for rank in range(n):
            src = source_rank_at_step(rank, step, n)
            q = traveling[rank]
            if skip and partial_fully_masked(q_summary[src], k_summary[rank]):
                computed[rank][src] = AttentionResult.empty(
                    len(q), q.q.shape[1], q.q.shape[2]
                )
                continue
            kv = kv_shards[rank]
            computed[rank][src] = flash_attention(
                q.q,
                kv.k,
                kv.v,
                q_pos=q.positions,
                k_pos=kv.positions,
                q_seq=q.seq_ids,
                k_seq=kv.seq_ids,
                causal=True,
                scale=scale,
                block_size=block_size,
                mask_fn=mask_fn,
                compute_dtype=compute_dtype,
            )
        if step < n - 1:
            traveling = group.ring_shift(traveling, step=step, tag="passq")

    # Permute + All2All: rank k sends O^k_s (as (out, lse)) back to rank s.
    matrix = [
        [
            (computed[holder][origin].out, computed[holder][origin].lse)
            for origin in range(n)
        ]
        for holder in range(n)
    ]
    restored = group.all_to_all(matrix, tag="passq-merge")

    results = []
    for rank in range(n):
        partials = [
            AttentionResult(out=out, lse=lse) for out, lse in restored[rank]
        ]
        merged = merge_partials(partials)
        keep = original_lengths[rank]
        results.append(AttentionResult(out=merged.out[:keep], lse=merged.lse[:keep]))
    return results
