"""Unit tests for timeline reconstruction, TTFT decomposition, and the
trace/metrics reconciliation checks (on hand-built event streams — the
property suite covers real runtime traces)."""

import pytest

from repro.obs import (
    TraceEvent,
    build_timeline,
    explain_ttft,
    format_explanation,
    reconcile,
    reconcile_fleet,
    request_ids,
)
from repro.serving.metrics import FleetMetrics, ServingMetrics


def ev(name, t, phase="instant", dur=0.0, **kw):
    attrs = kw.pop("attrs", {})
    return TraceEvent(name=name, phase=phase, t=t, dur=dur, attrs=attrs, **kw)


def simple_request(rid=0, arrival=0.0, admit=1.0, chunks=((1.0, 2.0),), ft=4.0):
    events = [
        ev("admit", admit, request_id=rid, seq_id=rid, attrs={"arrival": arrival}),
    ]
    for start, dur in chunks:
        events.append(
            ev("prefill_chunk", start, phase="span", dur=dur, request_id=rid,
               pool="prefill")
        )
    events.append(ev("first_token", ft, request_id=rid, attrs={"ttft": ft - arrival}))
    return events


class TestBuildTimeline:
    def test_unknown_request_raises(self):
        with pytest.raises(ValueError, match="does not appear"):
            build_timeline([ev("admit", 1.0, request_id=0)], 99)

    def test_arrival_from_admit_attrs(self):
        tl = build_timeline(simple_request(arrival=0.25), 0)
        assert tl.arrival == 0.25
        assert tl.status == "finished" if tl.finish else "incomplete"

    def test_request_ids_first_seen_order(self):
        events = [
            ev("admit", 2.0, request_id=5),
            ev("admit", 1.0, request_id=3),
            ev("first_token", 3.0, request_id=5),
        ]
        assert request_ids(events) == [5, 3]


class TestExplainTtft:
    def test_pure_compute_request(self):
        """One chunk spanning [1, 3], first token at 4: 2s compute, 1s
        initial queue wait + 1s tail — all folded into queue_wait."""
        bd = explain_ttft(simple_request(chunks=((1.0, 2.0),), ft=4.0), 0)
        assert bd.ttft == 4.0
        assert bd.components["prefill_compute"] == 2.0
        assert bd.components["queue_wait"] == 2.0
        assert bd.total == bd.ttft

    def test_overlapping_claims_resolved_by_priority(self):
        """A transfer stall overlapping a prefill chunk never double
        counts: compute wins the overlap."""
        events = simple_request(chunks=((1.0, 2.0),), ft=4.0)
        events.append(
            ev("transfer_stall", 2.0, phase="span", dur=1.5, request_id=0,
               pool="decode")
        )
        bd = explain_ttft(events, 0)
        assert bd.components["prefill_compute"] == 2.0
        assert bd.components["transfer_stall"] == 0.5  # only the [3, 3.5] tail
        assert bd.total == bd.ttft

    def test_unclaimed_time_after_preempt_is_requeue(self):
        events = [
            ev("admit", 0.0, request_id=0, attrs={"arrival": 0.0}),
            ev("prefill_chunk", 0.0, phase="span", dur=1.0, request_id=0),
            ev("preempt", 1.0, request_id=0, attrs={"remedy": "recompute"}),
            ev("prefill_chunk", 3.0, phase="span", dur=1.0, request_id=0),
            ev("first_token", 4.0, request_id=0, attrs={"ttft": 4.0}),
        ]
        bd = explain_ttft(events, 0)
        assert bd.components["prefill_compute"] == 2.0
        assert bd.components["preempt_requeue"] == 2.0
        assert bd.components["queue_wait"] == 0.0
        assert bd.total == bd.ttft

    def test_backoff_window_claimed(self):
        events = [
            ev("admit", 0.0, request_id=0, attrs={"arrival": 0.0}),
            ev("fault_retry", 1.0, request_id=0, attrs={"attempt": 1, "backoff": 0.5}),
            ev("first_token", 2.0, request_id=0, attrs={"ttft": 2.0}),
        ]
        bd = explain_ttft(events, 0)
        assert bd.components["fault_backoff"] == 0.5
        assert bd.components["queue_wait"] == 1.5
        assert bd.total == bd.ttft

    def test_no_first_token_raises(self):
        events = [ev("admit", 0.0, request_id=0, attrs={"arrival": 0.0})]
        with pytest.raises(ValueError, match="streamed no token"):
            explain_ttft(events, 0)

    def test_format_renders_shed_requests(self):
        events = [
            ev("admit", 0.0, request_id=0, attrs={"arrival": 0.0}),
            ev("shed", 5.0, request_id=0, attrs={"status": "timed_out"}),
        ]
        text = format_explanation(events, 0)
        assert "shed t=5.000000 (timed_out)" in text


class TestReconcile:
    def test_empty_trace_empty_metrics_reconcile(self):
        assert reconcile([], ServingMetrics()) == []

    def test_matching_preemption_reconciles(self):
        m = ServingMetrics()
        m.record_preemption(64)
        events = [
            ev("preempt", 1.0, request_id=0,
               attrs={"remedy": "recompute", "evicted": 64, "victim": "active"})
        ]
        assert reconcile(events, m) == []

    def test_missing_event_is_drift(self):
        m = ServingMetrics()
        m.record_preemption(64)
        drift = reconcile([], m)
        assert any("preemptions" in d for d in drift)

    def test_extra_event_is_drift(self):
        events = [
            ev("preempt", 1.0, attrs={"remedy": "recompute", "evicted": 64})
        ]
        drift = reconcile(events, ServingMetrics())
        assert any("preemptions" in d for d in drift)

    def test_float_totals_must_match_exactly(self):
        m = ServingMetrics()
        m.record_transfer_stall(0.1)
        m.record_transfer_stall(0.2)
        good = [
            ev("transfer_stall", 1.0, phase="span", dur=0.1, pool="decode"),
            ev("transfer_stall", 2.0, phase="span", dur=0.2, pool="decode"),
        ]
        assert reconcile(good, m) == []
        # a nearby-but-different total is drift — no tolerance
        bad = [
            ev("transfer_stall", 1.0, phase="span", dur=0.1, pool="decode"),
            ev("transfer_stall", 2.0, phase="span", dur=0.2 + 1e-12, pool="decode"),
        ]
        drift = reconcile(bad, m)
        assert any("transfer_stall_s" in d for d in drift)

    def test_ttft_list_equality(self):
        m = ServingMetrics()
        m.record_ttit(0.01)
        events = [
            ev("finish", 5.0, request_id=0,
               attrs={"status": "finished", "tokens": 2, "gaps": 1}),
        ]
        drift = reconcile(events, m)
        # finish without record_turn: completed_requests drifts
        assert any("completed_requests" in d for d in drift)


class TestReconcileFleet:
    def test_unlabeled_events_flagged(self):
        fm = FleetMetrics()
        fm.add_replica(0, ServingMetrics(), 1.0)
        drift = reconcile_fleet([ev("admit", 1.0, request_id=0)], fm)
        assert any("without a replica label" in d for d in drift)

    def test_route_events_excluded(self):
        fm = FleetMetrics()
        fm.add_replica(0, ServingMetrics(), 1.0)
        route = ev("route", 1.0, request_id=0, attrs={"policy": "prefix"})
        assert reconcile_fleet([route], fm) == []

    def test_stray_replica_flagged(self):
        fm = FleetMetrics()
        fm.add_replica(0, ServingMetrics(), 1.0)
        drift = reconcile_fleet(
            [ev("admit", 1.0, replica=7, request_id=0)], fm
        )
        assert any("unknown replicas [7]" in d for d in drift)

    def test_per_replica_drift_is_attributed(self):
        fm = FleetMetrics()
        m = ServingMetrics()
        m.record_preemption(8)
        fm.add_replica(0, m, 1.0)
        fm.add_replica(1, ServingMetrics(), 1.0)
        drift = reconcile_fleet([], fm)
        assert any(d.startswith("replica 0:") for d in drift)
        assert not any(d.startswith("replica 1:") for d in drift)
