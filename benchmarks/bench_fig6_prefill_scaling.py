"""Figure 6a/6b: pass-KV full-prefill latency scaling on GTT and GTI."""

from repro.experiments import fig6_prefill_scaling
from repro.perf.hardware import gti_host, gtt_host


def bench_fig6a_gtt(benchmark, paper_table):
    result = benchmark(fig6_prefill_scaling.run, gtt_host())
    paper_table(benchmark, result)
    # near-linear scaling at 128K: CP8 at least 6x faster than CP1
    row_128k = [r for r in result.rows if r[0] == 131072][0]
    cp1, cp8 = row_128k[1], row_128k[4]
    assert cp1 / cp8 > 6.0
    # headline: 128K prefill in a handful of seconds on CP8
    assert cp8 < 7.0


def bench_fig6b_gti(benchmark, paper_table):
    result = benchmark(fig6_prefill_scaling.run, gti_host())
    paper_table(benchmark, result)
    # GTI keeps GTT-like scaling to 4 nodes (pass-KV hides under compute)
    row_128k = [r for r in result.rows if r[0] == 131072][0]
    cp1, cp4 = row_128k[1], row_128k[3]
    assert cp1 / cp4 > 3.4


if __name__ == "__main__":
    for res in fig6_prefill_scaling.run_both():
        print(res.render())
        print()
