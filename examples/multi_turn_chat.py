"""Multi-turn chat serving: persistent KV, adaptive pass-KV/pass-Q.

Simulates the paper's motivating workload (§3.3): a user uploads a long
document (full prefill), then asks several short follow-up questions
(partial prefill at high KV-cache hit rates). With hardware constants
configured, the planner switches from pass-KV on the first turn to pass-Q
on the follow-ups — Algorithm 5 in action — while every turn stays
numerically exact.

Run:  python examples/multi_turn_chat.py
"""

import numpy as np

from repro import ContextParallelEngine, HeuristicConfig, LlamaModel, tiny_config
from repro.serving.metrics import ServingMetrics
from repro.serving.session import ChatSession
from repro.workloads.generator import WorkloadGenerator


def main() -> None:
    model = LlamaModel(tiny_config(), seed=1)
    cfg = model.config
    world_size = 2

    # hardware constants for the selector (GTT-like host pair)
    heuristic = HeuristicConfig(
        n_heads=cfg.n_heads,
        n_kv_heads=cfg.n_kv_heads,
        element_bytes=2.0,
        peak_compute=8 * 540e12,
        bandwidth=220e9,
        world_size=world_size,
    )
    engine = ContextParallelEngine(model, world_size=world_size, heuristic=heuristic)
    metrics = ServingMetrics()

    gen = WorkloadGenerator(cfg.vocab_size, seed=42)
    script = gen.conversation(
        seq_id=0, turns=4, first_prompt=160, followup_range=(2, 4), response_range=(2, 4)
    )

    session = ChatSession(engine, seq_id=0)
    for turn_idx, (prompt, budget) in enumerate(zip(script.prompts, script.response_budgets)):
        record = session.send(prompt, max_new_tokens=budget)
        metrics.record_turn(record)
        print(
            f"turn {turn_idx}: T={record.prompt_tokens:>4} P={record.cached_tokens:>4} "
            f"miss={record.miss_rate:6.1%}  algo={record.algo:<8} "
            f"generated={record.generated}"
        )

    print()
    print(metrics.summary())
    print(f"per-rank cached tokens: {engine.cached_tokens(0)} (balanced)")

    # final losslessness audit: replay the whole conversation single-device
    logits = model.forward(np.array(session.history))
    print(f"conversation length: {len(session.history)} tokens; "
          f"single-device replay OK (last logit row norm {np.linalg.norm(logits[-1]):.3f})")
    session.close()


if __name__ == "__main__":
    main()
