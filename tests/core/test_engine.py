"""End-to-end engine tests: CP inference equals single-device forward."""

import numpy as np
import pytest

from repro.core.engine import ContextParallelEngine
from repro.core.heuristics import RingAlgo
from repro.model.config import tiny_config
from repro.model.llama import LlamaModel


@pytest.fixture(scope="module")
def model():
    return LlamaModel(tiny_config(), seed=3)


class TestFullPrefill:
    @pytest.mark.parametrize("world", [1, 2, 4])
    def test_logits_match_forward(self, model, world):
        engine = ContextParallelEngine(model, world_size=world)
        toks = (np.arange(26) * 7) % model.config.vocab_size
        out = engine.prefill({0: toks})
        ref = model.forward(toks)
        np.testing.assert_allclose(out.logits[0], ref, atol=1e-9)

    def test_pass_q_forced_matches(self, model):
        engine = ContextParallelEngine(model, world_size=3)
        toks = np.arange(17) % model.config.vocab_size
        out = engine.prefill({0: toks}, force_algo=RingAlgo.PASS_Q)
        ref = model.forward(toks)
        assert out.plan.forced
        np.testing.assert_allclose(out.logits[0], ref, atol=1e-9)

    def test_fused_varseq_batch(self, model):
        engine = ContextParallelEngine(model, world_size=2)
        prompts = {
            0: np.arange(13) % model.config.vocab_size,
            1: (np.arange(21) + 5) % model.config.vocab_size,
        }
        out = engine.prefill(prompts)
        for sid, toks in prompts.items():
            np.testing.assert_allclose(out.logits[sid], model.forward(toks), atol=1e-9)

    def test_kv_balanced_across_ranks(self, model):
        engine = ContextParallelEngine(model, world_size=4)
        engine.prefill({0: np.arange(32) % model.config.vocab_size})
        counts = engine.cached_tokens(0)
        assert sum(counts) == 32
        assert max(counts) - min(counts) <= 2

    def test_validation(self, model):
        engine = ContextParallelEngine(model, world_size=2)
        with pytest.raises(ValueError):
            engine.prefill({})
        with pytest.raises(ValueError):
            engine.prefill({0: np.zeros(0, dtype=np.int64)})


class TestDecode:
    def test_decode_matches_forward(self, model):
        engine = ContextParallelEngine(model, world_size=2)
        toks = np.arange(11) % model.config.vocab_size
        engine.prefill({0: toks})
        step = engine.decode({0: 4})
        ref = model.forward(np.concatenate([toks, [4]]))
        np.testing.assert_allclose(step.logits[0], ref[-1], atol=1e-9)

    def test_multiple_decode_steps(self, model):
        engine = ContextParallelEngine(model, world_size=3)
        toks = np.arange(9) % model.config.vocab_size
        engine.prefill({0: toks})
        history = list(toks)
        for t in (2, 8, 5, 1):
            step = engine.decode({0: t})
            history.append(t)
            ref = model.forward(np.array(history))
            np.testing.assert_allclose(step.logits[0], ref[-1], atol=1e-9)

    def test_batched_decode(self, model):
        engine = ContextParallelEngine(model, world_size=2)
        prompts = {
            0: np.arange(7) % model.config.vocab_size,
            1: np.arange(12) % model.config.vocab_size,
        }
        engine.prefill(prompts)
        step = engine.decode({0: 3, 1: 9})
        for sid, nxt in ((0, 3), (1, 9)):
            ref = model.forward(np.concatenate([prompts[sid], [nxt]]))
            np.testing.assert_allclose(step.logits[sid], ref[-1], atol=1e-9)

    def test_round_robin_balances_decode_kv(self, model):
        """After N decode steps each rank got one of the sequence's decode
        tokens (§3.6's OOM-avoidance property)."""
        world = 4
        engine = ContextParallelEngine(model, world_size=world)
        engine.prefill({0: np.arange(8) % model.config.vocab_size})
        before = np.array(engine.cached_tokens(0))
        for t in range(world):
            engine.decode({0: t % model.config.vocab_size})
        after = np.array(engine.cached_tokens(0))
        np.testing.assert_array_equal(after - before, np.ones(world, dtype=int))

    def test_decode_unknown_sequence(self, model):
        engine = ContextParallelEngine(model, world_size=2)
        with pytest.raises(KeyError):
            engine.decode({42: 1})

    def test_empty_decode_rejected(self, model):
        engine = ContextParallelEngine(model, world_size=2)
        with pytest.raises(ValueError):
            engine.decode({})


class TestRelease:
    def test_release_clears_state(self, model):
        engine = ContextParallelEngine(model, world_size=2)
        engine.prefill({0: np.arange(10) % model.config.vocab_size})
        assert engine.context_length(0) == 10
        engine.release(0)
        assert engine.context_length(0) == 0
        assert sum(engine.cached_tokens(0)) == 0
