"""Figure 8 + Appendix A: million-token TTFT and FLOPS utilization."""

from repro.experiments import fig8_million_token


def bench_fig8_million_token(benchmark, paper_table):
    result = benchmark(fig8_million_token.run)
    paper_table(benchmark, result)
    rows = {r[0]: r for r in result.rows}
    # headline: 1M prefill on CP16 lands near the paper's 77 s
    assert abs(rows[1048576][2] - 77.0) / 77.0 < 0.10
    # 128K on CP16 in a few seconds (paper: 3.8 s)
    assert rows[131072][2] < 5.0
    # super-linear TTFT growth beyond 512K
    assert rows[1048576][2] > 2.0 * rows[524288][2]
    # achieved throughput near the paper's 502 TF/s/GPU at 1M
    assert abs(rows[1048576][3] - 502.0) / 502.0 < 0.10
    # MFU near 63%
    assert abs(rows[1048576][4] - 0.63) < 0.07


if __name__ == "__main__":
    print(fig8_million_token.run().render())
