"""Quickstart: lossless context-parallel inference in ~40 lines.

Builds a small Llama-family model, runs context-parallel prefill + decode
across 4 simulated CP ranks, and verifies the logits are bit-compatible
with single-device execution — the paper's "lossless exact" property.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ContextParallelEngine, LlamaModel, tiny_config


def main() -> None:
    model = LlamaModel(tiny_config(n_layers=2, model_dim=64), seed=0)
    engine = ContextParallelEngine(model, world_size=4)

    # --- full prefill of a 48-token prompt, sharded over 4 CP ranks -----
    prompt = (np.arange(48) * 11) % model.config.vocab_size
    out = engine.prefill({0: prompt})
    print(f"prefill: algo={out.plan.algo.value}, miss rate={out.plan.miss_rate:.0%}")

    reference = model.forward(prompt)
    err = np.abs(out.logits[0] - reference).max()
    print(f"max |CP logits - single-device logits| = {err:.2e}")
    assert err < 1e-9, "context parallelism must be lossless"

    # --- KV cache is balanced across ranks -----------------------------
    print(f"per-rank cached tokens: {engine.cached_tokens(0)}")

    # --- greedy decode: 5 tokens via batched ring pass-Q ---------------
    next_token = int(np.argmax(out.last_logits(0)))
    generated = []
    for _ in range(5):
        step = engine.decode({0: next_token})
        generated.append(next_token)
        next_token = int(np.argmax(step.logits[0]))
    print(f"greedy tokens: {generated}")

    # --- follow-up prompt -> partial prefill over the persistent cache -
    followup = np.array([7, 8, 9])
    out2 = engine.prefill({0: followup})
    print(
        f"follow-up: algo={out2.plan.algo.value}, "
        f"miss rate={out2.plan.miss_rate:.1%}, "
        f"context now {engine.context_length(0)} tokens"
    )

    # verify the follow-up against a from-scratch forward over all history
    history = np.concatenate([prompt, generated, followup])
    ref2 = model.forward(history)
    err2 = np.abs(out2.logits[0] - ref2[-3:]).max()
    print(f"multi-turn losslessness: max err = {err2:.2e}")
    assert err2 < 1e-9


if __name__ == "__main__":
    main()
