"""Determinism linter: every rule fires on bad fixtures, stays quiet on
good ones, respects scope and suppressions, and passes the shipped tree."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.lint import (
    RULES,
    RULES_BY_ID,
    Finding,
    default_lint_target,
    lint_paths,
    lint_source,
    rules_table,
)


def ids(findings: list[Finding]) -> set[str]:
    return {f.rule_id for f in findings}


class TestUnseededRng:
    def test_bare_default_rng_flagged(self):
        fs = lint_source("import numpy as np\nrng = np.random.default_rng()\n", "core/x.py")
        assert ids(fs) == {"DET101"}

    def test_seeded_default_rng_clean(self):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng(42)\n"
            "rng2 = np.random.default_rng(seed)\n"
        )
        assert lint_source(src, "core/x.py") == []

    def test_stdlib_random_import_flagged(self):
        assert ids(lint_source("import random\n", "core/x.py")) == {"DET101"}
        assert ids(lint_source("from random import choice\n", "core/x.py")) == {"DET101"}

    def test_stdlib_random_call_flagged(self):
        fs = lint_source("import random\nx = random.randint(0, 5)\n", "core/x.py")
        assert [f.rule_id for f in fs] == ["DET101", "DET101"]

    def test_np_legacy_global_state_flagged(self):
        for call in ("np.random.seed(0)", "np.random.rand(3)", "np.random.shuffle(xs)"):
            fs = lint_source(f"import numpy as np\n{call}\n", "core/x.py")
            assert ids(fs) == {"DET101"}, call

    def test_generator_methods_clean(self):
        src = "def f(rng):\n    return rng.random() + rng.integers(0, 5)\n"
        assert lint_source(src, "core/x.py") == []


class TestWallClock:
    def test_time_time_flagged(self):
        fs = lint_source("import time\nt = time.time()\n", "runtime/x.py")
        assert ids(fs) == {"DET102"}

    def test_perf_counter_flagged(self):
        fs = lint_source("import time\nt = time.perf_counter()\n", "serving/x.py")
        assert ids(fs) == {"DET102"}

    def test_from_import_flagged(self):
        fs = lint_source("from time import perf_counter\n", "core/x.py")
        assert ids(fs) == {"DET102"}

    def test_datetime_now_flagged(self):
        fs = lint_source(
            "import datetime\nt = datetime.datetime.now()\n", "core/x.py"
        )
        assert ids(fs) == {"DET102"}

    def test_benchmarks_exempt(self):
        src = "import time\nt0 = time.time()\nt1 = time.perf_counter()\n"
        assert lint_source(src, "benchmarks/run_benchmarks.py") == []

    def test_time_sleep_clean(self):
        assert lint_source("import time\ntime.sleep(1)\n", "core/x.py") == []


SET_ITER_BAD = """
class Sched:
    def __init__(self):
        self._live: set[int] = set()

    def holders(self) -> set[int]:
        return set(self._live)

    def bad_for(self):
        for rid in self._live:
            print(rid)

    def bad_call_iter(self):
        for h in self.holders():
            print(h)

    def bad_listcomp(self):
        return [r for r in self._live]

    def bad_literal(self):
        for x in {1, 2, 3}:
            print(x)
"""

SET_ITER_GOOD = """
class Sched:
    def __init__(self):
        self._live: set[int] = set()

    def ok(self):
        for rid in sorted(self._live):
            print(rid)
        total = sum(r for r in self._live)
        flag = any(r > 0 for r in self._live)
        low = min(self._live) if self._live else None
        copy = {r for r in self._live}
        return total, flag, low, copy
"""


class TestSetIteration:
    def test_bad_patterns_flagged_in_scheduling_modules(self):
        fs = lint_source(SET_ITER_BAD, "runtime/sched.py")
        assert ids(fs) == {"DET201"}
        assert len(fs) == 4

    def test_order_insensitive_consumers_allowed(self):
        assert lint_source(SET_ITER_GOOD, "runtime/sched.py") == []

    def test_out_of_scope_module_clean(self):
        # core/ makes scheduling-free use of sets; the rule is scoped to
        # the modules where iteration order can reach placement decisions
        assert lint_source(SET_ITER_BAD, "core/engine.py") == []

    @pytest.mark.parametrize("module", ["runtime", "serving", "cluster"])
    def test_all_scheduling_dirs_in_scope(self, module):
        fs = lint_source("for x in {1, 2}:\n    print(x)\n", f"{module}/m.py")
        assert ids(fs) == {"DET201"}

    def test_popitem_flagged(self):
        fs = lint_source("d = {}\nd.popitem()\n", "cluster/router.py")
        assert ids(fs) == {"DET202"}
        assert lint_source("d = {}\nd.popitem()\n", "core/x.py") == []


class TestIdOrdering:
    def test_id_in_sorted_key_flagged(self):
        fs = lint_source("ys = sorted(xs, key=lambda r: id(r))\n", "core/x.py")
        assert ids(fs) == {"DET301"}

    def test_bare_id_key_flagged(self):
        fs = lint_source("y = max(xs, key=id)\n", "runtime/x.py")
        assert ids(fs) == {"DET301"}

    def test_id_in_tiebreak_tuple_flagged(self):
        fs = lint_source(
            "xs.sort(key=lambda r: (r.arrival, id(r)))\n", "core/x.py"
        )
        assert ids(fs) == {"DET301"}

    def test_stable_keys_clean(self):
        src = "ys = sorted(xs, key=lambda r: (r.arrival, r.request_id))\n"
        assert lint_source(src, "core/x.py") == []


class TestSuppressions:
    def test_disable_silences_matching_rule(self):
        src = "for x in {1, 2}:  # repro-lint: disable=DET201\n    print(x)\n"
        assert lint_source(src, "runtime/x.py") == []

    def test_disable_all(self):
        src = "for x in {1, 2}:  # repro-lint: disable=all\n    print(x)\n"
        assert lint_source(src, "runtime/x.py") == []

    def test_disable_other_rule_keeps_finding(self):
        src = "for x in {1, 2}:  # repro-lint: disable=DET101\n    print(x)\n"
        assert ids(lint_source(src, "runtime/x.py")) == {"DET201"}

    def test_disable_multiple_rules(self):
        src = (
            "import time\n"
            "for x in {1, 2}:  # repro-lint: disable=DET201, DET102\n"
            "    print(x, time.time())  # repro-lint: disable=DET102\n"
        )
        assert lint_source(src, "runtime/x.py") == []


class TestEngineAndReporting:
    def test_findings_sorted_and_formatted(self):
        src = "import random\nfor x in {1}:\n    print(x)\n"
        fs = lint_source(src, "runtime/x.py")
        assert [f.line for f in fs] == sorted(f.line for f in fs)
        rendered = fs[0].format()
        assert "runtime/x.py:1:" in rendered and "DET101" in rendered

    def test_every_rule_documented(self):
        table = rules_table()
        for rule in RULES:
            assert rule.rule_id in table and rule.name in table
        assert set(RULES_BY_ID) == {r.rule_id for r in RULES}

    def test_syntax_error_reported_not_raised(self):
        fs = lint_source("def broken(:\n", "core/x.py")
        assert len(fs) == 1 and "could not parse" in fs[0].message

    def test_lint_paths_over_directory(self, tmp_path):
        (tmp_path / "runtime").mkdir()
        (tmp_path / "runtime" / "bad.py").write_text("for x in {1}:\n    print(x)\n")
        (tmp_path / "runtime" / "good.py").write_text("x = sorted({1, 2})\n")
        fs = lint_paths([tmp_path], root=tmp_path.parent)
        assert len(fs) == 1 and fs[0].rule_id == "DET201"
        assert fs[0].path.endswith("runtime/bad.py")


class TestShippedTree:
    def test_src_repro_lints_clean(self):
        target = default_lint_target()
        assert target.name == "repro"
        findings = lint_paths([target], root=target.parent)
        assert findings == [], "\n".join(f.format() for f in findings)


class TestCli:
    def test_lint_clean_tree_exit_0(self):
        from repro.cli import main

        assert main(["lint"]) == 0

    def test_lint_bad_fixture_exit_1_with_rule_ids(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "runtime" / "bad.py"
        bad.parent.mkdir()
        bad.write_text(
            "import random\nfor x in {1, 2}:\n    print(random.random())\n"
        )
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "DET101" in out and "DET201" in out

    def test_list_rules(self, capsys):
        from repro.cli import main

        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule.rule_id in out

    def test_module_invocation(self):
        # the CI lane runs exactly this command
        import os

        root = Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(root / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint"],
            capture_output=True, text=True, cwd=root, env=env,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
