"""Extension experiment: cluster-tier routing (replicas x policy).

One replica cannot serve "millions of users"; a fleet can — but only if
the router sends templated traffic where its KV already lives. This
experiment replays the same shared-prefix trace through
:class:`repro.cluster.ReplicaFleet` at a sweep of replica counts under
prefix-affinity routing vs round-robin, with every replica's rounds
priced for Llama3 405B by the calibrated clock.

What the table shows:

- **hit rate**: round-robin spreads a template across every replica, so
  each replica pays its own cold prefill per template (hit rate decays
  as ``1 - R*N/conversations``); prefix-affinity concentrates each
  template on one replica and keeps the single-replica hit rate
  (``1 - N/conversations``) at any fleet size — the SGLang
  cache-aware-routing / Mooncake global-scheduler claim.
- **warm p50 TTFT**: affinity converts cold prefills into warm ones, so
  under load the median first token lands earlier even though routing
  concentrates work on fewer replicas.
- **placement spread**: how many replicas each policy actually used —
  affinity trades spread for reuse; the load/queue terms in its score
  keep the trade bounded.

Every cell is pinned twice: completed streams bit-identical to
sequential per-conversation replay (routing changes placement and
timing, never tokens), and every replica audits leak-free after the
drain. At every replica count >= 2, prefix routing must beat
round-robin on both warm p50 TTFT and prefix hit rate (asserted).
"""

from __future__ import annotations

import math

from repro.experiments.base import ExperimentResult
from repro.model.config import llama3_405b_config, tiny_config
from repro.perf.hardware import HostSpec, gtt_host
from repro.perf.latency import LatencySimulator

#: Routing policies compared, in sweep order.
POLICIES = ("prefix", "round-robin")


def run(
    host: HostSpec | None = None,
    *,
    conversations: int = 12,
    n_templates: int = 2,
    replica_sweep: tuple[int, ...] = (1, 2, 3),
    world_size: int = 2,
    priced_ranks: int = 4,
    seed: int = 11,
) -> ExperimentResult:
    """Replica count x routing policy for shared-prefix traffic.

    Numerics run the tiny model on CP ``world_size`` per replica; the
    step clock prices rounds for Llama3 405B on ``priced_ranks`` CP
    hosts. Conversations arrive in a tight burst (1 s apart, 5 s think
    time) so routing decides queueing, not just cache reuse. ``n_templates`` system
    prompts fan out over ``conversations`` two-turn sessions.

    Raises:
        AssertionError: a completed stream differs from sequential
            replay, a replica leaks KV after the drain, or prefix
            routing fails to beat round-robin on warm p50 TTFT or hit
            rate at a replica count >= 2.
    """
    from repro.cluster import ReplicaFleet, make_router
    from repro.core.engine import ContextParallelEngine
    from repro.model.llama import LlamaModel
    from repro.runtime import ContinuousBatchingRuntime, SimulatedStepClock
    from repro.serving.scheduler import ChunkedPrefillPolicy
    from repro.workloads.generator import WorkloadGenerator
    from repro.workloads.replay import (
        collect_generated,
        replay_scripts_sequential,
        submit_scripts_to_runtime,
    )

    host = host if host is not None else gtt_host()
    model = LlamaModel(tiny_config(), seed=0)
    sim = LatencySimulator(llama3_405b_config(), host)

    res = ExperimentResult(
        experiment_id="Cluster routing",
        title=(
            f"{conversations} shared-prefix conversations "
            f"({n_templates} templates) over a replica fleet "
            f"(CP{world_size} numerics per replica, CP{priced_ranks} 405B "
            f"pricing)"
        ),
        headers=[
            "replicas", "routing", "hit rate", "reused tokens",
            "p50 TTFT warm (s)", "p50 TTFT cold (s)", "p50 TTFT (s)",
            "goodput (req/s)", "replicas used",
        ],
    )

    gen = WorkloadGenerator(model.config.vocab_size, seed=seed)
    scripts = gen.shared_prefix_traffic(
        n_system_prompts=n_templates,
        n_fewshot_variants=2,
        conversations=conversations,
        system_tokens=48,
        fewshot_tokens=16,
        unique_range=(8, 16),
        turns=2,
        followup_range=(6, 12),
        response_range=(3, 5),
    )
    # seeded arrival shuffle: shared_prefix_traffic cycles templates
    # round-robin, so without it a round-robin router whose replica
    # count divides the template count would align with the cycle and
    # get perfect affinity by accident
    scripts = [scripts[i] for i in gen.rng.permutation(len(scripts))]
    reference = replay_scripts_sequential(
        lambda: ContextParallelEngine(
            LlamaModel(tiny_config(), seed=0), world_size=world_size
        ),
        scripts,
    )

    def make_runtime(_replica_id: int) -> ContinuousBatchingRuntime:
        return ContinuousBatchingRuntime(
            ContextParallelEngine(model, world_size=world_size),
            policy=ChunkedPrefillPolicy(
                chunk_tokens=16, max_tokens_per_round=32, max_seqs_per_round=4
            ),
            clock=SimulatedStepClock(sim, n_ranks=priced_ranks),
            prefix_cache=True,
        )

    cells: dict[tuple[int, str], object] = {}
    for replicas in replica_sweep:
        for policy in POLICIES:
            fleet = ReplicaFleet.build(
                make_runtime, replicas, router=make_router(policy)
            )
            rids = submit_scripts_to_runtime(
                fleet, scripts, start_offset_s=1.0, think_time_s=5.0
            )
            report = fleet.run(max_steps=400_000)

            # exactness: routing never changes a completed stream
            got = collect_generated(report, rids)
            for s in scripts:
                assert got[s.seq_id] == reference[s.seq_id], (
                    "serving-level exactness violated: routing "
                    f"({policy}, {replicas} replicas) changed decoded "
                    f"tokens for seq {s.seq_id}"
                )
            # leak audit: every replica drained clean
            for rid_, leaks in fleet.kv_leak_reports().items():
                assert not leaks, (
                    f"replica {rid_} leaked KV after drain "
                    f"({policy}, {replicas} replicas): {leaks}"
                )

            m = report.metrics
            used = len(set(report.placements.values()))
            cells[(replicas, policy)] = m
            res.add_row(
                replicas,
                policy,
                m.prefix_hit_rate,
                sum(r.prefix_reused_tokens for r in m.replicas.values()),
                m.percentile_ttft_split(50, warm=True),
                m.percentile_ttft_split(50, warm=False),
                m.percentile_ttft(50),
                m.fleet_goodput(report.makespan),
                f"{used}/{replicas}",
            )

    # the headline: at any fleet size >= 2, affinity beats round-robin
    # on both reuse and the median warm first token
    for replicas in replica_sweep:
        if replicas < 2:
            continue
        m_prefix = cells[(replicas, "prefix")]
        m_rr = cells[(replicas, "round-robin")]
        assert m_prefix.prefix_hit_rate > m_rr.prefix_hit_rate, (
            f"prefix routing hit rate {m_prefix.prefix_hit_rate:.0%} not "
            f"above round-robin {m_rr.prefix_hit_rate:.0%} at "
            f"{replicas} replicas"
        )
        warm_prefix = m_prefix.percentile_ttft_split(50, warm=True)
        warm_rr = m_rr.percentile_ttft_split(50, warm=True)
        if math.isnan(warm_rr):
            # round-robin produced no warm request at all — compare
            # against its overall median instead of vacuously passing
            warm_rr = m_rr.percentile_ttft(50)
        assert warm_prefix < warm_rr, (
            f"prefix routing warm p50 TTFT {warm_prefix:.3f}s not below "
            f"round-robin {warm_rr:.3f}s at {replicas} replicas"
        )

    res.notes.append(
        "Every cell decodes bit-identical tokens to sequential "
        "per-conversation replay and every replica audits leak-free after "
        "the drain (asserted): routing changes placement and timing, "
        "never values."
    )
    res.notes.append(
        "At every fleet size >= 2, prefix-affinity routing beats "
        "round-robin on warm p50 TTFT and prefix hit rate (asserted): "
        "round-robin re-pays each template's cold prefill once per "
        "replica, affinity pays it once per fleet. At 1 replica the "
        "policies coincide — there is nothing to route."
    )
    return res
