"""Lockstep simulated process group.

:class:`SimProcessGroup` plays the role of the NCCL process group in the
production system. All ranks live in one Python process and collectives are
*lockstep*: the caller holds one payload per rank in a list indexed by rank,
and each collective returns the post-communication list. This is equivalent
to an SPMD program synchronised at every collective — which is exactly the
structure of the paper's ring algorithms (one SendRecv per ring step).

Payloads are arbitrary nests of ``list`` / ``tuple`` / ``dict`` containing
NumPy arrays. Byte accounting uses a configurable *logical* element size
(default 2 bytes, bf16) rather than the arrays' in-memory float64, so traced
traffic matches what the paper's wire format would carry.
"""

from __future__ import annotations

import copy
import dataclasses
from typing import Any, Sequence

import numpy as np

from repro.distributed.topology import ClusterTopology, single_node_topology
from repro.distributed.tracer import CommTracer


def payload_elements(payload: Any) -> int:
    """Total number of array elements in a nested payload."""
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.size)
    if isinstance(payload, (list, tuple)):
        return sum(payload_elements(p) for p in payload)
    if isinstance(payload, dict):
        return sum(payload_elements(v) for v in payload.values())
    if isinstance(payload, (int, float, np.integer, np.floating)):
        return 1
    if dataclasses.is_dataclass(payload) and not isinstance(payload, type):
        return sum(
            payload_elements(getattr(payload, f.name)) for f in dataclasses.fields(payload)
        )
    raise TypeError(f"unsupported payload type {type(payload)!r}")


class SimProcessGroup:
    """Simulated collective-communication group over ``world_size`` CP ranks.

    Args:
        world_size: number of CP ranks.
        topology: cluster wiring; defaults to a single-node ring, which keeps
            unit tests hardware-agnostic.
        tracer: optional event sink; a fresh private tracer is created when
            omitted.
        wire_bytes_per_element: logical bytes per tensor element on the wire
            (paper notation ``e``; 2 for bf16, 1 for fp8).
    """

    def __init__(
        self,
        world_size: int,
        *,
        topology: ClusterTopology | None = None,
        tracer: CommTracer | None = None,
        wire_bytes_per_element: int = 2,
    ):
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        if topology is not None and topology.world_size != world_size:
            raise ValueError(
                f"topology has {topology.world_size} nodes but world_size={world_size}"
            )
        if wire_bytes_per_element <= 0:
            raise ValueError("wire_bytes_per_element must be positive")
        self.world_size = world_size
        self.topology = topology if topology is not None else single_node_topology().with_nodes(1)
        if topology is None and world_size > 1:
            # Default multi-rank wiring: treat each rank as its own node on
            # a generic high-bandwidth fabric.
            self.topology = ClusterTopology(
                name=f"sim-{world_size}n",
                num_nodes=world_size,
                gpus_per_node=8,
                internode_bandwidth=0.75 * 50e9,
                intranode_bandwidth=450e9,
            )
        self.tracer = tracer if tracer is not None else CommTracer()
        self.wire_bytes_per_element = wire_bytes_per_element

    # ------------------------------------------------------------------ #
    # byte/time model
    # ------------------------------------------------------------------ #

    def payload_nbytes(self, payload: Any) -> int:
        """Logical wire bytes of one payload."""
        return payload_elements(payload) * self.wire_bytes_per_element

    def _xfer_time(self, nbytes: int) -> float:
        """Alpha-beta time for one point-to-point CP-rank message."""
        topo = self.topology
        return topo.cp_link_latency + nbytes / topo.cp_link_bandwidth

    # ------------------------------------------------------------------ #
    # collectives (lockstep: list index == rank)
    # ------------------------------------------------------------------ #

    def _check_world(self, payloads: Sequence[Any]) -> None:
        if len(payloads) != self.world_size:
            raise ValueError(
                f"expected one payload per rank ({self.world_size}), got {len(payloads)}"
            )

    def ring_shift(self, payloads: Sequence[Any], *, step: int = -1, tag: str = "") -> list[Any]:
        """One ring SendRecv: rank ``k`` receives rank ``(k-1) % N``'s payload.

        Every rank sends and receives simultaneously (full-duplex links), so
        the simulated duration of the step is the max single-message time.
        Returns the received payloads, deep-copied to enforce no-aliasing
        between ranks (a real network cannot alias buffers).
        """
        self._check_world(payloads)
        if self.world_size == 1:
            return [copy.deepcopy(payloads[0])]
        max_nbytes = max(self.payload_nbytes(p) for p in payloads)
        self.tracer.record(
            "sendrecv",
            step=step,
            nbytes=max_nbytes,
            duration=self._xfer_time(max_nbytes),
            tag=tag,
        )
        return [copy.deepcopy(payloads[(k - 1) % self.world_size]) for k in range(self.world_size)]

    def all_to_all(self, matrix: Sequence[Sequence[Any]], *, tag: str = "") -> list[list[Any]]:
        """All-to-all personalised exchange.

        ``matrix[src][dst]`` is the payload rank ``src`` sends to rank
        ``dst``; the return value ``out[dst][src]`` is that payload as
        received. Duration is modelled as the busiest rank's total egress
        over its single NIC, matching the paper's Appendix C formula
        ``(N-1) * (D+1) * T * e / BW``.
        """
        self._check_world(matrix)
        for row in matrix:
            if len(row) != self.world_size:
                raise ValueError("all_to_all matrix must be square in world_size")
        if self.world_size > 1:
            egress = [
                sum(self.payload_nbytes(matrix[src][dst]) for dst in range(self.world_size) if dst != src)
                for src in range(self.world_size)
            ]
            nbytes = max(egress)
            self.tracer.record(
                "all2all",
                nbytes=nbytes,
                duration=self.topology.cp_link_latency * (self.world_size - 1)
                + nbytes / self.topology.cp_link_bandwidth,
                tag=tag,
            )
        return [
            [copy.deepcopy(matrix[src][dst]) for src in range(self.world_size)]
            for dst in range(self.world_size)
        ]

    def all_gather(self, payloads: Sequence[Any], *, tag: str = "") -> list[list[Any]]:
        """Every rank receives every rank's payload (ring all-gather cost).

        Returns ``out[k][s]`` = rank ``s``'s payload as seen by rank ``k``.
        Cost model: ``(N-1)`` ring steps each moving the largest shard.
        """
        self._check_world(payloads)
        if self.world_size > 1:
            shard = max(self.payload_nbytes(p) for p in payloads)
            nbytes = shard * (self.world_size - 1)
            self.tracer.record(
                "allgather",
                nbytes=nbytes,
                duration=(self.world_size - 1) * self._xfer_time(shard),
                tag=tag,
            )
        gathered = [copy.deepcopy(p) for p in payloads]
        return [copy.deepcopy(gathered) for _ in range(self.world_size)]

    def all_reduce_sum(self, arrays: Sequence[np.ndarray], *, tag: str = "") -> list[np.ndarray]:
        """Sum-reduce an array across ranks (ring AllReduce cost: 2(N-1)/N)."""
        self._check_world(arrays)
        first = np.asarray(arrays[0])
        for a in arrays[1:]:
            if np.asarray(a).shape != first.shape:
                raise ValueError("all_reduce payloads must share a shape")
        total = np.sum([np.asarray(a, dtype=np.float64) for a in arrays], axis=0)
        if self.world_size > 1:
            full = self.payload_nbytes(first)
            nbytes = 2 * (self.world_size - 1) * full // self.world_size
            self.tracer.record(
                "allreduce",
                nbytes=nbytes,
                duration=2 * (self.world_size - 1) * self._xfer_time(full // self.world_size),
                tag=tag,
            )
        return [total.copy() for _ in range(self.world_size)]

    def record_compute(self, *, step: int = -1, duration: float, tag: str = "") -> None:
        """Trace a per-rank compute interval (e.g. one ring-step attention)."""
        self.tracer.record("attn", step=step, duration=duration, tag=tag)
