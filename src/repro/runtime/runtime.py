"""Continuous-batching serving runtime over the numeric CP engine(s).

:class:`ContinuousBatchingRuntime` is the subsystem where every layer of
the reproduction executes together under live traffic: the
:class:`repro.core.engine.ContextParallelEngine` produces numerically exact
logits, the :class:`repro.serving.scheduler.ChunkedPrefillPolicy` packs
budget-bounded prefill chunks, the paged KV allocator enforces per-rank
capacity, the planner's pass-KV/pass-Q heuristic fires per chunk, and the
:mod:`repro.runtime.clock` prices every engine round in simulated seconds
for streaming TTFT/TTIT metrics.

The runtime executes in one of two deployment shapes:

- **Colocated** (default, one engine): the paper's standalone deployment.
  Prefill rounds and decode rounds contend for the same pool, so chunked
  prefill (§3.3's partial-prefill machinery repurposed as a scheduling
  primitive) is what keeps long prompts from starving decode — at most
  ``max_prefill_rounds_per_decode`` prefill rounds run between batched
  decode rounds, and every decoded token still pays prefill interference.
- **Disaggregated** (``decode_engine`` given): the architecture the paper
  closes on (§4.3, citing DistServe and Mooncake) made executable. A
  *prefill pool* runs chunked prefill only; a *decode pool* with its own
  paged-KV capacity runs decode rounds only; a serialized
  :class:`repro.runtime.transfer.KVTransferStream` moves each finished
  prompt's committed KV blocks between them, priced by the clock's
  bandwidth model and overlapped with compute on both sides. Each pool
  advances its own simulated clock, so decode TTIT is interference-free —
  the measurable claim the analytic
  :class:`repro.serving.simulator.ClusterServingSimulator` predicts and
  the "Disaggregated runtime" experiment checks.

Scheduling model (event-driven, deterministic):

- **Chunked prefill**: pending prompts commit in FIFO order, at most
  ``chunk_tokens`` per request per round, fused across requests up to the
  round token budget. Each chunk is a partial prefill over the KV the
  previous chunks committed, so a long prompt never monopolizes the
  engine and the heuristic can flip to pass-Q as the chunk-local
  cache-hit rate climbs.
- **Decode interleaving** (colocated): when requests are decoding, at
  most ``max_prefill_rounds_per_decode`` prefill rounds run between
  batched decode rounds. Disaggregated pools do not interleave — they run
  concurrently, and the event loop simply advances whichever pool's clock
  is behind.
- **KV transfer** (disaggregated): when a turn's last prefill chunk
  commits, its first token streams immediately from the prefill pool's
  logits (TTFT does not wait for the wire); the request then sits in
  ``KV_TRANSFER`` until the channel delivers its KV delta and the decode
  pool admits it. Conversations *reside* in the decode pool between
  turns; follow-up turns re-prefill their full committed history on the
  prefill pool (exact recompute) and ship only the positions the decode
  pool does not already hold.
- **Admission & preemption**: before any round, its exact per-rank KV
  token demand (from the engine's load-balanced sharding) is checked
  against that pool's paged allocator. Under pressure a pool evicts, in
  order: idle conversations (between turns), then the *youngest* active
  request — never one older than any beneficiary of the round, so
  admission stays FCFS. A transfer landing is admission-checked the same
  way and is *refused* (left on the wire, retried) when the decode pool
  cannot make room. A request evicted mid-transfer has its transfer
  cancelled (only wire time already streamed is sunk; a still-queued
  payload refunds its reservation and successors re-pack). Because the
  algorithms are exact for any sharding and chunking, the resumed
  request's tokens are identical to an uninterrupted run (pinned by
  property tests).
- **Preemption remedies** (``preemption=``): what eviction does to the
  victim's KV. ``"recompute"`` (default, vLLM-style) drops the whole
  conversation and re-prefills the full committed history on resume.
  ``"trim"`` drops only the victim's *newest* KV blocks — roughly one
  allocator block per rank per application, repeatedly under sustained
  pressure, down to full eviction — so resume re-prefills just the
  trimmed suffix over the resident prefix.
  ``"swap"`` exports the victim's KV whole into a per-pool host-side
  store (bounded by ``swap_capacity_tokens``) at
  ``clock.price_swap(tokens)`` PCIe cost, and imports it back — same
  price again — once the pool readmits it, with *no* recompute in either
  direction: a decode victim resumes decoding its pending token
  directly. Both new remedies fall back to full eviction when they
  cannot apply (mid-transfer victims, a full host store, a prefix
  already trimmed to nothing, a payload larger than the empty pool).
  DistServe/Mooncake-class systems trade HBM this way; the discrete
  clocks price each remedy honestly, and none of them may change tokens.
- **Shared-prefix reuse** (``prefix_cache=True``): admission matches
  each fresh stream's input against a radix index of resident committed
  prefixes and adopts the longest hit through refcounted copy-on-write
  paged blocks — capacity and prefill compute are charged only for the
  uncached suffix, matched donors are pinned for the borrower's
  lifetime (tail-trim never cuts into an adopted span), and finished
  conversations stay resident as LRU-evictable cached prefixes instead
  of releasing. Disaggregated, the prefill pool retains its copy after
  each transfer, so follow-up turns skip the history recompute and ship
  only deltas (Mooncake's KVCache-centric architecture).

- **Fault injection & graceful degradation** (``faults=``): a seeded
  :class:`repro.runtime.faults.FaultPlan` makes the failure surface
  explicit — in-flight KV transfers die mid-stream (retried with capped
  exponential backoff, then degraded to full re-prefill of the committed
  history), host-stored swap payloads vanish at swap-in time (recompute
  fallback), and whole pools reset, requeueing every holder with
  consistent prefix-index/allocator invalidation. Per-request deadlines
  shed late requests (``timed_out``) and a queue-depth cap rejects
  admissions under overload (``shed``), so saturation degrades
  completion rate instead of wedging the run. Every recovery path lands
  on machinery preemption already exercises, so faults change *which*
  requests complete and *when* — never the tokens a completed request
  streams.

Exactness contract: for greedy decoding, the per-request token streams are
identical to replaying each conversation sequentially through
:class:`repro.serving.session.ChatSession` on a dedicated engine —
continuous batching, chunking, preemption, pool splits, transfer and
fault/retry/shed schedules change *placement, timing and completion*,
never values. Under faults the contract is scoped to requests that reach
``FINISHED`` (:attr:`RuntimeReport.completed`): a shed request's partial
stream carries no exactness claim.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

import numpy as np

from repro.core.engine import ContextParallelEngine
from repro.core.sharding import SequenceSpec
from repro.model.sampling import sample_greedy
from repro.obs.trace import NULL_TRACER
from repro.runtime.clock import UnitStepClock
from repro.runtime.faults import FaultInjector, FaultPlan
from repro.runtime.state import RequestRecord, RequestState, TurnRequest
from repro.runtime.transfer import KVTransferStream
from repro.serving.metrics import ServingMetrics
from repro.serving.request import TurnRecord
from repro.serving.scheduler import ChunkAssignment, ChunkedPrefillPolicy
from repro.workloads.generator import ConversationScript

#: States in which a request occupies (or is about to occupy) engine KV.
_ACTIVE_STATES = (RequestState.PREFILL, RequestState.KV_TRANSFER, RequestState.DECODE)

#: Pool names (metrics keys and internal routing).
POOL_PREFILL = "prefill"
POOL_DECODE = "decode"


@dataclass
class RuntimeReport:
    """Aggregate outcome of a runtime run.

    This is a *live view*, not a snapshot: ``records`` and ``metrics``
    reference the runtime's own mutable state, so a report taken mid-run
    keeps updating as further steps execute (which is what lets tests and
    external policies inspect in-flight requests cheaply). Take the
    report after :meth:`ContinuousBatchingRuntime.run` drains — or copy
    fields — when a frozen snapshot is needed.

    Attributes:
        records: every submitted request's record, by request id.
        metrics: rolled-up serving metrics (turns, TTFT/TTIT percentiles,
            preemption/eviction and KV-transfer counters).
        makespan: simulated seconds from 0 to the last round's end
            (the later of the two pool clocks when disaggregated).
        prefill_rounds / decode_rounds: executed engine rounds by kind.
    """

    records: dict[int, RequestRecord] = field(default_factory=dict)
    metrics: ServingMetrics = field(default_factory=ServingMetrics)
    makespan: float = 0.0
    prefill_rounds: int = 0
    decode_rounds: int = 0

    @property
    def generated_tokens(self) -> int:
        return sum(len(r.generated) for r in self.records.values())

    def tokens_per_second(self) -> float:
        """Decoded tokens per simulated second over the makespan."""
        return self.generated_tokens / self.makespan if self.makespan > 0 else 0.0

    def generated(self, request_id: int) -> list[int]:
        return list(self.records[request_id].generated)

    @property
    def completed(self) -> dict[int, RequestRecord]:
        """Records that reached ``FINISHED`` — the population the
        serving-exactness contract covers under fault schedules (a
        ``timed_out``/``shed`` request's partial stream claims nothing).
        Callers should use this instead of inferring outcomes from token
        counts."""
        return {
            rid: rec
            for rid, rec in self.records.items()
            if rec.state is RequestState.FINISHED
        }

    def statuses(self) -> dict[str, int]:
        """Terminal-status histogram (``finished``/``timed_out``/``shed``;
        in-flight requests under ``None``'s key ``"running"``)."""
        counts: dict[str, int] = {}
        for rec in self.records.values():
            key = rec.status or "running"
            counts[key] = counts.get(key, 0) + 1
        return counts

    def goodput(self) -> float:
        """Completed requests per simulated host-second over the makespan
        (DistServe's serving-quality axis; 0 before any time elapses)."""
        return len(self.completed) / self.makespan if self.makespan > 0 else 0.0

    def pool_utilization(self) -> dict[str, float]:
        """Busy fraction per pool over the makespan."""
        return {
            pool: self.metrics.pool_utilization(pool, self.makespan)
            for pool in sorted(self.metrics.pool_busy_s)
        }


class ContinuousBatchingRuntime:
    """Event-driven continuous batching over one or two CP engine pools.

    Args:
        engine: the numeric engine running prefill rounds (and, when no
            ``decode_engine`` is given, decode rounds too — the colocated
            deployment). Its ``capacity_tokens`` is the prefill pool's KV
            pressure source; unbounded engines never preempt.
        decode_engine: optional second engine (any world size) that turns
            the runtime into a disaggregated prefill/decode deployment:
            decode rounds run here against this pool's own paged-KV
            capacity, fed by a KV-transfer stream. Must share the prefill
            engine's model weights.
        policy: chunked-prefill round packing (default 512-token chunks,
            test scale).
        clock: round pricer (default :class:`UnitStepClock`); also prices
            KV transfers when disaggregated.
        transfer_stream: override the KV channel (defaults to a
            :class:`KVTransferStream` on ``clock``); ignored colocated.
        max_prefill_rounds_per_decode: prefill rounds allowed between
            decode rounds while any request is decoding (>= 1). Higher
            values favour TTFT over TTIT. Only meaningful colocated —
            disaggregated pools never contend.
        preemption: eviction remedy — ``"recompute"`` (full evict +
            exact re-prefill, the default), ``"trim"`` (tail-trim: drop
            newest KV only, re-prefill just the suffix), or ``"swap"``
            (export to a host-side store at PCIe cost, import back
            before resume, no recompute).
        swap_capacity_tokens: per-pool host-store budget in KV tokens
            for ``preemption="swap"`` (``None`` = unbounded host DRAM).
            A victim that does not fit the store falls back to full
            eviction.
        prefix_cache: enable shared-prefix KV reuse (a radix index over
            committed token ids on the prefill engine). Admission
            matches each fresh stream's input against resident prefixes
            and adopts the longest hit through refcounted paged blocks —
            capacity and prefill compute are charged only for the
            uncached suffix. Finished conversations stay resident as
            LRU-evictable cached prefixes instead of releasing
            (disaggregated: the prefill-pool copy; the decode pool never
            donates), and matched donors are pinned for the borrowing
            request's lifetime.
        faults: optional :class:`repro.runtime.faults.FaultPlan` turning
            on deterministic fault injection — seeded transfer failures
            (retry with capped backoff, then re-prefill fallback), swap
            losses (recompute fallback), whole-pool KV resets, per-request
            deadlines (timeout shedding) and queue-depth backpressure.
            ``None`` (default) or an inactive plan injects nothing.
        sanitize: attach the KV shadow-state sanitizer
            (:mod:`repro.analysis.sanitizer`) to every pool engine.
            Each allocator op and engine lifecycle op is then validated
            against an independent shadow model, raising
            :class:`~repro.analysis.sanitizer.SanitizerError` at the
            first double-free / use-after-free / refcount underflow /
            COW violation, and :meth:`run` checks for undrained leaks
            after the queue empties.
        tracer: a :class:`repro.obs.trace.Tracer` receiving structured
            scheduling events (admissions, rounds, transfers, swaps,
            preemptions, faults, completions) at simulated timestamps.
            Defaults to the zero-overhead null tracer; a fleet passes
            each replica a ``tracer.scoped(replica=i)`` view.
    """

    def __init__(
        self,
        engine: ContextParallelEngine,
        *,
        decode_engine: ContextParallelEngine | None = None,
        policy: ChunkedPrefillPolicy | None = None,
        clock=None,
        transfer_stream: KVTransferStream | None = None,
        max_prefill_rounds_per_decode: int = 1,
        preemption: str = "recompute",
        swap_capacity_tokens: int | None = None,
        prefix_cache: bool = False,
        faults: FaultPlan | None = None,
        sanitize: bool = False,
        tracer=None,
    ):
        if max_prefill_rounds_per_decode < 1:
            raise ValueError(
                f"max_prefill_rounds_per_decode must be >= 1, got {max_prefill_rounds_per_decode}"
            )
        if preemption not in ("recompute", "trim", "swap"):
            raise ValueError(
                f"preemption must be one of 'recompute', 'trim', 'swap', got {preemption!r}"
            )
        if swap_capacity_tokens is not None:
            if preemption != "swap":
                raise ValueError(
                    "swap_capacity_tokens only applies with preemption='swap'"
                )
            if swap_capacity_tokens < 0:
                raise ValueError(
                    f"swap_capacity_tokens must be >= 0, got {swap_capacity_tokens}"
                )
        if decode_engine is not None and decode_engine.model is not engine.model:
            raise ValueError(
                "disaggregated pools must share model weights: pass the same "
                "LlamaModel instance to both engines"
            )
        self.engine = engine
        self.decode_engine = decode_engine if decode_engine is not None else engine
        self.disaggregated = self.decode_engine is not engine
        self.policy = policy if policy is not None else ChunkedPrefillPolicy(
            chunk_tokens=512, max_tokens_per_round=2048, max_seqs_per_round=8
        )
        self.clock = clock if clock is not None else UnitStepClock()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.transfer_stream = (
            (
                transfer_stream
                if transfer_stream is not None
                else KVTransferStream(self.clock, tracer=self.tracer.scoped(pool="wire"))
            )
            if self.disaggregated
            else None
        )
        self.max_prefill_rounds_per_decode = max_prefill_rounds_per_decode
        self.preemption = preemption
        self.swap_capacity_tokens = swap_capacity_tokens
        self.faults = faults
        self._injector = (
            FaultInjector(
                faults,
                pools=(POOL_PREFILL, POOL_DECODE)
                if self.disaggregated
                else (POOL_PREFILL,),
                tracer=self.tracer,
            )
            if faults is not None and faults.active
            else None
        )
        # radix prefix cache lives on the prefill engine: that is where
        # fresh streams are admitted and where shared blocks save both
        # capacity and prefill compute
        self.prefix_index = self.engine.enable_prefix_cache() if prefix_cache else None
        # host-side KV store per pool (swap remedy): {seq_id: KVExport};
        # colocated runtimes canonicalize onto the prefill-pool slot
        self._swap_store: dict[str, dict[int, object]] = {
            POOL_PREFILL: {},
            POOL_DECODE: {},
        }
        self._swap_used: dict[str, int] = {POOL_PREFILL: 0, POOL_DECODE: 0}
        # requests whose KV sits in the host store, FCFS by (arrival, rid)
        self._swap_wait: list[tuple[tuple[float, int], int, str]] = []

        self._t_prefill = 0.0
        self._t_decode = 0.0
        self.metrics = ServingMetrics()
        self.prefill_rounds = 0
        self.decode_rounds = 0
        self._records: dict[int, RequestRecord] = {}
        self._chains: dict[int, list[int]] = {}  # seq_id -> unfinished turn rids, in order
        self._turn_history: dict[int, list[int]] = {}  # seq_id -> tokens of finished turns
        self._prefill_queue: list[tuple[tuple[float, int], int]] = []  # (sort key, rid)
        self._prefill_streak = 0
        self._next_rid = 0
        # incremental indices so per-step bookkeeping is O(active), not
        # O(all requests ever submitted); _records itself retains finished
        # requests deliberately — it is the report() API surface
        self._live: set[int] = set()  # rids not yet FINISHED
        self._decoding: set[int] = set()  # rids in DECODE state
        self._waiting: set[int] = set()  # seq_ids whose chain head is QUEUED
        # seq_ids with tokens in each pool's KV; colocated mode aliases the
        # two names to ONE set (a single pool holds everything)
        self._holders_prefill: set[int] = set()
        self._holders_decode: set[int] = self._holders_prefill if not self.disaggregated else set()

        # shadow-state sanitizer (opt-in): validates every allocator and
        # engine lifecycle op against an independent model, then checks
        # for undrained leaks when run() finishes
        self.sanitizers: list = []
        if sanitize:
            from repro.analysis.sanitizer import attach_sanitizer

            self.sanitizers.append(attach_sanitizer(self.engine))
            if self.disaggregated:
                self.sanitizers.append(attach_sanitizer(self.decode_engine))

    @property
    def now(self) -> float:
        """Simulated time: the later of the pool clocks (equal colocated)."""
        return max(self._t_prefill, self._t_decode)

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #

    def submit(self, request: TurnRequest) -> int:
        """Enqueue one turn; returns its request id.

        Turns sharing a ``seq_id`` form a conversation: they run in submit
        order over one persistent KV stream, each waiting for its
        predecessor to finish.
        """
        if request.request_id < 0:
            request.request_id = self._next_rid
        if request.request_id in self._records:
            raise ValueError(f"request {request.request_id} already submitted")
        self._next_rid = max(self._next_rid, request.request_id) + 1
        self._records[request.request_id] = RequestRecord(request=request)
        chain = self._chains.setdefault(request.seq_id, [])
        chain.append(request.request_id)
        self._turn_history.setdefault(request.seq_id, [])
        self._live.add(request.request_id)
        if len(chain) == 1:
            self._waiting.add(request.seq_id)
        return request.request_id

    def submit_script(
        self,
        script: ConversationScript,
        *,
        arrival: float = 0.0,
        think_time: float = 0.0,
    ) -> list[int]:
        """Enqueue a whole scripted conversation; returns its request ids.

        Turn ``i`` arrives no earlier than ``arrival + i * think_time``
        (and never before its predecessor finishes).
        """
        if think_time < 0:
            raise ValueError("think_time must be >= 0")
        rids = []
        n = script.turns
        for i, (prompt, budget) in enumerate(zip(script.prompts, script.response_budgets)):
            rids.append(
                self.submit(
                    TurnRequest(
                        request_id=-1,
                        seq_id=script.seq_id,
                        prompt=prompt,
                        max_new_tokens=int(budget),
                        arrival=arrival + i * think_time,
                        last_turn=(i == n - 1),
                    )
                )
            )
        return rids

    # ------------------------------------------------------------------ #
    # event loop
    # ------------------------------------------------------------------ #

    def run(self, *, max_steps: int | None = None) -> RuntimeReport:
        """Drive :meth:`step` until every submitted request finishes."""
        steps = 0
        while self.step():
            steps += 1
            if max_steps is not None and steps >= max_steps:
                raise RuntimeError(f"runtime did not drain within {max_steps} steps")
        for sanitizer in self.sanitizers:
            sanitizer.check_drained()
        return self.report()

    def step(self) -> bool:
        """Execute one engine round (or advance a clock to the next
        event). Returns ``True`` while unfinished requests remain."""
        if not self._any_live():
            return False
        if self._injector is not None:
            self._apply_faults()
            if not self._any_live():
                return False
        if self.disaggregated:
            return self._step_disaggregated()
        self._admit()
        self._swap_in_ready()
        if not self._prefill_queue and not self._decoders():
            nxt = self._next_arrival()
            if nxt is None:
                # every live request is swap-blocked waiting on capacity
                # held by older work that no longer exists; fall back to
                # chunked recompute so the run drains. (The other dead
                # end — a payload too large for even an emptied pool —
                # already spilled inside _swap_in_ready.)
                spilled = self._spill_oldest_swapped()
                assert spilled, "live requests but nothing runnable or arriving"
            else:
                self._t_prefill = self._t_decode = max(self.now, nxt)
                self._admit()
                self._swap_in_ready()

        decoders = self._decoders()
        want_decode = decoders and (
            not self._prefill_queue
            or self._prefill_streak >= self.max_prefill_rounds_per_decode
        )
        if not want_decode and self._prefill_queue:
            if self._prefill_round():
                self._prefill_streak += 1
                return self._any_live()
            decoders = self._decoders()  # fit loop may have preempted some
            if not decoders:
                rid = self._prefill_queue[0][1]
                raise RuntimeError(
                    f"KV capacity exhausted: request {rid} cannot prefill even "
                    "one token after evicting every eligible victim"
                )
        if decoders:
            self._decode_round(decoders)
            self._prefill_streak = 0
        return self._any_live()

    def _step_disaggregated(self) -> bool:
        """One scheduling decision across the two pools.

        Each pool has its own clock; a step lands due transfers, wakes an
        idle pool up to its next enabling event, then runs one round on
        whichever runnable pool is further behind in simulated time (ties
        go to prefill). The decode pool's idle time spent waiting for KV
        on the wire is recorded as transfer stall.
        """
        progressed = self._land_transfers()
        self._admit()
        if self._swap_in_ready():
            progressed = True
        if not self._ready_prefill_entries():
            nxt = self._next_prefill_event()
            if nxt is not None:
                # running decodes / in-flight transfers / pending swap-ins
                # may still create *earlier* prefill work (follow-up
                # turns, evictions), so an idle prefill clock may only
                # catch up to the decode clock — never jump past it —
                # until pool B drains too
                if self._decoding or self._swap_wait or self.transfer_stream.in_flight():
                    nxt = min(nxt, self._t_decode)
                if nxt > self._t_prefill:
                    self._t_prefill = nxt
                    self._admit()
                    progressed = True
        if not self._decoding and self._advance_decode_to_wire():
            progressed = True

        ready = self._ready_prefill_entries()
        decoders = self._decoders()
        if ready and (not decoders or self._t_prefill <= self._t_decode):
            if self._prefill_round():
                return self._any_live()
            decoders = self._decoders()  # fit loop may have preempted some
            if not decoders:
                # only landings can free the prefill pool now: walk the
                # wire finish by finish (a refused payload must not mask a
                # later one whose landing releases prefill-side blocks)
                while True:
                    if self._land_transfers():
                        return self._any_live()
                    if not self._advance_decode_to_wire():
                        break
                rid = ready[0][1]
                raise RuntimeError(
                    f"prefill-pool KV capacity exhausted: request {rid} cannot "
                    "prefill even one token after evicting every eligible victim"
                )
        if decoders:
            self._decode_round(decoders)
            return self._any_live()
        if not progressed and not ready:
            if self._spill_oldest_swapped():
                return self._any_live()
            raise RuntimeError(
                "runtime stalled: live requests but no runnable rounds, "
                "arrivals, or admissible KV transfers (decode pool too small "
                "for an in-flight context?)"
            )
        return self._any_live()

    def _advance_decode_to_wire(self) -> bool:
        """Jump the idle decode clock to the next transfer arrival.

        Only the wire-bound share of the jump counts as transfer stall:
        idle time that elapsed before the payload even started streaming
        (think time, prefill) is the workload's, not the channel's.
        """
        pending = [
            t for t in self.transfer_stream.in_flight() if t.finish > self._t_decode
        ]
        if not pending:
            return False
        # target the earliest finish still ahead of the clock, so a due
        # payload the pool keeps refusing never blocks reaching later ones
        nxt = min(pending, key=lambda t: (t.finish, t.request_id))
        stall = nxt.finish - max(self._t_decode, nxt.start)
        if stall > 0:
            self.metrics.record_transfer_stall(stall)
            if self.tracer.enabled:
                self.tracer.span(
                    "transfer_stall",
                    max(self._t_decode, nxt.start),
                    stall,
                    pool=POOL_DECODE,
                    request_id=nxt.request_id,
                    seq_id=nxt.seq_id,
                )
        self._t_decode = nxt.finish
        return True

    def report(self) -> RuntimeReport:
        """Current :class:`RuntimeReport` (a live view; see its docs)."""
        return RuntimeReport(
            records=dict(self._records),
            metrics=self.metrics,
            makespan=self.now,
            prefill_rounds=self.prefill_rounds,
            decode_rounds=self.decode_rounds,
        )

    # ------------------------------------------------------------------ #
    # pool routing
    # ------------------------------------------------------------------ #

    def _pool_engine(self, pool: str) -> ContextParallelEngine:
        return self.engine if pool == POOL_PREFILL else self.decode_engine

    def _pool_holders(self, pool: str) -> set[int]:
        return self._holders_prefill if pool == POOL_PREFILL else self._holders_decode

    def _pool_of(self, rec: RequestRecord) -> str:
        """Which pool holds an active request's KV."""
        return POOL_DECODE if rec.state is RequestState.DECODE else POOL_PREFILL

    def _note_kv_occupancy(self, pool: str) -> None:
        """Sample a pool's claimed KV fraction for the peak metric."""
        frac = self._pool_engine(pool).kv_utilization()
        if frac is not None:
            self.metrics.record_kv_occupancy(pool, frac)

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #

    def _admit(self) -> None:
        """Move eligible chain-head turns into the prefill FIFO."""
        for seq_id in sorted(self._waiting):
            rec = self._records[self._chains[seq_id][0]]
            if rec.request.arrival > self._t_prefill:
                continue
            if (
                self.faults is not None
                and self.faults.max_queue_depth is not None
                and len(self._prefill_queue) >= self.faults.max_queue_depth
            ):
                # overload backpressure (Mooncake-style early rejection):
                # rejecting at admission costs nothing yet; the rest of
                # the conversation cascades because its turns can never
                # run without this one's tokens
                self._shed_chain(rec, status=RequestState.SHED, at=self._t_prefill)
                continue
            self._waiting.discard(seq_id)
            rec.state = RequestState.PREFILL
            rec.ready_at = max(rec.ready_at, rec.request.arrival)
            rec.admitted_at = max(self._t_prefill, rec.ready_at)
            if self.tracer.enabled:
                self.tracer.instant(
                    "admit",
                    rec.admitted_at,
                    request_id=rec.request_id,
                    seq_id=seq_id,
                    pool=POOL_PREFILL,
                    arrival=rec.request.arrival,
                )
            if self.disaggregated:
                # conversations reside in the decode pool; the prefill pool
                # recomputes the full committed history each turn and ships
                # only the positions the decode pool lacks
                rec.cached_at_start = self.decode_engine.context_length(seq_id)
                history = self._turn_history[seq_id]
                if history:
                    rec.pending_input = np.asarray(
                        history + list(rec.request.prompt), dtype=np.int64
                    )
                if self.prefix_index is not None:
                    self._drop_stale_resident(rec)
                    resident = self.engine.context_length(seq_id)
                    if resident:
                        # the prefill-pool copy retained after the last
                        # transfer covers a prefix of this turn's input:
                        # recompute starts where it ends instead of at 0
                        rec.prefill_done = resident
                    else:
                        self._match_shared_prefix(rec)
            else:
                store = self._swap_store[POOL_PREFILL]
                history = self._turn_history[seq_id]
                if seq_id in store:
                    # the idle conversation's resident KV was swapped to
                    # the host store between turns: restore it (priced at
                    # PCIe cost, no recompute) before this turn's prefill
                    # extends it
                    cached = store[seq_id].tokens
                    rec.cached_at_start = cached
                    rec.pending_input = np.asarray(
                        history + list(rec.request.prompt), dtype=np.int64
                    )
                    rec.prefill_done = cached
                    rec.swapped_from = RequestState.PREFILL
                    rec.state = RequestState.SWAPPED
                    self._swap_wait.append(
                        ((rec.request.arrival, rec.request_id), rec.request_id, POOL_PREFILL)
                    )
                    continue
                if self.prefix_index is not None:
                    self._drop_stale_resident(rec)
                rec.cached_at_start = self.engine.context_length(seq_id)
                if rec.cached_at_start < len(history):
                    # the idle conversation was evicted (or tail-trimmed)
                    # between turns: fold the committed history back in and
                    # resume the prefill from the resident prefix
                    rec.pending_input = np.asarray(
                        history + list(rec.request.prompt), dtype=np.int64
                    )
                    rec.prefill_done = rec.cached_at_start
                if self.prefix_index is not None and rec.cached_at_start == 0:
                    self._match_shared_prefix(rec)
            self._enqueue_prefill(rec)

    def _enqueue_prefill(self, rec: RequestRecord) -> None:
        key = (rec.request.arrival, rec.request_id)
        bisect.insort(self._prefill_queue, (key, rec.request_id))

    def _ready_prefill_entries(self) -> list[tuple[tuple[float, int], int]]:
        """FIFO entries allowed to occupy a prefill round at the current
        prefill-pool time (``ready_at`` keeps pool clocks causal)."""
        return [
            (key, rid)
            for key, rid in self._prefill_queue
            if self._records[rid].ready_at <= self._t_prefill
        ]

    def _next_prefill_event(self) -> float | None:
        """Earliest time the prefill pool gains runnable work."""
        times = []
        for seq_id in sorted(self._waiting):
            head = self._records[self._chains[seq_id][0]]
            times.append(max(head.request.arrival, head.ready_at))
        times.extend(self._records[rid].ready_at for _key, rid in self._prefill_queue)
        return min(times) if times else None

    # ------------------------------------------------------------------ #
    # shared-prefix admission (radix prefix cache)
    # ------------------------------------------------------------------ #

    def _drop_stale_resident(self, rec: RequestRecord) -> None:
        """Evict retained KV colliding with a *new* conversation's seq_id.

        A finished conversation stays resident as a cached prefix under
        its seq_id; if a fresh conversation reuses that id, the resident
        tokens describe the old conversation, not this one — drop them
        (the new conversation can still adopt through the index, under
        its own identity). No-op for follow-up turns, whose residency is
        their own.
        """
        seq_id = rec.seq_id
        if self._turn_history[seq_id]:
            return
        tokens = self.engine.context_length(seq_id)
        if tokens:
            self.engine.evict(seq_id)
            self._holders_prefill.discard(seq_id)
            self.metrics.record_prefix_eviction(tokens)
            if self.tracer.enabled:
                self.tracer.instant(
                    "prefix_evict",
                    self._t_prefill,
                    pool=POOL_PREFILL,
                    seq_id=seq_id,
                    tokens=tokens,
                )

    def _match_shared_prefix(self, rec: RequestRecord) -> None:
        """Adopt the longest indexed prefix of ``rec``'s pending input.

        On a hit the matched tokens are shared block-for-block (capacity
        counted once, nothing recomputed), ``prefill_done`` jumps past
        them so admission charges only the uncached suffix, and the donor
        is pinned in the index for this request's lifetime. At least one
        token is always left to prefill — the finishing chunk must
        produce next-token logits to sample from.
        """
        full = rec.pending_input
        matched, donor = self.engine.match_prefix(full)
        matched = min(matched, int(full.size) - 1)
        if not self._turn_history[rec.seq_id]:
            # only fresh conversations file warm/cold TTFT samples —
            # follow-up turns are warm by construction
            rec.prefix_eligible = True
        if matched < 1 or donor is None:
            self.metrics.record_prefix_miss()
            if self.tracer.enabled:
                self.tracer.instant(
                    "prefix_miss",
                    self._t_prefill,
                    pool=POOL_PREFILL,
                    request_id=rec.request_id,
                    seq_id=rec.seq_id,
                )
            return
        self.engine.adopt_prefix(rec.seq_id, donor, matched)
        self._holders_prefill.add(rec.seq_id)
        rec.prefill_done = matched
        rec.prefix_hit = True
        rec.prefix_shared = matched
        rec.prefix_donor = donor
        self.prefix_index.pin(donor)
        if not self.disaggregated:
            rec.cached_at_start = matched
        self.metrics.record_prefix_hit(matched)
        if self.tracer.enabled:
            self.tracer.instant(
                "prefix_hit",
                self._t_prefill,
                pool=POOL_PREFILL,
                request_id=rec.request_id,
                seq_id=rec.seq_id,
                reused=matched,
                donor=donor,
            )
            self.tracer.instant(
                "prefix_adopt",
                self._t_prefill,
                pool=POOL_PREFILL,
                request_id=rec.request_id,
                seq_id=rec.seq_id,
                donor=donor,
                tokens=matched,
            )

    # ------------------------------------------------------------------ #
    # prefill rounds
    # ------------------------------------------------------------------ #

    def _prefill_round(self) -> bool:
        """Build, fit and execute one chunked prefill round.

        Returns ``False`` when not even a one-token chunk of the FIFO head
        fits after exhausting every eligible victim (the caller decides
        whether decoding can make progress instead).
        """
        entries = self._ready_prefill_entries()
        by_seq = {self._records[rid].seq_id: self._records[rid] for _, rid in entries}
        pending = []
        for _, rid in entries:
            rec = self._records[rid]
            pending.append((rec.seq_id, rec.prefill_remaining))
        round_ = self.policy.build_round(pending)
        round_ = self._fit_prefill_round(round_, by_seq)
        if not round_ and getattr(self.policy, "order", "fifo") != "fifo":
            # liveness fallback for non-FIFO packing: the FIFO head is the
            # oldest request, so it alone can evict every younger holder —
            # a reordered round of young requests must not starve it
            head = next((entry for entry in pending if entry[1] > 0), None)
            if head is not None:
                round_ = self._fit_prefill_round(
                    [ChunkAssignment(seq_id=head[0], tokens=min(head[1], self.policy.chunk_tokens))],
                    by_seq,
                )
        if not round_:
            return False

        prompts: dict[int, np.ndarray] = {}
        chunk_tp: list[tuple[int, int]] = []
        for chunk in round_:
            rec = by_seq[chunk.seq_id]
            lo = rec.prefill_done
            prompts[chunk.seq_id] = rec.pending_input[lo : lo + chunk.tokens]
            chunk_tp.append((chunk.tokens, self.engine.context_length(chunk.seq_id)))

        out = self.engine.prefill(prompts)
        price = self.clock.price_prefill(chunk_tp)
        round_start = self._t_prefill
        self._t_prefill += price
        if not self.disaggregated:
            self._t_decode = self._t_prefill
        self.metrics.record_round(POOL_PREFILL, price)
        if self.tracer.enabled:
            self.tracer.span(
                "prefill_round",
                round_start,
                price,
                pool=POOL_PREFILL,
                algo=out.plan.algo.value,
                tokens=sum(c.tokens for c in round_),
                seqs=len(round_),
            )
            for chunk in round_:
                self.tracer.span(
                    "prefill_chunk",
                    round_start,
                    price,
                    pool=POOL_PREFILL,
                    request_id=by_seq[chunk.seq_id].request_id,
                    seq_id=chunk.seq_id,
                    tokens=chunk.tokens,
                )
        self.prefill_rounds += 1
        self._holders_prefill.update(prompts)
        self._note_kv_occupancy(POOL_PREFILL)

        for chunk in round_:
            rec = by_seq[chunk.seq_id]
            rec.state = RequestState.PREFILL
            rec.prefill_done += chunk.tokens
            rec.chunk_algos.append(out.plan.algo.value)
            if rec.prefill_remaining == 0:
                self._dequeue_prefill(rec)
                self._on_prefill_complete(rec, out.last_logits(chunk.seq_id))
        return True

    def _on_prefill_complete(self, rec: RequestRecord, last_logits: np.ndarray) -> None:
        t = self._t_prefill
        if rec.request.max_new_tokens == 0:
            if self.disaggregated:
                if self.prefix_index is None:
                    # no decode phase: drop the prefill pool's copy; the
                    # next turn recomputes the history and ships the delta
                    self.engine.release(rec.seq_id)
                    self._holders_prefill.discard(rec.seq_id)
                else:
                    self.prefix_index.touch(rec.seq_id)
            self._finish_turn(rec, at=t)
            return
        if rec.resample_on_prefill:
            token = int(sample_greedy(last_logits))
            rec.generated.append(token)
            rec.token_times.append(t)
            if rec.first_token_at is None:
                rec.first_token_at = t
                if self.tracer.enabled:
                    self.tracer.instant(
                        "first_token",
                        t,
                        request_id=rec.request_id,
                        seq_id=rec.seq_id,
                        ttft=rec.ttft,
                    )
        # post-preemption resume keeps its already-sampled pending token —
        # the re-prefill logits would reproduce it exactly
        rec.resample_on_prefill = True
        if self.disaggregated:
            # first token streamed from the prefill pool's logits; the KV
            # delta now crosses the wire before decode can start
            rec.state = RequestState.KV_TRANSFER
            delta = self.engine.context_length(rec.seq_id) - self.decode_engine.context_length(
                rec.seq_id
            )
            self.transfer_stream.schedule(rec.seq_id, rec.request_id, delta, t)
        else:
            rec.state = RequestState.DECODE
            self._decoding.add(rec.request_id)

    def _fit_prefill_round(
        self,
        round_: list[ChunkAssignment],
        by_seq: dict[int, RequestRecord],
    ) -> list[ChunkAssignment]:
        """Shrink/evict until the round's exact per-rank KV demand fits.

        Victims must be younger than every beneficiary (FCFS): when none
        qualify, the round drops its own youngest member instead, and the
        last remaining chunk shrinks down to whatever fits.
        """
        while round_:
            specs = [
                SequenceSpec(c.seq_id, c.tokens, self.engine.context_length(c.seq_id))
                for c in round_
            ]
            if self.engine.fits(self.engine.prefill_token_demand(specs)):
                return round_
            tail_key = max(
                (by_seq[c.seq_id].request.arrival, by_seq[c.seq_id].request_id)
                for c in round_
            )
            victim = self._find_victim(
                pool=POOL_PREFILL,
                protected={c.seq_id for c in round_},
                younger_than=tail_key,
            )
            if victim is not None:
                self._evict(
                    victim, pool=POOL_PREFILL, at=self._t_prefill, reason="prefill_fit"
                )
                continue
            if len(round_) > 1:
                # drop the youngest member by FCFS key — under SRPF
                # packing the positional tail is the *longest-remaining*
                # request (often the oldest), which must not be the one
                # squeezed out of its own round
                youngest = max(
                    range(len(round_)),
                    key=lambda i: (
                        by_seq[round_[i].seq_id].request.arrival,
                        by_seq[round_[i].seq_id].request_id,
                    ),
                )
                round_.pop(youngest)
                continue
            head = round_[0]
            cached = self.engine.context_length(head.seq_id)
            best = self._max_fitting_chunk(head.seq_id, cached, head.tokens)
            if best == 0:
                return []
            return [ChunkAssignment(seq_id=head.seq_id, tokens=best)]
        return []

    def _max_fitting_chunk(self, seq_id: int, cached: int, want: int) -> int:
        """Largest chunk of ``[1, want]`` tokens whose demand fits (0 = none)."""
        lo, hi, best = 1, want, 0
        while lo <= hi:
            mid = (lo + hi) // 2
            demand = self.engine.prefill_token_demand([SequenceSpec(seq_id, mid, cached)])
            if self.engine.fits(demand):
                best = mid
                lo = mid + 1
            else:
                hi = mid - 1
        return best

    # ------------------------------------------------------------------ #
    # KV transfer landing (disaggregated)
    # ------------------------------------------------------------------ #

    def _land_transfers(self) -> bool:
        """Import every due transfer the decode pool admits.

        A payload the pool cannot admit — even after evicting every
        eligible (younger or idle) victim — is refused: it stays on the
        landed side of the wire and is retried as decode rounds and
        conversation completions free blocks.
        """
        if not self.disaggregated:
            return False
        landed = False
        for transfer in self.transfer_stream.ready(self._t_decode):
            rec = self._records[transfer.request_id]
            sid = transfer.seq_id
            start_pos = self.decode_engine.context_length(sid)
            tokens = self.engine.context_length(sid) - start_pos
            if tokens > transfer.tokens:
                # the decode pool evicted its resident copy while the delta
                # was on the wire; the extra history re-ships at full
                # bandwidth cost before this payload can land
                self.transfer_stream.extend(
                    transfer, tokens - transfer.tokens, self._t_decode
                )
                landed = True  # wire state changed: this step made progress
                continue
            if (
                self._injector is not None
                and transfer.tokens > 0
                and self._injector.transfer_fails(
                    sid, transfer.request_id, now=self._t_decode
                )
            ):
                # mid-stream failure: the payload dies at landing time, so
                # every wire second it streamed is sunk (cancel at >= finish
                # refunds nothing). Degradation ladder: retry the full
                # current delta after capped exponential backoff, then —
                # past the retry budget — fall back to a full re-prefill
                # of the committed history (always available).
                self.transfer_stream.cancel(sid, now=self._t_decode)
                rec.transfer_faults += 1
                attempt = self._injector.transfer_faults_injected(transfer.request_id)
                if attempt <= self.faults.max_transfer_retries:
                    delay = self.faults.backoff(attempt)
                    self.metrics.record_transfer_fault(retried=True, backoff_s=delay)
                    if self.tracer.enabled:
                        self.tracer.instant(
                            "fault_retry",
                            self._t_decode,
                            request_id=rec.request_id,
                            seq_id=sid,
                            attempt=attempt,
                            backoff=delay,
                        )
                    self.transfer_stream.schedule(
                        sid, transfer.request_id, tokens, self._t_decode + delay
                    )
                else:
                    self.metrics.record_transfer_fault(retried=False)
                    self.metrics.record_degraded_fallback()
                    if self.tracer.enabled:
                        self.tracer.instant(
                            "fault_fallback",
                            self._t_decode,
                            request_id=rec.request_id,
                            seq_id=sid,
                            reason="transfer",
                        )
                    self._preempt_record(rec, at=self._t_decode, reason="fault_fallback")
                landed = True
                continue
            demand = self.decode_engine.import_token_demand(sid, tokens)
            admitted = True
            while not self.decode_engine.fits(demand):
                victim = self._find_victim(
                    pool=POOL_DECODE,
                    protected={sid},
                    younger_than=(rec.request.arrival, rec.request_id),
                )
                if victim is None:
                    if not transfer.refused:
                        transfer.refused = True
                        self.metrics.record_transfer_refusal()
                        if self.tracer.enabled:
                            self.tracer.instant(
                                "kv_transfer_refused",
                                self._t_decode,
                                pool=POOL_DECODE,
                                request_id=rec.request_id,
                                seq_id=sid,
                            )
                    admitted = False
                    break
                self._evict(
                    victim, pool=POOL_DECODE, at=self._t_decode, reason="transfer_admission"
                )
            if not admitted:
                continue
            export = self.engine.export_kv(sid, start_pos=start_pos)
            self.decode_engine.import_kv(export)
            if self.prefix_index is None:
                self.engine.release(sid)
                self._holders_prefill.discard(sid)
            else:
                # KVCache-centric retention (Mooncake-style): the prefill
                # pool keeps its copy as a donatable cached prefix, so
                # follow-up turns skip the history recompute and future
                # shared-prefix requests can adopt it; capacity pressure
                # evicts it LRU like any cached resident
                self.prefix_index.touch(sid)
            self._holders_decode.add(sid)
            self.transfer_stream.complete(transfer)
            self.metrics.record_transfer(tokens)
            if self.tracer.enabled:
                self.tracer.span(
                    "kv_transfer",
                    transfer.start,
                    transfer.finish - transfer.start,
                    pool="wire",
                    request_id=rec.request_id,
                    seq_id=sid,
                    tokens=tokens,
                    landed_at=self._t_decode,
                )
            self._note_kv_occupancy(POOL_DECODE)
            rec.state = RequestState.DECODE
            self._decoding.add(rec.request_id)
            landed = True
        return landed

    # ------------------------------------------------------------------ #
    # decode rounds
    # ------------------------------------------------------------------ #

    def _decode_round(self, decoders: list[RequestRecord]) -> None:
        """Advance every decoding request one token (with capacity fitting)."""
        live = sorted(decoders, key=lambda r: (r.request.arrival, r.request_id))
        while live:
            sids = [r.seq_id for r in live]
            if self.decode_engine.fits(self.decode_engine.decode_token_demand(sids)):
                break
            victim = self._find_victim(pool=POOL_DECODE, protected=set(), younger_than=None)
            if victim is None:
                raise RuntimeError(
                    "KV capacity exhausted: a decode step cannot fit even "
                    "after evicting every eligible victim"
                )
            if isinstance(victim, RequestRecord) and len(live) == 1 and victim is live[0]:
                # the sole decoder is itself the youngest KV holder.
                # Preempting it only makes sense when a strictly older
                # request is waiting for the space (FCFS hands the pool
                # over); otherwise re-prefill would just hit this same
                # wall and the workload genuinely exceeds capacity.
                vkey = (victim.request.arrival, victim.request_id)
                older_waiting = any(
                    (self._records[rid].request.arrival, rid) < vkey
                    for rid in self._live
                    if rid != victim.request_id
                )
                if not older_waiting:
                    raise RuntimeError(
                        "KV capacity exhausted: the last decoding request "
                        "cannot fit its next token and no older request is "
                        "waiting for the space"
                    )
            self._evict(victim, pool=POOL_DECODE, at=self._t_decode, reason="decode_fit")
            if isinstance(victim, RequestRecord) and victim in live:
                live.remove(victim)
        if not live:
            return

        contexts = [self.decode_engine.context_length(r.seq_id) + 1 for r in live]
        tokens = {r.seq_id: r.generated[-1] for r in live}
        out = self.decode_engine.decode(tokens)
        price = self.clock.price_decode(contexts)
        round_start = self._t_decode
        self._t_decode += price
        if not self.disaggregated:
            self._t_prefill = self._t_decode
        self.metrics.record_round(POOL_DECODE, price)
        if self.tracer.enabled:
            self.tracer.span(
                "decode_round", round_start, price, pool=POOL_DECODE, seqs=len(live)
            )
        self.decode_rounds += 1
        self._note_kv_occupancy(POOL_DECODE)

        for rec in live:
            if len(rec.generated) < rec.request.max_new_tokens:
                token = int(sample_greedy(out.logits[rec.seq_id]))
                rec.generated.append(token)
                rec.token_times.append(self._t_decode)
                if self.tracer.enabled:
                    self.tracer.instant(
                        "decode_token",
                        self._t_decode,
                        request_id=rec.request_id,
                        seq_id=rec.seq_id,
                    )
            else:
                # the round just committed the final token's KV
                self._finish_turn(rec, at=self._t_decode)

    # ------------------------------------------------------------------ #
    # preemption
    # ------------------------------------------------------------------ #

    def preempt(self, request_id: int) -> None:
        """Forcibly evict an active request (tests / external policies)."""
        rec = self._records[request_id]
        if rec.state not in _ACTIVE_STATES:
            raise ValueError(f"request {request_id} is {rec.state.value}, not preemptible")
        at = self._t_decode if rec.state is RequestState.DECODE else self._t_prefill
        self._evict(rec, pool=self._pool_of(rec), at=at, reason="external")

    def _find_victim(
        self,
        *,
        pool: str,
        protected: set[int],
        younger_than: tuple[float, int] | None,
    ):
        """Next KV holder of ``pool`` to evict: idle conversations first
        (no pending turn, then latest next-arrival), then the youngest
        active request (only if younger than ``younger_than`` when given).
        ``None`` when nothing is evictable."""
        engine = self._pool_engine(pool)
        idle_free, idle_pending = [], []
        for seq_id in sorted(self._pool_holders(pool)):
            if seq_id in protected:
                continue
            chain = self._chains.get(seq_id)
            if not chain:
                idle_free.append(seq_id)
                continue
            head = self._records[chain[0]]
            if head.state is RequestState.QUEUED:  # holder waiting between turns
                idle_pending.append((head.request.arrival, seq_id))
            elif self.disaggregated and self._pool_of(head) != pool:
                # the head's KV activity is in the OTHER pool (or host-
                # side); this pool's copy (e.g. a resident conversation
                # whose next turn is re-prefilling) is idle here and
                # safely re-shippable
                idle_pending.append((head.request.arrival, seq_id))
        if idle_free:
            return self._pick_idle_free(idle_free)
        if idle_pending:
            return max(idle_pending)[1]

        # PREEMPTED requests holding KV are tail-trimmed residue queued
        # for re-prefill; they count as (young) active holders so further
        # pressure trims or evicts them through record bookkeeping
        candidates = [
            rec
            for rec in (self._records[rid] for rid in sorted(self._live))
            if (rec.state in _ACTIVE_STATES or rec.state is RequestState.PREEMPTED)
            and rec.seq_id not in protected
            and (not self.disaggregated or self._pool_of(rec) == pool)
            and engine.context_length(rec.seq_id) > 0
        ]
        if not candidates:
            return None
        rec = max(candidates, key=lambda r: (r.request.arrival, r.request_id))
        if younger_than is not None and (rec.request.arrival, rec.request_id) <= younger_than:
            return None
        return rec

    def _pick_idle_free(self, idle_free: list[int]) -> int:
        """Order the no-pending-turn eviction bucket.

        Without a prefix cache this bucket only holds open sessions
        (lowest seq id first, the historical order). With one it also
        holds finished conversations retained as cached prefixes:
        unpinned cached residents go first, least-recently-used first
        (the index's LRU), then open sessions, and pinned residents —
        donors of in-flight requests — only as a last resort.
        """
        if self.prefix_index is None:
            return min(idle_free)
        unpinned = [
            s
            for s in idle_free
            if s not in self._chains and not self.prefix_index.pinned(s)
        ]
        if unpinned:
            return min(unpinned, key=lambda s: (self.prefix_index.last_used(s), s))
        sessions = [s for s in idle_free if s in self._chains]
        if sessions:
            return min(sessions)
        return min(idle_free, key=lambda s: (self.prefix_index.last_used(s), s))

    def _evict(self, victim, *, pool: str, at: float, reason: str = "capacity") -> None:
        """Apply the configured remedy to an idle conversation (``int``
        seq id) or an active request. Trim and swap fall back to full
        eviction when they cannot apply. ``reason`` names the pressure
        source for the trace (``prefill_fit``, ``decode_fit``,
        ``transfer_admission``, ``swap_in_admission``, ``external``,
        ``fault_fallback``, ``pool_reset``)."""
        if not isinstance(victim, RequestRecord) and victim not in self._chains:
            # a finished conversation's cached prefix resident: there is
            # no request to remedy, so LRU-drop it whole — the allocator's
            # refcounts keep any blocks still shared with live adopters
            # claimed, and the index stops matching it
            engine = self._pool_engine(pool)
            tokens = engine.context_length(victim)
            engine.evict(victim)
            self._pool_holders(pool).discard(victim)
            self.metrics.record_prefix_eviction(tokens)
            if self.tracer.enabled:
                self.tracer.instant(
                    "prefix_evict", at, pool=pool, seq_id=victim, tokens=tokens
                )
            return
        if self.preemption == "trim" and self._try_trim(
            victim, pool=pool, at=at, reason=reason
        ):
            return
        if self.preemption == "swap" and self._try_swap_out(
            victim, pool=pool, at=at, reason=reason
        ):
            return
        if isinstance(victim, RequestRecord):
            self._preempt_record(victim, at=at, reason=reason)
            return
        freed = self._pool_engine(pool).evict(victim)
        self._pool_holders(pool).discard(victim)
        self.metrics.record_preemption(freed)
        if self.tracer.enabled:
            self.tracer.instant(
                "preempt",
                at,
                pool=pool,
                seq_id=victim,
                remedy="recompute",
                reason=reason,
                victim="idle",
                evicted=freed,
            )

    def _preempt_record(
        self, rec: RequestRecord, *, at: float, reason: str = "capacity"
    ) -> None:
        """Full eviction of an active request (recompute on resume)."""
        pool = self._pool_of(rec)
        if rec.state is RequestState.KV_TRANSFER:
            # the payload never arrives; only wire time already streamed
            # by ``at`` is sunk — a still-queued reservation is refunded
            # and transfers behind it re-pack
            cancelled = self.transfer_stream.cancel(rec.seq_id, now=at)
            if cancelled is not None:
                refunded = cancelled.sunk_s <= 0.0
                self.metrics.record_transfer_cancel(refunded=refunded)
                if self.tracer.enabled:
                    self.tracer.instant(
                        "kv_transfer_cancel",
                        at,
                        pool="wire",
                        request_id=rec.request_id,
                        seq_id=rec.seq_id,
                        refunded=refunded,
                    )
        freed = self._pool_engine(pool).evict(rec.seq_id)
        self._pool_holders(pool).discard(rec.seq_id)
        if not self.disaggregated or pool == POOL_PREFILL:
            # the adopted shared span lives on the prefill engine; only
            # an eviction there actually drops it (a disaggregated
            # decode-pool eviction leaves the retained prefill copy —
            # and the trim guard protecting it — intact)
            rec.prefix_shared = 0
            if rec.prefix_hit and rec.first_token_at is None:
                # the adopted prefix is gone before it bought a first
                # token: the eventual TTFT is a cold (recomputed)
                # sample, and the turn record must not report the lost
                # span as cached
                rec.prefix_hit = False
                if not self.disaggregated:
                    rec.cached_at_start = 0
        self.metrics.record_preemption(freed)
        if self.tracer.enabled:
            self.tracer.instant(
                "preempt",
                at,
                pool=pool,
                request_id=rec.request_id,
                seq_id=rec.seq_id,
                remedy="recompute",
                reason=reason,
                victim="active",
                evicted=freed,
            )
        self._reschedule_preempted(rec, at=at)

    def _reschedule_preempted(self, rec: RequestRecord, *, at: float) -> None:
        """Send a (fully or partially) evicted request back to the
        prefill FIFO, resuming from whatever prefix the prefill pool
        still holds.

        Tokens whose KV was committed by decode rounds (all generated but
        the in-flight last one) fold into the re-prefill input; the
        pending sampled token survives and is NOT resampled on resume.
        ``prefill_done`` picks up at the prefill pool's resident prefix —
        0 after a full eviction (recompute), the kept prefix after a
        tail-trim.
        """
        rec.preemptions += 1
        committed_generated = rec.generated[:-1] if rec.generated else []
        rec.resample_on_prefill = not rec.generated
        rec.pending_input = np.asarray(
            self._turn_history[rec.seq_id]
            + list(rec.request.prompt)
            + [int(t) for t in committed_generated],
            dtype=np.int64,
        )
        resident = self.engine.context_length(rec.seq_id)
        if resident >= rec.pending_input.size:
            # a decode-side loss can preempt a request whose prefill-pool
            # copy was retained in full as a prefix-cache donor: the
            # resident prefix then covers the whole re-prefill input, and
            # a zero-token entry would starve in the FIFO (no chunk ever
            # schedules it). Trim the copy to leave one token so the
            # resume round runs a real finishing chunk and produces the
            # logits the completion path expects.
            resident = int(rec.pending_input.size) - 1
            self.engine.evict_tail(rec.seq_id, resident)
        rec.prefill_done = resident
        requeue = (
            rec.state in (RequestState.DECODE, RequestState.KV_TRANSFER, RequestState.SWAPPED)
            or not self._in_prefill_queue(rec)
        )
        rec.state = RequestState.PREEMPTED
        rec.ready_at = max(rec.ready_at, at)
        self._decoding.discard(rec.request_id)
        if requeue:
            self._enqueue_prefill(rec)

    # ------------------------------------------------------------------ #
    # preemption remedies: tail-trim and CPU-side KV swap
    # ------------------------------------------------------------------ #

    def _try_trim(
        self, victim, *, pool: str, at: float, reason: str = "capacity"
    ) -> bool:
        """Tail-trim remedy: drop the newest KV blocks of the victim.

        The resident prefix survives, so resume re-prefills only the
        trimmed suffix. Each call drops roughly one allocator block per
        rank (the granularity at which trimming actually frees pool
        capacity); under sustained pressure the fit loops call this
        repeatedly — the victim shrinks block by block until a single
        token would remain, at which point the remedy declines and full
        eviction takes over. Mid-transfer victims decline too (the wire
        payload references their prefill-pool KV).
        """
        rec = victim if isinstance(victim, RequestRecord) else None
        if rec is not None and rec.state is RequestState.KV_TRANSFER:
            return False
        seq_id = rec.seq_id if rec is not None else victim
        engine = self._pool_engine(pool)
        length = engine.context_length(seq_id)
        step = max(1, engine.kv_block_tokens() * engine.world_size)
        keep = length - step
        if keep < 1:
            return False
        if (
            rec is not None
            and keep < rec.prefix_shared
            and (not self.disaggregated or pool == POOL_PREFILL)
        ):
            # the adopted shared prefix is pinned for the request's
            # lifetime: trimming into it would drop this request's
            # references to blocks the donor still backs (freeing little
            # to nothing) and force a recompute of reused tokens — let
            # the remedy chain fall through instead
            return False
        freed = engine.evict_tail(seq_id, keep)
        self.metrics.record_trim(freed)
        if self.tracer.enabled:
            self.tracer.instant(
                "preempt",
                at,
                pool=pool,
                request_id=rec.request_id if rec is not None else None,
                seq_id=seq_id,
                remedy="trim",
                reason=reason,
                victim="active" if rec is not None else "idle",
                tokens=freed,
            )
        self._note_kv_occupancy(pool)
        if rec is not None:
            self._reschedule_preempted(rec, at=at)
        return True

    def _store_pool(self, pool: str) -> str:
        """Host-store slot for ``pool`` (colocated: one shared store)."""
        return pool if self.disaggregated else POOL_PREFILL

    def _pool_time(self, pool: str) -> float:
        return self._t_prefill if pool == POOL_PREFILL else self._t_decode

    def _advance_pool_clock(self, pool: str, seconds: float) -> None:
        """Stall ``pool`` for ``seconds`` (swap DMA); colocated clocks
        stay mirrored."""
        if pool == POOL_PREFILL:
            self._t_prefill += seconds
        else:
            self._t_decode += seconds
        if not self.disaggregated:
            self._t_prefill = self._t_decode = max(self._t_prefill, self._t_decode)

    def _try_swap_out(
        self, victim, *, pool: str, at: float, reason: str = "capacity"
    ) -> bool:
        """Swap remedy: export the victim's KV whole to the host store.

        The evicting pool stalls for ``price_swap(tokens)`` (PCIe DMA);
        the request resumes — decode victims directly, prefill victims
        via the FIFO — once :meth:`_swap_in_ready` imports the payload
        back. Declines (falling back to full eviction) for mid-transfer
        victims, a full host store, or disaggregated *idle* residents,
        whose copy the transfer machinery already restores more cheaply
        than a PCIe round-trip would.
        """
        rec = victim if isinstance(victim, RequestRecord) else None
        if rec is not None and rec.state is RequestState.KV_TRANSFER:
            return False
        if rec is None and self.disaggregated:
            return False
        seq_id = rec.seq_id if rec is not None else victim
        engine = self._pool_engine(pool)
        tokens = engine.context_length(seq_id)
        if tokens == 0:
            return False
        store_pool = self._store_pool(pool)
        if seq_id in self._swap_store[store_pool]:
            return False
        if self.swap_capacity_tokens is not None and (
            self._swap_used[store_pool] + tokens > self.swap_capacity_tokens
        ):
            return False
        export = engine.export_kv(seq_id)
        engine.release(seq_id)
        self._pool_holders(pool).discard(seq_id)
        self._swap_store[store_pool][seq_id] = export
        self._swap_used[store_pool] += tokens
        cost = self.clock.price_swap(tokens)
        swap_start = self._pool_time(pool)
        self._advance_pool_clock(pool, cost)
        self.metrics.record_swap_out(tokens, stall_s=cost)
        if self.tracer.enabled:
            self.tracer.span(
                "swap_out",
                swap_start,
                cost,
                pool=pool,
                request_id=rec.request_id if rec is not None else None,
                seq_id=seq_id,
                tokens=tokens,
            )
            self.tracer.instant(
                "preempt",
                at,
                pool=pool,
                request_id=rec.request_id if rec is not None else None,
                seq_id=seq_id,
                remedy="swap",
                reason=reason,
                victim="active" if rec is not None else "idle",
                tokens=tokens,
            )
        if rec is not None:
            rec.preemptions += 1
            rec.swapped_from = (
                RequestState.DECODE
                if rec.state is RequestState.DECODE
                else RequestState.PREFILL
            )
            self._dequeue_prefill(rec)
            self._decoding.discard(rec.request_id)
            rec.state = RequestState.SWAPPED
            rec.ready_at = max(rec.ready_at, at + cost)
            self._swap_wait.append(
                ((rec.request.arrival, rec.request_id), rec.request_id, pool)
            )
        return True

    def _swap_in_ready(self) -> bool:
        """Import host-stored KV back, FCFS, wherever the pool admits it.

        A blocked swap-in may evict (per the configured remedy) victims
        younger than the returning request — the same FCFS rule as any
        admission. A payload too large for even an *emptied* pool spills
        to the recompute path so the run can still drain.
        """
        progressed = False
        for entry in sorted(self._swap_wait):
            _key, rid, pool = entry
            rec = self._records[rid]
            if rec.ready_at > self._pool_time(pool):
                continue
            if self._injector is not None and self._injector.swap_lost(
                rec.seq_id, rid, now=self._pool_time(pool)
            ):
                # the host-store payload is gone at swap-in time: degrade
                # to the recompute path a capacity-blocked swap-in already
                # takes (drop the store entry, re-prefill committed history)
                tokens = self._swap_store[self._store_pool(pool)][rec.seq_id].tokens
                self.metrics.record_swap_loss(tokens)
                self.metrics.record_degraded_fallback()
                if self.tracer.enabled:
                    self.tracer.instant(
                        "fault_fallback",
                        self._pool_time(pool),
                        pool=pool,
                        request_id=rid,
                        seq_id=rec.seq_id,
                        reason="swap_loss",
                        tokens=tokens,
                    )
                self._spill_swapped(entry)
                progressed = True
                continue
            engine = self._pool_engine(pool)
            store_pool = self._store_pool(pool)
            export = self._swap_store[store_pool][rec.seq_id]
            admitted = True
            while not engine.fits(engine.import_token_demand(rec.seq_id, export.tokens)):
                victim = self._find_victim(
                    pool=pool,
                    protected={rec.seq_id},
                    younger_than=(rec.request.arrival, rec.request_id),
                )
                if victim is None:
                    admitted = False
                    break
                self._evict(
                    victim,
                    pool=pool,
                    at=self._pool_time(pool),
                    reason="swap_in_admission",
                )
            if not admitted:
                if not self._pool_holders(pool):
                    self._spill_swapped(entry)
                    progressed = True
                continue
            engine.import_kv(export)
            del self._swap_store[store_pool][rec.seq_id]
            self._swap_used[store_pool] -= export.tokens
            self._pool_holders(pool).add(rec.seq_id)
            self._swap_wait.remove(entry)
            cost = self.clock.price_swap(export.tokens)
            swap_start = self._pool_time(pool)
            self._advance_pool_clock(pool, cost)
            self.metrics.record_swap_in(export.tokens, stall_s=cost)
            if self.tracer.enabled:
                self.tracer.span(
                    "swap_in",
                    swap_start,
                    cost,
                    pool=pool,
                    request_id=rid,
                    seq_id=rec.seq_id,
                    tokens=export.tokens,
                )
            self._note_kv_occupancy(pool)
            rec.ready_at = max(rec.ready_at, self._pool_time(pool))
            resume, rec.swapped_from = rec.swapped_from, None
            if resume is RequestState.DECODE:
                rec.state = RequestState.DECODE
                self._decoding.add(rid)
            else:
                rec.state = RequestState.PREEMPTED
                self._enqueue_prefill(rec)
            progressed = True
        return progressed

    def _spill_swapped(self, entry) -> None:
        """Abandon a blocked swap-in: drop the host copy and resume via
        chunked recompute (the remedy of last resort)."""
        _key, rid, pool = entry
        rec = self._records[rid]
        store_pool = self._store_pool(pool)
        export = self._swap_store[store_pool].pop(rec.seq_id)
        self._swap_used[store_pool] -= export.tokens
        self._swap_wait.remove(entry)
        rec.swapped_from = None
        self._reschedule_preempted(rec, at=self._pool_time(pool))

    def _spill_oldest_swapped(self) -> bool:
        if not self._swap_wait:
            return False
        self._spill_swapped(min(self._swap_wait))
        return True

    def _in_prefill_queue(self, rec: RequestRecord) -> bool:
        return any(rid == rec.request_id for _, rid in self._prefill_queue)

    def _dequeue_prefill(self, rec: RequestRecord) -> None:
        self._prefill_queue = [
            (key, rid) for key, rid in self._prefill_queue if rid != rec.request_id
        ]

    # ------------------------------------------------------------------ #
    # fault injection & shedding (deterministic chaos layer)
    # ------------------------------------------------------------------ #

    def _apply_faults(self) -> None:
        """Fire due scheduled faults before the step picks a round:
        deadline timeouts first (a request a reset would requeue may
        already be dead), then whole-pool resets."""
        plan = self.faults
        if plan.deadline_s is not None:
            now = self.now
            for seq_id in sorted(self._chains):
                chain = self._chains.get(seq_id)
                if not chain:
                    continue
                rec = self._records[chain[0]]
                if rec.request.arrival + plan.deadline_s < now:
                    self._shed_chain(rec, status=RequestState.TIMED_OUT, at=now)
        rounds = self.prefill_rounds + self.decode_rounds
        for pool in self._injector.pool_resets_due(rounds):
            self._reset_pool(pool, at=self._pool_time(pool))

    def _reset_pool(self, pool: str, *, at: float) -> None:
        """Whole-pool KV reset: every resident block of ``pool`` is gone.

        Holders whose *active* KV lived here are requeued through the
        ordinary full-eviction path (transfer cancels, prefix-field
        resets, FIFO re-entry — all of :meth:`_preempt_record`); idle
        residents (between-turns conversations, cached prefixes, copies
        whose activity is in the other pool) are simply dropped. The
        engine's evict keeps prefix-index anchors and allocator
        refcounts consistent — shared blocks survive for their
        borrowers, and an in-flight transfer whose *decode-side* copy
        vanished re-ships the history at landing time. Host-store
        (swapped) payloads live off-pool and survive a reset.
        """
        engine = self._pool_engine(pool)
        holders = sorted(self._pool_holders(pool))
        resident_tokens = sum(engine.context_length(sid) for sid in holders)
        self.metrics.record_pool_reset(resident_tokens)
        if self.tracer.enabled:
            self.tracer.instant(
                "fault_inject",
                at,
                pool=pool,
                kind="pool_reset",
                tokens=resident_tokens,
                holders=len(holders),
            )
        for seq_id in holders:
            chain = self._chains.get(seq_id)
            head = self._records[chain[0]] if chain else None
            preempt = head is not None and (
                (
                    head.state in _ACTIVE_STATES
                    and (not self.disaggregated or self._pool_of(head) == pool)
                )
                or (head.state is RequestState.PREEMPTED and pool == POOL_PREFILL)
            )
            if preempt:
                self._preempt_record(head, at=at, reason="pool_reset")
                continue
            tokens = engine.context_length(seq_id)
            if tokens:
                engine.evict(seq_id)
                if head is None and self.prefix_index is not None:
                    self.metrics.record_prefix_eviction(tokens)
                    if self.tracer.enabled:
                        self.tracer.instant(
                            "prefix_evict", at, pool=pool, seq_id=seq_id, tokens=tokens
                        )
            self._pool_holders(pool).discard(seq_id)

    def _shed_chain(self, rec: RequestRecord, *, status: RequestState, at: float) -> None:
        """Terminally shed ``rec`` (the head turn of its conversation)
        and cascade every later turn — they can never run without this
        one's tokens. The direct victim takes ``status`` (``TIMED_OUT``
        or ``SHED``); cascaded turns are always ``SHED``. Releases every
        copy of the conversation's KV (both pools and the host store)
        and unpins any adopted donor, so shedding is leak-free."""
        seq_id = rec.seq_id
        chain = self._chains.get(seq_id)
        assert chain and chain[0] == rec.request_id, "only chain heads are shed"
        self._waiting.discard(seq_id)
        for i, rid in enumerate(list(chain)):
            self._shed_one(
                self._records[rid],
                status=status if i == 0 else RequestState.SHED,
                at=at,
            )
        for pool in (POOL_PREFILL, POOL_DECODE):
            engine = self._pool_engine(pool)
            if engine.context_length(seq_id):
                engine.evict(seq_id)
            self._pool_holders(pool).discard(seq_id)
            store_pool = self._store_pool(pool)
            export = self._swap_store[store_pool].pop(seq_id, None)
            if export is not None:
                self._swap_used[store_pool] -= export.tokens
        del self._chains[seq_id]
        del self._turn_history[seq_id]

    def _shed_one(self, rec: RequestRecord, *, status: RequestState, at: float) -> None:
        """Move one request to a shed terminal state, detaching it from
        every scheduler structure (FIFO, decode set, swap queue, wire)."""
        if rec.state is RequestState.KV_TRANSFER:
            cancelled = self.transfer_stream.cancel(rec.seq_id, now=at)
            if cancelled is not None:
                refunded = cancelled.sunk_s <= 0.0
                self.metrics.record_transfer_cancel(refunded=refunded)
                if self.tracer.enabled:
                    self.tracer.instant(
                        "kv_transfer_cancel",
                        at,
                        pool="wire",
                        request_id=rec.request_id,
                        seq_id=rec.seq_id,
                        refunded=refunded,
                    )
        if rec.state is RequestState.SWAPPED:
            self._swap_wait = [e for e in self._swap_wait if e[1] != rec.request_id]
        self._dequeue_prefill(rec)
        self._decoding.discard(rec.request_id)
        self._live.discard(rec.request_id)
        if rec.prefix_donor is not None:
            self.prefix_index.unpin(rec.prefix_donor)
            rec.prefix_donor = None
        rec.state = status
        rec.finished_at = at
        if status is RequestState.TIMED_OUT:
            self.metrics.record_timeout()
        else:
            self.metrics.record_shed()
        if self.tracer.enabled:
            self.tracer.instant(
                "shed",
                at,
                request_id=rec.request_id,
                seq_id=rec.seq_id,
                status=status.value,
            )

    # ------------------------------------------------------------------ #
    # completion
    # ------------------------------------------------------------------ #

    def _finish_turn(self, rec: RequestRecord, *, at: float) -> None:
        rec.state = RequestState.FINISHED
        rec.finished_at = at
        self._live.discard(rec.request_id)
        self._decoding.discard(rec.request_id)
        seq_id = rec.seq_id
        self._turn_history[seq_id].extend(int(t) for t in rec.request.prompt)
        self._turn_history[seq_id].extend(rec.generated)
        chain = self._chains[seq_id]
        assert chain and chain[0] == rec.request_id, "turn finished out of chain order"
        chain.pop(0)
        if chain:
            # next turn's head is now eligible — but its prefill consumes
            # this turn's tokens, so it can never run before this finish
            # time (the decode-pool clock may be ahead of the prefill one)
            nxt = self._records[chain[0]]
            nxt.ready_at = max(nxt.ready_at, at)
            self._waiting.add(seq_id)
        if rec.prefix_donor is not None:
            self.prefix_index.unpin(rec.prefix_donor)
            rec.prefix_donor = None
        self.metrics.record_turn(
            TurnRecord(
                seq_id=seq_id,
                prompt_tokens=int(rec.request.prompt.size),
                cached_tokens=rec.cached_at_start,
                response_tokens=len(rec.generated),
                algo=rec.chunk_algos[-1] if rec.chunk_algos else "none",
                generated=list(rec.generated),
            ),
            ttft=rec.ttft if rec.first_token_at is not None else None,
        )
        if rec.prefix_eligible and rec.first_token_at is not None:
            self.metrics.record_ttft_split(rec.ttft, warm=rec.prefix_hit)
        for gap in rec.ttit_samples():
            self.metrics.record_ttit(gap)
        if self.tracer.enabled:
            fields: dict = {
                "status": "finished",
                "arrival": rec.request.arrival,
                "tokens": len(rec.generated),
                "gaps": max(0, len(rec.token_times) - 1),
            }
            if rec.first_token_at is not None:
                fields["ttft"] = rec.ttft
                if rec.prefix_eligible:
                    fields["warm"] = rec.prefix_hit
            self.tracer.instant(
                "finish", at, request_id=rec.request_id, seq_id=seq_id, **fields
            )
        if rec.request.last_turn and not chain:
            # conversation over: prune per-seq state (a later submit for
            # the same seq_id starts a fresh conversation)
            if self.prefix_index is None:
                self.decode_engine.release(seq_id)
                self._holders_decode.discard(seq_id)
                if self.disaggregated:
                    self.engine.release(seq_id)
                    self._holders_prefill.discard(seq_id)
            else:
                # prefix cache on: the prefill-side copy stays resident
                # as an LRU-evictable cached prefix (the engine keeps its
                # committed tokens indexed); the decode pool never
                # donates, so its copy is still released
                if self.disaggregated:
                    self.decode_engine.release(seq_id)
                    self._holders_decode.discard(seq_id)
                if self.engine.context_length(seq_id):
                    self.prefix_index.touch(seq_id)
            del self._chains[seq_id]
            del self._turn_history[seq_id]

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def _decoders(self) -> list[RequestRecord]:
        return [self._records[rid] for rid in sorted(self._decoding)]

    def _any_live(self) -> bool:
        return bool(self._live)

    def _next_arrival(self) -> float | None:
        times = [
            self._records[self._chains[seq_id][0]].request.arrival
            for seq_id in sorted(self._waiting)
        ]
        return min(times) if times else None

    def state_counts(self) -> dict[str, int]:
        """Requests per lifecycle state (diagnostics)."""
        counts: dict[str, int] = {}
        for rec in self._records.values():
            counts[rec.state.value] = counts.get(rec.state.value, 0) + 1
        return counts

    # ------------------------------------------------------------------ #
    # scheduler-facing interface (cluster tier)
    # ------------------------------------------------------------------ #
    # A fleet router places conversations by comparing replicas through
    # exactly these read-only views — they must stay cheap (O(queued))
    # and side-effect free so routing never perturbs the run it observes.

    def live_requests(self) -> int:
        """Submitted requests not yet terminal."""
        return len(self._live)

    def queue_depth(self) -> int:
        """Requests waiting for an engine round: conversations queued
        ahead of their arrival/predecessor plus the prefill FIFO."""
        return len(self._prefill_queue) + len(self._waiting)

    def queued_tokens(self) -> int:
        """Prefill tokens committed to but not yet executed.

        Counts the uncommitted remainder of every request in the prefill
        FIFO plus the first-turn prompts of conversations still waiting
        to be admitted — a deliberate *approximation* of pending work
        (later turns and decode budgets are invisible until they queue),
        matching what a production router can actually observe.
        """
        tokens = sum(
            self._records[rid].prefill_remaining for _, rid in self._prefill_queue
        )
        tokens += sum(
            int(self._records[self._chains[seq_id][0]].request.prompt.size)
            for seq_id in self._waiting
        )
        return tokens

    def busy_time(self) -> float:
        """Cumulative simulated busy seconds across this runtime's pools."""
        return float(sum(self.metrics.pool_busy_s.values()))

    def prefix_match_len(self, tokens) -> int:
        """Longest resident cached prefix of ``tokens`` on the prefill
        engine (0 when the prefix cache is disabled). Read-only — a
        routing probe neither touches LRU order nor pins donors."""
        if self.prefix_index is None:
            return 0
        return int(self.engine.match_prefix(tokens)[0])

    def kv_leak_report(self) -> list[str]:
        """Audit every pool's KV bookkeeping plus the swap store.

        Concatenates the engines' :meth:`~repro.core.engine
        .ContextParallelEngine.kv_leak_report` (both pools when
        disaggregated) and flags host-store payloads that outlived the
        drain. Empty list = clean — the per-replica audit the fleet's
        drain contract requires.
        """
        leaks = list(self.engine.kv_leak_report())
        if self.disaggregated:
            leaks += self.decode_engine.kv_leak_report()
        for pool, store in self._swap_store.items():
            for seq_id in sorted(store):
                leaks.append(
                    f"swap store[{pool}]: seq {seq_id} still holds a host payload"
                )
        return leaks
