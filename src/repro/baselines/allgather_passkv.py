"""All-gather based pass-KV prefill (Llama3 training style, §3.5.2).

Instead of ringing KV shards past the queries one hop at a time, this
baseline first all-gathers every rank's KV and then runs a single local
attention per rank. The result is identical (both are exact); the cost is
not: the all-gather completes *before* any attention can start, so its
latency is fully exposed on the critical path — "complicating the overlap
of operations during inference, especially with variant sequence lengths in
a batch and partial prefill" (the paper's stated reason to prefer the ring).

The traced ``allgather`` bytes versus the ring's overlappable ``sendrecv``
bytes drive the ablation benchmark ``bench_ablation_allgather.py``.
"""

from __future__ import annotations

from repro.attention.flash import AttentionResult, flash_attention
from repro.core.sharding import ShardedKV, ShardedQueries, pad_kv_shards
from repro.distributed.process_group import SimProcessGroup


def allgather_passkv_prefill(
    group: SimProcessGroup,
    queries: list[ShardedQueries],
    kv_shards: list[ShardedKV],
    *,
    scale: float | None = None,
    block_size: int = 128,
    pad_messages: bool = True,
) -> list[AttentionResult]:
    """Exact prefill attention via AllGather(KV) + one local attention.

    Same signature and (exact) output as
    :func:`repro.core.ring_passkv.ring_passkv_prefill`; only the
    communication schedule differs.
    """
    n = group.world_size
    if len(queries) != n or len(kv_shards) != n:
        raise ValueError(
            f"need one query and KV shard per rank: world={n}, "
            f"queries={len(queries)}, kvs={len(kv_shards)}"
        )

    if pad_messages:
        blocks, _ = pad_kv_shards(list(kv_shards))
    else:
        blocks = list(kv_shards)

    payloads = [
        {"k": b.k, "v": b.v, "pos": b.positions, "seq": b.seq_ids} for b in blocks
    ]
    gathered = group.all_gather(payloads, tag="allgather-passkv")

    results = []
    for rank in range(n):
        full = [
            ShardedKV(
                k=p["k"], v=p["v"], positions=p["pos"], seq_ids=p["seq"]
            )
            for p in gathered[rank]
        ]
        merged = ShardedKV.concat(full)
        results.append(
            flash_attention(
                queries[rank].q,
                merged.k,
                merged.v,
                q_pos=queries[rank].positions,
                k_pos=merged.positions,
                q_seq=queries[rank].seq_ids,
                k_seq=merged.seq_ids,
                causal=True,
                scale=scale,
                block_size=block_size,
            )
        )
    return results
