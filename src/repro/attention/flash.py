"""Blocked online-softmax attention with LSE output (flash-style).

This kernel mirrors the contract of FlashAttention-3 / Flash-Decoding that
the production system uses: it walks the key/value tensor in blocks, keeps a
running online-softmax state per (query token, head), and returns both the
attention output ``O`` and the log-sum-exp ``LSE``.

The blocked structure is not a performance affectation — it is load-bearing
for the reproduction:

- It proves that the library's merge attention (:mod:`repro.core.merge`,
  paper Appendix B) composes *exactly*: a ring algorithm that merges K
  partial results from K disjoint KV shards must produce bit-compatible
  output with a single monolithic kernel call, because both reduce through
  the same online-softmax recurrence.
- ``num_kv_splits`` emulates Flash-Decoding's split-KV execution (the paper
  uses 256 splits for decode) by computing independent partials per split
  and merging them, again through the same recurrence.

The kernel is a *fused grouped-head* implementation: Q is reshaped once to
``[NKV, Tq * G, DH]`` (``G = NH / NKV`` query heads per KV head) and
contracted directly against ``[Tk_blk, NKV, DH]`` KV blocks through batched
BLAS matmuls, so no per-block ``expand_kv_heads`` copy is ever
materialized (the legacy ``fused=False`` expand path was retired once the
fused kernel's equivalence was pinned; :mod:`repro.attention.reference`
remains the independent full-materialization oracle). The ``[Tq, Tk]``
permission mask is computed once per call and sliced per block; blocks
whose mask slice is all-False are skipped outright (identity under the
online-softmax recurrence), and within a block only the contiguous band of
query rows with at least one visible key is computed — in causal full
prefill this trims roughly half the score work.

Knobs:

- ``compute_dtype``: dtype for score/softmax/value arithmetic inside the
  kernel (default ``float64``). The online-softmax merge accumulators stay
  ``float64`` regardless, so ``float32`` compute still merges losslessly —
  the mixed-precision split of Mao et al. (arXiv:2401.08586). The default
  is bit-compatible with :func:`reference_attention_with_lse`.
- ``skip_masked_blocks``: disable the all-masked block skip and row
  trimming (benchmark A/B only; results are identical either way).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attention.gqa import validate_gqa_shapes
from repro.attention.masks import attention_mask
from repro.attention.online_softmax import OnlineSoftmaxState

#: Kernel-internal arithmetic dtype when ``compute_dtype`` is not given.
DEFAULT_COMPUTE_DTYPE = np.float64


@dataclass(frozen=True)
class AttentionResult:
    """Partial or final attention result: output plus log-sum-exp.

    Attributes:
        out: ``[T, NH, DH]`` attention output.
        lse: ``[T, NH]`` log-sum-exp of the (scaled, masked) scores.
    """

    out: np.ndarray
    lse: np.ndarray

    @property
    def tokens(self) -> int:
        return self.out.shape[0]

    def astype(self, dtype) -> "AttentionResult":
        return AttentionResult(self.out.astype(dtype), self.lse.astype(dtype))

    @staticmethod
    def empty(tokens: int, n_heads: int, head_dim: int) -> "AttentionResult":
        """Fully-masked result: zero output, ``LSE = -inf`` — the identity
        element of merge attention. Used by the ring algorithms to stand in
        for skipped (provably all-masked) partials."""
        return AttentionResult(
            out=np.zeros((tokens, n_heads, head_dim), dtype=np.float64),
            lse=np.full((tokens, n_heads), -np.inf, dtype=np.float64),
        )


def flash_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    *,
    q_pos: np.ndarray | None = None,
    k_pos: np.ndarray | None = None,
    q_seq: np.ndarray | None = None,
    k_seq: np.ndarray | None = None,
    causal: bool = True,
    scale: float | None = None,
    block_size: int = 128,
    num_kv_splits: int = 1,
    mask_fn=None,
    compute_dtype=None,
    skip_masked_blocks: bool = True,
) -> AttentionResult:
    """Blocked exact GQA attention returning :class:`AttentionResult`.

    Args:
        q, k, v: GQA tensors ``[Tq, NH, DH]`` / ``[Tk, NKV, DH]``.
        q_pos, k_pos, q_seq, k_seq: token coordinates (see
            :mod:`repro.attention.masks`).
        causal: apply the causal predicate.
        scale: score scale, default ``1/sqrt(DH)``.
        block_size: KV block length for the online-softmax sweep.
        num_kv_splits: emulate Flash-Decoding split-KV: the KV range is cut
            into this many independent partials, merged at the end. The
            result is exact for any split count.
        mask_fn: optional mask override in absolute coordinates (see
            :func:`repro.attention.reference.reference_attention_with_lse`);
            enables windowed/sink attention through the same kernel.
        compute_dtype: kernel arithmetic dtype (default ``float64``; the
            merge accumulation is always ``float64``).
        skip_masked_blocks: skip all-masked KV blocks and trim fully-masked
            query rows (default). Identical results either way.

    Returns:
        Exact ``(O, LSE)`` for the full masked attention.
    """
    tq, tk, nh, nkv = validate_gqa_shapes(q, k, v)
    dh = q.shape[-1]
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    if num_kv_splits <= 0:
        raise ValueError(f"num_kv_splits must be positive, got {num_kv_splits}")
    if tk == 0 or tq == 0:
        return AttentionResult.empty(tq, nh, dh)
    if q_pos is None:
        q_pos = np.arange(tq, dtype=np.int64)
    if k_pos is None:
        k_pos = np.arange(tk, dtype=np.int64)
    q_pos = np.asarray(q_pos)
    k_pos = np.asarray(k_pos)
    if scale is None:
        scale = 1.0 / np.sqrt(dh)

    # Hoisted out of the block loop: the full [Tq, Tk] permission mask
    # (sliced per block below) and the grouped-head upcast of Q/K/V.
    if mask_fn is not None:
        mask = np.asarray(mask_fn(q_pos, k_pos, q_seq, k_seq), dtype=bool)
        if mask.shape != (tq, tk):
            raise ValueError(f"mask_fn returned shape {mask.shape}, expected {(tq, tk)}")
    else:
        mask = attention_mask(q_pos, k_pos, q_seq, k_seq, causal=causal)

    dtype = np.dtype(DEFAULT_COMPUTE_DTYPE if compute_dtype is None else compute_dtype)
    g = nh // nkv
    # One [Tq * G, DH] row-major matrix per KV head: row t*G + g' is query
    # head nkv*G + g' of token t. Contracting this against [DH, Tk_blk] is
    # the "indexing instead of copying" GQA layout — no expand_kv_heads.
    qg = np.ascontiguousarray(
        np.asarray(q, dtype=dtype).reshape(tq, nkv, g, dh).transpose(1, 0, 2, 3)
    ).reshape(nkv, tq * g, dh)
    kt = np.asarray(k, dtype=dtype).transpose(1, 2, 0)  # [NKV, DH, Tk]
    vt = np.asarray(v, dtype=dtype).transpose(1, 0, 2)  # [NKV, Tk, DH]

    if num_kv_splits == 1:
        return _fused_attend_range(
            qg, kt, vt, mask, scale, block_size, 0, tk, skip_masked_blocks,
            tq, nkv, g, dh, dtype,
        )

    split_edges = np.linspace(0, tk, num_kv_splits + 1, dtype=np.int64)
    state = OnlineSoftmaxState(out_shape=(tq, nh, dh), lse_shape=(tq, nh))
    for split in range(num_kv_splits):
        lo, hi = int(split_edges[split]), int(split_edges[split + 1])
        partial = _fused_attend_range(
            qg, kt, vt, mask, scale, block_size, lo, hi, skip_masked_blocks,
            tq, nkv, g, dh, dtype,
        )
        state.update(partial.out, partial.lse)
    out, lse = state.finalize()
    return AttentionResult(out=out, lse=lse)


def _fused_attend_range(
    qg: np.ndarray,
    kt: np.ndarray,
    vt: np.ndarray,
    mask: np.ndarray,
    scale: float,
    block_size: int,
    lo: int,
    hi: int,
    skip_masked_blocks: bool,
    tq: int,
    nkv: int,
    g: int,
    dh: int,
    dtype: np.dtype,
) -> AttentionResult:
    """Grouped-head online-softmax sweep over KV storage slice ``[lo, hi)``.

    Maintains the running ``(m, denom, acc)`` recurrence in the grouped
    ``[NKV, Tq, G, ...]`` layout, folding each block in place over only the
    visible query-row band; untouched rows receive the exact identity
    update, so the result is bit-compatible with folding full-height
    partials through :class:`OnlineSoftmaxState`.
    """
    neg_inf = dtype.type(-np.inf)
    zero = dtype.type(0.0)
    one = dtype.type(1.0)

    acc = np.zeros((nkv, tq, g, dh), dtype=np.float64)
    m = np.full((nkv, tq, g), -np.inf, dtype=np.float64)
    denom = np.zeros((nkv, tq, g), dtype=np.float64)

    for start in range(lo, hi, block_size):
        stop = min(start + block_size, hi)
        mblk = mask[:, start:stop]
        if skip_masked_blocks:
            visible = mblk.any(axis=1)
            if not visible.any():
                continue  # all-masked block: identity under the recurrence
            r0 = int(np.argmax(visible))
            r1 = tq - int(np.argmax(visible[::-1]))
        else:
            r0, r1 = 0, tq
        r = r1 - r0
        s = stop - start

        mb = mblk[r0:r1]
        fully_visible = bool(mb.all())

        # scores[n, t, g', s] = q[t, n*G+g'] . k[s, n] * scale. The matmul
        # output is owned by this block, so the masking / softmax chain
        # below mutates it in place instead of allocating per step.
        scores = np.matmul(qg[:, r0 * g : r1 * g, :], kt[:, :, start:stop])
        scores *= scale
        scores = scores.reshape(nkv, r, g, s)
        if not fully_visible:
            np.copyto(scores, neg_inf, where=~mb[None, :, None, :])

        with np.errstate(invalid="ignore"):
            bm = np.max(scores, axis=-1, keepdims=True)
            # bm_safe is finite everywhere, so masked scores stay -inf after
            # the subtraction and exp maps them to exactly +0 — no re-zero
            # pass is needed.
            bm_safe = bm if fully_visible else np.where(np.isneginf(bm), zero, bm)
            scores -= bm_safe
            p = np.exp(scores, out=scores)
            bden = p.sum(axis=-1)
            o = np.matmul(p.reshape(nkv, r * g, s), vt[:, start:stop, :]).reshape(nkv, r, g, dh)
            if fully_visible:
                o /= bden[..., None]
                blse = bm[..., 0] + np.log(bden)
            else:
                bden_safe = np.where(bden == 0.0, one, bden)
                o /= bden_safe[..., None]
                np.copyto(o, zero, where=(bden == 0.0)[..., None])
                blse = np.where(bden > 0, bm_safe[..., 0] + np.log(bden_safe), neg_inf)

            # In-place online-softmax fold over the visible row band —
            # identical math to OnlineSoftmaxState.update.
            acc_r, m_r, den_r = acc[:, r0:r1], m[:, r0:r1], denom[:, r0:r1]
            new_m = np.maximum(m_r, blse)
            safe = np.where(np.isinf(new_m), 0.0, new_m)
            old_scale = np.exp(m_r - safe)
            new_scale = np.exp(blse - safe)
            acc_r *= old_scale[..., None]
            acc_r += o * new_scale[..., None]
            den_r *= old_scale
            den_r += new_scale
            m_r[...] = new_m

    with np.errstate(invalid="ignore", divide="ignore"):
        den_safe = np.where(denom == 0.0, 1.0, denom)
        out_g = np.where(denom[..., None] > 0, acc / den_safe[..., None], 0.0)
        lse_g = np.where(denom > 0, m + np.log(den_safe), -np.inf)
    out = np.ascontiguousarray(out_g.transpose(1, 0, 2, 3)).reshape(tq, nkv * g, dh)
    lse = np.ascontiguousarray(lse_g.transpose(1, 0, 2)).reshape(tq, nkv * g)
    return AttentionResult(out=out, lse=lse)
