"""kv_leak_report() defect coverage: corrupt engine bookkeeping and pin
the precise violation each detector reports (only the clean path was
pinned before)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import ContextParallelEngine


@pytest.fixture
def engine(tiny_model):
    return ContextParallelEngine(tiny_model, world_size=2, capacity_tokens=256)


@pytest.fixture
def prefilled(engine, rng):
    engine.prefill({0: rng.integers(0, 100, size=16)})
    return engine


class TestKvLeakReport:
    def test_clean_engine_is_clean(self, prefilled):
        assert prefilled.kv_leak_report() == []

    def test_orphaned_kv_reported(self, prefilled):
        prefilled.seq_lengths.pop(0)
        problems = prefilled.kv_leak_report()
        assert any("orphaned KV for untracked seq 0" in p for p in problems)
        # with nothing tracked, the rank allocators' claimed blocks are
        # also flagged as leaked
        assert any("blocks leaked with no resident sequences" in p for p in problems)

    def test_length_drift_reported(self, prefilled):
        prefilled.seq_lengths[0] += 5
        problems = prefilled.kv_leak_report()
        assert any(
            "ranks hold 16 tokens but tracked length is 21" in p for p in problems
        )

    def test_allocator_violations_surface_with_rank_prefix(self, prefilled):
        cache = prefilled.caches[1]
        block = cache._allocator._owners[(0,)][0]
        cache._allocator._ref[block] += 1
        problems = prefilled.kv_leak_report()
        assert any(p.startswith("rank 1: block") for p in problems)

    def test_dangling_radix_anchor_reported(self, prefilled, rng):
        prefilled.enable_prefix_cache()
        prefilled.prefill({1: rng.integers(0, 100, size=8)})
        assert prefilled.kv_leak_report() == []
        # corrupt: sequence forgotten without removing its anchor
        for cache in prefilled.caches:
            cache.drop(1)
        prefilled.seq_lengths.pop(1)
        problems = prefilled.kv_leak_report()
        assert any("dangling radix anchor for evicted seq 1" in p for p in problems)

    def test_anchor_longer_than_resident_reported(self, prefilled, rng):
        prefilled.enable_prefix_cache()
        prefilled.prefill({1: rng.integers(0, 100, size=8)})
        prefilled.kv_leak_report()  # flush the index
        prefilled.seq_lengths[1] = 4  # corrupt: shrink without trimming anchor
        problems = prefilled.kv_leak_report()
        assert any(
            "anchor covers 8 tokens but only 4 are resident" in p for p in problems
        )

    def test_stale_pin_reported(self, prefilled, rng):
        index = prefilled.enable_prefix_cache()
        prefilled.prefill({1: rng.integers(0, 100, size=8)})
        prefilled.kv_leak_report()  # flush the index so the anchor exists
        index.pin(1)
        # remove preserves borrower pins (documented seq-id-reuse
        # behaviour) — an evict with a live pin leaves the pin stale
        prefilled.evict(1)
        problems = prefilled.kv_leak_report()
        assert any("stale pin on non-anchor seq 1" in p for p in problems)
