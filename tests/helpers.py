"""Shared test helpers (importable as `helpers` via pytest pythonpath)."""

from __future__ import annotations

import numpy as np

from repro.core.sharding import SequenceSpec, ShardedKV, ShardedQueries, shard_sequences


def make_qkv(
    rng: np.random.Generator,
    tq: int,
    tk: int,
    n_heads: int = 8,
    n_kv_heads: int = 2,
    head_dim: int = 16,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Random GQA tensors with the library's token-major layout."""
    q = rng.standard_normal((tq, n_heads, head_dim))
    k = rng.standard_normal((tk, n_kv_heads, head_dim))
    v = rng.standard_normal((tk, n_kv_heads, head_dim))
    return q, k, v


def shard_qkv_full_prefill(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    world_size: int,
    *,
    seq_id: int = 0,
) -> tuple[list[ShardedQueries], list[ShardedKV]]:
    """Load-balance shard one full-prefill sequence across ranks."""
    t = q.shape[0]
    shards = shard_sequences([SequenceSpec(seq_id, t)], world_size)
    queries, kvs = [], []
    for pos, sid in shards:
        queries.append(ShardedQueries(q=q[pos], positions=pos, seq_ids=sid))
        kvs.append(ShardedKV(k=k[pos], v=v[pos], positions=pos, seq_ids=sid))
    return queries, kvs


def shard_varseq_full_prefill(
    per_seq_qkv: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]],
    world_size: int,
) -> tuple[list[ShardedQueries], list[ShardedKV]]:
    """Load-balance shard a fused batch of full-prefill sequences."""
    specs = [SequenceSpec(sid, qkv[0].shape[0]) for sid, qkv in sorted(per_seq_qkv.items())]
    shards = shard_sequences(specs, world_size)
    queries, kvs = [], []
    for pos, sids in shards:
        qs, ks, vs = [], [], []
        for p, sid in zip(pos, sids):
            q, k, v = per_seq_qkv[int(sid)]
            qs.append(q[int(p)])
            ks.append(k[int(p)])
            vs.append(v[int(p)])
        if qs:
            queries.append(
                ShardedQueries(q=np.stack(qs), positions=pos, seq_ids=sids)
            )
            kvs.append(
                ShardedKV(k=np.stack(ks), v=np.stack(vs), positions=pos, seq_ids=sids)
            )
        else:
            nh, dh = next(iter(per_seq_qkv.values()))[0].shape[1:]
            nkv = next(iter(per_seq_qkv.values()))[1].shape[1]
            queries.append(
                ShardedQueries(
                    q=np.zeros((0, nh, dh)),
                    positions=np.zeros(0, dtype=np.int64),
                    seq_ids=np.zeros(0, dtype=np.int64),
                )
            )
            kvs.append(ShardedKV.empty(nkv, dh))
    return queries, kvs
