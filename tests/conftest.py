"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sharding import SequenceSpec, ShardedKV, ShardedQueries, shard_sequences
from repro.model.config import tiny_config
from repro.model.llama import LlamaModel


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_model() -> LlamaModel:
    return LlamaModel(tiny_config(), seed=7)
