"""Tests for cluster topology presets."""

import pytest

from repro.distributed.topology import (
    ClusterTopology,
    gti_topology,
    gtt_topology,
    single_node_topology,
)


class TestPresets:
    def test_gtt_rdma_bandwidth(self):
        topo = gtt_topology(4)
        # 400 Gb/s per GPU derated to 75%: 37.5 GB/s per GPU
        assert topo.internode_bandwidth == pytest.approx(0.75 * 400e9 / 8)
        assert topo.world_size == 4
        assert topo.total_gpus == 32

    def test_gti_achieved_bandwidth(self):
        """GTI encodes the paper's observed ~3 GB/s per rank over TCP."""
        topo = gti_topology(2)
        assert topo.internode_bandwidth == pytest.approx(3e9)
        assert topo.internode_latency > gtt_topology(2).internode_latency

    def test_cp_link_bandwidth_stripes_over_gpus(self):
        """Ring messages stripe across the 8 per-KV-head channels (Fig. 5)."""
        topo = gtt_topology(2)
        assert topo.cp_link_bandwidth == pytest.approx(8 * topo.internode_bandwidth)

    def test_single_node_uses_nvlink(self):
        topo = single_node_topology()
        assert topo.cp_link_bandwidth == pytest.approx(8 * 450e9)
        assert topo.cp_link_latency == topo.intranode_latency

    def test_with_nodes(self):
        topo = gtt_topology(2).with_nodes(8)
        assert topo.num_nodes == 8
        assert topo.internode_bandwidth == gtt_topology(8).internode_bandwidth


class TestValidation:
    def test_bad_counts(self):
        with pytest.raises(ValueError):
            ClusterTopology("x", 0, 8, 1e9, 1e9)
        with pytest.raises(ValueError):
            ClusterTopology("x", 1, 0, 1e9, 1e9)

    def test_bad_bandwidth(self):
        with pytest.raises(ValueError):
            ClusterTopology("x", 1, 8, 0, 1e9)
