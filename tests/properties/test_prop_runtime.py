"""Property test: the continuous-batching runtime is exact.

The runtime's continuous batching — fused chunked prefill across
requests, batched decode interleaving, admission control and
capacity-pressure preemption with re-prefill on resume — must change
*scheduling only*: for any replayed multi-session trace, every request's
decoded tokens are identical to replaying its conversation alone,
uninterrupted, through :class:`repro.serving.session.ChatSession`, and
the final logits agree to the library's exactness tolerance. This is the
serving-level face of the paper's "lossless exact" claim.

The disaggregated variant extends the property over deployment shape:
for any prefill/decode pool split (any world sizes), any per-pool
capacities, any transfer schedule and any forced-preemption storm
(including evictions that cancel transfers mid-stream), the decoded
tokens stay identical to sequential replay.

The preemption-remedy variants extend it over *what eviction does*: any
tail-trim schedule (partial eviction, suffix-only re-prefill) and any
CPU-swap schedule (host-store export/import, including host-store
capacity fallbacks and swap-in evictions) must also leave every token
identical — the remedies may change only what an eviction costs.

The prefix-cache variants extend it over *sharing*: with the radix
prefix cache enabled, any schedule of index hits and misses, adoptions
through refcounted copy-on-write paged blocks, LRU evictions of cached
residents, remedy applications against borrowers and donors, pool
splits, and chunk-packing orders (FIFO or SRPF) must still decode every
token identically to sequential replay — reuse changes what a prompt
costs, never what it computes.
"""

import numpy as np
import pytest
from helpers import assert_exact_vs_sequential
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import ContextParallelEngine
from repro.model.config import tiny_config
from repro.model.llama import LlamaModel
from repro.runtime import ContinuousBatchingRuntime, RequestState, TurnRequest
from repro.serving.scheduler import ChunkedPrefillPolicy
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.replay import (
    replay_scripts_sequential,
    submit_scripts_to_runtime,
)

MODEL = LlamaModel(tiny_config(), seed=0)
VOCAB = MODEL.config.vocab_size
SETTINGS = dict(max_examples=10, deadline=None)


def fresh_engine(world):
    return ContextParallelEngine(LlamaModel(tiny_config(), seed=0), world_size=world)


@st.composite
def trace_case(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    world = draw(st.sampled_from([1, 2, 3]))
    n_sessions = draw(st.integers(1, 4))
    turns = draw(st.integers(1, 3))
    chunk = draw(st.sampled_from([5, 16, 64]))
    # None = no pressure; small pools force organic preemptions
    capacity = draw(st.sampled_from([None, 96, 144]))
    think = draw(st.sampled_from([0.0, 2.5]))
    gen = WorkloadGenerator(VOCAB, seed=seed)
    scripts = [
        gen.conversation(
            sid,
            turns=turns,
            first_prompt=int(gen.rng.integers(10, 50)),
            followup_range=(4, 12),
            response_range=(2, 5),
        )
        for sid in range(n_sessions)
    ]
    return scripts, world, chunk, capacity, think


@st.composite
def shared_trace_case(draw):
    """Templated shared-prefix traffic: the prefix cache's home turf."""
    seed = draw(st.integers(0, 2**31 - 1))
    world = draw(st.sampled_from([1, 2, 3]))
    templates = draw(st.integers(1, 2))
    conversations = draw(st.integers(2, 5))
    turns = draw(st.integers(1, 2))
    chunk = draw(st.sampled_from([5, 16, 64]))
    # None = no pressure; small pools force LRU cache evictions and
    # organic preemptions of borrowers and donors alike
    capacity = draw(st.sampled_from([None, 96, 144]))
    think = draw(st.sampled_from([0.0, 2.5]))
    order = draw(st.sampled_from(["fifo", "srpf"]))
    gen = WorkloadGenerator(VOCAB, seed=seed)
    scripts = gen.shared_prefix_traffic(
        n_system_prompts=templates,
        n_fewshot_variants=2,
        conversations=conversations,
        system_tokens=int(gen.rng.integers(16, 40)),
        fewshot_tokens=8,
        unique_range=(4, 12),
        turns=turns,
        followup_range=(4, 12),
        response_range=(2, 5),
    )
    return scripts, world, chunk, capacity, think, order


class TestRuntimeExactness:
    @given(trace_case())
    @settings(**SETTINGS)
    def test_tokens_identical_to_sequential_replay(self, case):
        scripts, world, chunk, capacity, think = case
        engine = ContextParallelEngine(MODEL, world_size=world, capacity_tokens=capacity)
        runtime = ContinuousBatchingRuntime(
            engine,
            policy=ChunkedPrefillPolicy(
                chunk_tokens=chunk, max_tokens_per_round=2 * chunk, max_seqs_per_round=4
            ),
        )
        rids = submit_scripts_to_runtime(runtime, scripts, think_time_s=think)
        report = runtime.run(max_steps=200_000)
        reference = replay_scripts_sequential(lambda: fresh_engine(world), scripts)
        # asserts every request FINISHED and every stream bit-identical
        assert_exact_vs_sequential(
            report, rids, reference,
            context=f"capacity={capacity}, chunk={chunk}, "
                    f"preemptions={report.metrics.preemptions}",
        )
        # the trace is fully accounted
        assert len(report.metrics.turns) == sum(s.turns for s in scripts)

    @given(trace_case(), st.integers(1, 6))
    @settings(**SETTINGS)
    def test_forced_preemption_resumes_exactly(self, case, every):
        """Evicting the youngest active request every few steps — far more
        preemption than capacity pressure produces — never changes tokens."""
        scripts, world, chunk, _, think = case
        engine = ContextParallelEngine(MODEL, world_size=world)
        runtime = ContinuousBatchingRuntime(
            engine,
            policy=ChunkedPrefillPolicy(
                chunk_tokens=chunk, max_tokens_per_round=2 * chunk, max_seqs_per_round=4
            ),
        )
        rids = submit_scripts_to_runtime(runtime, scripts, think_time_s=think)
        steps = 0
        forced = 0
        while runtime.step():
            steps += 1
            if steps > 200_000:
                pytest.fail("runtime did not drain")
            if steps % every == 0 and forced < 25:
                active = [
                    r
                    for r in runtime.report().records.values()
                    if r.state in (RequestState.PREFILL, RequestState.DECODE)
                    and runtime.engine.context_length(r.seq_id) > 0
                ]
                if active:
                    victim = max(active, key=lambda r: (r.request.arrival, r.request_id))
                    runtime.preempt(victim.request_id)
                    forced += 1
        report = runtime.report()
        reference = replay_scripts_sequential(lambda: fresh_engine(world), scripts)
        assert_exact_vs_sequential(
            report, rids, reference, context=f"forced={forced}"
        )

    @given(trace_case(), st.sampled_from([(1, 1), (1, 2), (2, 1), (2, 3), (3, 2)]))
    @settings(**SETTINGS)
    def test_disaggregated_pools_identical_to_sequential_replay(self, case, split):
        """Any prefill/decode pool split serves bit-identical tokens."""
        scripts, _world, chunk, capacity, think = case
        world_p, world_d = split
        engine = ContextParallelEngine(MODEL, world_size=world_p)
        decode_engine = ContextParallelEngine(
            MODEL, world_size=world_d, capacity_tokens=capacity
        )
        runtime = ContinuousBatchingRuntime(
            engine,
            decode_engine=decode_engine,
            policy=ChunkedPrefillPolicy(
                chunk_tokens=chunk, max_tokens_per_round=2 * chunk, max_seqs_per_round=4
            ),
        )
        rids = submit_scripts_to_runtime(runtime, scripts, think_time_s=think)
        report = runtime.run(max_steps=200_000)
        reference = replay_scripts_sequential(lambda: fresh_engine(world_p), scripts)
        assert_exact_vs_sequential(
            report, rids, reference,
            context=f"split={split}, capacity={capacity}, chunk={chunk}, "
                    f"preemptions={report.metrics.preemptions}, "
                    f"refusals={report.metrics.transfer_refusals}",
        )
        # every prompt token crossed the wire exactly once per (re)transfer
        assert report.metrics.transfers >= sum(s.turns for s in scripts) - sum(
            1 for s in scripts for b in s.response_budgets if b == 0
        )

    @given(trace_case(), st.sampled_from([(1, 2), (2, 1), (2, 2)]), st.integers(1, 6))
    @settings(**SETTINGS)
    def test_disaggregated_forced_preemption_storm(self, case, split, every):
        """Evicting the youngest active request every few steps — from
        either pool, cancelling transfers mid-stream — never changes
        tokens."""
        scripts, _world, chunk, _, think = case
        world_p, world_d = split
        engine = ContextParallelEngine(MODEL, world_size=world_p)
        decode_engine = ContextParallelEngine(MODEL, world_size=world_d)
        runtime = ContinuousBatchingRuntime(
            engine,
            decode_engine=decode_engine,
            policy=ChunkedPrefillPolicy(
                chunk_tokens=chunk, max_tokens_per_round=2 * chunk, max_seqs_per_round=4
            ),
        )
        rids = submit_scripts_to_runtime(runtime, scripts, think_time_s=think)
        steps = 0
        forced = 0
        active_states = (
            RequestState.PREFILL, RequestState.KV_TRANSFER, RequestState.DECODE
        )
        while runtime.step():
            steps += 1
            if steps > 200_000:
                pytest.fail("runtime did not drain")
            if steps % every == 0 and forced < 25:
                active = [
                    r
                    for r in runtime.report().records.values()
                    if r.state in active_states
                    and (
                        runtime.engine.context_length(r.seq_id) > 0
                        or runtime.decode_engine.context_length(r.seq_id) > 0
                    )
                ]
                if active:
                    victim = max(active, key=lambda r: (r.request.arrival, r.request_id))
                    runtime.preempt(victim.request_id)
                    forced += 1
        report = runtime.report()
        reference = replay_scripts_sequential(lambda: fresh_engine(world_d), scripts)
        assert_exact_vs_sequential(
            report, rids, reference, context=f"split={split}, forced={forced}"
        )

    @given(trace_case(), st.sampled_from(["trim", "swap"]))
    @settings(**SETTINGS)
    def test_preemption_remedies_identical_to_sequential_replay(self, case, mode):
        """Organic capacity pressure under tail-trim / CPU-swap remedies
        never changes tokens."""
        scripts, world, chunk, capacity, think = case
        engine = ContextParallelEngine(MODEL, world_size=world, capacity_tokens=capacity)
        runtime = ContinuousBatchingRuntime(
            engine,
            policy=ChunkedPrefillPolicy(
                chunk_tokens=chunk, max_tokens_per_round=2 * chunk, max_seqs_per_round=4
            ),
            preemption=mode,
            # a tight host store exercises the swap->full-evict fallback
            swap_capacity_tokens=256 if mode == "swap" else None,
        )
        rids = submit_scripts_to_runtime(runtime, scripts, think_time_s=think)
        report = runtime.run(max_steps=200_000)
        reference = replay_scripts_sequential(lambda: fresh_engine(world), scripts)
        assert_exact_vs_sequential(
            report, rids, reference,
            context=f"mode={mode}, capacity={capacity}, "
                    f"trims={report.metrics.trims}, "
                    f"swaps={report.metrics.swaps_out}, "
                    f"full evicts={report.metrics.preemptions}",
        )
        assert report.metrics.swaps_in == report.metrics.swaps_out

    @given(trace_case(), st.sampled_from(["trim", "swap"]), st.integers(1, 6))
    @settings(**SETTINGS)
    def test_forced_eviction_storm_with_remedies(self, case, mode, every):
        """A forced-eviction storm resolved by tail-trims / CPU swaps —
        far more remedy applications than capacity pressure produces —
        never changes tokens (the ``--preemption swap`` bit-check)."""
        scripts, world, chunk, _, think = case
        engine = ContextParallelEngine(MODEL, world_size=world)
        runtime = ContinuousBatchingRuntime(
            engine,
            policy=ChunkedPrefillPolicy(
                chunk_tokens=chunk, max_tokens_per_round=2 * chunk, max_seqs_per_round=4
            ),
            preemption=mode,
        )
        rids = submit_scripts_to_runtime(runtime, scripts, think_time_s=think)
        steps = 0
        forced = 0
        while runtime.step():
            steps += 1
            if steps > 200_000:
                pytest.fail("runtime did not drain")
            if steps % every == 0 and forced < 25:
                active = [
                    r
                    for r in runtime.report().records.values()
                    if r.state in (RequestState.PREFILL, RequestState.DECODE)
                    and runtime.engine.context_length(r.seq_id) > 0
                ]
                if active:
                    victim = max(active, key=lambda r: (r.request.arrival, r.request_id))
                    runtime.preempt(victim.request_id)
                    forced += 1
        report = runtime.report()
        if forced:
            # every forced preempt applied exactly one remedy: the mode's
            # (trim/swap), or its full-evict fallback on tiny contexts
            m = report.metrics
            assert m.trims + m.swaps_out + m.preemptions >= forced
        reference = replay_scripts_sequential(lambda: fresh_engine(world), scripts)
        assert_exact_vs_sequential(
            report, rids, reference, context=f"mode={mode}, forced={forced}"
        )

    @given(
        trace_case(),
        st.sampled_from([(1, 2), (2, 1), (2, 2)]),
        st.sampled_from(["trim", "swap"]),
        st.integers(2, 5),
    )
    @settings(**SETTINGS)
    def test_disaggregated_storm_with_remedies(self, case, split, mode, every):
        """Remedy storms across disaggregated pools (decode-pool trims
        reship deltas, decode-pool swaps skip the wire entirely) never
        change tokens."""
        scripts, _world, chunk, _, think = case
        world_p, world_d = split
        engine = ContextParallelEngine(MODEL, world_size=world_p)
        decode_engine = ContextParallelEngine(MODEL, world_size=world_d)
        runtime = ContinuousBatchingRuntime(
            engine,
            decode_engine=decode_engine,
            policy=ChunkedPrefillPolicy(
                chunk_tokens=chunk, max_tokens_per_round=2 * chunk, max_seqs_per_round=4
            ),
            preemption=mode,
        )
        rids = submit_scripts_to_runtime(runtime, scripts, think_time_s=think)
        steps = 0
        forced = 0
        active_states = (
            RequestState.PREFILL, RequestState.KV_TRANSFER, RequestState.DECODE
        )
        while runtime.step():
            steps += 1
            if steps > 200_000:
                pytest.fail("runtime did not drain")
            if steps % every == 0 and forced < 25:
                active = [
                    r
                    for r in runtime.report().records.values()
                    if r.state in active_states
                    and (
                        runtime.engine.context_length(r.seq_id) > 0
                        or runtime.decode_engine.context_length(r.seq_id) > 0
                    )
                ]
                if active:
                    victim = max(active, key=lambda r: (r.request.arrival, r.request_id))
                    runtime.preempt(victim.request_id)
                    forced += 1
        report = runtime.report()
        reference = replay_scripts_sequential(lambda: fresh_engine(world_d), scripts)
        assert_exact_vs_sequential(
            report, rids, reference,
            context=f"split={split}, mode={mode}, forced={forced}",
        )

    @given(shared_trace_case(), st.sampled_from(["recompute", "trim", "swap"]))
    @settings(**SETTINGS)
    def test_prefix_cache_identical_to_sequential_replay(self, case, mode):
        """Shared-prefix traffic through the radix prefix cache — any
        hit/miss/adoption/LRU-eviction schedule under any preemption
        remedy and packing order — decodes bit-identical tokens."""
        scripts, world, chunk, capacity, think, order = case
        engine = ContextParallelEngine(MODEL, world_size=world, capacity_tokens=capacity)
        runtime = ContinuousBatchingRuntime(
            engine,
            policy=ChunkedPrefillPolicy(
                chunk_tokens=chunk, max_tokens_per_round=2 * chunk,
                max_seqs_per_round=4, order=order,
            ),
            preemption=mode,
            prefix_cache=True,
        )
        rids = submit_scripts_to_runtime(runtime, scripts, think_time_s=think)
        report = runtime.run(max_steps=200_000)
        reference = replay_scripts_sequential(lambda: fresh_engine(world), scripts)
        assert_exact_vs_sequential(
            report, rids, reference,
            context=f"capacity={capacity}, chunk={chunk}, mode={mode}, "
                    f"order={order}, hits={report.metrics.prefix_hits}, "
                    f"prefix evictions={report.metrics.prefix_evictions}, "
                    f"preemptions={report.metrics.preemptions}",
        )
        # reuse accounting is internally consistent
        m = report.metrics
        assert m.prefix_hits + m.prefix_misses >= len(scripts) or capacity is not None
        if m.prefix_hits:
            assert m.prefix_reused_tokens >= m.prefix_hits

    @given(shared_trace_case(), st.sampled_from([(1, 2), (2, 1), (2, 2)]))
    @settings(**SETTINGS)
    def test_prefix_cache_disaggregated_identical(self, case, split):
        """Prefix cache on the prefill pool of any disaggregated split:
        retained residents, delta-only reshipping and index adoptions
        never change tokens."""
        scripts, _world, chunk, capacity, think, order = case
        world_p, world_d = split
        engine = ContextParallelEngine(MODEL, world_size=world_p, capacity_tokens=capacity)
        decode_engine = ContextParallelEngine(MODEL, world_size=world_d)
        runtime = ContinuousBatchingRuntime(
            engine,
            decode_engine=decode_engine,
            policy=ChunkedPrefillPolicy(
                chunk_tokens=chunk, max_tokens_per_round=2 * chunk,
                max_seqs_per_round=4, order=order,
            ),
            prefix_cache=True,
        )
        rids = submit_scripts_to_runtime(runtime, scripts, think_time_s=think)
        report = runtime.run(max_steps=200_000)
        reference = replay_scripts_sequential(lambda: fresh_engine(world_p), scripts)
        assert_exact_vs_sequential(
            report, rids, reference,
            context=f"split={split}, capacity={capacity}, chunk={chunk}, "
                    f"hits={report.metrics.prefix_hits}",
        )

    @given(shared_trace_case(), st.sampled_from(["recompute", "trim", "swap"]), st.integers(1, 6))
    @settings(**SETTINGS)
    def test_prefix_cache_forced_eviction_storm(self, case, mode, every):
        """A forced-eviction storm over shared-prefix traffic — donors
        and borrowers evicted mid-flight, copy-on-write splits, pinned
        prefixes dropped as last resort — never changes tokens."""
        scripts, world, chunk, _, think, order = case
        engine = ContextParallelEngine(MODEL, world_size=world)
        runtime = ContinuousBatchingRuntime(
            engine,
            policy=ChunkedPrefillPolicy(
                chunk_tokens=chunk, max_tokens_per_round=2 * chunk,
                max_seqs_per_round=4, order=order,
            ),
            preemption=mode,
            prefix_cache=True,
        )
        rids = submit_scripts_to_runtime(runtime, scripts, think_time_s=think)
        steps = 0
        forced = 0
        while runtime.step():
            steps += 1
            if steps > 200_000:
                pytest.fail("runtime did not drain")
            if steps % every == 0 and forced < 25:
                active = [
                    r
                    for r in runtime.report().records.values()
                    if r.state in (RequestState.PREFILL, RequestState.DECODE)
                    and runtime.engine.context_length(r.seq_id) > 0
                ]
                if active:
                    victim = max(active, key=lambda r: (r.request.arrival, r.request_id))
                    runtime.preempt(victim.request_id)
                    forced += 1
        report = runtime.report()
        reference = replay_scripts_sequential(lambda: fresh_engine(world), scripts)
        assert_exact_vs_sequential(
            report, rids, reference,
            context=f"mode={mode}, order={order}, forced={forced}",
        )

    def test_final_logits_match_sequential(self):
        """Beyond token ids: the last decode logits of a batched, chunked,
        preempted run agree numerically with the sequential run."""
        world, budget = 2, 5
        gen = WorkloadGenerator(VOCAB, seed=7)
        prompt = gen.prompt(40)

        runtime = ContinuousBatchingRuntime(
            ContextParallelEngine(MODEL, world_size=world),
            policy=ChunkedPrefillPolicy(chunk_tokens=8, max_tokens_per_round=16),
        )
        rid = runtime.submit(
            TurnRequest(
                request_id=-1, seq_id=0, prompt=prompt, max_new_tokens=budget,
                last_turn=False,
            )
        )
        preempted = False
        while runtime.step():
            rec = runtime.report().records[rid]
            if not preempted and rec.state is RequestState.DECODE and len(rec.generated) == 2:
                runtime.preempt(rid)
                preempted = True
        assert preempted
        generated = runtime.report().generated(rid)

        engine = fresh_engine(world)
        out = engine.prefill({0: prompt})
        logits = out.last_logits(0)
        seq_tokens = []
        for _ in range(budget):
            tok = int(np.argmax(logits))
            seq_tokens.append(tok)
            logits = engine.decode({0: tok}).logits[0]
        assert generated == seq_tokens

        # replay the final committed context through both engines: the
        # runtime's engine must hold a cache state producing the same
        # next-token logits as the sequential engine
        probe = np.array([1, 2, 3], dtype=np.int64)
        a = runtime.engine.prefill({0: probe}).last_logits(0)
        b = engine.prefill({0: probe}).last_logits(0)
        np.testing.assert_allclose(a, b, atol=1e-9, rtol=0)
