"""Runtime-level prefix cache: admission, retention, LRU, pinning."""

import numpy as np
import pytest

from repro.core.engine import ContextParallelEngine
from repro.model.config import tiny_config
from repro.model.llama import LlamaModel
from repro.runtime import ContinuousBatchingRuntime, RequestState, TurnRequest
from repro.serving.scheduler import ChunkedPrefillPolicy
from repro.workloads.generator import ConversationScript, WorkloadGenerator
from repro.workloads.replay import (
    replay_scripts_sequential,
    submit_scripts_to_runtime,
)

MODEL = LlamaModel(tiny_config(), seed=0)
VOCAB = MODEL.config.vocab_size


def policy(chunk=16):
    return ChunkedPrefillPolicy(
        chunk_tokens=chunk, max_tokens_per_round=2 * chunk, max_seqs_per_round=4
    )


def runtime(world=2, capacity=None, **kw):
    return ContinuousBatchingRuntime(
        ContextParallelEngine(MODEL, world_size=world, capacity_tokens=capacity),
        policy=policy(),
        prefix_cache=True,
        **kw,
    )


def shared_scripts(n=4, shared_tokens=40, seed=5, turns=1):
    gen = WorkloadGenerator(VOCAB, seed=seed)
    shared = gen.prompt(shared_tokens)
    scripts = []
    for sid in range(n):
        s = ConversationScript(seq_id=sid)
        s.prompts.append(np.concatenate([shared, gen.prompt(8)]))
        s.response_budgets.append(3)
        for _ in range(turns - 1):
            s.prompts.append(gen.prompt(6))
            s.response_budgets.append(3)
        scripts.append(s)
    return scripts


def fresh(world):
    return ContextParallelEngine(LlamaModel(tiny_config(), seed=0), world_size=world)


class TestAdmission:
    def test_hits_charge_only_the_suffix(self):
        scripts = shared_scripts(n=3, shared_tokens=48)
        rt = runtime()
        # stagger arrivals past each predecessor's prefill so the full
        # shared span is committed before the next conversation matches
        rids = submit_scripts_to_runtime(
            rt, scripts, start_offset_s=10.0, think_time_s=60.0
        )
        report = rt.run(max_steps=100_000)
        m = report.metrics
        assert m.prefix_hits == 2 and m.prefix_misses == 1
        assert m.prefix_reused_tokens == 2 * 48
        # warm requests skipped the shared span: with 16-token chunks a
        # cold 56-token prompt takes 4 rounds, a warm one takes 1
        cold = ContinuousBatchingRuntime(
            ContextParallelEngine(MODEL, world_size=2), policy=policy()
        )
        cold_rids = submit_scripts_to_runtime(
            cold, scripts, start_offset_s=10.0, think_time_s=60.0
        )
        cold_report = cold.run(max_steps=100_000)
        assert report.prefill_rounds < cold_report.prefill_rounds - 2
        # and tokens are identical to the cache-less replay
        for s in scripts:
            assert [report.generated(r) for r in rids[s.seq_id]] == [
                cold_report.generated(r) for r in cold_rids[s.seq_id]
            ]

    def test_warm_and_cold_ttft_buckets(self):
        scripts = shared_scripts(n=4, shared_tokens=48)
        rt = runtime()
        submit_scripts_to_runtime(rt, scripts, think_time_s=60.0)
        report = rt.run(max_steps=100_000)
        m = report.metrics
        assert len(m.ttft_cold_samples) == 1
        assert len(m.ttft_warm_samples) == 3
        assert m.percentile_ttft_split(50, warm=True) < m.percentile_ttft_split(
            50, warm=False
        )

    def test_at_least_one_token_left_to_prefill(self):
        """A prompt fully covered by the index still prefills its last
        token — the finishing chunk must produce logits to sample."""
        gen = WorkloadGenerator(VOCAB, seed=9)
        p = gen.prompt(20)
        rt = runtime()
        rt.submit(TurnRequest(request_id=-1, seq_id=0, prompt=p, max_new_tokens=2))
        rt.run(max_steps=10_000)
        # identical prompt: matches all 20 committed prompt tokens, capped
        rt.submit(TurnRequest(request_id=-1, seq_id=1, prompt=p, max_new_tokens=2))
        report = rt.run(max_steps=10_000)
        rec = report.records[1]
        assert rec.prefix_hit and rec.prefix_shared == 19
        assert report.generated(0) == report.generated(1)

    def test_tokens_match_sequential_replay(self):
        scripts = shared_scripts(n=4, shared_tokens=40, turns=2)
        rt = runtime()
        rids = submit_scripts_to_runtime(rt, scripts, think_time_s=2.0)
        report = rt.run(max_steps=100_000)
        reference = replay_scripts_sequential(lambda: fresh(2), scripts)
        for s in scripts:
            assert [report.generated(r) for r in rids[s.seq_id]] == reference[s.seq_id]


class TestRetentionAndLru:
    def test_finished_conversation_stays_donatable(self):
        gen = WorkloadGenerator(VOCAB, seed=7)
        shared = gen.prompt(30)
        rt = runtime()
        rt.submit(
            TurnRequest(
                request_id=-1, seq_id=0,
                prompt=np.concatenate([shared, gen.prompt(5)]), max_new_tokens=2,
            )
        )
        rt.run(max_steps=10_000)
        assert rt.engine.context_length(0) > 0  # retained, not released
        rt.submit(
            TurnRequest(
                request_id=-1, seq_id=1,
                prompt=np.concatenate([shared, gen.prompt(5)]), max_new_tokens=2,
            )
        )
        report = rt.run(max_steps=10_000)
        assert report.records[1].prefix_hit
        assert report.records[1].prefix_shared >= 30

    def test_lru_evicts_least_recently_used_resident_first(self):
        gen = WorkloadGenerator(VOCAB, seed=13)
        # 80 tokens/rank = 5 blocks: two 42-token residents claim 4,
        # admitting a third forces exactly one LRU eviction
        rt = runtime(capacity=80)
        # two independent conversations become cached residents
        for sid in (0, 1):
            rt.submit(
                TurnRequest(
                    request_id=-1, seq_id=sid, prompt=gen.prompt(40), max_new_tokens=2
                )
            )
            rt.run(max_steps=10_000)
        assert rt.engine.context_length(0) > 0 and rt.engine.context_length(1) > 0
        # a third conversation needs space: seq 0 is the older resident
        rt.submit(
            TurnRequest(request_id=-1, seq_id=2, prompt=gen.prompt(40), max_new_tokens=2)
        )
        report = rt.run(max_steps=10_000)
        assert report.metrics.prefix_evictions >= 1
        assert rt.engine.context_length(0) == 0  # LRU victim
        assert report.records[2].state is RequestState.FINISHED

    def test_stale_resident_same_seq_id_is_dropped(self):
        """A new conversation reusing a finished conversation's seq_id
        must not inherit its KV."""
        gen = WorkloadGenerator(VOCAB, seed=3)
        p1, p2 = gen.prompt(24), gen.prompt(24)
        rt = runtime()
        rt.submit(TurnRequest(request_id=-1, seq_id=0, prompt=p1, max_new_tokens=2))
        rt.run(max_steps=10_000)
        rt.submit(TurnRequest(request_id=-1, seq_id=0, prompt=p2, max_new_tokens=3))
        report = rt.run(max_steps=10_000)
        assert report.metrics.prefix_evictions >= 1
        ref = fresh(2)
        out = ref.prefill({0: p2})
        want = []
        logits = out.last_logits(0)
        for _ in range(3):
            tok = int(np.argmax(logits))
            want.append(tok)
            logits = ref.decode({0: tok}).logits[0]
        assert report.generated(1) == want


class TestPinning:
    def test_donor_pinned_for_borrower_lifetime(self):
        gen = WorkloadGenerator(VOCAB, seed=21)
        shared = gen.prompt(30)
        rt = runtime()
        rt.submit(
            TurnRequest(
                request_id=-1, seq_id=0,
                prompt=np.concatenate([shared, gen.prompt(4)]), max_new_tokens=1,
            )
        )
        rt.run(max_steps=10_000)
        rt.submit(
            TurnRequest(
                request_id=-1, seq_id=1,
                prompt=np.concatenate([shared, gen.prompt(4)]), max_new_tokens=6,
            )
        )
        pinned_seen = False
        while rt.step():
            if rt.prefix_index.pinned(0):
                pinned_seen = True
        assert pinned_seen
        assert not rt.prefix_index.pinned(0)  # unpinned at finish

    def test_trim_respects_shared_prefix_floor(self):
        """The tail-trim remedy never trims a borrower into its adopted
        shared prefix — it declines and the fallback chain evicts whole."""
        gen = WorkloadGenerator(VOCAB, seed=31)
        shared = gen.prompt(40)
        rt = ContinuousBatchingRuntime(
            ContextParallelEngine(MODEL, world_size=1),
            policy=policy(chunk=64),
            prefix_cache=True,
            preemption="trim",
        )
        rt.submit(
            TurnRequest(
                request_id=-1, seq_id=0,
                prompt=np.concatenate([shared, gen.prompt(4)]), max_new_tokens=1,
            )
        )
        rt.run(max_steps=10_000)
        rid = rt.submit(
            TurnRequest(
                request_id=-1, seq_id=1,
                prompt=np.concatenate([shared, gen.prompt(4)]), max_new_tokens=4,
            )
        )
        preempted = False
        while rt.step():
            rec = rt.report().records[rid]
            if not preempted and rec.state is RequestState.DECODE:
                shared_len = rec.prefix_shared
                assert shared_len == 40
                length = rt.engine.context_length(1)
                # trim step is ~one block/rank: force repeated preemption
                # until trimming would cut into the shared prefix
                while rt.engine.context_length(1) - rt.engine.kv_block_tokens() >= shared_len:
                    rt.preempt(rid)
                    assert rt.engine.context_length(1) >= shared_len
                trims_before = rt.metrics.trims
                evicts_before = rt.metrics.preemptions
                rt.preempt(rid)  # would trim below the floor: declines
                assert rt.metrics.trims == trims_before
                assert rt.metrics.preemptions == evicts_before + 1
                assert rec.prefix_shared == 0  # full evict reset the floor
                preempted = True
        assert preempted
        report = rt.report()
        # exactness held through the storm
        assert report.records[rid].state is RequestState.FINISHED
        assert report.generated(rid)[: 1] == report.generated(0)[: 1] or True
        ref = fresh(1)
        prompt = np.concatenate([shared, rt.report().records[rid].request.prompt[40:]])
        out = ref.prefill({1: prompt})
        want, logits = [], out.last_logits(1)
        for _ in range(4):
            tok = int(np.argmax(logits))
            want.append(tok)
            logits = ref.decode({1: tok}).logits[1]
        assert report.generated(rid) == want


class TestDisaggregatedRetention:
    def test_followup_ships_only_delta_without_recompute(self):
        gen = WorkloadGenerator(VOCAB, seed=17)
        scripts = shared_scripts(n=2, shared_tokens=32, turns=2, seed=17)
        base = dict(
            policy=policy(),
        )
        on = ContinuousBatchingRuntime(
            ContextParallelEngine(MODEL, world_size=2),
            decode_engine=ContextParallelEngine(MODEL, world_size=2),
            prefix_cache=True,
            **base,
        )
        off = ContinuousBatchingRuntime(
            ContextParallelEngine(MODEL, world_size=2),
            decode_engine=ContextParallelEngine(MODEL, world_size=2),
            **base,
        )
        rids_on = submit_scripts_to_runtime(on, scripts, think_time_s=5.0)
        rids_off = submit_scripts_to_runtime(off, scripts, think_time_s=5.0)
        rep_on = on.run(max_steps=100_000)
        rep_off = off.run(max_steps=100_000)
        for s in scripts:
            assert [rep_on.generated(r) for r in rids_on[s.seq_id]] == [
                rep_off.generated(r) for r in rids_off[s.seq_id]
            ]
        # retention: follow-up turns skip the history recompute entirely
        assert rep_on.prefill_rounds < rep_off.prefill_rounds
        # the wire still carries every transferred position exactly once
        assert (
            rep_on.metrics.transferred_kv_tokens
            == rep_off.metrics.transferred_kv_tokens
        )

    def test_prefill_pool_copy_survives_transfer(self):
        gen = WorkloadGenerator(VOCAB, seed=23)
        rt = ContinuousBatchingRuntime(
            ContextParallelEngine(MODEL, world_size=1),
            decode_engine=ContextParallelEngine(MODEL, world_size=2),
            policy=policy(),
            prefix_cache=True,
        )
        rt.submit(
            TurnRequest(request_id=-1, seq_id=0, prompt=gen.prompt(20), max_new_tokens=2)
        )
        rt.run(max_steps=10_000)
        assert rt.engine.context_length(0) == 20  # retained on pool A
        assert rt.decode_engine.context_length(0) == 0  # released at finish


class TestWarmColdHonesty:
    def test_pre_first_token_eviction_files_cold(self):
        """A borrower whose adopted prefix is fully evicted before its
        first token recomputes everything — its TTFT must file cold and
        its turn record must not report the lost span as cached."""
        gen = WorkloadGenerator(VOCAB, seed=41)
        shared = gen.prompt(40)
        rt = runtime()
        rt.submit(
            TurnRequest(
                request_id=-1, seq_id=0,
                prompt=np.concatenate([shared, gen.prompt(4)]), max_new_tokens=1,
            )
        )
        rt.run(max_steps=10_000)
        # the uncached suffix spans two 16-token chunks, so the borrower
        # crosses a step boundary in PREFILL before its first token
        rid = rt.submit(
            TurnRequest(
                request_id=-1, seq_id=1,
                prompt=np.concatenate([shared, gen.prompt(24)]), max_new_tokens=2,
            )
        )
        evicted = False
        while rt.step():
            rec = rt.report().records[rid]
            if not evicted and rec.prefix_hit and rec.first_token_at is None:
                rt.preempt(rid)
                evicted = True
                assert not rec.prefix_hit
                assert rec.cached_at_start == 0
        assert evicted
        m = rt.metrics
        assert len(m.ttft_warm_samples) == 0
        assert len(m.ttft_cold_samples) == 2

    def test_decode_pool_eviction_keeps_adopted_span(self):
        """Evicting a disaggregated borrower from the DECODE pool leaves
        its adopted prefix resident on the prefill pool — the trim guard
        and warm TTFT classification must survive."""
        gen = WorkloadGenerator(VOCAB, seed=47)
        shared = gen.prompt(30)
        rt = ContinuousBatchingRuntime(
            ContextParallelEngine(MODEL, world_size=2),
            decode_engine=ContextParallelEngine(MODEL, world_size=2),
            policy=policy(),
            prefix_cache=True,
        )
        rt.submit(
            TurnRequest(
                request_id=-1, seq_id=0,
                prompt=np.concatenate([shared, gen.prompt(4)]), max_new_tokens=1,
            )
        )
        rt.run(max_steps=10_000)
        rid = rt.submit(
            TurnRequest(
                request_id=-1, seq_id=1,
                prompt=np.concatenate([shared, gen.prompt(4)]), max_new_tokens=5,
            )
        )
        evicted = False
        while rt.step():
            rec = rt.report().records[rid]
            if not evicted and rec.state is RequestState.DECODE:
                assert rec.prefix_shared == 30
                rt.preempt(rid)  # decode-pool eviction
                assert rec.prefix_shared == 30  # prefill-pool span intact
                assert rec.prefix_hit  # still a warm request
                evicted = True
        assert evicted
        report = rt.report()
        assert report.records[rid].state is RequestState.FINISHED
        # warm TTFT stayed in the warm bucket
        assert len(report.metrics.ttft_warm_samples) == 1
