"""Unit tests: paged-allocator block sharing and copy-on-write."""

import pytest

from repro.kvcache.paged import OutOfBlocksError, PagedAllocator


class TestShare:
    def test_share_charges_nothing(self):
        a = PagedAllocator(num_blocks=8, block_size=4)
        a.append(("src",), 10)  # 3 blocks
        used = a.used_blocks
        shared = a.share(("src",), ("dst",), 10)
        assert shared == 3
        assert a.used_blocks == used  # capacity counted once
        assert a.stream_tokens(("dst",)) == 10
        assert a.stream_blocks(("dst",)) == a.stream_blocks(("src",))
        assert all(a.block_refcount(b) == 2 for b in a.stream_blocks(("dst",)))

    def test_share_partial_prefix(self):
        a = PagedAllocator(num_blocks=8, block_size=4)
        a.append(("src",), 10)
        a.share(("src",), ("dst",), 5)  # first 2 of src's 3 blocks
        assert a.stream_blocks(("dst",)) == a.stream_blocks(("src",))[:2]
        assert a.stream_tokens(("dst",)) == 5

    def test_share_validation(self):
        a = PagedAllocator(num_blocks=8, block_size=4)
        a.append(("src",), 4)
        with pytest.raises(ValueError):
            a.share(("missing",), ("dst",), 1)
        with pytest.raises(ValueError):
            a.share(("src",), ("src",), 1)
        with pytest.raises(ValueError):
            a.share(("src",), ("dst",), 5)  # more than stored
        with pytest.raises(ValueError):
            a.share(("src",), ("dst",), 0)
        a.share(("src",), ("dst",), 4)
        with pytest.raises(ValueError):
            a.share(("src",), ("dst",), 1)  # dst exists

    def test_transitive_share_from_adopter(self):
        a = PagedAllocator(num_blocks=8, block_size=4)
        a.append(("a",), 8)
        a.share(("a",), ("b",), 8)
        a.share(("b",), ("c",), 4)
        assert a.block_refcount(a.stream_blocks(("a",))[0]) == 3
        assert a.used_blocks == 2


class TestCopyOnWrite:
    def test_append_into_shared_partial_block_cows(self):
        a = PagedAllocator(num_blocks=8, block_size=4)
        a.append(("src",), 6)  # 2 blocks, last half-full
        a.share(("src",), ("dst",), 6)
        shared_last = a.stream_blocks(("dst",))[-1]
        a.append(("dst",), 1)
        # dst swapped the shared last block for a fresh exclusive one
        assert a.stream_blocks(("dst",))[-1] != shared_last
        assert a.block_refcount(shared_last) == 1  # src's again
        assert a.stream_blocks(("src",))[-1] == shared_last
        assert a.stream_tokens(("dst",)) == 7
        assert a.used_blocks == 3

    def test_source_append_also_cows(self):
        a = PagedAllocator(num_blocks=8, block_size=4)
        a.append(("src",), 6)
        a.share(("src",), ("dst",), 6)
        shared_last = a.stream_blocks(("src",))[-1]
        a.append(("src",), 1)
        assert a.stream_blocks(("src",))[-1] != shared_last
        assert a.stream_blocks(("dst",))[-1] == shared_last

    def test_block_aligned_share_needs_no_cow(self):
        a = PagedAllocator(num_blocks=8, block_size=4)
        a.append(("src",), 8)  # exactly 2 full blocks
        a.share(("src",), ("dst",), 8)
        used = a.used_blocks
        a.append(("dst",), 1)
        # one new block claimed, nothing swapped
        assert a.used_blocks == used + 1
        assert a.stream_blocks(("dst",))[:2] == a.stream_blocks(("src",))

    def test_fits_prices_the_cow_block(self):
        a = PagedAllocator(num_blocks=3, block_size=4)
        a.append(("src",), 6)  # 2 blocks used, 1 free
        a.share(("src",), ("dst",), 6)
        # dst appending 1 token needs the COW block: exactly the 1 free
        assert a.fits({("dst",): 1})
        # 5 tokens need COW + 1 more block: does not fit
        assert not a.fits({("dst",): 5})
        # an exclusive stream with the same fill would fit 5 in slack+1
        b = PagedAllocator(num_blocks=3, block_size=4)
        b.append(("x",), 6)
        assert b.fits({("x",): 5})

    def test_cow_oom_rolls_back(self):
        a = PagedAllocator(num_blocks=2, block_size=4)
        a.append(("src",), 6)
        a.share(("src",), ("dst",), 6)
        before = (a.stream_blocks(("dst",)), a.stream_tokens(("dst",)), a.free_blocks)
        with pytest.raises(OutOfBlocksError):
            a.append(("dst",), 1)
        assert (a.stream_blocks(("dst",)), a.stream_tokens(("dst",)), a.free_blocks) == before
        assert a.block_refcount(a.stream_blocks(("dst",))[-1]) == 2

    def test_append_oom_after_cow_rolls_back_cow(self):
        a = PagedAllocator(num_blocks=3, block_size=4)
        a.append(("src",), 6)
        a.share(("src",), ("dst",), 6)
        before_blocks = a.stream_blocks(("dst",))
        with pytest.raises(OutOfBlocksError):
            a.append(("dst",), 7)  # COW succeeds, second new block does not
        assert a.stream_blocks(("dst",)) == before_blocks
        assert a.free_blocks == 1
        assert a.block_refcount(before_blocks[-1]) == 2

    def test_shared_slack_excluded_from_free_tokens(self):
        a = PagedAllocator(num_blocks=4, block_size=4)
        a.append(("src",), 6)
        assert a.free_tokens() == 2 * 4 + 2  # 2 free blocks + slack
        a.share(("src",), ("dst",), 6)
        # both streams' last block is shared: no usable slack anywhere
        assert a.free_tokens() == 2 * 4


class TestReleaseUnderSharing:
    def test_release_frees_only_last_reference(self):
        a = PagedAllocator(num_blocks=8, block_size=4)
        a.append(("src",), 10)
        a.share(("src",), ("dst",), 10)
        assert a.release(("src",)) == 0  # dst still references everything
        assert a.used_blocks == 3
        assert a.stream_tokens(("dst",)) == 10
        assert a.release(("dst",)) == 3
        assert a.free_blocks == 8

    def test_release_tail_respects_shared_refs(self):
        a = PagedAllocator(num_blocks=8, block_size=4)
        a.append(("src",), 12)  # 3 blocks
        a.share(("src",), ("dst",), 12)
        a.append(("dst",), 4)  # exclusive 4th block
        # dropping dst's tail of 8: frees its exclusive block, derefs one shared
        freed = a.release_tail(("dst",), 8)
        assert freed == 1
        assert a.stream_tokens(("dst",)) == 8
        assert a.stream_tokens(("src",)) == 12  # donor untouched
        assert a.used_blocks == 3

    def test_exclusive_after_donor_release(self):
        a = PagedAllocator(num_blocks=8, block_size=4)
        a.append(("src",), 6)
        a.share(("src",), ("dst",), 6)
        a.release(("src",))
        # dst now owns the blocks exclusively: slack append, no COW
        used = a.used_blocks
        a.append(("dst",), 2)
        assert a.used_blocks == used
        assert a.stream_tokens(("dst",)) == 8
