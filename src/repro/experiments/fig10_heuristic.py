"""Figure 10 + Appendix D: the empirical pass-KV/pass-Q decision boundary.

Sweeps (T, miss rate) over a grid, labels each point by the *simulated
oracle* (which variant's TTFT is lower), and fits the paper's linear model
``h(T, P) = alpha * log T + beta * log(T/(T+P)) + gamma`` to the labels —
the same procedure the paper used on its empirical measurements.

Reproduced qualitative claims:

- a linear boundary in (log T, log miss) space separates the two regimes
  with few misclassifications, all near the boundary;
- for each T there is a miss-rate threshold above which pass-KV wins.

Note: the paper's published coefficients (-1.059, 1.145, 12.112) do not
reproduce its own Table 4 selections under any standard log base (they
classify nearly all Table 4 rows as pass-Q); we therefore report a refit on
simulated data and document the discrepancy.
"""

from __future__ import annotations

import numpy as np

from repro.core.heuristics import RingAlgo, fit_empirical
from repro.experiments.base import ExperimentResult
from repro.model.config import llama3_405b_config
from repro.perf.hardware import HostSpec, gtt_host
from repro.perf.latency import LatencySimulator


def sweep_points(
    sim: LatencySimulator, *, n_ranks: int = 4
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """(T, P, prefer_passkv, kv_over_q) grid over T in 256..64K and miss in
    0.5%..100%."""
    ts, ps, labels, ratios = [], [], [], []
    for log_t in np.linspace(8, 16, 17):  # T = 256 .. 65536
        t = int(round(2**log_t))
        for rate in np.geomspace(0.005, 1.0, 15):
            p = int(round(t / rate)) - t
            kv = sim.cp_prefill(t, p, n_ranks=n_ranks, algo=RingAlgo.PASS_KV).total
            qq = sim.cp_prefill(t, p, n_ranks=n_ranks, algo=RingAlgo.PASS_Q).total
            ts.append(t)
            ps.append(p)
            labels.append(kv <= qq)
            ratios.append(kv / qq)
    return np.array(ts, float), np.array(ps, float), np.array(labels), np.array(ratios)


def run(host: HostSpec | None = None) -> ExperimentResult:
    host = host if host is not None else gtt_host()
    sim = LatencySimulator(llama3_405b_config(), host)
    t, p, labels, ratios = sweep_points(sim)
    alpha, beta, gamma = fit_empirical(t, p, labels)

    h = alpha * np.log(t) + beta * np.log(t / (t + p)) + gamma
    pred = h > 0
    agreement = float(np.mean(pred == labels))
    # how much latency a misclassification costs: |kv/q - 1| at those points
    mis_gap = np.abs(ratios - 1.0)[pred != labels]

    res = ExperimentResult(
        experiment_id="Figure 10",
        title="Empirical heuristic h(T, P) refit on simulated sweep",
        headers=["quantity", "value"],
    )
    res.add_row("sweep points", len(t))
    res.add_row("fitted alpha", alpha)
    res.add_row("fitted beta", beta)
    res.add_row("fitted gamma", gamma)
    res.add_row("boundary agreement", agreement)
    res.add_row(
        "max latency gap among misclassified",
        float(mis_gap.max()) if mis_gap.size else 0.0,
    )
    res.paper_values["paper_alpha"] = -1.059
    res.paper_values["paper_beta"] = 1.145
    res.paper_values["paper_gamma"] = 12.112
    res.notes.append(
        "Qualitative match to Appendix D: beta > 0 (higher miss rate -> "
        "pass-KV) and misclassifications cluster at the boundary where the "
        "two variants differ by <1%."
    )
    res.notes.append(
        "The paper's published coefficients do not reproduce its own "
        "Table 4 decisions under ln/log2/log10; we document the refit "
        "instead (see EXPERIMENTS.md)."
    )
    return res
