"""Tests for per-rank HBM budgeting."""

import pytest

from repro.model.config import llama3_405b_config
from repro.perf.hardware import gtt_host
from repro.perf.memory import MemoryBudget, activation_bytes, rank_memory_budget


CFG = llama3_405b_config()
HOST = gtt_host()


class TestMemoryBudget:
    def test_405b_fits_one_host_with_fp8(self):
        """§4.1: row-wise FP8 lets the whole 405B fit one TP8 host."""
        budget = rank_memory_budget(CFG, HOST)
        assert budget.weights < budget.hbm_total
        assert budget.kv_available > 0

    def test_bf16_weights_do_not_fit(self):
        """Without quantization, 810 GB of weights exceed 768 GB of HBM."""
        budget = rank_memory_budget(CFG, HOST, ffn_weight_bytes=2.0)
        assert budget.weights > budget.hbm_total

    def test_kv_available_floor(self):
        tight = MemoryBudget(hbm_total=10.0, weights=20.0, activations=5.0)
        assert tight.kv_available == 0.0

    def test_max_context_scales_with_ranks(self):
        budget = rank_memory_budget(CFG, HOST)
        c1 = budget.max_context(CFG, 1)
        c8 = budget.max_context(CFG, 8)
        assert c8 == 8 * c1

    def test_max_context_doubles_with_int8_kv(self):
        budget = rank_memory_budget(CFG, HOST)
        bf16 = budget.max_context(CFG, 4, kv_element_bytes=2.0)
        int8 = budget.max_context(CFG, 4, kv_element_bytes=1.0)
        # equal up to integer-token truncation (one token per rank)
        assert abs(int8 - 2 * bf16) <= 2 * 4

    def test_max_batch_scales_with_ranks(self):
        """The paper's bullet 3: bigger batches with more CP ranks."""
        budget = rank_memory_budget(CFG, HOST)
        b1 = budget.max_batch(CFG, 131072, 1)
        b8 = budget.max_batch(CFG, 131072, 8)
        assert b8 >= 7 * max(b1, 1)

    def test_1m_context_feasible_at_8_ranks(self):
        budget = rank_memory_budget(CFG, HOST, tokens_per_rank=65536)
        assert budget.max_context(CFG, 8) > 1_048_576

    def test_activation_estimate_scales(self):
        a = activation_bytes(CFG, 10_000)
        b = activation_bytes(CFG, 20_000)
        assert b == pytest.approx(2 * a)

    def test_validation(self):
        budget = rank_memory_budget(CFG, HOST)
        with pytest.raises(ValueError):
            budget.max_context(CFG, 4, batch=0)
        with pytest.raises(ValueError):
            budget.max_batch(CFG, 0, 4)
