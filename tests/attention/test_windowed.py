"""Tests for sliding-window attention and its CP composability."""

import numpy as np
import pytest

from repro.attention.reference import reference_attention_with_lse
from repro.attention.windowed import (
    effective_kv_per_query,
    windowed_attention_mask_fn,
    windowed_mask,
)
from repro.core.ring_passkv import ring_passkv_prefill
from repro.core.ring_passq import ring_passq_prefill
from repro.distributed.process_group import SimProcessGroup

from helpers import make_qkv, shard_qkv_full_prefill


class TestWindowedMask:
    def test_window_limits_lookback(self):
        pos = np.arange(8)
        mask = windowed_mask(pos, pos, window=3)
        # query 5 sees positions 3, 4, 5 only
        assert mask[5].tolist() == [False] * 3 + [True] * 3 + [False] * 2

    def test_window_one_is_self_only(self):
        pos = np.arange(5)
        mask = windowed_mask(pos, pos, window=1)
        np.testing.assert_array_equal(mask, np.eye(5, dtype=bool))

    def test_huge_window_equals_causal(self):
        pos = np.arange(6)
        mask = windowed_mask(pos, pos, window=100)
        np.testing.assert_array_equal(mask, np.tril(np.ones((6, 6), dtype=bool)))

    def test_sink_tokens_always_visible(self):
        pos = np.arange(10)
        mask = windowed_mask(pos, pos, window=2, sink_tokens=2)
        # query 9 sees sinks {0,1} plus window {8,9}
        assert np.nonzero(mask[9])[0].tolist() == [0, 1, 8, 9]

    def test_cross_sequence_still_blocked(self):
        pos = np.array([0, 1, 0, 1])
        seq = np.array([0, 0, 1, 1])
        mask = windowed_mask(pos, pos, window=10, q_seq=seq, k_seq=seq)
        assert not mask[2, 0]  # seq 1 cannot see seq 0

    def test_validation(self):
        with pytest.raises(ValueError):
            windowed_mask(np.arange(2), np.arange(2), window=0)
        with pytest.raises(ValueError):
            windowed_mask(np.arange(2), np.arange(2), window=1, sink_tokens=-1)


class TestEffectiveKv:
    def test_counts(self):
        got = effective_kv_per_query(np.array([0, 1, 5, 9]), window=3)
        np.testing.assert_array_equal(got, [1, 2, 3, 3])

    def test_with_sinks(self):
        got = effective_kv_per_query(np.array([9]), window=3, sink_tokens=2)
        np.testing.assert_array_equal(got, [5])


class TestRingComposability:
    """The paper's 'seamlessly integrated' claim, made testable: windowed
    attention through pass-KV / pass-Q equals the single-device windowed
    kernel exactly."""

    @pytest.mark.parametrize("world", [2, 3])
    @pytest.mark.parametrize("window", [1, 4, 9])
    def test_windowed_ring_passkv(self, rng, world, window):
        t = 25
        q, k, v = make_qkv(rng, t, t)
        fn = windowed_attention_mask_fn(window)
        ref_out, _ = reference_attention_with_lse(q, k, v, mask_fn=fn)
        queries, kvs = shard_qkv_full_prefill(q, k, v, world)
        results = ring_passkv_prefill(SimProcessGroup(world), queries, kvs, mask_fn=fn)
        for res, qs in zip(results, queries):
            np.testing.assert_allclose(res.out, ref_out[qs.positions], atol=1e-10)

    def test_windowed_ring_passq_with_sinks(self, rng):
        world, t = 3, 21
        q, k, v = make_qkv(rng, t, t)
        fn = windowed_attention_mask_fn(5, sink_tokens=2)
        ref_out, _ = reference_attention_with_lse(q, k, v, mask_fn=fn)
        queries, kvs = shard_qkv_full_prefill(q, k, v, world)
        results = ring_passq_prefill(SimProcessGroup(world), queries, kvs, mask_fn=fn)
        for res, qs in zip(results, queries):
            np.testing.assert_allclose(res.out, ref_out[qs.positions], atol=1e-10)

    def test_windowed_differs_from_causal(self, rng):
        """Sanity: the window actually changes the output."""
        q, k, v = make_qkv(rng, 12, 12)
        full, _ = reference_attention_with_lse(q, k, v)
        windowed, _ = reference_attention_with_lse(
            q, k, v, mask_fn=windowed_attention_mask_fn(2)
        )
        assert not np.allclose(full, windowed)
