"""Request and turn records for the serving layer."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class PrefillRequest:
    """One prompt submitted for (full or partial) prefill.

    Attributes:
        seq_id: conversation / sequence identifier.
        token_ids: the new prompt tokens.
        max_new_tokens: decode budget for the response.
    """

    seq_id: int
    token_ids: np.ndarray
    max_new_tokens: int = 0

    def __post_init__(self) -> None:
        self.token_ids = np.asarray(self.token_ids, dtype=np.int64)
        if self.token_ids.ndim != 1 or self.token_ids.size == 0:
            raise ValueError(f"request {self.seq_id}: token_ids must be non-empty 1-D")
        if self.max_new_tokens < 0:
            raise ValueError("max_new_tokens must be >= 0")

    @property
    def prompt_tokens(self) -> int:
        return int(self.token_ids.size)


@dataclass
class TurnRecord:
    """Bookkeeping for one completed conversation turn.

    Attributes:
        seq_id: conversation id.
        prompt_tokens: new tokens prefetched this turn (``T``).
        cached_tokens: persistent KV length before the turn (``P``).
        response_tokens: tokens decoded in the response.
        algo: ring variant the planner chose for the prefill.
        generated: the decoded token ids.
    """

    seq_id: int
    prompt_tokens: int
    cached_tokens: int
    response_tokens: int
    algo: str
    generated: list[int] = field(default_factory=list)

    @property
    def miss_rate(self) -> float:
        """KV-cache miss rate the prefill ran at."""
        total = self.prompt_tokens + self.cached_tokens
        return self.prompt_tokens / total if total else 0.0
