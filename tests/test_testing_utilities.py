"""Tests for the public validation utilities."""

import numpy as np
import pytest

from repro.model.config import tiny_config
from repro.model.llama import LlamaModel
from repro.testing import (
    assert_lossless_conversation,
    assert_lossless_prefill,
    max_logit_error,
)


@pytest.fixture(scope="module")
def model():
    return LlamaModel(tiny_config(), seed=77)


class TestMaxLogitError:
    def test_zero_for_identical(self):
        x = np.ones((3, 5))
        assert max_logit_error(x, x.copy()) == 0.0

    def test_reports_max(self):
        a = np.zeros((2, 2))
        b = np.array([[0.0, 0.5], [0.0, -1.5]])
        assert max_logit_error(a, b) == 1.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            max_logit_error(np.zeros((2, 2)), np.zeros((3, 2)))

    def test_empty(self):
        assert max_logit_error(np.zeros((0, 5)), np.zeros((0, 5))) == 0.0


class TestAssertLossless:
    def test_prefill_passes(self, model):
        err = assert_lossless_prefill(model, 3, np.arange(15) % model.config.vocab_size)
        assert err < 1e-9

    def test_conversation_passes(self, model):
        v = model.config.vocab_size
        turns = [np.arange(9) % v, np.array([1, 2]) % v, np.array([5]) % v]
        err = assert_lossless_conversation(model, 2, turns, decode_per_turn=1)
        assert err < 1e-9

    def test_quantized_cache_fails_exactness(self, model):
        """The utility catches real divergence: int8 KV is not lossless."""
        with pytest.raises(AssertionError):
            assert_lossless_conversation(
                model, 2,
                [np.arange(12) % model.config.vocab_size, np.array([3, 4])],
                atol=1e-12,
                quantized_kv_cache=True,
            )
