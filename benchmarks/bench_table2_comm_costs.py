"""Table 2/3: TP-vs-CP communication and complexity accounting."""

from repro.experiments import table2_comm


def bench_table2_comm_costs(benchmark, paper_table):
    result = benchmark(table2_comm.run)
    paper_table(benchmark, result)
    ratio = result.rows[0][3]
    assert ratio == 16.0, "Llama3 405B: TP moves 16x the bytes CP does per block"


if __name__ == "__main__":
    print(table2_comm.run().render())
