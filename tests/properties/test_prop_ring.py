"""Property-based tests: ring algorithms are lossless for arbitrary inputs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attention.reference import reference_attention_with_lse
from repro.core.ring_passkv import ring_passkv_prefill
from repro.core.ring_passq import ring_passq_prefill
from repro.core.sharding import SequenceSpec, ShardedKV, ShardedQueries, shard_sequences
from repro.distributed.process_group import SimProcessGroup

SETTINGS = dict(max_examples=25, deadline=None)


@st.composite
def varseq_case(draw):
    """Random fused varseq full-prefill case sharded over a random world."""
    seed = draw(st.integers(0, 2**31 - 1))
    world = draw(st.integers(1, 5))
    n_seqs = draw(st.integers(1, 3))
    lengths = [draw(st.integers(1, 30)) for _ in range(n_seqs)]
    rng = np.random.default_rng(seed)
    per_seq = {
        i: (
            rng.standard_normal((n, 4, 8)),
            rng.standard_normal((n, 2, 8)),
            rng.standard_normal((n, 2, 8)),
        )
        for i, n in enumerate(lengths)
    }
    return world, per_seq


def build_shards(world, per_seq):
    specs = [SequenceSpec(sid, qkv[0].shape[0]) for sid, qkv in sorted(per_seq.items())]
    shards = shard_sequences(specs, world)
    queries, kvs = [], []
    for pos, sids in shards:
        qs = np.zeros((pos.shape[0], 4, 8))
        ks = np.zeros((pos.shape[0], 2, 8))
        vs = np.zeros((pos.shape[0], 2, 8))
        for i, (p, s) in enumerate(zip(pos, sids)):
            q, k, v = per_seq[int(s)]
            qs[i], ks[i], vs[i] = q[int(p)], k[int(p)], v[int(p)]
        queries.append(ShardedQueries(q=qs, positions=pos, seq_ids=sids))
        kvs.append(ShardedKV(k=ks, v=vs, positions=pos, seq_ids=sids))
    return queries, kvs


class TestRingLosslessness:
    @given(varseq_case())
    @settings(**SETTINGS)
    def test_passkv_exact_for_any_case(self, case):
        world, per_seq = case
        queries, kvs = build_shards(world, per_seq)
        results = ring_passkv_prefill(SimProcessGroup(world), queries, kvs)
        refs = {sid: reference_attention_with_lse(*qkv)[0] for sid, qkv in per_seq.items()}
        for res, qs in zip(results, queries):
            for i, (p, s) in enumerate(zip(qs.positions, qs.seq_ids)):
                np.testing.assert_allclose(res.out[i], refs[int(s)][int(p)], atol=1e-9)

    @given(varseq_case())
    @settings(**SETTINGS)
    def test_passq_exact_for_any_case(self, case):
        world, per_seq = case
        queries, kvs = build_shards(world, per_seq)
        results = ring_passq_prefill(SimProcessGroup(world), queries, kvs)
        refs = {sid: reference_attention_with_lse(*qkv)[0] for sid, qkv in per_seq.items()}
        for res, qs in zip(results, queries):
            for i, (p, s) in enumerate(zip(qs.positions, qs.seq_ids)):
                np.testing.assert_allclose(res.out[i], refs[int(s)][int(p)], atol=1e-9)

    @given(varseq_case())
    @settings(**SETTINGS)
    def test_variants_agree(self, case):
        """pass-KV and pass-Q are interchangeable: identical results."""
        world, per_seq = case
        queries, kvs = build_shards(world, per_seq)
        a = ring_passkv_prefill(SimProcessGroup(world), queries, kvs)
        b = ring_passq_prefill(SimProcessGroup(world), queries, kvs)
        for ra, rb in zip(a, b):
            np.testing.assert_allclose(ra.out, rb.out, atol=1e-9)
            np.testing.assert_allclose(ra.lse, rb.lse, atol=1e-9)
