"""Sliding-window (local) attention masks — composability demonstration.

The paper positions CP as orthogonal to approximate-attention methods
(window/local attention, §2.2) and claims its system-level optimizations
"can be seamlessly integrated with architectural innovations" (§1). This
module makes that concrete: a windowed causal mask expressed in the same
position/sequence coordinates the ring algorithms use, so sliding-window
attention runs through pass-KV/pass-Q unchanged and stays exact w.r.t. a
single-device windowed kernel (tested).

A window of ``w`` lets position ``p`` attend positions ``[p - w + 1, p]``
within its own sequence (attention-sink variants additionally pin a global
prefix, also supported).
"""

from __future__ import annotations

import numpy as np

from repro.attention.masks import attention_mask


def windowed_mask(
    q_pos: np.ndarray,
    k_pos: np.ndarray,
    window: int,
    *,
    q_seq: np.ndarray | None = None,
    k_seq: np.ndarray | None = None,
    sink_tokens: int = 0,
) -> np.ndarray:
    """Sliding-window causal mask in absolute coordinates.

    Args:
        q_pos / k_pos: absolute positions.
        window: attention window size ``w`` (>= 1); each query sees at most
            the last ``w`` positions including itself.
        q_seq / k_seq: sequence ids for fused batches.
        sink_tokens: number of always-visible prefix positions (attention
            sinks, Xiao et al. 2023 — cited in §2.3).

    Returns:
        Boolean ``[Tq, Tk]`` mask.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if sink_tokens < 0:
        raise ValueError(f"sink_tokens must be >= 0, got {sink_tokens}")
    base = attention_mask(q_pos, k_pos, q_seq, k_seq, causal=True)
    q_pos = np.asarray(q_pos)
    k_pos = np.asarray(k_pos)
    in_window = k_pos[None, :] > (q_pos[:, None] - window)
    is_sink = k_pos[None, :] < sink_tokens
    return base & (in_window | is_sink)


def windowed_attention_mask_fn(window: int, *, sink_tokens: int = 0):
    """Mask-function factory with the signature ring kernels expect.

    Returns a callable ``(q_pos, k_pos, q_seq, k_seq) -> mask`` that can be
    composed with :func:`apply_masked_attention` below or used directly in
    tests.
    """

    def fn(q_pos, k_pos, q_seq=None, k_seq=None):
        return windowed_mask(
            q_pos, k_pos, window, q_seq=q_seq, k_seq=k_seq, sink_tokens=sink_tokens
        )

    return fn


def effective_kv_per_query(q_pos: np.ndarray, window: int, *, sink_tokens: int = 0) -> np.ndarray:
    """Visible-key count per query under the window (FLOP accounting)."""
    q_pos = np.asarray(q_pos)
    in_window = np.minimum(q_pos + 1, window)
    sinks = np.clip(np.minimum(sink_tokens, q_pos + 1 - in_window), 0, None)
    return in_window + sinks
