"""Table 8: decode attention scaling with CP host count.

Decomposes the per-layer decode attention path — individual attention op,
whole ring loop, SendRecv, All2All, whole pass-Q — for 128K batch 1 and
32K batch 4, across CP1/2/4. The reproduced insight: each attention op gets
*faster* (effective context per rank shrinks) while the whole path gets
*slower* (query padding plus ring + All2All latency grow with hosts).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.model.config import llama3_405b_config
from repro.perf.hardware import HostSpec, gtt_host
from repro.perf.latency import LatencySimulator
from repro.workloads.traces import TABLE8_SCENARIOS

#: Paper Table 8 (us): (context, batch, ranks) ->
#: (attn_op, attn_ring, sendrecv, all2all, whole)
PAPER_TABLE8 = {
    (131072, 1, 1): (38.9, 38.9, 0.0, 0.0, 38.9),
    (131072, 1, 2): (22.0, 43.2, 32.3, 81.1, 157.7),
    (131072, 1, 4): (14.7, 60.8, 105.7, 79.9, 238.6),
    (32768, 4, 1): (60.1, 60.1, 0.0, 0.0, 60.1),
    (32768, 4, 2): (13.9, 24.5, 33.3, 66.8, 136.6),
    (32768, 4, 4): (9.6, 41.3, 104.9, 72.2, 180.6),
}


def run(host: HostSpec | None = None) -> ExperimentResult:
    host = host if host is not None else gtt_host()
    sim = LatencySimulator(llama3_405b_config(), host)

    res = ExperimentResult(
        experiment_id="Table 8",
        title="Decode attention scaling with CP hosts (us per layer)",
        headers=[
            "context", "batch", "ranks", "eff ctx",
            "attn op", "attn ring", "SendRecv", "All2All", "whole pass-Q",
            "paper whole pass-Q",
        ],
    )
    for context, batch, rank_list in TABLE8_SCENARIOS:
        for n in rank_list:
            if n == 1:
                d = sim.tp_decode(context, batch=batch, n_nodes=1)
            else:
                d = sim.cp_decode(context, batch=batch, n_ranks=n)
            paper = PAPER_TABLE8[(context, batch, n)]
            res.add_row(
                context, batch, n, d.effective_context,
                d.attn_op * 1e6, d.attn_ring * 1e6,
                d.sendrecv * 1e6, d.all2all * 1e6, d.whole_attn * 1e6,
                paper[4],
            )
    res.notes.append(
        "Individual attention ops shrink with ranks (less KV per rank) but "
        "whole pass-Q grows: padded queries + latency-bound SendRecv/All2All."
    )
    return res
