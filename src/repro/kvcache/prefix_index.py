"""Radix prefix index over committed token ids (shared-prefix KV reuse).

Serving traffic is heavily templated — thousands of requests share the
same system prompt or few-shot preamble — and re-prefilling those tokens
for every request prices each prompt as cold. SGLang's RadixAttention and
Mooncake's KVCache-centric store exploit this by indexing *resident* KV
under the token ids that produced it; this module is that index for the
reproduction's engine.

:class:`PrefixIndex` is a compressed radix tree (path-compressed trie)
over token-id strings. Each edge carries a run of token ids; each node
records the *holders* — resident sequences whose committed history covers
the full path through that node. Matching a new prompt walks the tree and
returns the deepest covered length plus a donor sequence whose paged KV
blocks can be shared (:meth:`repro.kvcache.cache.RankKVCache.share_prefix`
/ allocator refcounts); the engine then prefills only the uncached
suffix.

The index is pure bookkeeping over token ids — the KV itself stays in the
per-rank caches, and block lifetime is governed by the allocator's
refcounts. What the index adds on top:

- **anchors**: which sequences are donatable and how many tokens of each
  are indexed (kept in lockstep with the engine's resident KV by
  ``insert`` / ``trim`` / ``remove``);
- **pins**: match consumers pin their donor for the borrowing request's
  lifetime so cache eviction prefers truly unreferenced prefixes;
- **LRU**: a monotonic use-clock per anchor; the serving runtime evicts
  cached residents least-recently-used first.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def _as_tokens(tokens) -> np.ndarray:
    arr = np.asarray(tokens, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError(f"token ids must be 1-D, got shape {arr.shape}")
    return arr


def _common_len(a: np.ndarray, b: np.ndarray) -> int:
    n = min(a.size, b.size)
    if n == 0:
        return 0
    neq = np.nonzero(a[:n] != b[:n])[0]
    return int(neq[0]) if neq.size else n


@dataclass
class _Node:
    """One radix-tree node: the edge from its parent plus children.

    ``holders`` are the anchor sequences whose committed history covers
    the full path through this node's edge end. The invariant that makes
    pruning safe: a holder of any descendant is a holder of this node, so
    an empty ``holders`` set empties the whole subtree.
    """

    edge: np.ndarray
    children: dict[int, "_Node"] = field(default_factory=dict)
    holders: set[int] = field(default_factory=set)


class PrefixIndex:
    """Radix tree mapping committed token prefixes to donor sequences."""

    def __init__(self):
        self._root = _Node(edge=np.zeros(0, dtype=np.int64))
        self._lengths: dict[int, int] = {}
        self._pins: dict[int, int] = {}
        self._last_used: dict[int, int] = {}
        self._clock = 0

    # ------------------------------------------------------------------ #
    # anchor maintenance
    # ------------------------------------------------------------------ #

    def insert(self, seq_id: int, tokens) -> None:
        """Anchor ``seq_id``'s committed history (idempotent, extending).

        Re-inserting with a longer history extends the anchor; nodes are
        split wherever histories diverge so every node keeps exact
        holder sets.
        """
        tokens = _as_tokens(tokens)
        if tokens.size == 0:
            return
        self._lengths[seq_id] = max(self._lengths.get(seq_id, 0), int(tokens.size))
        node, i = self._root, 0
        while i < tokens.size:
            child = node.children.get(int(tokens[i]))
            if child is None:
                node.children[int(tokens[i])] = _Node(
                    edge=tokens[i:].copy(), holders={seq_id}
                )
                return
            m = _common_len(child.edge, tokens[i:])
            if m == child.edge.size:
                child.holders.add(seq_id)
                node = child
                i += m
                continue
            # split the child at the divergence (or at the insert's end)
            mid = _Node(
                edge=child.edge[:m].copy(),
                children={int(child.edge[m]): child},
                holders=set(child.holders),
            )
            child.edge = child.edge[m:]
            node.children[int(tokens[i])] = mid
            mid.holders.add(seq_id)
            if i + m < tokens.size:
                rest = tokens[i + m :]
                mid.children[int(rest[0])] = _Node(edge=rest.copy(), holders={seq_id})
            return

    def trim(self, seq_id: int, new_len: int) -> None:
        """Shrink ``seq_id``'s anchored coverage to ``new_len`` tokens.

        Called when the engine tail-trims a resident sequence: prefixes
        beyond the surviving KV must stop matching. A cut mid-edge splits
        the node so other holders keep their full coverage.
        """
        if seq_id not in self._lengths:
            return
        if new_len <= 0:
            self.remove(seq_id)
            return
        if new_len >= self._lengths[seq_id]:
            return
        node, depth = self._root, 0
        while True:
            entry = next(
                (
                    (tok, child)
                    for tok, child in node.children.items()
                    if seq_id in child.holders
                ),
                None,
            )
            if entry is None:
                break
            tok, child = entry
            end = depth + child.edge.size
            if end <= new_len:
                node, depth = child, end
                continue
            if depth < new_len:
                # cut lands mid-edge: keep the upper part anchored
                cut = new_len - depth
                mid = _Node(
                    edge=child.edge[:cut].copy(),
                    children={int(child.edge[cut]): child},
                    holders=set(child.holders),
                )
                child.edge = child.edge[cut:]
                node.children[tok] = mid
                self._strip(mid, int(child.edge[0]), child, seq_id)
            else:
                self._strip(node, tok, child, seq_id)
            break
        self._lengths[seq_id] = new_len

    def remove(self, seq_id: int) -> None:
        """Drop ``seq_id`` as an anchor (its KV left residency).

        Pins survive: they are owned by *borrowers* (each ``pin`` has a
        matching ``unpin`` at the borrowing request's finish), so
        clearing them here would let a borrower's later unpin strip the
        pin protecting a new conversation that reused this seq id. A
        removed-then-reanchored id therefore stays LRU-protected exactly
        while any borrower of either incarnation is still in flight.
        """
        if seq_id not in self._lengths:
            return
        for tok, child in list(self._root.children.items()):
            if seq_id in child.holders:
                self._strip(self._root, tok, child, seq_id)
                break
        del self._lengths[seq_id]
        self._last_used.pop(seq_id, None)

    def _strip(self, parent: _Node, tok: int, node: _Node, seq_id: int) -> None:
        """Remove ``seq_id`` from ``node``'s subtree; prune emptied nodes.

        A sequence's history is a single token string, so it threads at
        most one child at every level.
        """
        node.holders.discard(seq_id)
        for ctok, child in list(node.children.items()):
            if seq_id in child.holders:
                self._strip(node, ctok, child, seq_id)
                break
        if not node.holders:
            del parent.children[tok]

    # ------------------------------------------------------------------ #
    # matching
    # ------------------------------------------------------------------ #

    def match(self, tokens) -> tuple[int, int | None]:
        """Longest indexed prefix of ``tokens``: ``(length, donor_seq)``.

        The donor is the most-recently-used holder covering the match —
        a resident sequence whose first ``length`` committed tokens equal
        ``tokens[:length]``. ``(0, None)`` when nothing matches.
        """
        tokens = _as_tokens(tokens)
        node, i, donor = self._root, 0, None
        while i < tokens.size:
            child = node.children.get(int(tokens[i]))
            if child is None or not child.holders:
                break
            m = _common_len(child.edge, tokens[i:])
            if m == 0:
                break
            i += m
            donor = max(child.holders, key=lambda s: (self._last_used.get(s, 0), s))
            if m < child.edge.size:
                break
            node = child
        return i, donor

    # ------------------------------------------------------------------ #
    # pins and LRU
    # ------------------------------------------------------------------ #

    def pin(self, seq_id: int) -> None:
        """Protect ``seq_id`` from LRU eviction (refcounted)."""
        self._pins[seq_id] = self._pins.get(seq_id, 0) + 1

    def unpin(self, seq_id: int) -> None:
        """Release one pin; unknown/unpinned sequences are a no-op."""
        count = self._pins.get(seq_id, 0) - 1
        if count <= 0:
            self._pins.pop(seq_id, None)
        else:
            self._pins[seq_id] = count

    def pinned(self, seq_id: int) -> bool:
        return self._pins.get(seq_id, 0) > 0

    def pins(self) -> dict[int, int]:
        """Live pin counts per sequence (diagnostics / leak audits).

        A pin on a sequence no longer in :meth:`anchors` is legal while
        its borrower is mid-adoption, but after a runtime drains — fault
        injection included — every surviving pin must target an anchor;
        the engine's ``kv_leak_report`` checks exactly that.
        """
        return dict(self._pins)

    def touch(self, seq_id: int) -> None:
        """Mark ``seq_id`` used now (monotonic LRU clock)."""
        self._clock += 1
        self._last_used[seq_id] = self._clock

    def last_used(self, seq_id: int) -> int:
        """LRU clock reading for ``seq_id`` (0 = never touched)."""
        return self._last_used.get(seq_id, 0)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def anchors(self) -> list[int]:
        """Every donatable sequence currently indexed."""
        return sorted(self._lengths)

    def anchor_length(self, seq_id: int) -> int:
        """Indexed token count of ``seq_id`` (0 = not an anchor)."""
        return self._lengths.get(seq_id, 0)

    def __contains__(self, seq_id: int) -> bool:
        return seq_id in self._lengths

    def __len__(self) -> int:
        return len(self._lengths)
