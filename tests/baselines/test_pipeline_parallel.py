"""Tests for the pipeline-parallel baseline."""

import pytest

from repro.baselines.pipeline_parallel import pp_prefill
from repro.model.config import llama3_405b_config
from repro.perf.hardware import gtt_host
from repro.perf.latency import LatencySimulator


CFG = llama3_405b_config()
HOST = gtt_host()


class TestPipelineParallel:
    def test_ttft_flat_in_stages(self):
        """PP does not reduce single-request latency (paper §1)."""
        one = pp_prefill(CFG, HOST, 131072, stages=1)
        six = pp_prefill(CFG, HOST, 131072, stages=6)
        assert six.ttft >= one.ttft  # hand-offs only add
        assert six.ttft / one.ttft < 1.05

    def test_throughput_scales_with_stages(self):
        one = pp_prefill(CFG, HOST, 131072, stages=1, micro_batches=64)
        six = pp_prefill(CFG, HOST, 131072, stages=6, micro_batches=64)
        assert six.steady_throughput > 5.0 * one.steady_throughput

    def test_bubble_fraction_gpipe(self):
        r = pp_prefill(CFG, HOST, 131072, stages=6, micro_batches=18)
        assert r.bubble_fraction == pytest.approx(5 / 23)

    def test_more_microbatches_less_bubble(self):
        small = pp_prefill(CFG, HOST, 131072, stages=6, micro_batches=6)
        large = pp_prefill(CFG, HOST, 131072, stages=6, micro_batches=60)
        assert large.bubble_fraction < small.bubble_fraction
        assert large.steady_throughput > small.steady_throughput

    def test_cp_beats_pp_on_latency(self):
        """The paper's contrast, quantified: same hosts, CP wins TTFT."""
        sim = LatencySimulator(CFG, HOST)
        cp = sim.cp_prefill(131072, n_ranks=6).total
        pp = pp_prefill(CFG, HOST, 131072, stages=6).ttft
        assert pp > 4.0 * cp

    def test_validation(self):
        with pytest.raises(ValueError):
            pp_prefill(CFG, HOST, 131072, stages=0)
        with pytest.raises(ValueError):
            pp_prefill(CFG, HOST, 131072, stages=5)  # 126 % 5 != 0
        with pytest.raises(ValueError):
            pp_prefill(CFG, HOST, 131072, stages=2, micro_batches=0)
