"""Table 8: decode attention scaling breakdown across CP hosts."""

from repro.experiments import table8_decode_attention


def bench_table8_decode_attention(benchmark, paper_table):
    result = benchmark(table8_decode_attention.run)
    paper_table(benchmark, result)

    for context, batch in ((131072, 1), (32768, 4)):
        rows = [r for r in result.rows if r[0] == context and r[1] == batch]
        ops = [r[4] for r in rows]
        wholes = [r[8] for r in rows]
        # individual attention op shrinks with ranks...
        assert ops == sorted(ops, reverse=True)
        # ...while the whole per-layer pass-Q path grows
        assert wholes == sorted(wholes)

    # 128K B=1 whole pass-Q near the paper's trace numbers
    b1 = {r[2]: r for r in result.rows if r[0] == 131072}
    assert abs(b1[2][8] - 157.7) / 157.7 < 0.12
    assert abs(b1[4][8] - 238.6) / 238.6 < 0.12


if __name__ == "__main__":
    print(table8_decode_attention.run().render())
