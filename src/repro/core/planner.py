"""Prefill planning: turn a batch of sequence specs into an execution plan.

The planner is the runtime face of :mod:`repro.core.heuristics`: it inspects
the batch's aggregate new-token count ``T`` and cached length ``P``, applies
the configured selector (Algorithm 1, Algorithm 5, or the Appendix D
empirical model), and emits a :class:`PrefillPlan` recording the choice and
the threshold values that produced it — the paper runs exactly this logic
"at the beginning of each round" (Appendix D).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.heuristics import (
    HeuristicConfig,
    RingAlgo,
    empirical_score,
    miss_rate,
    select_algo_empirical,
    select_algo_simple,
    select_algo_with_all2all,
)
from repro.core.sharding import SequenceSpec


class SelectorKind(enum.Enum):
    """Which published selector the planner runs."""

    SIMPLE = "algorithm-1"
    ALL2ALL_AWARE = "algorithm-5"
    EMPIRICAL = "empirical"


@dataclass(frozen=True)
class PrefillPlan:
    """Resolved execution plan for one prefill round.

    Attributes:
        algo: chosen ring variant.
        selector: selector that made the choice.
        new_tokens: aggregate ``T`` over the batch.
        cached_tokens: aggregate ``P`` over the batch.
        miss_rate: ``T / (T + P)``.
        forced: ``True`` when the caller overrode the heuristic.
    """

    algo: RingAlgo
    selector: SelectorKind
    new_tokens: int
    cached_tokens: int
    miss_rate: float
    forced: bool = False


class PrefillPlanner:
    """Chooses pass-KV vs pass-Q per prefill round.

    Args:
        heuristic: static model/hardware constants; ``None`` falls back to a
            miss-rate-only rule (Equation 1), which is hardware-free and the
            right default for the numeric simulator.
        selector: which published selector to apply when ``heuristic`` is
            available.
    """

    def __init__(
        self,
        heuristic: HeuristicConfig | None = None,
        *,
        selector: SelectorKind = SelectorKind.ALL2ALL_AWARE,
    ):
        self.heuristic = heuristic
        self.selector = selector

    def plan(
        self, specs: list[SequenceSpec], *, force_algo: RingAlgo | None = None
    ) -> PrefillPlan:
        """Build the plan for a batch of sequences.

        Aggregates ``T`` and ``P`` across the fused batch (the production
        system schedules one algorithm per round, not per sequence).
        """
        if not specs:
            raise ValueError("cannot plan an empty batch")
        t = sum(s.new_tokens for s in specs)
        p = sum(s.cached_tokens for s in specs)
        if t == 0:
            raise ValueError("batch has no new tokens to prefill")
        rate = miss_rate(t, p)

        if force_algo is not None:
            return PrefillPlan(
                algo=force_algo, selector=self.selector, new_tokens=t,
                cached_tokens=p, miss_rate=rate, forced=True,
            )

        if self.heuristic is None:
            # Hardware-free fallback: message-size rule only (Equation 1).
            algo = RingAlgo.PASS_KV if rate >= _default_ratio(specs) else RingAlgo.PASS_Q
        elif self.selector is SelectorKind.SIMPLE:
            algo = select_algo_simple(self.heuristic, t, p)
        elif self.selector is SelectorKind.ALL2ALL_AWARE:
            algo = select_algo_with_all2all(self.heuristic, t, p)
        elif self.selector is SelectorKind.EMPIRICAL:
            algo = select_algo_empirical(t, p)
        else:  # pragma: no cover - enum is closed
            raise AssertionError(f"unknown selector {self.selector}")

        return PrefillPlan(
            algo=algo, selector=self.selector, new_tokens=t,
            cached_tokens=p, miss_rate=rate,
        )


def _default_ratio(specs: list[SequenceSpec]) -> float:
    """Fallback Equation (1) threshold when no hardware config is supplied.

    Uses the canonical Llama3 405B ratio ``2 * 8 / 128 = 0.125``; full
    prefill (``P = 0``, miss rate 1.0) always lands on pass-KV.
    """
    return 0.125
