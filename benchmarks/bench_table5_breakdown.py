"""Table 5: SendRecv / ATTN / All2All breakdown at 2.5% and 10% miss."""

from repro.experiments import table5_breakdown


def bench_table5_breakdown(benchmark, paper_table):
    result = benchmark(table5_breakdown.run)
    paper_table(benchmark, result)

    rows = {(round(r[0], 1), r[1]): r for r in result.rows}
    # at 2.5%: pass-KV SendRecv exposed (SendRecv > ATTN), and the exposed
    # total exceeds pass-Q's All2All -> pass-Q wins
    kv_low = rows[(2.5, "pass-kv")]
    q_low = rows[(2.5, "pass-q")]
    assert kv_low[2] > kv_low[3]  # SendRecv > ATTN
    assert kv_low[5] > q_low[4]  # exposed ring comm > All2All

    # at 10%: pass-KV SendRecv hides under ATTN
    kv_high = rows[(10.0, "pass-kv")]
    assert kv_high[2] < kv_high[3]
    assert kv_high[5] == 0.0

    # model values near the paper's trace measurements
    assert abs(kv_low[2] - 627.0) / 627.0 < 0.10
    assert abs(kv_high[3] - 1608.0) / 1608.0 < 0.10


if __name__ == "__main__":
    print(table5_breakdown.run().render())
