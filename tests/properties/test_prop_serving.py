"""Property-based tests: serving-simulator conservation and causality."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.config import llama3_405b_config
from repro.perf.hardware import gtt_host
from repro.serving.simulator import Arrival, ClusterServingSimulator

CFG = llama3_405b_config()
HOST = gtt_host()
SETTINGS = dict(max_examples=25, deadline=None)


@st.composite
def arrival_stream(draw):
    n = draw(st.integers(1, 8))
    arrivals = []
    t = 0.0
    for i in range(n):
        t += draw(st.floats(0.0, 30.0))
        arrivals.append(
            Arrival(
                request_id=i,
                time=t,
                context_tokens=draw(st.sampled_from([8192, 32768, 131072])),
                output_tokens=draw(st.integers(0, 6)),
            )
        )
    disagg = draw(st.booleans())
    ranks = draw(st.sampled_from([1, 2, 4]))
    return arrivals, ranks, disagg


class TestServingInvariants:
    @given(arrival_stream())
    @settings(**SETTINGS)
    def test_all_requests_complete_exactly_once(self, case):
        arrivals, ranks, disagg = case
        sim = ClusterServingSimulator(CFG, HOST, n_ranks=ranks, disaggregated=disagg)
        report = sim.simulate(arrivals)
        assert sorted(c.request_id for c in report.completions) == [
            a.request_id for a in arrivals
        ]

    @given(arrival_stream())
    @settings(**SETTINGS)
    def test_causality(self, case):
        """arrival <= prefill start <= first token <= finish, always."""
        arrivals, ranks, disagg = case
        sim = ClusterServingSimulator(CFG, HOST, n_ranks=ranks, disaggregated=disagg)
        report = sim.simulate(arrivals)
        for c in report.completions:
            assert c.arrival <= c.prefill_start + 1e-12
            assert c.prefill_start < c.first_token
            assert c.first_token <= c.finish + 1e-12

    @given(arrival_stream())
    @settings(**SETTINGS)
    def test_token_conservation(self, case):
        arrivals, ranks, disagg = case
        by_id = {a.request_id: a for a in arrivals}
        sim = ClusterServingSimulator(CFG, HOST, n_ranks=ranks, disaggregated=disagg)
        report = sim.simulate(arrivals)
        for c in report.completions:
            assert c.decoded == by_id[c.request_id].output_tokens

    @given(arrival_stream())
    @settings(**SETTINGS)
    def test_makespan_bounds_everything(self, case):
        arrivals, ranks, disagg = case
        sim = ClusterServingSimulator(CFG, HOST, n_ranks=ranks, disaggregated=disagg)
        report = sim.simulate(arrivals)
        assert report.makespan >= max(c.finish for c in report.completions) - 1e-9

    @given(arrival_stream())
    @settings(**SETTINGS)
    def test_prefill_pool_serializes(self, case):
        """No two prefills overlap on the prefill pool."""
        arrivals, ranks, disagg = case
        sim = ClusterServingSimulator(CFG, HOST, n_ranks=ranks, disaggregated=disagg)
        report = sim.simulate(arrivals)
        windows = sorted(
            (c.prefill_start, c.first_token) for c in report.completions
        )
        for (s1, e1), (s2, e2) in zip(windows, windows[1:]):
            # disaggregated TTFT includes the transfer tail, which overlaps
            # the next prefill; allow that slack
            slack = 0.0
            if disagg:
                slack = max(
                    sim._disagg.kv_transfer_time(131072) / CFG.n_layers, 0.0
                )
            assert s2 >= e1 - slack - 1e-9
