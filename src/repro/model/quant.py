"""Row-wise quantization stand-in for the paper's FP8 feed-forward weights.

The paper serves Llama3 405B with *row-wise quantized FP8* weights for the
feed-forward layers (§4.1, via FBGEMM), halving weight memory so the model
fits one TP8 host. With no GPU FP8 types available here, we implement the
same scheme on a symmetric 256-level grid (amax-scaled per output row),
which preserves the two properties the reproduction cares about:

- **memory accounting**: 1 byte/element + one scale per row, feeding the
  perf model's weight-read time for decode (memory-bandwidth bound), and
- **numerics shape**: quantize/dequantize round-trip error bounded by half
  a quantization step per element, verified by property tests.

Quantization is applied only to FFN weights by the model substrate,
mirroring the paper ("FP8 weights for feed forward layers after GQA").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Levels of the symmetric signed grid (int8-like; FP8 e4m3 also has 256 codes).
_QMAX = 127


def quantize_rowwise(w: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Quantize ``[rows, cols]`` weights to int8 codes with per-row scales.

    Args:
        w: weight matrix; rows are quantization groups.

    Returns:
        ``(codes, scales)`` with ``codes`` int8 ``[rows, cols]`` and
        ``scales`` float64 ``[rows]`` such that
        ``w ≈ codes * scales[:, None]``. All-zero rows get scale 0.
    """
    w = np.asarray(w, dtype=np.float64)
    if w.ndim != 2:
        raise ValueError(f"expected 2-D weights, got {w.shape}")
    amax = np.max(np.abs(w), axis=1)
    scales = amax / _QMAX
    safe = np.where(scales == 0.0, 1.0, scales)
    codes = np.clip(np.rint(w / safe[:, None]), -_QMAX, _QMAX).astype(np.int8)
    codes[scales == 0.0] = 0
    return codes, scales


def dequantize_rowwise(codes: np.ndarray, scales: np.ndarray) -> np.ndarray:
    """Inverse of :func:`quantize_rowwise`."""
    codes = np.asarray(codes)
    scales = np.asarray(scales, dtype=np.float64)
    if codes.ndim != 2 or scales.shape != (codes.shape[0],):
        raise ValueError(f"shapes: codes{codes.shape}, scales{scales.shape}")
    return codes.astype(np.float64) * scales[:, None]


@dataclass
class QuantizedLinear:
    """A linear layer stored row-wise quantized.

    ``apply`` dequantizes on the fly (as FBGEMM's FP8 GEMM effectively does
    in higher-precision accumulation) so activations stay float.
    """

    codes: np.ndarray
    scales: np.ndarray

    @classmethod
    def from_weights(cls, w: np.ndarray) -> "QuantizedLinear":
        codes, scales = quantize_rowwise(np.asarray(w).T)  # quantize per output row
        return cls(codes=codes, scales=scales)

    @property
    def weight(self) -> np.ndarray:
        """Dequantized ``[in, out]`` weight view."""
        return dequantize_rowwise(self.codes, self.scales).T

    @property
    def weight_bytes(self) -> int:
        """Stored bytes: 1 per code + 4 per row scale."""
        return int(self.codes.size) + 4 * int(self.scales.size)

    def apply(self, x: np.ndarray) -> np.ndarray:
        """``x @ W`` with the dequantized weight."""
        return np.asarray(x, dtype=np.float64) @ self.weight

    def max_abs_error(self, w: np.ndarray) -> float:
        """Max elementwise reconstruction error against original weights."""
        return float(np.max(np.abs(self.weight - np.asarray(w, dtype=np.float64))))
