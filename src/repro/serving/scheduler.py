"""Fused variable-length batch assembly.

The paper's prefill algorithms operate on *fused varseq* inputs: several
sequences of different lengths packed into one round (Figure 1, §3.5.1),
each load-balance sharded independently. Two round builders live here:

- :class:`Scheduler` builds whole-request rounds from a FIFO of
  :class:`repro.serving.request.PrefillRequest`, bounded by a token budget
  per round (a stand-in for activation-memory limits).
- :class:`ChunkedPrefillPolicy` builds *chunk*-granularity rounds for the
  continuous-batching runtime (:mod:`repro.runtime`): each pending prompt
  contributes at most ``chunk_tokens`` of its remaining input per round, so
  long prompts prefill as a series of budget-bounded partial prefills
  interleaved with decode rounds instead of monopolizing the engine. This
  is the paper's multi-turn partial-prefill machinery (§3.3, Figure 2 —
  new tokens attend over whatever KV earlier rounds committed) repurposed
  as chunked prefill in the Sarathi/vLLM sense; because each chunk is a
  partial prefill with a rising cache-hit rate, the §3.5.2 pass-KV/pass-Q
  heuristic re-fires per chunk. In the disaggregated deployment (§4.3)
  these rounds are what the prefill pool executes, and in the colocated
  one they bound how long any decode round can be starved.

Capacity admission is *not* decided here: the runtime checks each built
round's exact per-rank KV demand against the paged pools before executing
it, shrinking or evicting per its FCFS rules.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.serving.request import PrefillRequest


@dataclass
class FusedBatch:
    """One prefill round's worth of requests.

    Attributes:
        requests: the fused requests, admission order preserved.
    """

    requests: list[PrefillRequest] = field(default_factory=list)

    @property
    def total_new_tokens(self) -> int:
        return sum(r.prompt_tokens for r in self.requests)

    @property
    def seq_ids(self) -> list[int]:
        return [r.seq_id for r in self.requests]

    def prompts(self) -> dict[int, np.ndarray]:
        """Engine-ready ``{seq_id: token_ids}`` mapping."""
        return {r.seq_id: r.token_ids for r in self.requests}


class Scheduler:
    """FIFO batcher with a per-round token budget.

    Args:
        max_tokens_per_batch: cap on the fused round's new-token total. A
            single request larger than the cap still forms its own round
            (it cannot be split without changing semantics).
        max_seqs_per_batch: cap on the number of fused sequences.
    """

    def __init__(self, *, max_tokens_per_batch: int = 131072, max_seqs_per_batch: int = 16):
        if max_tokens_per_batch < 1 or max_seqs_per_batch < 1:
            raise ValueError("batch limits must be >= 1")
        self.max_tokens_per_batch = max_tokens_per_batch
        self.max_seqs_per_batch = max_seqs_per_batch
        self._queue: deque[PrefillRequest] = deque()

    def submit(self, request: PrefillRequest) -> None:
        """Enqueue a request. Duplicate pending seq_ids are rejected (a
        sequence can only appear once per round)."""
        if any(r.seq_id == request.seq_id for r in self._queue):
            raise ValueError(f"sequence {request.seq_id} already queued")
        self._queue.append(request)

    def pending(self) -> int:
        return len(self._queue)

    def next_batch(self) -> FusedBatch | None:
        """Pop the next fused round, or ``None`` when idle."""
        if not self._queue:
            return None
        batch = FusedBatch()
        budget = self.max_tokens_per_batch
        while self._queue and len(batch.requests) < self.max_seqs_per_batch:
            head = self._queue[0]
            if batch.requests and head.prompt_tokens > budget:
                break
            batch.requests.append(self._queue.popleft())
            budget -= head.prompt_tokens
            if budget <= 0:
                break
        return batch


@dataclass(frozen=True)
class ChunkAssignment:
    """One request's contribution to a chunked-prefill round.

    Attributes:
        seq_id: the sequence whose pending input the chunk comes from.
        tokens: how many tokens to take from the *front* of that pending
            input (the chunk is always a prefix: prefill order must match
            token order for the persistent-KV machinery to stay exact).
    """

    seq_id: int
    tokens: int

    def __post_init__(self) -> None:
        if self.tokens < 1:
            raise ValueError(f"chunk for seq {self.seq_id} must be >= 1 token")


class ChunkedPrefillPolicy:
    """Budget-bounded chunk packing for continuous batching.

    Each round takes up to ``chunk_tokens`` from each pending prompt's
    remaining input, packing chunks until the round's token budget or
    sequence cap is hit. A prompt longer than ``chunk_tokens`` therefore
    spreads across several rounds — each run as a partial prefill over
    the KV committed by its predecessors, so the planner's pass-KV/pass-Q
    heuristic fires per chunk as the effective cache-hit rate climbs.

    Two packing orders:

    - ``"fifo"`` (default): arrival order — every request makes steady
      progress, the tail never starves.
    - ``"srpf"``: shortest-remaining-prefill-first — rounds favour the
      requests closest to their first token, which trades head-of-line
      blocking (one long prompt ahead of many short ones) for mean TTFT.
      The sort is stable, so equal remainders keep arrival order, and
      capacity eviction stays FCFS-safe regardless of packing order (a
      victim must be younger than every beneficiary).

    Args:
        chunk_tokens: per-request chunk size cap (>= 1).
        max_tokens_per_round: fused round new-token budget; must be >=
            ``chunk_tokens`` so the FIFO head always makes progress.
        max_seqs_per_round: cap on fused sequences per round.
        order: ``"fifo"`` or ``"srpf"`` packing order.
    """

    def __init__(
        self,
        *,
        chunk_tokens: int = 8192,
        max_tokens_per_round: int = 131072,
        max_seqs_per_round: int = 16,
        order: str = "fifo",
    ):
        if chunk_tokens < 1:
            raise ValueError(f"chunk_tokens must be >= 1, got {chunk_tokens}")
        if max_tokens_per_round < chunk_tokens:
            raise ValueError(
                f"max_tokens_per_round ({max_tokens_per_round}) must be >= "
                f"chunk_tokens ({chunk_tokens})"
            )
        if max_seqs_per_round < 1:
            raise ValueError(f"max_seqs_per_round must be >= 1, got {max_seqs_per_round}")
        if order not in ("fifo", "srpf"):
            raise ValueError(f"order must be 'fifo' or 'srpf', got {order!r}")
        self.chunk_tokens = chunk_tokens
        self.max_tokens_per_round = max_tokens_per_round
        self.max_seqs_per_round = max_seqs_per_round
        self.order = order

    def build_round(self, pending: list[tuple[int, int]]) -> list[ChunkAssignment]:
        """Pack one round from ``[(seq_id, tokens_remaining), ...]``.

        ``pending`` arrives in FIFO order; ``order="srpf"`` stably
        reorders it by remaining tokens first. Returns possibly-empty
        chunk assignments in packing order. Entries with zero remaining
        tokens are skipped.
        """
        if self.order == "srpf":
            pending = sorted(pending, key=lambda entry: entry[1])
        round_: list[ChunkAssignment] = []
        budget = self.max_tokens_per_round
        for seq_id, remaining in pending:
            if budget <= 0 or len(round_) >= self.max_seqs_per_round:
                break
            if remaining <= 0:
                continue
            take = min(remaining, self.chunk_tokens, budget)
            round_.append(ChunkAssignment(seq_id=seq_id, tokens=take))
            budget -= take
        return round_
