"""Table 2 + Table 3: TP-vs-CP communication and memory cost per block."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.model.config import ModelConfig, llama3_405b_config
from repro.perf.flops import attention_flops, gemm_flops
from repro.perf.roofline import cp_block_comm_bytes, kv_bytes, q_bytes, tp_block_comm_bytes


def run(config: ModelConfig | None = None, *, tokens: int = 131072) -> ExperimentResult:
    """Regenerate Table 2's per-block comm comparison at a given T.

    Reports elements moved per transformer block (the paper's unit), the
    TP/CP ratio, and parameter-memory scaling — plus Table 3's FLOP and byte
    quantities for full vs partial prefill.
    """
    cfg = config if config is not None else llama3_405b_config()
    res = ExperimentResult(
        experiment_id="Table 2",
        title=f"TP vs CP per-block communication, T={tokens}",
        headers=["quantity", "TP", "CP (pass-KV)", "TP / CP"],
    )
    tp = tp_block_comm_bytes(cfg, tokens, element_bytes=1.0)  # elements
    cp = cp_block_comm_bytes(cfg, tokens, 0, element_bytes=1.0)
    res.add_row("comm elements / block", tp, cp, tp / cp)
    res.add_row(
        "parameter bytes / GPU",
        "W / N_TP",
        "W per CP rank (TP-sharded inside)",
        "-",
    )
    res.notes.append(
        "TP AllReduces the activation around both linear pairs (2 * T * NH * DH); "
        "CP moves only K and V (2 * T * NKV * DH) - a "
        f"{cfg.n_heads / cfg.n_kv_heads:.0f}x advantage before the linear-layer count is considered."
    )

    # Table 3 quantities for a partial-prefill example
    t, p = tokens // 10, tokens - tokens // 10
    res.notes.append(
        f"Table 3 at T={t}, P={p}: FLOPS={attention_flops(cfg, t, p) / cfg.n_layers:.3e}/layer, "
        f"Q bytes={q_bytes(cfg, t):.3e}, KV bytes={kv_bytes(cfg, t, p):.3e} "
        f"(GEMM total {gemm_flops(cfg, t):.3e} FLOPs)."
    )
    res.paper_values["tp_over_cp_ratio"] = 16.0
    return res
