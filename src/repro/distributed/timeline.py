"""Chrome-trace export of traced communication events.

The paper debugs its deployment by "inspecting the GPU trace" (§4.2.1);
this module gives the simulated runtime the same affordance: dump a
:class:`repro.distributed.tracer.CommTracer` to the Chrome ``chrome://tracing``
/ Perfetto JSON format, one lane per event kind, events laid out serially
per lane on the simulated clock.
"""

from __future__ import annotations

import json

from repro.distributed.tracer import CommTracer

#: Stable lane ordering for readability.
_LANES = ["sendrecv", "all2all", "allgather", "allreduce", "attn"]


def to_chrome_trace(tracer: CommTracer, *, process_name: str = "cp-sim") -> dict:
    """Build a Chrome-trace dict from traced events.

    Events of each kind occupy one thread lane; begin times are the running
    sum of that lane's durations (the lockstep simulator does not record
    absolute begin timestamps, so lanes show relative occupancy).
    """
    trace_events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "args": {"name": process_name},
        }
    ]
    lanes = {kind: i for i, kind in enumerate(_LANES)}
    cursors: dict[str, float] = {}
    for event in tracer:
        tid = lanes.setdefault(event.kind, len(lanes))
        begin_us = cursors.get(event.kind, 0.0)
        dur_us = event.duration * 1e6
        trace_events.append(
            {
                "name": event.tag or event.kind,
                "cat": event.kind,
                "ph": "X",
                "pid": 0,
                "tid": tid,
                "ts": begin_us,
                "dur": dur_us,
                "args": {"bytes": event.bytes, "step": event.step},
            }
        )
        cursors[event.kind] = begin_us + dur_us
    for kind, tid in lanes.items():
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": kind},
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def save_chrome_trace(tracer: CommTracer, path: str, **kwargs) -> None:
    """Write the trace JSON to ``path`` (open in chrome://tracing)."""
    with open(path, "w") as fh:
        json.dump(to_chrome_trace(tracer, **kwargs), fh)
