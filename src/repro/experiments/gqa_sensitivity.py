"""GQA-ratio sensitivity: how the pass-KV advantage depends on NKV/NH.

The pass-KV design leans on GQA's asymmetry (§3.2): KV messages shrink by
``NH / (2 * NKV)`` relative to Q. This extension sweeps the model family —
405B (128/8), 70B (64/8), 8B (32/8), and an MHA variant — and reports:

- Equation (1)'s miss-rate threshold (when KV messages are smaller),
- Equation (2)'s overlap threshold for pass-KV,
- the Table 2 TP/CP per-block traffic ratio,

showing that CP's communication advantage would largely vanish for an MHA
model — a design-space observation the paper implies but never tabulates.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.base import ExperimentResult
from repro.model.config import (
    ModelConfig,
    llama3_405b_config,
    llama3_70b_config,
    llama3_8b_config,
)
from repro.perf.hardware import HostSpec, gtt_host
from repro.perf.latency import LatencySimulator
from repro.perf.roofline import cp_block_comm_bytes, tp_block_comm_bytes


def mha_405b_config() -> ModelConfig:
    """Counterfactual: the 405B architecture with MHA (NKV == NH)."""
    return replace(llama3_405b_config(), name="llama3-405b-mha", n_kv_heads=128)


def run(host: HostSpec | None = None, *, n_ranks: int = 4, tokens: int = 131072) -> ExperimentResult:
    host = host if host is not None else gtt_host()
    res = ExperimentResult(
        experiment_id="GQA sensitivity",
        title=f"pass-KV economics vs NKV/NH at T={tokens}, CP{n_ranks}",
        headers=[
            "model", "NH", "NKV",
            "Eq.1 miss threshold", "Eq.2 T threshold",
            "TP/CP traffic ratio",
        ],
    )
    for cfg in (llama3_405b_config(), llama3_70b_config(), llama3_8b_config(), mha_405b_config()):
        sim = LatencySimulator(cfg, host)
        hc = sim.heuristic_config(n_ranks)
        ratio = tp_block_comm_bytes(cfg, tokens) / cp_block_comm_bytes(cfg, tokens, 0)
        res.add_row(
            cfg.name,
            cfg.n_heads,
            cfg.n_kv_heads,
            hc.kv_message_ratio,
            hc.passkv_overlap_threshold,
            ratio,
        )
    res.notes.append(
        "For MHA (NKV == NH) the Eq.1 threshold reaches 2.0 - KV messages "
        "are never smaller than Q - and the TP/CP traffic ratio collapses "
        "to 1x: CP's comm advantage is a GQA dividend."
    )
    return res
