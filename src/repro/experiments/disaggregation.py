"""Extension experiment: colocated vs disaggregated CP serving (§4.3).

Quantifies the paper's closing recommendation: with prefill on CP4 and
decode on a dedicated TP8 host, long responses avoid the CP decode
regression entirely at the cost of one (layer-overlapped) KV stream.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.model.config import llama3_405b_config
from repro.perf.hardware import HostSpec, gtt_host
from repro.serving.disaggregated import DisaggregatedSimulator


def run(host: HostSpec | None = None, *, n_ranks: int = 4) -> ExperimentResult:
    host = host if host is not None else gtt_host()
    sim = DisaggregatedSimulator(llama3_405b_config(), host)

    res = ExperimentResult(
        experiment_id="Disaggregation",
        title=f"Colocated CP{n_ranks} vs CP{n_ranks}-prefill + TP8-decode, 128K context",
        headers=[
            "output tokens",
            "colocated total (s)", "disaggregated total (s)",
            "colocated TTIT (ms)", "disaggregated TTIT (ms)",
            "winner",
        ],
    )
    context = 131072
    for out_tokens in (16, 64, 256, 1024, 4096):
        colo = sim.colocated(context, out_tokens, n_ranks=n_ranks)
        disagg = sim.disaggregated(context, out_tokens, prefill_ranks=n_ranks)
        res.add_row(
            out_tokens,
            colo.total,
            disagg.total,
            colo.ttit * 1e3,
            disagg.ttit * 1e3,
            "disaggregated" if disagg.total < colo.total else "colocated",
        )
    breakeven = sim.break_even_output_tokens(context, n_ranks=n_ranks)
    res.notes.append(
        f"Break-even at ~{breakeven} output tokens: beyond that, paying one "
        "layer-overlapped KV stream beats the per-token CP decode regression "
        f"({sim.colocated(context, 0, n_ranks=n_ranks).ttit * 1e3:.1f} ms vs "
        f"{sim.disaggregated(context, 0, prefill_ranks=n_ranks).ttit * 1e3:.1f} ms TTIT)."
    )
    res.notes.append(
        "Matches the paper's §4.3 guidance: CP for prefill, decoupled "
        "decode parallelization (Mooncake / DistServe architectures)."
    )
    return res
