"""Benchmark harness configuration.

Run with::

    pytest benchmarks/ --benchmark-only

Each ``bench_*`` file regenerates one paper table/figure via
:mod:`repro.experiments` and times the regeneration with pytest-benchmark.
The regenerated rows are printed (use ``-s`` to see them inline; they are
also echoed into the benchmark's ``extra_info``).
"""

from __future__ import annotations

import pytest


def emit(benchmark, result) -> None:
    """Attach a rendered experiment table to the benchmark record and print it."""
    text = result.render()
    print("\n" + text + "\n")
    benchmark.extra_info["experiment"] = result.experiment_id
    benchmark.extra_info["rows"] = len(result.rows)


@pytest.fixture
def paper_table():
    """Helper printing + annotating experiment results."""
    return emit
