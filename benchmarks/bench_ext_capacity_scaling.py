"""Extension: KV capacity scaling with CP ranks (paper §1, §3.6, §4.2.3)."""

from repro.experiments import capacity_scaling


def bench_capacity_scaling(benchmark, paper_table):
    result = benchmark(capacity_scaling.run)
    paper_table(benchmark, result)
    bf16 = result.column("max context (bf16 KV)")
    int8 = result.column("max context (int8 KV)")
    ranks = result.column("ranks")
    # capacity scales linearly with ranks
    for n, cap in zip(ranks, bf16):
        assert cap == n * bf16[0]
    # int8 KV doubles capacity at every scale
    for a, b in zip(bf16, int8):
        assert b == 2 * a
    # 1M context reachable within the paper's 8-16 node range
    assert bf16[3] > 1_048_576  # 8 ranks


def bench_decode_oom_round_robin(benchmark):
    pinned, rr = benchmark(capacity_scaling.decode_oom_comparison)
    # pinned decode OOMs at one rank's capacity; round-robin reaches ~N x
    assert rr >= 4 * pinned


if __name__ == "__main__":
    print(capacity_scaling.run().render())
