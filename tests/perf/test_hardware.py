"""Tests for hardware specs and calibration bookkeeping."""

import pytest

from repro.perf.hardware import CALIBRATION_ANCHORS, GPUSpec, HostSpec, gti_host, gtt_host


class TestHostSpecs:
    def test_gtt_aggregates(self):
        host = gtt_host()
        assert host.attn_flops == pytest.approx(8 * 540e12)
        assert host.gemm_flops == pytest.approx(8 * 560e12)
        assert host.hbm_bandwidth == pytest.approx(8 * 2.4e12)

    def test_gti_network_personality(self):
        gti = gti_host()
        gtt = gtt_host()
        # same compute, slower network
        assert gti.attn_flops == gtt.attn_flops
        assert gti.ring_bandwidth < gtt.ring_bandwidth / 5
        assert gti.message_latency > gtt.message_latency

    def test_gti_paper_achieved_bandwidth(self):
        """3 GB/s per GPU rank x 8 = 24 GB/s per host (§4.2.1)."""
        assert gti_host().ring_bandwidth == pytest.approx(24e9)

    def test_with_ring_bandwidth(self):
        host = gtt_host().with_ring_bandwidth(1e9)
        assert host.ring_bandwidth == 1e9
        assert host.all2all_bandwidth == 1e9

    def test_h100_power_limited_peak(self):
        """Appendix A: 800 TF/s BF16 peak for the 500 W HBM2e part."""
        assert gtt_host().gpu.peak_flops == pytest.approx(800e12)
        assert gtt_host().gpu.hbm_bandwidth == pytest.approx(2.4e12)


class TestCalibrationAnchors:
    def test_anchor_table_nonempty(self):
        assert len(CALIBRATION_ANCHORS) >= 15

    def test_anchor_provenance(self):
        """Every anchor names a table/figure/section of the paper."""
        for desc, value, where in CALIBRATION_ANCHORS:
            assert value > 0
            assert any(w in where for w in ("Table", "Figure", "Section"))
