"""Transformer model configurations (paper Table 9).

:class:`ModelConfig` carries both the architectural hyperparameters used by
the NumPy model and the derived quantities the analytic performance model
needs (parameter count, per-token KV bytes, GQA message-size ratios).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ModelConfig:
    """Llama-family GQA transformer configuration.

    Attributes:
        name: preset name.
        n_layers: transformer blocks.
        model_dim: hidden size ``D``.
        ffn_dim: SwiGLU intermediate size.
        n_heads: query heads ``NH``.
        n_kv_heads: key/value heads ``NKV``.
        vocab_size: vocabulary size.
        rope_theta: RoPE base.
        max_context: maximum supported context window.
    """

    name: str
    n_layers: int
    model_dim: int
    ffn_dim: int
    n_heads: int
    n_kv_heads: int
    vocab_size: int = 128256
    rope_theta: float = 500000.0
    max_context: int = 131072

    def __post_init__(self) -> None:
        if self.model_dim % self.n_heads != 0:
            raise ValueError(
                f"model_dim {self.model_dim} not divisible by n_heads {self.n_heads}"
            )
        if self.n_heads % self.n_kv_heads != 0:
            raise ValueError(
                f"n_heads {self.n_heads} not divisible by n_kv_heads {self.n_kv_heads}"
            )
        if self.head_dim % 2 != 0:
            raise ValueError(f"head_dim must be even for RoPE, got {self.head_dim}")

    @property
    def head_dim(self) -> int:
        """Per-head dimension ``DH = D / NH``."""
        return self.model_dim // self.n_heads

    @property
    def kv_dim(self) -> int:
        """Per-token K (or V) width: ``NKV * DH``."""
        return self.n_kv_heads * self.head_dim

    @property
    def gqa_group_size(self) -> int:
        """Query heads per KV head."""
        return self.n_heads // self.n_kv_heads

    @property
    def kv_message_ratio(self) -> float:
        """``2 * NKV / NH`` — Equation (1)'s constant threshold."""
        return 2.0 * self.n_kv_heads / self.n_heads

    # -------------------------- parameter counts ------------------------ #

    @property
    def attn_params_per_layer(self) -> int:
        """Q/K/V/O projection parameters of one block."""
        d, dh = self.model_dim, self.head_dim
        return d * self.n_heads * dh + 2 * d * self.n_kv_heads * dh + self.n_heads * dh * d

    @property
    def ffn_params_per_layer(self) -> int:
        """SwiGLU gate/up/down projection parameters of one block."""
        return 3 * self.model_dim * self.ffn_dim

    @property
    def param_count(self) -> int:
        """Total parameters ``W`` (blocks + embeddings + unembedding)."""
        per_layer = self.attn_params_per_layer + self.ffn_params_per_layer
        embeddings = 2 * self.vocab_size * self.model_dim
        return self.n_layers * per_layer + embeddings

    def kv_bytes_per_token(self, element_bytes: float = 2.0) -> float:
        """KV-cache bytes one token adds across all layers."""
        return 2.0 * self.kv_dim * self.n_layers * element_bytes


def llama3_405b_config() -> ModelConfig:
    """Llama3 405B (paper Table 9): 126 layers, D=16384, 128 Q / 8 KV heads."""
    return ModelConfig(
        name="llama3-405b",
        n_layers=126,
        model_dim=16384,
        ffn_dim=53248,
        n_heads=128,
        n_kv_heads=8,
        max_context=1_048_576,  # CP extends capacity to 1M (paper §4.2.3)
    )


def llama3_70b_config() -> ModelConfig:
    """Llama3 70B: used for scale-sensitivity sweeps."""
    return ModelConfig(
        name="llama3-70b",
        n_layers=80,
        model_dim=8192,
        ffn_dim=28672,
        n_heads=64,
        n_kv_heads=8,
    )


def llama3_8b_config() -> ModelConfig:
    """Llama3 8B: small preset for cost-model comparisons."""
    return ModelConfig(
        name="llama3-8b",
        n_layers=32,
        model_dim=4096,
        ffn_dim=14336,
        n_heads=32,
        n_kv_heads=8,
    )


def tiny_config(
    *,
    n_layers: int = 2,
    model_dim: int = 64,
    n_heads: int = 8,
    n_kv_heads: int = 2,
    ffn_dim: int = 128,
    vocab_size: int = 101,
) -> ModelConfig:
    """Miniature config for numeric tests (same architecture family)."""
    return ModelConfig(
        name="tiny",
        n_layers=n_layers,
        model_dim=model_dim,
        ffn_dim=ffn_dim,
        n_heads=n_heads,
        n_kv_heads=n_kv_heads,
        vocab_size=vocab_size,
        max_context=4096,
    )
