"""Shadow-state sanitizer for the paged-KV lifecycle.

The end-of-run checks (:meth:`PagedAllocator.audit`,
:meth:`ContextParallelEngine.kv_leak_report`) prove a drained run left no
inconsistency behind, but by the time they fire the faulty operation is
long gone.  This module applies the AddressSanitizer discipline to KV
blocks instead of bytes: an **independent shadow model** of every block —
owner streams, refcount, freed bit, copy-on-write lineage — is replayed
alongside the real :class:`~repro.kvcache.paged.PagedAllocator`, one
operation at a time, and any divergence raises a structured
:class:`SanitizerError` *at the offending operation*, with the recent op
trace attached.

Detected error classes (each pinned by a unit test that corrupts state
and triggers it):

- ``double_free`` — an operation frees (or finds) a block that is already
  on the free list, or the free list holds duplicates / overlaps owned
  blocks.
- ``use_after_free`` — an append writes into a stream's last block after
  that block was returned to the free list.
- ``refcount_underflow`` — a release drives a block's refcount negative.
- ``write_shared_no_cow`` — an append fills a block the shadow knows is
  shared (refcount > 1) without the copy-on-write split that must claim
  a private block first.
- ``leak`` — at a drain point, blocks remain owned by streams whose
  sequence is no longer resident (or resident KV survives an evict).
- ``corruption`` — the allocator's books silently diverged from the
  shadow in a way no legal operation explains (including an OOM rollback
  that failed to restore the pre-op state exactly).

Attach with :func:`attach_sanitizer` (engine-level, covers every rank's
allocator plus the engine lifecycle ops) or
:class:`AllocatorSanitizer` (single allocator).  The serving runtime
exposes ``ContinuousBatchingRuntime(sanitize=True)`` and the CLI
``serve --sanitize``; the property suites arm it for every allocator via
an autouse fixture.
"""

from __future__ import annotations

import functools
from collections import Counter, deque
from typing import TYPE_CHECKING, Iterable

from repro.kvcache.paged import OutOfBlocksError, PagedAllocator

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import ContextParallelEngine

TRACE_DEPTH = 64


class SanitizerError(RuntimeError):
    """A KV lifecycle violation, caught at the offending operation.

    Attributes:
        kind: one of ``double_free``, ``use_after_free``,
            ``refcount_underflow``, ``write_shared_no_cow``, ``leak``,
            ``corruption``.
        op: the operation (rendered) that tripped the check.
        trace: the most recent operations, oldest first, ending with
            ``op`` — the context audit() can never give.
    """

    def __init__(self, kind: str, op: str, detail: str, trace: Iterable[str]):
        self.kind = kind
        self.op = op
        self.detail = detail
        self.trace = tuple(trace)
        lines = [f"[{kind}] at {op}: {detail}"]
        if self.trace:
            lines.append("op trace (oldest first):")
            lines.extend(f"  {i}: {t}" for i, t in enumerate(self.trace))
        super().__init__("\n".join(lines))


class OpTrace:
    """Bounded ring of rendered operations, shared across wrapped objects."""

    def __init__(self, depth: int = TRACE_DEPTH):
        self._ops: deque[str] = deque(maxlen=depth)

    def record(self, op: str) -> None:
        self._ops.append(op)

    def snapshot(self) -> tuple[str, ...]:
        return tuple(self._ops)


class AllocatorSanitizer:
    """Per-op shadow validation of one :class:`PagedAllocator`.

    The shadow replays each operation's *semantics* independently
    (claims pop from the free-list tail, COW splits claim before
    unreferencing, releases free at refcount zero) and compares books
    with the real allocator before and after every op.  Only the free
    list's *ordering* is absorbed from the allocator (an OOM rollback
    legally permutes it); everything else must match the shadow exactly.
    """

    def __init__(self, alloc: PagedAllocator, *, trace: OpTrace | None = None,
                 label: str = ""):
        existing = getattr(alloc, "_sanitizer", None)
        if existing is not None:
            raise ValueError("allocator already has a sanitizer attached")
        self.alloc = alloc
        self.label = label
        self.trace = trace if trace is not None else OpTrace()
        # the shadow model: owner lists, fill, free list, refcounts, lineage
        self.owners: dict[tuple, list[int]] = {
            k: list(v) for k, v in alloc._owners.items()
        }
        self.fill: dict[tuple, int] = dict(alloc._fill)
        self.free: list[int] = list(alloc._free)
        self.ref: dict[int, int] = dict(alloc._ref)
        #: COW lineage: private block -> the shared block it replaced
        self.lineage: dict[int, int] = {}
        # reentrancy guard: allocator ops compose (release_tail calls
        # release when the trim drains the stream); only the outermost
        # call is checked and simulated — its shadow semantics already
        # model the composite
        self._busy = False
        self._wrap()
        alloc._sanitizer = self  # type: ignore[attr-defined]

    # ---- wrapping ------------------------------------------------------

    def _wrap(self) -> None:
        for name in ("append", "share", "release", "release_tail"):
            orig = getattr(self.alloc, name)
            wrapper = getattr(self, f"_checked_{name}")

            @functools.wraps(orig)
            def call(*args, _orig=orig, _wrapper=wrapper, **kwargs):
                if self._busy:
                    return _orig(*args, **kwargs)
                self._busy = True
                try:
                    return _wrapper(_orig, *args, **kwargs)
                finally:
                    self._busy = False

            setattr(self.alloc, name, call)

    def _op(self, text: str) -> str:
        return f"{self.label}{self.label and ':' or ''}{text}"

    def _fail(self, kind: str, op: str, detail: str) -> None:
        self.trace.record(f"{op}  <- {kind}")
        raise SanitizerError(kind, op, detail, self.trace.snapshot())

    # ---- shadow queries ------------------------------------------------

    def _owner_streams(self, block: int) -> list[tuple]:
        return sorted(k for k, blocks in self.owners.items() if block in blocks)

    def _write_target(self, key: tuple, n_tokens: int) -> int | None:
        """The existing block an ``append`` would write into, if any."""
        blocks = self.owners.get(key)
        if not blocks or n_tokens <= 0:
            return None
        fill_in_last = self.fill[key] - (len(blocks) - 1) * self.alloc.block_size
        return blocks[-1] if fill_in_last < self.alloc.block_size else None

    # ---- structural comparison -----------------------------------------

    def _structural_check(self, op: str, *, free_exact: bool = True) -> None:
        """Compare the allocator's books against the shadow.

        Free-list duplicates and free/owned overlaps are classed as
        ``double_free`` (a block reachable two ways); any other
        divergence is ``corruption``.  Refcounts are deliberately *not*
        compared here — refcount-specific classes (underflow, missing
        COW) have their own sharper checks.
        """
        a = self.alloc
        free_counts = Counter(a._free)
        dupes = sorted(b for b, n in free_counts.items() if n > 1)
        if dupes:
            self._fail("double_free", op,
                       f"free list holds block(s) {dupes} more than once")
        owned = {b for blocks in a._owners.values() for b in blocks}
        overlap = sorted(owned & set(a._free))
        if overlap:
            streams = {b: self._owner_streams(b) for b in overlap}
            self._fail("double_free", op,
                       f"block(s) on the free list while still owned: "
                       f"{streams}")
        if {k: list(v) for k, v in a._owners.items()} != self.owners:
            self._fail("corruption", op,
                       f"owner lists diverged from shadow: "
                       f"allocator={dict(a._owners)} shadow={self.owners}")
        if dict(a._fill) != self.fill:
            self._fail("corruption", op,
                       f"fill counts diverged from shadow: "
                       f"allocator={dict(a._fill)} shadow={self.fill}")
        if free_exact and list(a._free) != self.free:
            self._fail("corruption", op,
                       f"free list diverged from shadow: "
                       f"allocator={a._free} shadow={self.free}")
        if not free_exact and free_counts != Counter(self.free):
            self._fail("corruption", op,
                       f"free blocks diverged from shadow: "
                       f"allocator={sorted(a._free)} shadow={sorted(self.free)}")

    def _post_checks(self, op: str) -> None:
        a = self.alloc
        negative = sorted(b for b, n in a._ref.items() if n < 0)
        if negative:
            self._fail("refcount_underflow", op,
                       f"block(s) {negative} driven to negative refcount "
                       f"({ {b: a._ref[b] for b in negative} })")
        self._structural_check(op, free_exact=False)
        if dict(a._ref) != self.ref:
            self._fail("corruption", op,
                       f"refcounts diverged from shadow: "
                       f"allocator={dict(a._ref)} shadow={self.ref}")
        # absorb the allocator's free-list ordering (rollbacks permute it)
        self.free = list(a._free)

    # ---- shadow semantics ----------------------------------------------

    def _sim_claim(self) -> int:
        b = self.free.pop()
        self.ref[b] = 1
        return b

    def _sim_unref(self, blocks: list[int]) -> None:
        for b in blocks:
            self.ref[b] -= 1
            if self.ref[b] == 0:
                del self.ref[b]
                self.lineage.pop(b, None)
                self.free.append(b)

    def _sim_append(self, key: tuple, n_tokens: int) -> None:
        if n_tokens == 0 and key not in self.owners:
            return
        blocks = self.owners.setdefault(key, [])
        fill = self.fill.setdefault(key, 0)
        bs = self.alloc.block_size
        if n_tokens > 0 and blocks:
            fill_in_last = fill - (len(blocks) - 1) * bs
            if fill_in_last < bs and self.ref[blocks[-1]] > 1:
                old = blocks[-1]
                b = self._sim_claim()
                self.ref[old] -= 1
                blocks[-1] = b
                self.lineage[b] = old
        need = fill + n_tokens - len(blocks) * bs
        while need > 0:
            blocks.append(self._sim_claim())
            need -= bs
        self.fill[key] = fill + n_tokens

    def _sim_share(self, src: tuple, dst: tuple, n_tokens: int) -> None:
        shared = self.owners[src][: -(-n_tokens // self.alloc.block_size)]
        self.owners[dst] = list(shared)
        self.fill[dst] = n_tokens
        for b in shared:
            self.ref[b] += 1

    def _sim_release(self, key: tuple) -> None:
        blocks = self.owners.pop(key, [])
        self.fill.pop(key, None)
        self._sim_unref(blocks)

    def _sim_release_tail(self, key: tuple, n_tokens: int) -> None:
        fill = self.fill.get(key, 0)
        if n_tokens == 0:
            return
        new_fill = fill - n_tokens
        if new_fill == 0:
            self._sim_release(key)
            return
        blocks = self.owners[key]
        keep = -(-new_fill // self.alloc.block_size)
        dropped = blocks[keep:]
        del blocks[keep:]
        self.fill[key] = new_fill
        self._sim_unref(dropped)

    # ---- checked operations --------------------------------------------

    def _run(self, orig, op: str, *args, specific=None):
        """Shared harness: specific pre-checks, structural pre-check, the
        real op (verifying rollback exactness when it raises)."""
        if specific is not None:
            specific(op)
        self._structural_check(op)
        try:
            result = orig(*args)
        except (OutOfBlocksError, ValueError):
            # the allocator promises exact rollback (free-list order may
            # legally permute); anything else is corruption
            self._structural_check(f"{op} [rolled back]", free_exact=False)
            self.free = list(self.alloc._free)
            self.trace.record(f"{op}  <- raised, rolled back")
            raise
        return result

    def _checked_append(self, orig, key: tuple, n_tokens: int):
        op = self._op(f"append(key={key}, n_tokens={n_tokens})")
        target = self._write_target(key, n_tokens)

        def specific(op: str) -> None:
            if target is None:
                return
            if target in self.alloc._free or target not in self.ref:
                self._fail(
                    "use_after_free", op,
                    f"append writes into block {target} (last block of "
                    f"stream {key}) which is on the free list",
                )

        expect_cow = target is not None and self.ref.get(target, 0) > 1
        result = self._run(orig, op, key, n_tokens, specific=specific)
        if expect_cow:
            actual = self.alloc._owners.get(key, [])
            idx = len(self.owners[key]) - 1
            if idx < len(actual) and actual[idx] == target:
                self._fail(
                    "write_shared_no_cow", op,
                    f"block {target} is shared by streams "
                    f"{self._owner_streams(target)} (shadow refcount "
                    f"{self.ref[target]}) but the append filled it in "
                    f"place instead of copy-on-write splitting",
                )
        self._sim_append(key, n_tokens)
        self._post_checks(op)
        self.trace.record(op)
        return result

    def _checked_share(self, orig, src_key: tuple, dst_key: tuple, n_tokens: int):
        op = self._op(f"share(src={src_key}, dst={dst_key}, n_tokens={n_tokens})")
        result = self._run(orig, op, src_key, dst_key, n_tokens)
        self._sim_share(src_key, dst_key, n_tokens)
        self._post_checks(op)
        self.trace.record(op)
        return result

    def _release_specific(self, key: tuple):
        def specific(op: str) -> None:
            free_set = set(self.alloc._free)
            for b in self.owners.get(key, []):
                if b in free_set:
                    self._fail(
                        "double_free", op,
                        f"stream {key} still owns block {b} but it is "
                        f"already on the free list",
                    )
        return specific

    def _checked_release(self, orig, key: tuple):
        op = self._op(f"release(key={key})")
        result = self._run(orig, op, key, specific=self._release_specific(key))
        self._sim_release(key)
        self._post_checks(op)
        self.trace.record(op)
        return result

    def _checked_release_tail(self, orig, key: tuple, n_tokens: int):
        op = self._op(f"release_tail(key={key}, n_tokens={n_tokens})")
        result = self._run(
            orig, op, key, n_tokens, specific=self._release_specific(key)
        )
        self._sim_release_tail(key, n_tokens)
        self._post_checks(op)
        self.trace.record(op)
        return result

    # ---- drain / leak checks -------------------------------------------

    def verify(self) -> None:
        """On-demand structural check (no operation in flight)."""
        self._post_checks(self._op("verify()"))

    def check_leaks(self, resident_seq_ids: set[int]) -> None:
        """Every owned stream must belong to a resident sequence.

        Stream keys are ``(seq_id,)`` tuples (the cache charges the
        allocator once per sequence at layer 0).
        """
        op = self._op(f"check_leaks(resident={sorted(resident_seq_ids)})")
        leaked = sorted(
            k for k in self.owners if k and k[0] not in resident_seq_ids
        )
        if leaked:
            blocks = {k: list(self.owners[k]) for k in leaked}
            self._fail(
                "leak", op,
                f"stream(s) {leaked} still hold blocks {blocks} after their "
                f"sequences left the engine",
            )
        if not resident_seq_ids and self.alloc.used_blocks:
            self._fail(
                "leak", op,
                f"{self.alloc.used_blocks} blocks still claimed with no "
                f"resident sequences",
            )


class KVSanitizer:
    """Engine-level sanitizer: every rank's allocator plus lifecycle ops.

    Wraps ``evict`` / ``evict_tail`` / ``adopt_prefix`` / ``export_kv`` /
    ``import_kv`` on the engine instance so the shared op trace shows
    lifecycle context next to allocator ops, and enforces eviction
    postconditions the allocator alone cannot see (an evict must leave
    zero resident tokens on every rank).  ``check_drained()`` is the
    drain-point leak check the runtime calls after a completed run.
    """

    def __init__(self, engine: "ContextParallelEngine", *, label: str = ""):
        self.engine = engine
        self.label = label
        self.trace = OpTrace()
        self.rank_sanitizers: list[AllocatorSanitizer] = []
        for rank, cache in enumerate(engine.caches):
            alloc = cache._allocator
            if alloc is None:
                continue
            existing = getattr(alloc, "_sanitizer", None)
            if existing is not None:
                self.rank_sanitizers.append(existing)
            else:
                self.rank_sanitizers.append(
                    AllocatorSanitizer(alloc, trace=self.trace,
                                       label=f"{label}rank{rank}")
                )
        self._wrap_engine()
        engine._kv_sanitizer = self  # type: ignore[attr-defined]

    def _wrap_engine(self) -> None:
        for name in ("evict", "evict_tail", "adopt_prefix", "export_kv",
                     "import_kv"):
            orig = getattr(self.engine, name)

            @functools.wraps(orig)
            def call(*args, _orig=orig, _name=name, **kwargs):
                rendered = ", ".join(
                    [repr(a) for a in args]
                    + [f"{k}={v!r}" for k, v in kwargs.items()]
                )
                op = f"{self.label}engine.{_name}({rendered})"
                result = _orig(*args, **kwargs)
                self.trace.record(op)
                if _name in ("evict", "evict_tail"):
                    self._check_evicted(op, _name, args)
                return result

            setattr(self.engine, name, call)

    def _check_evicted(self, op: str, name: str, args: tuple) -> None:
        seq_id = args[0]
        expected = self.engine.seq_lengths.get(seq_id, 0)
        if name == "evict" and seq_id in self.engine.seq_lengths:
            raise SanitizerError(
                "leak", op,
                f"seq {seq_id} still tracked in seq_lengths after evict",
                self.trace.snapshot(),
            )
        resident = sum(cache.tokens(seq_id) for cache in self.engine.caches)
        if resident != expected:
            raise SanitizerError(
                "leak", op,
                f"ranks hold {resident} tokens for seq {seq_id} but "
                f"{expected} should remain",
                self.trace.snapshot(),
            )

    def verify(self) -> None:
        for s in self.rank_sanitizers:
            s.verify()

    def check_drained(self) -> None:
        """Drain-point check: all KV belongs to still-resident sequences.

        Prefix-cache retention keeps finished conversations resident
        *and* tracked in ``seq_lengths``, so residency — not completion —
        is the leak criterion, matching ``kv_leak_report()``.
        """
        resident = set(self.engine.seq_lengths)
        for s in self.rank_sanitizers:
            s.verify()
            s.check_leaks(resident)
        for rank, cache in enumerate(self.engine.caches):
            orphans = sorted(set(cache.sequence_ids()) - resident)
            if orphans:
                raise SanitizerError(
                    "leak",
                    f"{self.label}check_drained()",
                    f"rank {rank} holds KV for untracked seq(s) {orphans}",
                    self.trace.snapshot(),
                )


def attach_sanitizer(engine: "ContextParallelEngine") -> KVSanitizer:
    """Attach (or return the existing) engine-level sanitizer."""
    existing = getattr(engine, "_kv_sanitizer", None)
    if existing is not None:
        return existing
    return KVSanitizer(engine)
