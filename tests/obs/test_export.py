"""Unit tests for the JSONL and Chrome trace exporters."""

import json

from repro.obs import (
    TraceEvent,
    dumps_jsonl,
    load_jsonl,
    to_chrome,
    validate_chrome,
    write_chrome,
    write_jsonl,
)


def ev(name, phase="instant", t=1.0, **kw):
    return TraceEvent(name=name, phase=phase, t=t, **kw)


class TestJsonl:
    def test_round_trip_through_file(self, tmp_path):
        events = [
            ev("admit", request_id=0, seq_id=0, attrs={"arrival": 0.5}),
            ev("prefill_round", phase="span", t=1.0, dur=2.0, pool="prefill"),
        ]
        path = str(tmp_path / "trace.jsonl")
        write_jsonl(events, path)
        assert load_jsonl(path) == events

    def test_serialization_is_byte_deterministic(self):
        events = [ev("finish", request_id=1, attrs={"ttft": 1.5, "tokens": 4})]
        assert dumps_jsonl(events) == dumps_jsonl(list(events))
        # keys sorted within each line
        line = dumps_jsonl(events).splitlines()[0]
        keys = list(json.loads(line))
        assert keys == sorted(keys)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"name": "admit", "phase": "instant", "t": 1.0}\n\n')
        assert len(load_jsonl(str(path))) == 1


class TestChromeTracks:
    def test_pool_rounds_on_pool_rails(self):
        obj = to_chrome([ev("prefill_round", phase="span", dur=1.0, pool="prefill")])
        [x] = [e for e in obj["traceEvents"] if e["ph"] == "X"]
        assert (x["pid"], x["tid"]) == (0, 1)

    def test_request_events_on_request_rails(self):
        obj = to_chrome([ev("prefill_chunk", phase="span", dur=1.0, request_id=7)])
        [x] = [e for e in obj["traceEvents"] if e["ph"] == "X"]
        assert x["tid"] == 107

    def test_replica_becomes_pid(self):
        obj = to_chrome([ev("admit", replica=2, request_id=0)])
        [i] = [e for e in obj["traceEvents"] if e["ph"] == "i"]
        assert i["pid"] == 2
        names = {
            (e["pid"], e["args"]["name"])
            for e in obj["traceEvents"]
            if e["name"] == "process_name"
        }
        assert (2, "replica 2") in names

    def test_metadata_covers_every_track(self):
        obj = to_chrome(
            [
                ev("decode_round", phase="span", dur=0.5, pool="decode"),
                ev("admit", request_id=3),
                ev("kv_transfer_schedule", pool="wire", seq_id=1),
            ]
        )
        threads = {
            (e["pid"], e["tid"]): e["args"]["name"]
            for e in obj["traceEvents"]
            if e["name"] == "thread_name"
        }
        assert threads[(0, 2)] == "pool decode"
        assert threads[(0, 103)] == "req 3"
        assert threads[(0, 3)] == "pool wire"

    def test_instants_use_thread_scope(self):
        obj = to_chrome([ev("first_token", request_id=0, attrs={"ttft": 1.0})])
        [i] = [e for e in obj["traceEvents"] if e["ph"] == "i"]
        assert i["s"] == "t"
        assert i["args"]["ttft"] == 1.0

    def test_microsecond_conversion(self):
        obj = to_chrome([ev("decode_round", phase="span", t=1.5, dur=0.5, pool="decode")])
        [x] = [e for e in obj["traceEvents"] if e["ph"] == "X"]
        assert x["ts"] == 1.5e6
        assert x["ts"] + x["dur"] == 2.0e6

    def test_write_chrome_parses_back(self, tmp_path):
        path = str(tmp_path / "trace.json")
        write_chrome([ev("admit", request_id=0)], path)
        obj = json.load(open(path))
        assert validate_chrome(obj) == []


class TestValidateChrome:
    def test_flags_missing_container(self):
        assert validate_chrome({}) == ["traceEvents missing or not a list"]

    def test_flags_malformed_event(self):
        problems = validate_chrome({"traceEvents": [{"name": "x"}]})
        assert any("malformed" in p for p in problems)

    def test_flags_x_without_dur(self):
        problems = validate_chrome(
            {"traceEvents": [{"ph": "X", "pid": 0, "tid": 0, "ts": 1.0, "name": "x"}]}
        )
        assert any("without ts/dur" in p for p in problems)

    def test_flags_negative_dur(self):
        problems = validate_chrome(
            {"traceEvents": [
                {"ph": "X", "pid": 0, "tid": 0, "ts": 1.0, "dur": -1.0, "name": "x"}
            ]}
        )
        assert any("negative dur" in p for p in problems)

    def test_accepts_proper_nesting(self):
        outer = {"ph": "X", "pid": 0, "tid": 1, "ts": 0.0, "dur": 10.0, "name": "outer"}
        inner = {"ph": "X", "pid": 0, "tid": 1, "ts": 2.0, "dur": 3.0, "name": "inner"}
        assert validate_chrome({"traceEvents": [outer, inner]}) == []

    def test_flags_partial_overlap(self):
        a = {"ph": "X", "pid": 0, "tid": 1, "ts": 0.0, "dur": 5.0, "name": "a"}
        b = {"ph": "X", "pid": 0, "tid": 1, "ts": 3.0, "dur": 5.0, "name": "b"}
        problems = validate_chrome({"traceEvents": [a, b]})
        assert any("overlaps" in p for p in problems)

    def test_abutting_spans_are_fine(self):
        a = {"ph": "X", "pid": 0, "tid": 1, "ts": 0.0, "dur": 5.0, "name": "a"}
        b = {"ph": "X", "pid": 0, "tid": 1, "ts": 5.0, "dur": 5.0, "name": "b"}
        assert validate_chrome({"traceEvents": [a, b]}) == []

    def test_different_tracks_never_conflict(self):
        a = {"ph": "X", "pid": 0, "tid": 1, "ts": 0.0, "dur": 5.0, "name": "a"}
        b = {"ph": "X", "pid": 0, "tid": 2, "ts": 3.0, "dur": 5.0, "name": "b"}
        assert validate_chrome({"traceEvents": [a, b]}) == []
