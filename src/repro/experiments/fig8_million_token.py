"""Figure 8 + Appendix A: million-token TTFT on CP8/CP16 and MFU.

The headline result: exact 1M-token prefill in ~77 s on 128 H100s (CP16),
with ~502 TF/s/GPU achieved = 93% parallelization efficiency vs the
single-GPU FA3 rate and ~63% of the power-limited peak.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.model.config import llama3_405b_config
from repro.perf.flops import achieved_flops_per_gpu, mfu, model_flops
from repro.perf.hardware import HostSpec, gtt_host
from repro.perf.latency import LatencySimulator
from repro.workloads.traces import FIG8_CONTEXT_LENGTHS, FIG8_RANKS


def run(host: HostSpec | None = None) -> ExperimentResult:
    host = host if host is not None else gtt_host()
    cfg = llama3_405b_config()
    sim = LatencySimulator(cfg, host)

    res = ExperimentResult(
        experiment_id="Figure 8",
        title="TTFT for 128K-1M context on CP8/CP16 (s)",
        headers=["context", "CP8 TTFT", "CP16 TTFT", "CP16 TF/s/GPU", "CP16 MFU"],
    )
    for ctx in FIG8_CONTEXT_LENGTHS:
        ttfts = {n: sim.cp_prefill(ctx, n_ranks=n).total for n in FIG8_RANKS}
        flops = model_flops(cfg, ctx)
        gpus = 16 * host.gpus_per_host
        per_gpu = achieved_flops_per_gpu(flops, ttfts[16], gpus)
        res.add_row(
            ctx,
            ttfts[8],
            ttfts[16],
            per_gpu / 1e12,
            mfu(flops, ttfts[16], gpus, host.gpu.peak_flops),
        )
    res.paper_values["cp16_1m_seconds"] = 77.0
    res.paper_values["cp16_128k_seconds"] = 3.8
    res.paper_values["achieved_tf_per_gpu"] = 502.0
    res.paper_values["mfu"] = 0.63
    res.notes.append(
        "Paper: 77 s @ 1M and 3.8 s @ 128K on CP16; 502 TF/s/GPU achieved "
        "(93% parallelization efficiency vs 540 TF/s standalone FA3), ~63% MFU."
    )
    res.notes.append(
        "TTFT growth is super-linear beyond 512K as quadratic attention "
        "overtakes GEMM (>2x TTFT per 2x context)."
    )
    return res
