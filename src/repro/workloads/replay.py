"""Workload replay glue: conversation scripts -> arrival streams / runtimes.

Connects the workload consumers: the *numeric* engine replays
:class:`repro.workloads.generator.ConversationScript` turn by turn, the
*discrete-event* serving simulator consumes
:class:`repro.serving.simulator.Arrival` streams, and the
*continuous-batching runtime* (:mod:`repro.runtime`) replays whole
multi-session traces live. This module converts between them so the same
scripted traffic can drive every level — which is what makes the
runtime-vs-sequential exactness property testable.
"""

from __future__ import annotations

import numpy as np

from repro.serving.simulator import Arrival
from repro.workloads.generator import ConversationScript


def script_to_arrivals(
    scripts: list[ConversationScript],
    *,
    turn_gap_s: float = 30.0,
    start_offset_s: float = 1.0,
) -> list[Arrival]:
    """Flatten conversation scripts into a serving-simulator arrival stream.

    Each turn becomes one request whose context is the conversation's
    running token count (cached history + the new prompt — what the prefill
    pool must attend over), with the decode budget as output tokens. Turns
    of one conversation are spaced ``turn_gap_s`` apart (user think time);
    conversations start staggered by ``start_offset_s``.
    """
    if turn_gap_s < 0 or start_offset_s < 0:
        raise ValueError("gaps must be non-negative")
    arrivals: list[Arrival] = []
    rid = 0
    for conv_idx, script in enumerate(scripts):
        cached = 0
        t = start_offset_s * (conv_idx + 1)
        for prompt, budget in zip(script.prompts, script.response_budgets):
            context = cached + int(prompt.size)
            arrivals.append(
                Arrival(
                    request_id=rid,
                    time=t,
                    context_tokens=context,
                    output_tokens=int(budget),
                )
            )
            rid += 1
            cached = context + int(budget)
            t += turn_gap_s
    return sorted(arrivals, key=lambda a: a.time)


def submit_scripts_to_runtime(
    runtime,
    scripts: list[ConversationScript],
    *,
    start_offset_s: float = 1.0,
    think_time_s: float = 30.0,
) -> dict[int, list[int]]:
    """Submit a multi-session trace to a continuous-batching runtime.

    Conversations start staggered by ``start_offset_s``; follow-up turns
    arrive ``think_time_s`` apart (and never before their predecessor
    finishes — the runtime enforces the chain).

    Args:
        runtime: anything exposing the scheduler-facing submission
            surface ``submit_script(script, *, arrival, think_time)`` —
            a :class:`repro.runtime.ContinuousBatchingRuntime` or a
            :class:`repro.cluster.ReplicaFleet` (the fleet routes each
            conversation to a replica; this glue neither knows nor
            cares, which is what keeps fleet runs comparable to
            single-runtime runs via :func:`collect_generated`).
        scripts: the scripted conversations (unique seq_ids).

    Returns:
        ``{seq_id: [request_id per turn]}`` for correlating the runtime's
        records back to script turns.
    """
    if start_offset_s < 0 or think_time_s < 0:
        raise ValueError("gaps must be non-negative")
    rids: dict[int, list[int]] = {}
    for conv_idx, script in enumerate(scripts):
        rids[script.seq_id] = runtime.submit_script(
            script,
            arrival=start_offset_s * (conv_idx + 1),
            think_time=think_time_s,
        )
    return rids


def collect_generated(report, rids: dict[int, list[int]]) -> dict[int, list[list[int]]]:
    """Per-conversation decoded tokens from a runtime report.

    Shapes the output exactly like :func:`replay_scripts_sequential`'s
    (``{seq_id: [generated token ids per turn]}``), so bit-equality
    sweeps — cache on/off, packing orders, preemption remedies, runtime
    vs sequential replay — are one dict comparison.

    Args:
        report: a :class:`repro.runtime.RuntimeReport` or a
            :class:`repro.cluster.FleetReport` (same ``generated``
            surface; fleet request ids are globally unique).
        rids: ``{seq_id: [request_id per turn]}`` as returned by
            :func:`submit_scripts_to_runtime`.
    """
    return {
        seq_id: [list(report.generated(rid)) for rid in turn_rids]
        for seq_id, turn_rids in rids.items()
    }


def replay_scripts_sequential(make_engine, scripts: list[ConversationScript]) -> dict[int, list[list[int]]]:
    """Ground-truth replay: each conversation alone on a fresh engine.

    Runs every script through a dedicated
    :class:`repro.serving.session.ChatSession` — the uninterrupted,
    unbatched reference the runtime's continuous batching must match
    token-for-token.

    Args:
        make_engine: zero-argument factory returning a fresh engine (fresh
            per conversation so decode round-robin offsets start
            identically).
        scripts: the scripted conversations.

    Returns:
        ``{seq_id: [generated token ids per turn]}``.
    """
    from repro.serving.session import ChatSession

    out: dict[int, list[list[int]]] = {}
    for script in scripts:
        session = ChatSession(make_engine(), script.seq_id)
        turns = []
        for prompt, budget in zip(script.prompts, script.response_budgets):
            turns.append(list(session.send(prompt, max_new_tokens=int(budget)).generated))
        out[script.seq_id] = turns
        session.close()
    return out


def replay_script_numeric(engine, script: ConversationScript) -> list[dict]:
    """Replay one script on the numeric engine; return per-turn records.

    Args:
        engine: a :class:`repro.core.engine.ContextParallelEngine` whose
            model vocabulary covers the script's token ids.
        script: the scripted conversation.

    Returns:
        Per-turn dicts: ``{"turn", "T", "P", "miss_rate", "algo",
        "generated"}``.
    """
    records = []
    sid = script.seq_id
    for turn_idx, (prompt, budget) in enumerate(
        zip(script.prompts, script.response_budgets)
    ):
        cached = engine.context_length(sid)
        out = engine.prefill({sid: np.asarray(prompt, dtype=np.int64)})
        generated: list[int] = []
        logits = out.last_logits(sid)
        for _ in range(budget):
            tok = int(np.argmax(logits))
            step = engine.decode({sid: tok})
            generated.append(tok)
            logits = step.logits[sid]
        records.append(
            {
                "turn": turn_idx,
                "T": int(prompt.size),
                "P": cached,
                "miss_rate": out.plan.miss_rate,
                "algo": out.plan.algo.value,
                "generated": generated,
            }
        )
    return records
