"""Figure 7: scaling ratio of CP vs multi-node TP at 128K context.

Scaling ratio = tau_1 / tau_N (single-node latency over N-node latency);
perfect scaling is N. The reproduced claim: CP stays near-linear while TP
plateaus as AllReduce dominates — ~15-40% gap at 2 nodes growing to ~100%+
(2x latency) at 8 nodes.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.model.config import llama3_405b_config
from repro.perf.hardware import HostSpec, gtt_host
from repro.perf.latency import LatencySimulator
from repro.workloads.traces import FIG7_CONTEXT, FIG7_NODE_COUNTS


def run(host: HostSpec | None = None) -> ExperimentResult:
    host = host if host is not None else gtt_host()
    sim = LatencySimulator(llama3_405b_config(), host)
    base = sim.cp_prefill(FIG7_CONTEXT, n_ranks=1).total

    res = ExperimentResult(
        experiment_id="Figure 7",
        title=f"Scaling ratio at {FIG7_CONTEXT // 1024}K on {host.name}",
        headers=["nodes", "TP TTFT (s)", "CP TTFT (s)", "TP ratio", "CP ratio", "perfect"],
    )
    for n in FIG7_NODE_COUNTS:
        tp = sim.tp_prefill(FIG7_CONTEXT, n_nodes=n).total
        cp = sim.cp_prefill(FIG7_CONTEXT, n_ranks=n).total
        res.add_row(n, tp, cp, base / tp, base / cp, n)
    res.paper_values["tp16_ttft_s"] = 29.917
    res.paper_values["cp2_ttft_s"] = 21.042
    res.notes.append(
        "Paper: TP-vs-CP latency gap grows from ~15-40% at 2 nodes to ~100% at 8 "
        "(AllReduce exposed on the critical path; Section 4.2.2)."
    )
    return res
