"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_plan_args(self):
        args = build_parser().parse_args(["plan", "--context", "131072", "--sla", "10"])
        assert args.context == 131072
        assert args.sla == 10.0


class TestCommands:
    def test_demo_exits_zero(self, capsys):
        assert main(["demo", "--world", "2", "--tokens", "16"]) == 0
        out = capsys.readouterr().out
        assert "losslessness" in out
        assert "pass-kv" in out

    def test_heuristic_output(self, capsys):
        assert main(["heuristic", "--new-tokens", "1280", "--cached", "126720"]) == 0
        out = capsys.readouterr().out
        assert "Algorithm 1" in out
        assert "pass-q" in out

    def test_plan_meets_sla(self, capsys):
        assert main(["plan", "--context", "131072", "--sla", "60"]) == 0
        assert "meets SLA" in capsys.readouterr().out

    def test_plan_impossible_sla(self, capsys):
        assert main(["plan", "--context", "1048576", "--sla", "0.001"]) == 1

    def test_experiments_filtered(self, capsys):
        assert main(["experiments", "--fast", "--only", "Table 7"]) == 0
        out = capsys.readouterr().out
        assert "Table 7" in out
        assert "Figure 8" not in out

    def test_experiments_markdown(self, capsys):
        assert main(["experiments", "--fast", "--only", "Table 2", "--markdown"]) == 0
        assert "### Table 2" in capsys.readouterr().out

    def test_serve_verifies_exactness(self, capsys):
        assert main([
            "serve", "--sessions", "2", "--turns", "2", "--world", "2",
            "--capacity", "80", "--verify",
        ]) == 0
        out = capsys.readouterr().out
        assert "preemptions:" in out
        assert "verify vs sequential replay: identical" in out

    def test_serve_disaggregated_verifies_exactness(self, capsys):
        assert main([
            "serve", "--sessions", "2", "--turns", "2", "--disaggregate", "2:1",
            "--verify",
        ]) == 0
        out = capsys.readouterr().out
        assert "CP2 prefill -> CP1 decode" in out
        assert "KV transfers:" in out
        assert "pool utilization:" in out
        assert "verify vs sequential replay: identical" in out

    def test_serve_sanitize_verifies_exactness(self, capsys):
        assert main([
            "serve", "--sessions", "2", "--turns", "2", "--world", "2",
            "--capacity", "80", "--sanitize", "--verify",
        ]) == 0
        out = capsys.readouterr().out
        assert "verify vs sequential replay: identical" in out

    def test_serve_rejects_malformed_disaggregate(self, capsys):
        assert main(["serve", "--disaggregate", "2x1"]) == 2
        assert "P:D" in capsys.readouterr().err

    def test_serve_rejects_decode_capacity_without_disaggregate(self, capsys):
        assert main(["serve", "--decode-capacity", "64"]) == 2
        assert "--disaggregate" in capsys.readouterr().err

    def test_serve_rejects_world_with_disaggregate(self, capsys):
        assert main(["serve", "--world", "4", "--disaggregate", "1:1"]) == 2
        assert "conflicts" in capsys.readouterr().err

    def test_serve_preemption_swap_verifies_exactness(self, capsys):
        assert main([
            "serve", "--sessions", "2", "--turns", "2", "--world", "2",
            "--capacity", "64", "--preemption", "swap", "--verify",
        ]) == 0
        out = capsys.readouterr().out
        assert "preemption: swap" in out
        assert "KV swaps:" in out
        assert "verify vs sequential replay: identical" in out

    def test_serve_preemption_trim_verifies_exactness(self, capsys):
        assert main([
            "serve", "--sessions", "2", "--turns", "2", "--world", "2",
            "--capacity", "64", "--preemption", "trim", "--verify",
        ]) == 0
        out = capsys.readouterr().out
        assert "tail trims:" in out
        assert "verify vs sequential replay: identical" in out

    def test_serve_rejects_swap_capacity_without_swap(self, capsys):
        assert main(["serve", "--swap-capacity", "128"]) == 2
        assert "--preemption swap" in capsys.readouterr().err

    def test_trace_writes_json(self, capsys, tmp_path):
        import json

        out = tmp_path / "trace.json"
        assert main(["trace", "--world", "2", "--tokens", "12", "--output", str(out)]) == 0
        data = json.loads(out.read_text())
        assert any(e.get("ph") == "X" for e in data["traceEvents"])
        assert "traced events" in capsys.readouterr().out


class TestServePrefixCache:
    def test_serve_prefix_cache_verifies_exactness(self, capsys):
        assert main([
            "serve", "--sessions", "4", "--turns", "2",
            "--prefix-cache", "--traffic", "shared-prefix", "--verify",
        ]) == 0
        out = capsys.readouterr().out
        assert "prefix cache:" in out
        assert "hits" in out
        assert "verify vs sequential replay: identical" in out

    def test_serve_prefix_cache_disaggregated(self, capsys):
        assert main([
            "serve", "--sessions", "3", "--turns", "2", "--disaggregate", "2:1",
            "--prefix-cache", "--traffic", "shared-prefix", "--verify",
        ]) == 0
        assert "verify vs sequential replay: identical" in capsys.readouterr().out

    def test_serve_srpf_policy_verifies_exactness(self, capsys):
        assert main([
            "serve", "--sessions", "3", "--turns", "2", "--world", "2",
            "--policy", "srpf", "--capacity", "80", "--verify",
        ]) == 0
        out = capsys.readouterr().out
        assert "policy: srpf" in out
        assert "verify vs sequential replay: identical" in out


class TestServeFleet:
    def test_serve_fleet_verifies_exactness(self, capsys):
        assert main([
            "serve", "--replicas", "3", "--routing", "prefix",
            "--prefix-cache", "--traffic", "shared-prefix",
            "--sessions", "6", "--turns", "2", "--verify",
        ]) == 0
        out = capsys.readouterr().out
        assert "3 x" in out and "(prefix routing)" in out
        assert "placements:" in out
        assert "post-drain KV audit: clean" in out
        assert "replicas: 3" in out
        assert "verify vs sequential replay: identical" in out

    def test_serve_fleet_round_robin_with_faults(self, capsys):
        assert main([
            "serve", "--replicas", "2", "--routing", "round-robin",
            "--sessions", "4", "--turns", "2",
            "--faults", "transfer=0.2", "--fault-seed", "3", "--verify",
        ]) == 0
        out = capsys.readouterr().out
        assert "(round-robin routing)" in out
        assert "verify vs sequential replay: identical" in out

    def test_serve_fleet_least_loaded(self, capsys):
        assert main([
            "serve", "--replicas", "2", "--routing", "least-loaded",
            "--sessions", "3", "--verify",
        ]) == 0
        assert "verify vs sequential replay: identical" in capsys.readouterr().out

    def test_serve_replicas_one_keeps_single_runtime_output(self, capsys):
        assert main(["serve", "--replicas", "1", "--sessions", "2"]) == 0
        out = capsys.readouterr().out
        assert "replicas:" not in out
        assert "placements:" not in out

    def test_serve_rejects_zero_replicas(self, capsys):
        assert main(["serve", "--replicas", "0"]) == 2
        assert "--replicas" in capsys.readouterr().err

    def test_serve_rejects_routing_without_fleet(self, capsys):
        assert main(["serve", "--routing", "prefix"]) == 2
        assert "--replicas" in capsys.readouterr().err

    def test_serve_rejects_unknown_routing_policy(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--replicas", "2", "--routing", "random"])
        assert "invalid choice" in capsys.readouterr().err
