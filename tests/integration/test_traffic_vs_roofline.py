"""Cross-check: numerically traced wire bytes match the roofline formulas.

The latency model prices communication from the closed forms of Table 3;
the numeric simulator counts the bytes its collectives actually move. This
integration test pins the two against each other, so the analytic tables
cannot silently drift from what the algorithms really send.
"""

import numpy as np
import pytest

from repro.core.ring_passkv import ring_passkv_prefill
from repro.core.ring_passq import ring_passq_prefill
from repro.core.sharding import SequenceSpec, ShardedKV, ShardedQueries, shard_sequences
from repro.distributed.process_group import SimProcessGroup
from repro.model.config import ModelConfig
from repro.perf.roofline import all2all_bytes, kv_bytes, q_bytes


CFG = ModelConfig(
    name="probe", n_layers=1, model_dim=64, ffn_dim=128,
    n_heads=8, n_kv_heads=2, vocab_size=64, max_context=4096,
)


def build(world: int, t: int, rng):
    dh = CFG.head_dim
    q = rng.standard_normal((t, CFG.n_heads, dh))
    k = rng.standard_normal((t, CFG.n_kv_heads, dh))
    v = rng.standard_normal((t, CFG.n_kv_heads, dh))
    shards = shard_sequences([SequenceSpec(0, t)], world)
    queries = [ShardedQueries(q=q[pos], positions=pos, seq_ids=sid) for pos, sid in shards]
    kvs = [ShardedKV(k=k[pos], v=v[pos], positions=pos, seq_ids=sid) for pos, sid in shards]
    return queries, kvs


class TestPassKvTraffic:
    @pytest.mark.parametrize("world,t", [(2, 64), (4, 64), (4, 96)])
    def test_sendrecv_bytes_match_table3(self, rng, world, t):
        queries, kvs = build(world, t, rng)
        group = SimProcessGroup(world, wire_bytes_per_element=2)
        ring_passkv_prefill(group, queries, kvs)
        traced = group.tracer.total_bytes("sendrecv")

        # Table 3: KV bytes for the whole context; the ring moves one shard
        # per step for N-1 steps -> (N-1)/N of the total, plus coordinate
        # metadata (positions + seq ids: 2 int per token).
        shard_tokens = t / world
        expected_payload = (world - 1) * kv_bytes(CFG, t, 0, 2.0) / world
        metadata = (world - 1) * 2 * shard_tokens * 2
        assert traced == pytest.approx(expected_payload + metadata, rel=0.02)


class TestPassQTraffic:
    @pytest.mark.parametrize("world,t", [(2, 64), (4, 64)])
    def test_ring_bytes_match_table3(self, rng, world, t):
        queries, kvs = build(world, t, rng)
        group = SimProcessGroup(world, wire_bytes_per_element=2)
        ring_passq_prefill(group, queries, kvs)
        traced = group.tracer.total_bytes("sendrecv")
        shard_tokens = t / world
        expected_payload = (world - 1) * q_bytes(CFG, t, 2.0) / world
        metadata = (world - 1) * 2 * shard_tokens * 2
        assert traced == pytest.approx(expected_payload + metadata, rel=0.02)

    @pytest.mark.parametrize("world,t", [(2, 64), (4, 64)])
    def test_all2all_bytes_match_appendix_c(self, rng, world, t):
        queries, kvs = build(world, t, rng)
        group = SimProcessGroup(world, wire_bytes_per_element=2)
        ring_passq_prefill(group, queries, kvs)
        traced = group.tracer.total_bytes("all2all")
        # Appendix C: (N-1) partials of (D + 1) values per token — our NH
        # heads each carry an LSE, so the exact numeric payload is
        # (D + NH) per token; the paper's D+1 folds heads into one LSE.
        shard_tokens = t / world
        expected = (world - 1) * shard_tokens * (CFG.model_dim + CFG.n_heads) * 2
        assert traced == pytest.approx(expected, rel=0.02)
        # and the Appendix C closed form is within the head-count slack
        closed_form = all2all_bytes(CFG, shard_tokens, world, 2.0)
        assert traced == pytest.approx(closed_form, rel=0.15)

    def test_passq_moves_less_than_passkv_when_q_smaller(self, rng):
        """With T tokens and deep cache the Q stream is cheaper; for full
        prefill with this GQA ratio (8/2), KV is cheaper (Eq. 1)."""
        world, t = 4, 64
        queries, kvs = build(world, t, rng)
        g_kv = SimProcessGroup(world)
        ring_passkv_prefill(g_kv, queries, kvs)
        g_q = SimProcessGroup(world)
        ring_passq_prefill(g_q, queries, kvs)
        # NH=8, NKV=2: KV bytes = 2*(2/8) = 0.5x Q bytes -> pass-KV cheaper
        assert g_kv.tracer.total_bytes("sendrecv") < g_q.tracer.total_bytes("sendrecv")
