"""Tests for the striped-sharding ablation alternative."""

import numpy as np
import pytest

from repro.attention.reference import reference_attention_with_lse
from repro.core.ring_passkv import ring_passkv_prefill
from repro.core.sharding import ShardedKV, ShardedQueries, causal_flops_per_rank
from repro.core.sharding_striped import (
    striped_flops_per_rank,
    striped_imbalance,
    striped_shard_positions,
)
from repro.distributed.process_group import SimProcessGroup

from helpers import make_qkv


class TestStripedPositions:
    @pytest.mark.parametrize("length,world", [(16, 4), (17, 4), (5, 8), (100, 3)])
    def test_partition(self, length, world):
        shards = striped_shard_positions(length, world)
        merged = np.sort(np.concatenate(shards))
        np.testing.assert_array_equal(merged, np.arange(length))

    def test_round_robin_pattern(self):
        shards = striped_shard_positions(8, 4)
        np.testing.assert_array_equal(shards[0], [0, 4])
        np.testing.assert_array_equal(shards[3], [3, 7])

    def test_offset(self):
        shards = striped_shard_positions(4, 2, offset=10)
        np.testing.assert_array_equal(shards[0], [10, 12])
        np.testing.assert_array_equal(shards[1], [11, 13])

    def test_validation(self):
        with pytest.raises(ValueError):
            striped_shard_positions(-1, 2)
        with pytest.raises(ValueError):
            striped_shard_positions(4, 0)


class TestStripedBalance:
    def test_striped_is_balanced(self):
        assert striped_imbalance(4096, 8) < 1.01

    def test_both_schemes_balanced_naive_is_not(self):
        """Striping and 2N-chunking agree on total work and balance."""
        length, world = 2048, 4
        striped = striped_flops_per_rank(length, world)
        chunked = causal_flops_per_rank(length, world)
        assert striped.sum() == chunked.sum()
        assert striped.max() / striped.mean() < 1.01
        assert chunked.max() / chunked.mean() < 1.01


class TestStripedThroughRing:
    def test_ring_passkv_exact_with_striping(self, rng):
        """Position-based masks make sharding schemes interchangeable: the
        ring algorithm is exact under striping too."""
        world, t = 3, 23
        q, k, v = make_qkv(rng, t, t)
        ref_out, _ = reference_attention_with_lse(q, k, v)
        queries, kvs = [], []
        for pos in striped_shard_positions(t, world):
            sid = np.zeros(pos.shape[0], dtype=np.int64)
            queries.append(ShardedQueries(q=q[pos], positions=pos, seq_ids=sid))
            kvs.append(ShardedKV(k=k[pos], v=v[pos], positions=pos, seq_ids=sid))
        results = ring_passkv_prefill(SimProcessGroup(world), queries, kvs)
        for res, qs in zip(results, queries):
            np.testing.assert_allclose(res.out, ref_out[qs.positions], atol=1e-10)
