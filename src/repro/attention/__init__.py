"""Attention substrate: exact GQA attention kernels used by context parallelism.

This package provides the single-device attention building blocks that the
ring algorithms in :mod:`repro.core` are built on:

- :mod:`repro.attention.masks` — position/sequence-id based causal masks that
  stay correct under arbitrary token permutations (load-balanced sharding
  reorders tokens, so masks must be derived from absolute positions rather
  than storage order).
- :mod:`repro.attention.reference` — a fully materialized, easy-to-audit
  exact GQA attention. This is the gold standard every other kernel and the
  distributed algorithms are tested against.
- :mod:`repro.attention.flash` — a blocked online-softmax kernel that returns
  ``(O, LSE)`` pairs, mirroring the FlashAttention-3 / Flash-Decoding
  contract the paper relies on for partial-attention merging.
- :mod:`repro.attention.online_softmax` — the streaming softmax accumulator
  (Milakov & Gimelshein 2018) shared by the flash kernel and merge attention.
- :mod:`repro.attention.rope` — rotary position embeddings applied by the
  model substrate before attention.
- :mod:`repro.attention.gqa` — grouped-query-attention head bookkeeping.
"""

from repro.attention.flash import AttentionResult, flash_attention
from repro.attention.gqa import expand_kv_heads, kv_head_for_query_head, validate_gqa_shapes
from repro.attention.masks import attention_mask, causal_mask
from repro.attention.online_softmax import OnlineSoftmaxState
from repro.attention.reference import reference_attention, reference_attention_with_lse
from repro.attention.rope import apply_rope, rope_frequencies
from repro.attention.windowed import windowed_attention_mask_fn, windowed_mask

__all__ = [
    "AttentionResult",
    "OnlineSoftmaxState",
    "apply_rope",
    "attention_mask",
    "causal_mask",
    "expand_kv_heads",
    "flash_attention",
    "kv_head_for_query_head",
    "reference_attention",
    "reference_attention_with_lse",
    "rope_frequencies",
    "validate_gqa_shapes",
    "windowed_attention_mask_fn",
    "windowed_mask",
]
