"""Table 6: TTFT/TTIT for TP8 vs CP2 across context lengths."""

from repro.experiments import table6_ttft_ttit


def bench_table6_ttft_ttit(benchmark, paper_table):
    result = benchmark(table6_ttft_ttit.run)
    paper_table(benchmark, result)

    for row in result.rows:
        ctx, tp_ttft, tp_ttit, cp_ttft, cp_ttit, paper_tp, paper_cp = row
        # CP2 roughly halves TTFT at long context
        if ctx >= 32768:
            assert 1.6 < tp_ttft / cp_ttft < 2.2
        # CP2 decode regresses by ~15 ms (ring + All2All per layer)
        assert 10 < cp_ttit - tp_ttit < 25
        # model tracks the paper's TTFTs
        assert abs(tp_ttft - paper_tp) / paper_tp < 0.12
        assert abs(cp_ttft - paper_cp) / paper_cp < 0.60  # 8K CP2 dominated by fixed costs

    # TTIT ~flat in context for both configs
    ttits_tp = result.column("TP8 TTIT")
    ttits_cp = result.column("CP2 TTIT")
    assert max(ttits_tp) / min(ttits_tp) < 1.15
    assert max(ttits_cp) / min(ttits_cp) < 1.15


if __name__ == "__main__":
    print(table6_ttft_ttit.run().render())
