"""Tests for paper-vs-model deviation accounting (+ the global budget)."""

import pytest

from repro.experiments import (
    compare,
    table4_fig9_partial_prefill,
    table6_ttft_ttit,
    table7_parallelism,
    table8_decode_attention,
)
from repro.experiments.base import ExperimentResult


class TestPairing:
    def test_pairs_found(self):
        res = ExperimentResult("T", "d", ["x", "paper x", "y"])
        assert compare.paired_columns(res) == [("x", "paper x")]

    def test_no_pairs(self):
        res = ExperimentResult("T", "d", ["a", "b"])
        assert compare.paired_columns(res) == []

    def test_deviation_math(self):
        res = ExperimentResult("T", "d", ["v", "paper v"])
        res.add_row(110.0, 100.0)
        res.add_row(95.0, 100.0)
        (d,) = compare.deviations(res)
        assert d.n == 2
        assert d.mean_rel == pytest.approx(0.075)
        assert d.max_rel == pytest.approx(0.10)

    def test_zero_paper_values_skipped(self):
        res = ExperimentResult("T", "d", ["v", "paper v"])
        res.add_row(5.0, 0.0)
        assert compare.deviations(res) == []


class TestGlobalBudget:
    """The reproduction-wide regression guard."""

    @pytest.fixture(scope="class")
    def comparable(self):
        return [
            table4_fig9_partial_prefill.run(),
            table6_ttft_ttit.run(),
            table7_parallelism.run(),
            table8_decode_attention.run(),
        ]

    # documented deviations (EXPERIMENTS.md "Known deviations"):
    # - CP2 TTFT at 8K is dominated by fixed costs our model over-charges;
    # - decode "whole pass-Q" at batch 4 misses unmodelled per-sequence
    #   kernel overheads on the single-host row.
    BUDGETS = {"CP2 TTFT": 0.60, "whole pass-Q": 0.45}

    def test_every_column_within_budget(self, comparable):
        for result in comparable:
            for d in compare.deviations(result):
                budget = self.BUDGETS.get(d.column, 0.15)
                assert d.max_rel < budget, f"{d.experiment_id}/{d.column}: {d.max_rel:.1%}"

    def test_mean_deviation_small(self, comparable):
        devs = [d for r in comparable for d in compare.deviations(r)]
        overall = sum(d.mean_rel * d.n for d in devs) / sum(d.n for d in devs)
        assert overall < 0.08, f"mean reproduction deviation {overall:.1%}"

    def test_report_renders(self, comparable):
        report = compare.deviation_report(comparable)
        assert len(report.rows) >= 6
        text = report.render()
        assert "Table 4" in text
