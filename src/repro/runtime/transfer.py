"""KV-transfer stream between the prefill pool and the decode pool.

The disaggregated serving architecture (paper §4.3, DistServe / Mooncake)
connects its two resource pools with a KV stream: when a prompt finishes
prefilling on pool A, its committed KV blocks move to pool B, where the
response decodes at interference-free TTIT. :class:`KVTransferStream`
models that channel for the runtime:

- **Serialized**: one transfer occupies the wire at a time; a transfer
  scheduled while the channel is busy starts when the channel frees
  (FIFO). This is what makes transfer time a contended resource the
  experiments can observe.
- **Priced, not free**: duration comes from the runtime clock's
  ``price_transfer(tokens)`` (bandwidth model for the calibrated clock).
- **Overlappable with compute**: the stream only tracks *when* payloads
  arrive; both pools keep executing rounds while transfers are in
  flight. The runtime imports a payload into the decode pool the first
  time the decode clock passes the transfer's finish time *and* the
  destination pool admits it.

The physical payload (:class:`repro.core.engine.KVExport`) is exported
and imported by the runtime at landing time, not held here — so a
transfer cancelled by a prefill-pool eviction simply never lands, and
the re-prefilled conversation schedules a fresh transfer later.

The cancel/refund machinery doubles as the retry mechanics of the fault
injection layer (:mod:`repro.runtime.faults`): an injected mid-stream
transfer death is a ``cancel`` at landing time — every wire second is
already sunk, nothing refunds — followed by a fresh ``schedule`` of the
same delta at ``now + backoff``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Transfer:
    """One in-flight prefill->decode KV move.

    Attributes:
        seq_id: conversation whose KV is moving.
        request_id: the turn that triggered the move.
        tokens: payload size priced at schedule time (the delta between
            the pools' committed lengths).
        start: when the channel began streaming it.
        finish: when the payload is fully on the decode side.
        requested: the simulated time the transfer was asked for (its
            ``schedule`` call's ``now``) — a repack after a cancellation
            may pull ``start`` earlier, but never before this.
        wire_s: total priced wire seconds this transfer reserved
            (``schedule`` plus any ``extend``).
        segments: the wire intervals actually reserved — one per
            ``schedule``/``extend`` call. ``[start, finish]`` may span
            idle gaps between them (an extension re-enters the wire
            later); refunds are computed per segment so gap time is
            never mistaken for streamable time.
        refunded_s: wire seconds handed back when the transfer was
            cancelled before (fully) streaming; ``wire_s - refunded_s``
            is the channel time actually sunk.
        refused: the decode pool has already refused this payload at
            least once (admission counter de-duplication; reset when an
            ``extend`` reships it as a new payload).
    """

    seq_id: int
    request_id: int
    tokens: int
    start: float
    finish: float
    requested: float = 0.0
    wire_s: float = 0.0
    refunded_s: float = 0.0
    segments: list[tuple[float, float]] = field(default_factory=list)
    refused: bool = False

    @property
    def sunk_s(self) -> float:
        """Wire seconds wasted if this transfer was cancelled."""
        return self.wire_s - self.refunded_s


class KVTransferStream:
    """Serialized, priced KV channel from the prefill to the decode pool.

    Args:
        clock: any runtime step clock exposing ``price_transfer(tokens)``
            (:class:`repro.runtime.clock.UnitStepClock` or
            :class:`repro.runtime.clock.SimulatedStepClock`).
        tracer: optional :class:`repro.obs.trace.Tracer` receiving
            ``kv_transfer_schedule``/``kv_transfer_extend`` instants for
            the wire's scheduling decisions (landings and cancels are
            emitted by the runtime, which owns their accounting).
    """

    def __init__(self, clock, *, tracer=None):
        from repro.obs.trace import NULL_TRACER

        self.clock = clock
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.busy_until = 0.0
        self.busy_s = 0.0
        self._in_flight: list[Transfer] = []
        # wire time physically consumed by already-landed transfers; a
        # cancel repack must never hand their slots to queued successors
        self._completed_until = 0.0

    # ------------------------------------------------------------------ #

    def schedule(self, seq_id: int, request_id: int, tokens: int, now: float) -> Transfer:
        """Enqueue a transfer at simulated time ``now``; returns its record.

        The channel is serialized: the transfer starts at
        ``max(now, busy_until)``. Zero-token transfers are legal (an
        up-to-date destination) and cost whatever the clock prices them
        at (0 for both built-in clocks).
        """
        if tokens < 0:
            raise ValueError(f"tokens must be >= 0, got {tokens}")
        if any(t.seq_id == seq_id for t in self._in_flight):
            raise ValueError(f"sequence {seq_id} already has a transfer in flight")
        start = max(now, self.busy_until)
        duration = self.clock.price_transfer(tokens)
        transfer = Transfer(
            seq_id=seq_id, request_id=request_id, tokens=tokens,
            start=start, finish=start + duration,
            requested=now, wire_s=duration,
            segments=[(start, start + duration)],
        )
        self.busy_until = transfer.finish
        self.busy_s += duration
        self._in_flight.append(transfer)
        if self.tracer.enabled:
            self.tracer.instant(
                "kv_transfer_schedule",
                now,
                request_id=request_id,
                seq_id=seq_id,
                tokens=tokens,
                start=start,
                finish=transfer.finish,
            )
        return transfer

    def ready(self, now: float) -> list[Transfer]:
        """In-flight transfers fully arrived by ``now``, in finish order."""
        return sorted(
            (t for t in self._in_flight if t.finish <= now),
            key=lambda t: (t.finish, t.request_id),
        )

    def extend(self, transfer: Transfer, extra_tokens: int, now: float) -> None:
        """Grow an in-flight transfer's payload by ``extra_tokens``.

        Used when the destination evicted its resident copy of the
        sequence while the delta was on the wire: the landing must now
        re-ship the whole history, and the *additional* tokens occupy the
        channel from ``max(now, busy_until)`` — the already-streamed delta
        is not re-charged.
        """
        if extra_tokens < 1:
            raise ValueError(f"extra_tokens must be >= 1, got {extra_tokens}")
        if transfer not in self._in_flight:
            raise ValueError(f"transfer for seq {transfer.seq_id} is not in flight")
        start = max(now, self.busy_until)
        duration = self.clock.price_transfer(extra_tokens)
        transfer.tokens += extra_tokens
        transfer.finish = start + duration
        transfer.wire_s += duration
        transfer.segments.append((start, start + duration))
        # a reshipped payload is a new admission decision: a fresh refusal
        # of the grown payload is a distinct event, not a duplicate
        transfer.refused = False
        self.busy_until = max(self.busy_until, transfer.finish)
        self.busy_s += duration
        if self.tracer.enabled:
            self.tracer.instant(
                "kv_transfer_extend",
                now,
                request_id=transfer.request_id,
                seq_id=transfer.seq_id,
                tokens=extra_tokens,
                finish=transfer.finish,
            )

    def complete(self, transfer: Transfer) -> None:
        """Mark a landed transfer done (the runtime imported its payload).

        Landed/cancelled/token tallies live in
        :class:`repro.serving.metrics.ServingMetrics` — the stream tracks
        only wire state (``busy_until`` / ``busy_s`` / in-flight set).
        """
        self._in_flight.remove(transfer)
        self._completed_until = max(self._completed_until, transfer.finish)

    def cancel(self, seq_id: int, now: float) -> Transfer | None:
        """Drop the in-flight transfer of ``seq_id`` (eviction at ``now``).

        Wire time already *spent* by ``now`` is sunk — the channel was
        occupied whether or not the payload ends up used, which is
        exactly the cost a preemption storm inflicts on a disaggregated
        deployment. But the **un-streamed** portion is refunded: a
        transfer cancelled while still queued (its ``start`` is in the
        future) hands back its whole reservation, and a mid-stream cancel
        hands back ``finish - now``. Transfers queued behind a refunded
        reservation are re-packed earlier (each still starting no sooner
        than its own requested time), so a phantom payload can never
        delay its successors.

        Returns the cancelled :class:`Transfer` with ``refunded_s`` set
        (``sunk_s`` is the wire time actually wasted), or ``None`` when
        the sequence has nothing in flight.
        """
        for transfer in self._in_flight:
            if transfer.seq_id == seq_id:
                self._in_flight.remove(transfer)
                release = max(now, transfer.start)
                if now <= transfer.start:
                    # never started streaming: the whole reservation comes
                    # back, exactly (no float residue from finish - start)
                    refund = transfer.wire_s
                else:
                    # per-segment, so the idle gap an extend() left
                    # between wire re-entries never counts as refundable
                    refund = sum(
                        max(0.0, seg_end - max(now, seg_start))
                        for seg_start, seg_end in transfer.segments
                    )
                transfer.refunded_s = refund
                if refund > 0.0:
                    self.busy_s -= refund
                    self._repack(release)
                return transfer
        return None

    def _repack(self, release: float) -> None:
        """Re-serialize transfers queued behind a reservation freed at
        ``release``: anything already streaming (or streamed) keeps its
        times; each still-queued successor moves up to the earlier of the
        freed slot and its own requested time, FIFO order preserved.
        Slots consumed by already-landed transfers stay consumed."""
        busy = max(min(self.busy_until, release), self._completed_until)
        for t in sorted(self._in_flight, key=lambda t: (t.start, t.request_id)):
            if t.start <= release:
                busy = max(busy, t.finish)
                continue
            t.start = max(t.requested, busy)
            t.finish = t.start + t.wire_s
            t.segments = [(t.start, t.finish)]
            busy = max(busy, t.finish)
        self.busy_until = busy

    # ------------------------------------------------------------------ #

    def in_flight(self) -> list[Transfer]:
        return list(self._in_flight)
