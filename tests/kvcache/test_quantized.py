"""Tests for quantized KV cache storage."""

import numpy as np
import pytest

from repro.attention.reference import reference_attention
from repro.kvcache.quantized import (
    QuantizedKV,
    compression_ratio,
    dequantize_kv,
    kv_quantization_error,
    quantize_kv,
)

from helpers import make_qkv


class TestQuantizeKv:
    def test_roundtrip_error_bound(self, rng):
        _, k, v = make_qkv(rng, 1, 32)
        q = quantize_kv(k, v)
        k2, v2 = dequantize_kv(q)
        # per-(token, head) half-step bound
        assert np.all(np.abs(k2 - k) <= 0.5 * q.k_scales[..., None] + 1e-12)
        assert np.all(np.abs(v2 - v) <= 0.5 * q.v_scales[..., None] + 1e-12)

    def test_relative_error_small(self, rng):
        _, k, v = make_qkv(rng, 1, 64)
        ek, ev = kv_quantization_error(k, v)
        assert ek < 0.01 and ev < 0.01

    def test_token_local_scaling(self):
        """An outlier token does not degrade other tokens' precision."""
        k = np.ones((4, 1, 8)) * 0.1
        k[2] *= 1000  # outlier token
        v = np.ones_like(k)
        q = quantize_kv(k, v)
        k2, _ = dequantize_kv(q)
        # non-outlier rows keep tight error despite the outlier
        normal = [0, 1, 3]
        assert np.abs(k2[normal] - k[normal]).max() < 1e-3

    def test_zero_kv(self):
        q = quantize_kv(np.zeros((3, 2, 4)), np.zeros((3, 2, 4)))
        k2, v2 = dequantize_kv(q)
        assert np.all(k2 == 0) and np.all(v2 == 0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            quantize_kv(np.zeros((3, 2, 4)), np.zeros((3, 2, 5)))
        with pytest.raises(ValueError):
            quantize_kv(np.zeros((3, 4)), np.zeros((3, 4)))


class TestStorageAccounting:
    def test_nbytes(self, rng):
        _, k, v = make_qkv(rng, 1, 10)
        q = quantize_kv(k, v)
        codes = k.size + v.size
        scales = 4 * (q.k_scales.size + q.v_scales.size)
        assert q.nbytes == codes + scales
        assert q.tokens == 10

    def test_compression_near_2x_vs_bf16(self, rng):
        """For DH=128-class heads, int8 + scales approaches 2x vs bf16."""
        k = np.random.default_rng(0).standard_normal((64, 8, 128))
        q = quantize_kv(k, k)
        ratio = compression_ratio(q, element_bytes=2.0)
        assert 1.9 < ratio < 2.0


class TestAttentionQuality:
    def test_attention_with_quantized_kv_close(self, rng):
        """End effect: attention over dequantized KV stays close to exact."""
        q, k, v = make_qkv(rng, 6, 40)
        exact = reference_attention(q, k, v, q_pos=np.arange(34, 40), k_pos=np.arange(40))
        k2, v2 = dequantize_kv(quantize_kv(k, v))
        approx = reference_attention(q, k2, v2, q_pos=np.arange(34, 40), k_pos=np.arange(40))
        rel = np.abs(approx - exact).max() / np.abs(exact).max()
        assert rel < 0.02
