"""Tests for the gold-standard reference attention kernel."""

import numpy as np
import pytest

from repro.attention.reference import reference_attention, reference_attention_with_lse

from helpers import make_qkv


def naive_softmax_attention(q, k, v, mask, scale):
    """Independent, loop-based oracle (no shared code with the kernel)."""
    tq, nh, dh = q.shape
    nkv = k.shape[1]
    group = nh // nkv
    out = np.zeros((tq, nh, dh))
    lse = np.full((tq, nh), -np.inf)
    for t in range(tq):
        for h in range(nh):
            kv_h = h // group
            scores = []
            idx = []
            for s in range(k.shape[0]):
                if mask[t, s]:
                    scores.append(float(q[t, h] @ k[s, kv_h]) * scale)
                    idx.append(s)
            if not scores:
                continue
            scores = np.array(scores)
            m = scores.max()
            w = np.exp(scores - m)
            denom = w.sum()
            lse[t, h] = m + np.log(denom)
            out[t, h] = (w[:, None] * v[idx, kv_h]).sum(axis=0) / denom
    return out, lse


class TestReferenceAttention:
    def test_against_loop_oracle(self, rng):
        q, k, v = make_qkv(rng, 11, 11)
        mask = np.tril(np.ones((11, 11), dtype=bool))
        scale = 1.0 / np.sqrt(q.shape[-1])
        out, lse = reference_attention_with_lse(q, k, v)
        exp_out, exp_lse = naive_softmax_attention(q, k, v, mask, scale)
        np.testing.assert_allclose(out, exp_out, atol=1e-12)
        np.testing.assert_allclose(lse, exp_lse, atol=1e-12)

    def test_single_token_is_value(self, rng):
        """One query attending exactly one key returns that value."""
        q, k, v = make_qkv(rng, 1, 1)
        out = reference_attention(q, k, v)
        for h in range(q.shape[1]):
            np.testing.assert_allclose(out[0, h], v[0, h // 4], atol=1e-12)

    def test_uniform_scores_average_values(self):
        """Identical keys -> softmax is uniform -> output is mean of values."""
        t = 6
        q = np.ones((1, 2, 4))
        k = np.ones((t, 1, 4))
        v = np.random.default_rng(3).standard_normal((t, 1, 4))
        out = reference_attention(q, k, v, q_pos=np.array([t - 1]), k_pos=np.arange(t))
        np.testing.assert_allclose(out[0, 0], v[:, 0].mean(axis=0), atol=1e-12)

    def test_causal_first_token_sees_itself_only(self, rng):
        q, k, v = make_qkv(rng, 5, 5)
        out = reference_attention(q, k, v)
        for h in range(q.shape[1]):
            np.testing.assert_allclose(out[0, h], v[0, h // 4], atol=1e-12)

    def test_no_visible_keys_gives_zero_and_neg_inf(self, rng):
        q, k, v = make_qkv(rng, 2, 3)
        # queries at positions before all keys
        out, lse = reference_attention_with_lse(
            q, k, v, q_pos=np.array([0, 1]), k_pos=np.array([5, 6, 7])
        )
        assert np.all(out == 0.0)
        assert np.all(np.isneginf(lse))

    def test_scale_parameter(self, rng):
        q, k, v = make_qkv(rng, 4, 4)
        default = reference_attention(q, k, v)
        explicit = reference_attention(q, k, v, scale=1.0 / np.sqrt(q.shape[-1]))
        np.testing.assert_array_equal(default, explicit)
        different = reference_attention(q, k, v, scale=0.3)
        assert not np.allclose(default, different)

    def test_cross_sequence_isolation(self, rng):
        """Fused sequences must not see each other's keys."""
        q, k, v = make_qkv(rng, 6, 6)
        pos = np.array([0, 1, 2, 0, 1, 2])
        seq = np.array([0, 0, 0, 1, 1, 1])
        fused, _ = reference_attention_with_lse(q, k, v, q_pos=pos, k_pos=pos, q_seq=seq, k_seq=seq)
        solo0, _ = reference_attention_with_lse(q[:3], k[:3], v[:3])
        solo1, _ = reference_attention_with_lse(q[3:], k[3:], v[3:])
        np.testing.assert_allclose(fused[:3], solo0, atol=1e-12)
        np.testing.assert_allclose(fused[3:], solo1, atol=1e-12)

    def test_softmax_rows_reconstruct(self, rng):
        """exp(scores - lse) sums to 1 over visible keys (softmax sanity)."""
        q, k, v = make_qkv(rng, 7, 7, n_heads=4, n_kv_heads=4)
        _, lse = reference_attention_with_lse(q, k, v)
        scale = 1.0 / np.sqrt(q.shape[-1])
        scores = np.einsum("thd,shd->ths", q, k) * scale
        for t in range(7):
            for h in range(4):
                p = np.exp(scores[t, h, : t + 1] - lse[t, h])
                assert p.sum() == pytest.approx(1.0, abs=1e-12)
