"""Tests for model configurations (paper Table 9)."""

import pytest

from repro.model.config import (
    ModelConfig,
    llama3_405b_config,
    llama3_70b_config,
    llama3_8b_config,
    tiny_config,
)


class TestLlama405B:
    def test_table9_values(self):
        cfg = llama3_405b_config()
        assert cfg.n_layers == 126
        assert cfg.model_dim == 16384
        assert cfg.ffn_dim == 53248
        assert cfg.n_heads == 128
        assert cfg.n_kv_heads == 8
        assert cfg.head_dim == 128
        assert cfg.kv_dim == 1024
        assert cfg.gqa_group_size == 16

    def test_param_count_is_405b(self):
        """Derived parameter count lands on ~405B (Table 9's W)."""
        w = llama3_405b_config().param_count
        assert 3.9e11 < w < 4.2e11

    def test_kv_message_ratio(self):
        """Equation (1)'s constant: 2 * 8 / 128 = 12.5%."""
        assert llama3_405b_config().kv_message_ratio == pytest.approx(0.125)

    def test_kv_bytes_per_token(self):
        cfg = llama3_405b_config()
        # 2 (K+V) * 1024 * 126 layers * 2 bytes ~ 516 KB per token
        assert cfg.kv_bytes_per_token() == pytest.approx(2 * 1024 * 126 * 2)


class TestOtherPresets:
    def test_70b(self):
        cfg = llama3_70b_config()
        assert 6e10 < cfg.param_count < 8e10

    def test_8b(self):
        cfg = llama3_8b_config()
        assert 7e9 < cfg.param_count < 9e9

    def test_tiny_architecture_family(self):
        cfg = tiny_config()
        assert cfg.n_heads % cfg.n_kv_heads == 0
        assert cfg.head_dim % 2 == 0


class TestValidation:
    def test_indivisible_heads(self):
        with pytest.raises(ValueError):
            ModelConfig("x", 2, 64, 128, 7, 2)

    def test_indivisible_kv(self):
        with pytest.raises(ValueError):
            ModelConfig("x", 2, 64, 128, 8, 3)

    def test_odd_head_dim(self):
        with pytest.raises(ValueError):
            ModelConfig("x", 2, 72, 128, 8, 2)  # head_dim 9
