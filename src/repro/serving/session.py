"""Multi-turn chat session driver.

:class:`ChatSession` owns one conversation against a
:class:`repro.core.engine.ContextParallelEngine`: it submits the first
prompt as full prefill, greedily decodes a response, and submits follow-up
prompts as partial prefill over the persistent sharded KV cache — the exact
multi-turn loop of paper §3.3. Each turn's ``(T, P)`` pair and the planner's
pass-KV/pass-Q choice are recorded so tests can assert the heuristic flips
to pass-Q at high cache-hit rates.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import ContextParallelEngine
from repro.model.sampling import sample_greedy
from repro.serving.request import TurnRecord


class ChatSession:
    """One conversation: alternating user prompts and decoded responses.

    Args:
        engine: shared CP engine (sessions may share one engine; their
            sequences are isolated by seq_id).
        seq_id: unique id of this conversation.
    """

    def __init__(self, engine: ContextParallelEngine, seq_id: int):
        self.engine = engine
        self.seq_id = seq_id
        self.turns: list[TurnRecord] = []
        self.history: list[int] = []

    @property
    def context_length(self) -> int:
        """Tokens committed to the persistent KV cache."""
        return self.engine.context_length(self.seq_id)

    def send(self, prompt_ids: np.ndarray, *, max_new_tokens: int = 8) -> TurnRecord:
        """Submit one user prompt and greedily decode a response.

        The first call runs full prefill; later calls run partial prefill
        against the cached history.

        Args:
            prompt_ids: new prompt token ids.
            max_new_tokens: response decode budget.

        Returns:
            The completed :class:`TurnRecord` (also appended to ``turns``).
        """
        prompt_ids = np.asarray(prompt_ids, dtype=np.int64)
        cached = self.context_length
        out = self.engine.prefill({self.seq_id: prompt_ids})
        self.history.extend(int(t) for t in prompt_ids)

        record = TurnRecord(
            seq_id=self.seq_id,
            prompt_tokens=int(prompt_ids.size),
            cached_tokens=cached,
            response_tokens=0,
            algo=out.plan.algo.value,
        )

        next_logits = out.last_logits(self.seq_id)
        for _ in range(max_new_tokens):
            token = int(sample_greedy(next_logits))
            record.generated.append(token)
            self.history.append(token)
            step = self.engine.decode({self.seq_id: token})
            next_logits = step.logits[self.seq_id]
        record.response_tokens = len(record.generated)
        self.turns.append(record)
        return record

    def close(self) -> None:
        """Evict this conversation's KV from every rank."""
        self.engine.release(self.seq_id)
