"""Ablation: load-balanced vs naive sharding (design choice, §3.5.1)."""

from repro.experiments import ablation_sharding


def bench_ablation_sharding(benchmark, paper_table):
    result = benchmark(ablation_sharding.run)
    paper_table(benchmark, result)
    for row in result.rows:
        n, lb_ratio, sp_ratio, nv_ratio, lb_pct, nv_pct = row
        # balanced: within 1% of ideal; naive: tens of percent over
        assert lb_pct < 1.0
        assert nv_pct > 30.0
        # the naive penalty grows with rank count
    naive = result.column("naive slowdown %")
    assert naive == sorted(naive)


if __name__ == "__main__":
    print(ablation_sharding.run().render())
