"""Load-balanced context-parallel sharding (paper §3.5.1, Figures 1-2).

Naively splitting a causal sequence into N contiguous shards gives rank 0
almost no attention work (its tokens see few keys) and rank N-1 nearly all
of it. The paper's remedy: split the sequence into ``2N`` contiguous chunks
``C_0 .. C_{2N-1}`` and give rank ``i`` the pair ``(C_i, C_{2N-1-i})`` —
one "early" chunk and one mirrored "late" chunk. Every rank then owns the
same token count (balancing KV-cache bytes) and, summed over its two chunks,
the same causal attention area (balancing FLOPs).

Three use cases, all reduced to the same primitive:

- **Full prefill** of fused variable-length batches: each sequence is
  sharded independently and each rank concatenates its slices (Figure 1).
- **Partial prefill**: only the *new* tokens (positions ``[P, P+T)``) are
  load-balance sharded; cached tokens keep whatever layout previous turns
  gave them (Figure 2).
- **Decode** round-robin sharding lives in :mod:`repro.core.ring_decode`.

Every sharded token carries its absolute ``(seq_id, position)`` so causal
masks remain exact under the permutation (see :mod:`repro.attention.masks`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.attention.masks import PAD_SEQ


@dataclass(frozen=True)
class SequenceSpec:
    """One sequence in a (possibly fused) prefill batch.

    Attributes:
        seq_id: stable identifier of the sequence (batch slot / request id).
        new_tokens: number of tokens to prefill this turn (paper ``T^i``).
        cached_tokens: tokens already in the persistent KV cache (``P^i``).
    """

    seq_id: int
    new_tokens: int
    cached_tokens: int = 0

    def __post_init__(self) -> None:
        if self.new_tokens < 0 or self.cached_tokens < 0:
            raise ValueError(f"token counts must be non-negative: {self}")

    @property
    def total_tokens(self) -> int:
        return self.new_tokens + self.cached_tokens

    @property
    def miss_rate(self) -> float:
        """KV-cache miss rate ``T / (T + P)`` — the paper's heuristic input."""
        if self.total_tokens == 0:
            return 0.0
        return self.new_tokens / self.total_tokens


@dataclass
class ShardedQueries:
    """One rank's query-side tokens (projected Q plus coordinates)."""

    q: np.ndarray  # [n, NH, DH]
    positions: np.ndarray  # [n] absolute positions within each token's sequence
    seq_ids: np.ndarray  # [n]

    def __post_init__(self) -> None:
        _validate_coords(self.q, self.positions, self.seq_ids)

    def __len__(self) -> int:
        return self.q.shape[0]


@dataclass
class ShardedKV:
    """One rank's key/value tokens (cached plus freshly projected)."""

    k: np.ndarray  # [n, NKV, DH]
    v: np.ndarray  # [n, NKV, DH]
    positions: np.ndarray  # [n]
    seq_ids: np.ndarray  # [n]

    def __post_init__(self) -> None:
        if self.k.shape != self.v.shape:
            raise ValueError(f"k {self.k.shape} and v {self.v.shape} must match")
        _validate_coords(self.k, self.positions, self.seq_ids)

    def __len__(self) -> int:
        return self.k.shape[0]

    @staticmethod
    def empty(n_kv_heads: int, head_dim: int) -> "ShardedKV":
        return ShardedKV(
            k=np.zeros((0, n_kv_heads, head_dim)),
            v=np.zeros((0, n_kv_heads, head_dim)),
            positions=np.zeros(0, dtype=np.int64),
            seq_ids=np.zeros(0, dtype=np.int64),
        )

    @staticmethod
    def concat(shards: list["ShardedKV"]) -> "ShardedKV":
        if not shards:
            raise ValueError("cannot concat zero shards")
        return ShardedKV(
            k=np.concatenate([s.k for s in shards], axis=0),
            v=np.concatenate([s.v for s in shards], axis=0),
            positions=np.concatenate([s.positions for s in shards]),
            seq_ids=np.concatenate([s.seq_ids for s in shards]),
        )


def _validate_coords(x: np.ndarray, positions: np.ndarray, seq_ids: np.ndarray) -> None:
    if x.ndim != 3:
        raise ValueError(f"expected [tokens, heads, head_dim], got {x.shape}")
    n = x.shape[0]
    if positions.shape != (n,) or seq_ids.shape != (n,):
        raise ValueError(
            f"coordinate shapes {positions.shape}/{seq_ids.shape} must be ({n},)"
        )


# --------------------------------------------------------------------------- #
# chunking
# --------------------------------------------------------------------------- #


def load_balanced_chunks(length: int, world_size: int) -> list[tuple[int, int]]:
    """Split ``[0, length)`` into ``2 * world_size`` contiguous chunks.

    Chunk sizes differ by at most one token (``np.array_split`` convention:
    earlier chunks take the remainder). Returns ``[(start, stop), ...]`` of
    length ``2 * world_size``; zero-length chunks appear when
    ``length < 2 * world_size``.
    """
    if length < 0:
        raise ValueError(f"length must be >= 0, got {length}")
    if world_size < 1:
        raise ValueError(f"world_size must be >= 1, got {world_size}")
    edges = np.linspace(0, length, 2 * world_size + 1, dtype=np.int64)
    # linspace can be non-integer-spaced; enforce the array_split convention
    # (sizes floor/ceil of length / 2N) for stable, testable chunking.
    n_chunks = 2 * world_size
    base, extra = divmod(length, n_chunks)
    sizes = [base + 1 if i < extra else base for i in range(n_chunks)]
    edges = np.concatenate([[0], np.cumsum(sizes)])
    return [(int(edges[i]), int(edges[i + 1])) for i in range(n_chunks)]


def rank_chunks(length: int, world_size: int, rank: int) -> list[tuple[int, int]]:
    """The two chunks ``(C_rank, C_{2N-1-rank})`` assigned to ``rank``."""
    if not 0 <= rank < world_size:
        raise ValueError(f"rank {rank} out of range [0, {world_size})")
    chunks = load_balanced_chunks(length, world_size)
    return [chunks[rank], chunks[2 * world_size - 1 - rank]]


def shard_positions(
    length: int, world_size: int, *, offset: int = 0
) -> list[np.ndarray]:
    """Per-rank absolute positions for a single sequence of ``length`` tokens.

    Args:
        length: number of tokens being sharded this turn.
        world_size: number of CP ranks.
        offset: first absolute position (``P`` for partial prefill: new
            tokens live at positions ``[P, P+T)``).

    Returns:
        ``world_size`` int64 arrays; rank ``i`` holds the concatenation of
        its early chunk and its mirrored late chunk, in position order per
        chunk. Together the arrays partition ``[offset, offset + length)``.
    """
    out = []
    for rank in range(world_size):
        pieces = [
            np.arange(start + offset, stop + offset, dtype=np.int64)
            for start, stop in rank_chunks(length, world_size, rank)
        ]
        out.append(np.concatenate(pieces) if pieces else np.zeros(0, dtype=np.int64))
    return out


def shard_sequences(
    specs: list[SequenceSpec], world_size: int
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Fused varseq sharding: per-rank ``(positions, seq_ids)`` arrays.

    Each sequence's *new* tokens are load-balance sharded independently
    (Figures 1-2); rank ``i``'s tokens are the concatenation over sequences
    of its slices, preserving batch order. Cached tokens are untouched: they
    already live in the per-rank KV cache from earlier turns.
    """
    if world_size < 1:
        raise ValueError(f"world_size must be >= 1, got {world_size}")
    per_rank_pos: list[list[np.ndarray]] = [[] for _ in range(world_size)]
    per_rank_seq: list[list[np.ndarray]] = [[] for _ in range(world_size)]
    for spec in specs:
        shards = shard_positions(spec.new_tokens, world_size, offset=spec.cached_tokens)
        for rank, pos in enumerate(shards):
            per_rank_pos[rank].append(pos)
            per_rank_seq[rank].append(np.full(pos.shape[0], spec.seq_id, dtype=np.int64))
    result = []
    for rank in range(world_size):
        if per_rank_pos[rank]:
            result.append(
                (np.concatenate(per_rank_pos[rank]), np.concatenate(per_rank_seq[rank]))
            )
        else:
            result.append((np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)))
    return result


# --------------------------------------------------------------------------- #
# padding (ring message-size invariant)
# --------------------------------------------------------------------------- #


def pad_kv_shards(shards: list[ShardedKV]) -> tuple[list[ShardedKV], int]:
    """Pad per-rank KV shards to equal length per sequence (Algorithm 2).

    The ring algorithm must exchange equal-sized messages between CP ranks
    ("to adhere to collective communication interfaces"). Multi-turn chat,
    padding and decode leave ranks holding slightly different KV counts, so
    for every sequence ``i`` present on any rank we pad each rank's slice of
    that sequence to ``L_i = max_j (P^i_j + T^i_j)``. Padding entries carry
    ``seq_id = PAD_SEQ`` and are never attended.

    Returns:
        ``(padded_shards, pad_tokens_total)`` — the second element feeds the
        perf model, since padded bytes travel the wire like real ones.
    """
    if not shards:
        raise ValueError("need at least one shard")
    all_seq_ids = sorted(
        set(int(s) for shard in shards for s in np.unique(shard.seq_ids) if s != PAD_SEQ)
    )
    n_kv, dh = shards[0].k.shape[1], shards[0].k.shape[2]

    per_seq_max: dict[int, int] = {}
    for sid in all_seq_ids:
        per_seq_max[sid] = max(int(np.count_nonzero(shard.seq_ids == sid)) for shard in shards)

    padded: list[ShardedKV] = []
    pad_total = 0
    for shard in shards:
        pieces_k, pieces_v, pieces_pos, pieces_sid = [], [], [], []
        for sid in all_seq_ids:
            idx = np.nonzero(shard.seq_ids == sid)[0]
            want = per_seq_max[sid]
            pad = want - idx.shape[0]
            pad_total += pad
            pieces_k.append(shard.k[idx])
            pieces_v.append(shard.v[idx])
            pieces_pos.append(shard.positions[idx])
            pieces_sid.append(np.full(idx.shape[0], sid, dtype=np.int64))
            if pad:
                pieces_k.append(np.zeros((pad, n_kv, dh), dtype=shard.k.dtype))
                pieces_v.append(np.zeros((pad, n_kv, dh), dtype=shard.v.dtype))
                pieces_pos.append(np.zeros(pad, dtype=np.int64))
                pieces_sid.append(np.full(pad, PAD_SEQ, dtype=np.int64))
        if pieces_k:
            padded.append(
                ShardedKV(
                    k=np.concatenate(pieces_k, axis=0),
                    v=np.concatenate(pieces_v, axis=0),
                    positions=np.concatenate(pieces_pos),
                    seq_ids=np.concatenate(pieces_sid),
                )
            )
        else:
            padded.append(ShardedKV.empty(n_kv, dh))
    lengths = {len(p) for p in padded}
    assert len(lengths) == 1, f"padding failed to equalise shard lengths: {lengths}"
    return padded, pad_total


def pad_query_shards(shards: list[ShardedQueries]) -> tuple[list[ShardedQueries], int]:
    """Pad per-rank query shards to a common length (pass-Q invariant).

    Load-balanced sharding already distributes queries within one token of
    evenly; padding tops every rank up to the max so ring messages are
    equal-sized. Padding queries carry ``seq_id = PAD_SEQ``; their outputs
    are discarded after the ring (the paper notes this padding as a decode
    overhead in Table 8's analysis).
    """
    if not shards:
        raise ValueError("need at least one shard")
    want = max(len(s) for s in shards)
    nh, dh = shards[0].q.shape[1], shards[0].q.shape[2]
    padded = []
    pad_total = 0
    for shard in shards:
        pad = want - len(shard)
        pad_total += pad
        if pad == 0:
            padded.append(shard)
            continue
        padded.append(
            ShardedQueries(
                q=np.concatenate([shard.q, np.zeros((pad, nh, dh), dtype=shard.q.dtype)], axis=0),
                positions=np.concatenate([shard.positions, np.zeros(pad, dtype=np.int64)]),
                seq_ids=np.concatenate([shard.seq_ids, np.full(pad, PAD_SEQ, dtype=np.int64)]),
            )
        )
    return padded, pad_total


# --------------------------------------------------------------------------- #
# diagnostics
# --------------------------------------------------------------------------- #


def causal_flops_per_rank(length: int, world_size: int) -> np.ndarray:
    """Relative causal-attention work per rank under load-balanced sharding.

    For each rank, sums ``pos + 1`` (the number of keys each query position
    attends) over the rank's assigned positions of a single full-prefill
    sequence. Used by tests and the sharding ablation to demonstrate the
    balance property versus naive contiguous sharding.
    """
    shards = shard_positions(length, world_size)
    return np.array([float(np.sum(pos + 1)) for pos in shards])


def naive_flops_per_rank(length: int, world_size: int) -> np.ndarray:
    """Same metric for naive contiguous sharding (the ablation baseline)."""
    edges = np.linspace(0, length, world_size + 1, dtype=np.int64)
    base, extra = divmod(length, world_size)
    sizes = [base + 1 if i < extra else base for i in range(world_size)]
    edges = np.concatenate([[0], np.cumsum(sizes)])
    out = []
    for rank in range(world_size):
        pos = np.arange(edges[rank], edges[rank + 1], dtype=np.int64)
        out.append(float(np.sum(pos + 1)))
    return np.array(out)
