"""Tests for engine extensions: chunked prefill and quantized KV cache."""

import numpy as np
import pytest

from repro.core.engine import ContextParallelEngine
from repro.core.heuristics import RingAlgo
from repro.model.config import tiny_config
from repro.model.llama import LlamaModel


@pytest.fixture(scope="module")
def model():
    return LlamaModel(tiny_config(), seed=17)


class TestChunkedPrefill:
    @pytest.mark.parametrize("chunk", [1, 4, 7, 100])
    def test_equals_one_shot(self, model, chunk):
        toks = (np.arange(19) * 3) % model.config.vocab_size
        chunked = ContextParallelEngine(model, world_size=2).prefill_chunked(
            0, toks, chunk_tokens=chunk
        )
        one_shot = ContextParallelEngine(model, world_size=2).prefill({0: toks})
        np.testing.assert_allclose(
            chunked.logits[0], one_shot.logits[0], atol=1e-9
        )

    def test_later_chunks_are_partial_prefill(self, model):
        engine = ContextParallelEngine(model, world_size=2)
        toks = np.arange(12) % model.config.vocab_size
        out = engine.prefill_chunked(0, toks, chunk_tokens=4, force_algo=RingAlgo.PASS_Q)
        assert out.plan.cached_tokens == 8  # final chunk saw 8 cached
        assert engine.context_length(0) == 12

    def test_then_decode(self, model):
        engine = ContextParallelEngine(model, world_size=3)
        toks = np.arange(14) % model.config.vocab_size
        engine.prefill_chunked(0, toks, chunk_tokens=5)
        step = engine.decode({0: 2})
        ref = model.forward(np.concatenate([toks, [2]]))
        np.testing.assert_allclose(step.logits[0], ref[-1], atol=1e-9)

    def test_validation(self, model):
        engine = ContextParallelEngine(model, world_size=2)
        with pytest.raises(ValueError):
            engine.prefill_chunked(0, np.arange(4), chunk_tokens=0)
        with pytest.raises(ValueError):
            engine.prefill_chunked(0, np.zeros(0, dtype=np.int64), chunk_tokens=2)


class TestQuantizedKvCache:
    def test_prefill_close_but_lossy(self, model):
        toks = np.arange(20) % model.config.vocab_size
        exact = ContextParallelEngine(model, world_size=2).prefill({0: toks})
        quant = ContextParallelEngine(
            model, world_size=2, quantized_kv_cache=True
        ).prefill({0: toks})
        a, b = exact.logits[0], quant.logits[0]
        assert not np.array_equal(a, b)  # actually lossy
        rel = np.abs(a - b).max() / np.abs(a).max()
        assert rel < 0.05  # but close

    def test_greedy_tokens_usually_stable(self, model):
        """int8 KV rarely flips greedy argmax on this scale of model."""
        toks = (np.arange(16) * 7) % model.config.vocab_size
        exact = ContextParallelEngine(model, world_size=2).generate(
            {0: toks}, max_new_tokens=3
        )
        quant = ContextParallelEngine(
            model, world_size=2, quantized_kv_cache=True
        ).generate({0: toks}, max_new_tokens=3)
        matches = sum(a == b for a, b in zip(exact[0], quant[0]))
        assert matches >= 2

    def test_multi_turn_quantized(self, model):
        engine = ContextParallelEngine(model, world_size=2, quantized_kv_cache=True)
        engine.prefill({0: np.arange(10) % model.config.vocab_size})
        engine.decode({0: 3})
        out = engine.prefill({0: np.array([4, 5])})
        assert out.logits[0].shape == (2, model.config.vocab_size)
        assert engine.context_length(0) == 13
