"""Numeric-kernel microbenchmarks (simulator performance, not paper claims).

Times the NumPy substrate itself — the flash kernel, the ring algorithms
and an end-to-end engine prefill at test scale — so regressions in the
simulation's own speed are visible.
"""

import numpy as np

from repro.attention.flash import flash_attention
from repro.attention.reference import reference_attention_with_lse
from repro.core.engine import ContextParallelEngine
from repro.core.ring_passkv import ring_passkv_prefill
from repro.core.ring_passq import ring_passq_prefill
from repro.core.sharding import SequenceSpec, ShardedKV, ShardedQueries, shard_sequences
from repro.distributed.process_group import SimProcessGroup
from repro.model.config import tiny_config
from repro.model.llama import LlamaModel

T = 256
RNG = np.random.default_rng(0)
Q = RNG.standard_normal((T, 8, 32))
K = RNG.standard_normal((T, 2, 32))
V = RNG.standard_normal((T, 2, 32))


def _shards(world):
    shards = shard_sequences([SequenceSpec(0, T)], world)
    queries = [ShardedQueries(q=Q[pos], positions=pos, seq_ids=sid) for pos, sid in shards]
    kvs = [ShardedKV(k=K[pos], v=V[pos], positions=pos, seq_ids=sid) for pos, sid in shards]
    return queries, kvs


def bench_reference_attention(benchmark):
    benchmark(reference_attention_with_lse, Q, K, V)


def bench_flash_attention(benchmark):
    benchmark(flash_attention, Q, K, V, block_size=64)


def bench_ring_passkv_cp4(benchmark):
    queries, kvs = _shards(4)

    def run():
        return ring_passkv_prefill(SimProcessGroup(4), queries, kvs, block_size=64)

    benchmark(run)


def bench_ring_passq_cp4(benchmark):
    queries, kvs = _shards(4)

    def run():
        return ring_passq_prefill(SimProcessGroup(4), queries, kvs, block_size=64)

    benchmark(run)


def bench_engine_prefill_cp2(benchmark):
    model = LlamaModel(tiny_config(), seed=0)
    toks = np.arange(64) % model.config.vocab_size

    def run():
        engine = ContextParallelEngine(model, world_size=2)
        return engine.prefill({0: toks})

    benchmark(run)
