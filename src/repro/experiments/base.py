"""Common result container and rendering for experiment regenerators."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExperimentResult:
    """One regenerated table/figure.

    Attributes:
        experiment_id: paper reference, e.g. ``"Table 4"`` / ``"Figure 6a"``.
        title: short description.
        headers: column names.
        rows: list of value tuples aligned with ``headers``.
        notes: free-form commentary (substitutions, deviations).
        paper_values: optional ``{row_key: paper_number}`` anchors used by
            tests and the EXPERIMENTS.md paper-vs-measured column.
    """

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    paper_values: dict[str, float] = field(default_factory=dict)

    def add_row(self, *values) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"{self.experiment_id}: row width {len(values)} != header width {len(self.headers)}"
            )
        self.rows.append(tuple(values))

    def column(self, name: str) -> list:
        """Extract one column by header name."""
        idx = self.headers.index(name)
        return [row[idx] for row in self.rows]

    def render(self) -> str:
        """Fixed-width text table (what the benchmark harness prints)."""
        widths = [
            max(len(str(h)), *(len(_fmt(r[i])) for r in self.rows)) if self.rows else len(str(h))
            for i, h in enumerate(self.headers)
        ]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append("  ".join(str(h).ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(_fmt(v).ljust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """GitHub-flavoured markdown table (for EXPERIMENTS.md)."""
        lines = [f"### {self.experiment_id}: {self.title}", ""]
        lines.append("| " + " | ".join(str(h) for h in self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(_fmt(v) for v in row) + " |")
        if self.notes:
            lines.append("")
            for note in self.notes:
                lines.append(f"- {note}")
        return "\n".join(lines)


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000:
            return f"{v:,.0f}"
        if abs(v) >= 10:
            return f"{v:.1f}"
        return f"{v:.3f}"
    return str(v)
