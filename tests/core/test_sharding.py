"""Tests for load-balanced context-parallel sharding (§3.5.1)."""

import numpy as np
import pytest

from repro.attention.masks import PAD_SEQ
from repro.core.sharding import (
    SequenceSpec,
    ShardedKV,
    ShardedQueries,
    causal_flops_per_rank,
    load_balanced_chunks,
    naive_flops_per_rank,
    pad_kv_shards,
    pad_query_shards,
    rank_chunks,
    shard_positions,
    shard_sequences,
)


class TestLoadBalancedChunks:
    def test_chunk_count_and_coverage(self):
        chunks = load_balanced_chunks(100, 4)
        assert len(chunks) == 8
        assert chunks[0][0] == 0 and chunks[-1][1] == 100
        for (a, b), (c, d) in zip(chunks, chunks[1:]):
            assert b == c  # contiguous

    def test_sizes_within_one(self):
        chunks = load_balanced_chunks(103, 4)
        sizes = [b - a for a, b in chunks]
        assert max(sizes) - min(sizes) <= 1

    def test_short_sequence_zero_chunks(self):
        chunks = load_balanced_chunks(3, 4)
        sizes = [b - a for a, b in chunks]
        assert sum(sizes) == 3
        assert all(s in (0, 1) for s in sizes)

    def test_invalid(self):
        with pytest.raises(ValueError):
            load_balanced_chunks(-1, 2)
        with pytest.raises(ValueError):
            load_balanced_chunks(4, 0)


class TestRankChunks:
    def test_mirror_pairing(self):
        """Rank i takes chunks (C_i, C_{2N-1-i})."""
        n = 4
        all_chunks = load_balanced_chunks(64, n)
        for rank in range(n):
            got = rank_chunks(64, n, rank)
            assert got == [all_chunks[rank], all_chunks[2 * n - 1 - rank]]

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            rank_chunks(64, 4, 4)


class TestShardPositions:
    @pytest.mark.parametrize("length,world", [(64, 4), (63, 4), (17, 3), (7, 8), (1, 2)])
    def test_partition(self, length, world):
        shards = shard_positions(length, world)
        merged = np.sort(np.concatenate(shards))
        np.testing.assert_array_equal(merged, np.arange(length))

    def test_token_balance(self):
        shards = shard_positions(1024, 8)
        sizes = [s.shape[0] for s in shards]
        assert max(sizes) - min(sizes) <= 2  # two chunks per rank

    def test_offset_for_partial_prefill(self):
        shards = shard_positions(8, 2, offset=100)
        merged = np.sort(np.concatenate(shards))
        np.testing.assert_array_equal(merged, np.arange(100, 108))

    def test_rank0_has_first_and_last_chunks(self):
        shards = shard_positions(80, 4)
        assert 0 in shards[0]
        assert 79 in shards[0]


class TestCausalBalance:
    def test_load_balanced_beats_naive(self):
        """The defining property: attention work imbalance shrinks."""
        for n in (2, 4, 8):
            lb = causal_flops_per_rank(4096, n)
            naive = naive_flops_per_rank(4096, n)
            lb_imbalance = lb.max() / lb.min()
            naive_imbalance = naive.max() / naive.min()
            assert lb_imbalance < 1.01
            assert naive_imbalance > 1.5

    def test_total_work_preserved(self):
        t = 1000
        expected = t * (t + 1) / 2
        assert causal_flops_per_rank(t, 4).sum() == expected
        assert naive_flops_per_rank(t, 4).sum() == expected


class TestShardSequences:
    def test_fused_batch_partition(self):
        specs = [SequenceSpec(0, 30), SequenceSpec(1, 17), SequenceSpec(2, 5)]
        shards = shard_sequences(specs, 4)
        seen = {0: [], 1: [], 2: []}
        total = 0
        for pos, sid in shards:
            total += pos.shape[0]
            for p, s in zip(pos, sid):
                seen[int(s)].append(int(p))
        assert total == 52
        for spec in specs:
            assert sorted(seen[spec.seq_id]) == list(range(spec.new_tokens))

    def test_partial_prefill_offsets(self):
        specs = [SequenceSpec(0, 10, cached_tokens=100)]
        shards = shard_sequences(specs, 2)
        merged = np.sort(np.concatenate([pos for pos, _ in shards]))
        np.testing.assert_array_equal(merged, np.arange(100, 110))

    def test_per_rank_token_balance_varseq(self):
        specs = [SequenceSpec(i, 64 + i) for i in range(3)]
        shards = shard_sequences(specs, 4)
        sizes = [pos.shape[0] for pos, _ in shards]
        assert max(sizes) - min(sizes) <= len(specs) * 2

    def test_invalid_world(self):
        with pytest.raises(ValueError):
            shard_sequences([SequenceSpec(0, 4)], 0)


class TestSequenceSpec:
    def test_miss_rate(self):
        assert SequenceSpec(0, 10, 90).miss_rate == pytest.approx(0.1)
        assert SequenceSpec(0, 10, 0).miss_rate == 1.0
        assert SequenceSpec(0, 0, 0).miss_rate == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SequenceSpec(0, -1)


class TestPadding:
    def _kv(self, n, sid=0, start=0):
        return ShardedKV(
            k=np.ones((n, 2, 4)),
            v=np.ones((n, 2, 4)),
            positions=np.arange(start, start + n, dtype=np.int64),
            seq_ids=np.full(n, sid, dtype=np.int64),
        )

    def test_pad_kv_equal_lengths(self):
        shards = [self._kv(5), self._kv(3), self._kv(4)]
        padded, pad_total = pad_kv_shards(shards)
        assert len({len(p) for p in padded}) == 1
        assert pad_total == (5 - 3) + (5 - 4)

    def test_pad_entries_marked(self):
        padded, _ = pad_kv_shards([self._kv(4), self._kv(2)])
        assert np.count_nonzero(padded[1].seq_ids == PAD_SEQ) == 2

    def test_pad_per_sequence(self):
        a = ShardedKV.concat([self._kv(4, sid=0), self._kv(2, sid=1)])
        b = ShardedKV.concat([self._kv(3, sid=0), self._kv(5, sid=1)])
        padded, pad_total = pad_kv_shards([a, b])
        assert pad_total == 1 + 3
        # per-sequence slices padded to per-sequence max: 4 + 5
        assert len(padded[0]) == len(padded[1]) == 9

    def test_pad_queries(self):
        shards = [
            ShardedQueries(
                q=np.ones((n, 2, 4)),
                positions=np.arange(n, dtype=np.int64),
                seq_ids=np.zeros(n, dtype=np.int64),
            )
            for n in (4, 2, 3)
        ]
        padded, pad_total = pad_query_shards(shards)
        assert all(len(p) == 4 for p in padded)
        assert pad_total == 2 + 1
        assert np.count_nonzero(padded[1].seq_ids == PAD_SEQ) == 2

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            pad_kv_shards([])
        with pytest.raises(ValueError):
            pad_query_shards([])


class TestShardContainers:
    def test_coordinate_validation(self):
        with pytest.raises(ValueError):
            ShardedQueries(
                q=np.zeros((3, 2, 4)),
                positions=np.zeros(2, dtype=np.int64),
                seq_ids=np.zeros(3, dtype=np.int64),
            )
        with pytest.raises(ValueError):
            ShardedKV(
                k=np.zeros((3, 2, 4)),
                v=np.zeros((4, 2, 4)),
                positions=np.zeros(3, dtype=np.int64),
                seq_ids=np.zeros(3, dtype=np.int64),
            )

    def test_concat_and_empty(self):
        empty = ShardedKV.empty(2, 4)
        assert len(empty) == 0
        one = ShardedKV(
            k=np.ones((2, 2, 4)), v=np.ones((2, 2, 4)),
            positions=np.arange(2, dtype=np.int64), seq_ids=np.zeros(2, dtype=np.int64),
        )
        cat = ShardedKV.concat([empty, one, one])
        assert len(cat) == 4
        with pytest.raises(ValueError):
            ShardedKV.concat([])
