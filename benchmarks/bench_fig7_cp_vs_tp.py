"""Figure 7: CP vs multi-node TP scaling ratio at 128K."""

from repro.experiments import fig7_cp_vs_tp


def bench_fig7_scaling_ratio(benchmark, paper_table):
    result = benchmark(fig7_cp_vs_tp.run)
    paper_table(benchmark, result)
    tp_ratios = result.column("TP ratio")
    cp_ratios = result.column("CP ratio")
    # CP stays near-linear; TP plateaus
    assert cp_ratios[-1] > 6.5  # 8 nodes
    assert tp_ratios[-1] < 3.0
    # the gap widens monotonically with node count
    gaps = [c / t for c, t in zip(cp_ratios, tp_ratios)]
    assert gaps == sorted(gaps)
    # "100% difference" at 8 nodes: TP latency at least 2x CP latency
    assert result.column("TP TTFT (s)")[-1] > 2.0 * result.column("CP TTFT (s)")[-1]


if __name__ == "__main__":
    print(fig7_cp_vs_tp.run().render())
